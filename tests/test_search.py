"""Local-search optimality probe."""

import pytest

from repro.core.baselines import brute_force
from repro.core.joint import jps_line
from repro.core.search import local_search
from repro.extensions.refine import refine_end_jobs


def test_local_search_near_brute_force_small(alexnet_table):
    """Single-move local search can stop in a local optimum, but with the
    refined-JPS start it stays within 1% of the exact optimum."""
    for n in (2, 4, 6):
        ls = local_search(alexnet_table, n, seed=0)
        bf = brute_force(alexnet_table, n)
        assert bf.makespan <= ls.makespan + 1e-12
        assert ls.makespan <= bf.makespan * 1.01


def test_local_search_never_worse_than_jps(alexnet_table):
    for n in (5, 20, 60):
        ls = local_search(alexnet_table, n, seed=1)
        jps = jps_line(alexnet_table, n)
        assert ls.makespan <= jps.makespan + 1e-12
        assert ls.num_jobs == n


def test_local_search_deterministic(alexnet_table):
    a = local_search(alexnet_table, 15, seed=7)
    b = local_search(alexnet_table, 15, seed=7)
    assert a.makespan == b.makespan
    assert a.metadata["counts"] == b.metadata["counts"]


def test_jps_with_refine_is_near_local_search_at_scale(alexnet_table):
    """The paper's scheme + our end-effect pass sit within 2% of the
    strongest search we can run at n = 100."""
    n = 100
    ls = local_search(alexnet_table, n, restarts=2, seed=3)
    refined = refine_end_jobs(alexnet_table, jps_line(alexnet_table, n))
    assert refined.makespan <= ls.makespan * 1.02 + 1e-12


def test_local_search_validation(alexnet_table):
    with pytest.raises(ValueError):
        local_search(alexnet_table, 0)
