"""run_system end to end: capacity, compat, placement, admission.

The two locks that matter most:

* **capacity acceptance** — the ROADMAP's capacity-bound scenario
  (32 deadline-bound clients saturating one mobile CPU) must serve
  strictly more within deadline on a 4-server fleet than on a single
  gateway, over the *identical* seeded arrival stream, with zero
  accounting/clock violations. The counts are pinned: per-server
  dispatch is byte-for-byte the single-gateway code, so any drift here
  is a real behavior change, not noise.
* **wrapper byte-identity** — ``run_scenario`` and
  ``run_fault_scenario`` are now thin wrappers over ``run_system``;
  ``tests/data/golden_system_compat.json`` was captured from the
  pre-fleet implementations and the wrappers must reproduce it byte
  for byte (same JSON serialization, same key order under sort_keys).
"""

import json
import warnings
from dataclasses import replace
from pathlib import Path

from repro.engine import PlanningEngine
from repro.faults.plan import Blackout, FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.fleet import (
    AdmissionConfig,
    FleetGateway,
    PlacementConfig,
    ServerSpec,
    SystemConfig,
    WorkloadConfig,
    capacity_scenario,
    default_fleet,
    run_system,
)
from repro.serving.workload import ClientSpec

GOLDEN = Path(__file__).parent / "data" / "golden_system_compat.json"


# ----------------------------------------------------------------------
# capacity acceptance: the fleet breaks the single-CPU ceiling
# ----------------------------------------------------------------------


def test_fleet_serves_strictly_more_than_single_gateway_under_overload():
    planner = PlanningEngine()
    single = run_system(capacity_scenario(servers=1), planner=planner)
    fleet = run_system(capacity_scenario(servers=4), planner=planner)

    # identical arrival stream: workload generation never sees the fleet
    assert single.arrivals == fleet.arrivals == 801

    # zero invariant violations on both sides
    assert single.violations == () and single.clock_violations == ()
    assert fleet.violations == () and fleet.clock_violations == ()

    # the acceptance criterion: strictly more served within deadline
    assert fleet.within_deadline > single.within_deadline
    assert fleet.served > single.served

    # pinned counts: per-server dispatch is the single-gateway code, so
    # these only move when behavior actually changes
    assert (single.served, single.within_deadline) == (73, 22)
    assert (fleet.served, fleet.within_deadline) == (286, 104)


def test_single_server_fleet_is_exactly_one_gateway():
    """N=1 run_system equals the legacy gateway run, field for field."""
    import repro.core.plans as plans
    from repro.serving.scenario import default_scenario, run_scenario

    legacy_cfg = default_scenario(clients=2, rate=1.0, horizon=12.0, deadline=2.0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = run_scenario(legacy_cfg)
    system = SystemConfig.from_scenario(legacy_cfg, scheme="JPS")
    report = run_system(system)
    assert json.dumps(plans.json_safe(report.servers["gateway"]["report"]),
                      sort_keys=True) == json.dumps(
        legacy["schemes"]["JPS"], sort_keys=True
    )


# ----------------------------------------------------------------------
# wrapper byte-identity against the pre-fleet golden capture
# ----------------------------------------------------------------------


def test_legacy_wrappers_reproduce_the_pre_fleet_golden_bytes():
    from repro.faults.scenario import default_fault_scenario, run_fault_scenario
    from repro.serving.scenario import default_scenario, run_scenario

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        document = {
            "scenario": run_scenario(
                default_scenario(clients=2, rate=1.5, horizon=24.0, deadline=2.0)
            ),
            "fault": run_fault_scenario(
                default_fault_scenario(clients=2, rate=2.0, horizon=16.0)
            ),
        }
    produced = json.dumps(document, indent=2, sort_keys=True)
    assert produced == GOLDEN.read_text().rstrip("\n")


def test_legacy_wrappers_warn_deprecation():
    import pytest

    from repro.faults.scenario import default_fault_scenario, run_fault_scenario
    from repro.serving.scenario import default_scenario, run_scenario

    with pytest.warns(DeprecationWarning, match="run_system"):
        run_scenario(default_scenario(clients=1, rate=0.5, horizon=4.0))
    with pytest.warns(DeprecationWarning, match="run_system"):
        run_fault_scenario(default_fault_scenario(clients=1, rate=0.5, horizon=6.0))


# ----------------------------------------------------------------------
# placement and migration
# ----------------------------------------------------------------------


def _clients(n: int, rate: float, deadline: float | None = None):
    return tuple(
        ClientSpec(name=f"c{i}", rate=rate, deadline=deadline) for i in range(n)
    )


def test_affinity_migrates_off_a_sustained_overloaded_server():
    config = SystemConfig(
        workload=WorkloadConfig(clients=_clients(6, 2.0), horizon=10.0),
        servers=(
            ServerSpec(name="slow", mobile_speedup=0.25),
            ServerSpec(name="fast", mobile_speedup=2.0),
        ),
        placement=PlacementConfig(
            policy="affinity", migration_backlog=3, migration_patience=0.5
        ),
    )
    report = run_system(config)
    migrations = report.fleet["placement"]["migrations"]
    assert migrations, "sustained overload on the slow server must migrate clients"
    assert {m["reason"] for m in migrations} == {"overload"}
    # at this load both servers back up at times, but the slow server
    # must shed toward the fast one at least once
    assert any(m["from"] == "slow" and m["to"] == "fast" for m in migrations)
    assert report.violations == () and report.clock_violations == ()


def test_affinity_migrates_off_a_degraded_uplink():
    policy = ResiliencePolicy(
        max_retries=1,
        transfer_timeout=0.25,
        degrade_after_failures=2,
        probe_interval=0.25,
        probe_bytes=16 * 1024.0,
    )
    config = SystemConfig(
        workload=WorkloadConfig(clients=_clients(4, 2.0, deadline=1.0), horizon=12.0),
        servers=(
            ServerSpec(
                name="dark",
                fault_plan=FaultPlan(blackouts=(Blackout(2.0, 8.0),)),
                resilience=policy,
            ),
            ServerSpec(name="healthy"),
        ),
        placement=PlacementConfig(policy="affinity", migrate_on_degraded=True),
    )
    report = run_system(config)
    migrations = report.fleet["placement"]["migrations"]
    assert migrations, "a degraded server must shed its bound clients"
    assert {m["reason"] for m in migrations} == {"degraded"}
    assert all(m["from"] == "dark" for m in migrations)
    assert report.violations == ()


def test_eft_placement_prices_through_the_shared_planner():
    planner = PlanningEngine()
    config = default_fleet(servers=3, clients=9, rate=2.0, horizon=6.0,
                           placement="eft")
    report = run_system(config, planner=planner)
    arrivals = report.fleet["placement"]["per_server_arrivals"]
    # eft balances: every server takes a nontrivial share of the stream
    assert set(arrivals) == {"server0", "server1", "server2"}
    assert all(count > 0 for count in arrivals.values())
    assert report.violations == ()
    # the scorer's priced_table calls hit the planner's warm caches
    assert planner.stats_snapshot()["totals"]["hits"] > 0


def test_fleet_admission_rejects_and_still_tiles():
    config = replace(
        default_fleet(servers=2, clients=8, rate=3.0, horizon=6.0),
        admission=AdmissionConfig(max_fleet_outstanding=4),
    )
    report = run_system(config)
    fleet = report.fleet
    assert fleet["rejected_fleet"] > 0
    # exact accounting: server sums + fleet rejects tile the arrivals
    assert fleet["arrived_servers"] + fleet["rejected_fleet"] == fleet["arrivals"]
    assert report.violations == () and report.clock_violations == ()


def test_heterogeneous_servers_get_scaled_planners():
    config = default_fleet(servers=2, clients=2, rate=0.5, horizon=4.0,
                           speedups=(1.0, 2.0))
    planner = PlanningEngine()
    fleet = FleetGateway(config, planner=planner)
    assert fleet.servers["server0"].planner is planner
    fast = fleet.servers["server1"].planner
    assert fast is not planner
    assert fast.mobile.default_throughput == planner.mobile.default_throughput * 2.0


def test_compare_no_policy_attaches_baseline_and_comparison():
    from repro.fleet import FaultsConfig

    config = SystemConfig(
        workload=WorkloadConfig(clients=_clients(2, 1.5, deadline=1.0), horizon=10.0),
        servers=(ServerSpec(name="gateway"),),
        faults=FaultsConfig(
            plan=FaultPlan(blackouts=(Blackout(3.0, 5.0),)),
            resilience=ResiliencePolicy(
                max_retries=1, transfer_timeout=0.25, degrade_after_failures=2,
                probe_interval=0.25, probe_bytes=16 * 1024.0,
            ),
            compare_no_policy=True,
        ),
    )
    report = run_system(config)
    assert report.baseline is not None
    assert report.baseline.baseline is None  # no recursion
    comparison = report.comparison
    assert comparison["within_deadline_policy"] == report.within_deadline
    assert comparison["within_deadline_no_policy"] == report.baseline.within_deadline
    assert comparison["degradations"] >= 1
    assert report.ok and report.baseline.ok
    # the as_dict document embeds the baseline and survives JSON
    document = json.loads(json.dumps(report.as_dict()))
    assert document["baseline"]["fleet"]["within_deadline"] == (
        comparison["within_deadline_no_policy"]
    )
