"""SystemConfig: the unified scenario surface round-trips through JSON.

The whole point of collapsing the ScenarioConfig / fault-scenario knob
split into one dataclass hierarchy is that a run is *one* document:
``SystemConfig.from_dict(json.loads(json.dumps(cfg.as_dict()))) == cfg``
must hold for every combination of blocks, including per-server fault
plans and the FaultsConfig sub-config that replaced the old
``run_fault_scenario`` arguments.
"""

import json

import pytest

from repro.faults.plan import (
    Blackout,
    ClientOutage,
    CostMisestimation,
    FaultPlan,
    RateSpike,
    TransferCorruption,
)
from repro.faults.policy import ResiliencePolicy
from repro.fleet import (
    AdmissionConfig,
    FaultsConfig,
    ObservabilityConfig,
    PlacementConfig,
    ServerSpec,
    SystemConfig,
    WorkloadConfig,
    capacity_scenario,
    default_fleet,
)
from repro.serving.scenario import default_scenario
from repro.serving.workload import ClientSpec


def _rich_plan() -> FaultPlan:
    return FaultPlan(
        seed=7,
        blackouts=(Blackout(1.0, 2.0),),
        spikes=(RateSpike(3.0, 4.0, 0.5),),
        corruption=TransferCorruption(probability=0.1, start=0.5, end=9.0),
        outages=(ClientOutage("client0", 2.0, 3.0),),
        misestimation=CostMisestimation(compute_scale=1.2, jitter=0.05),
        metadata={"scenario": "round-trip"},
    )


def _rich_config() -> SystemConfig:
    return SystemConfig(
        workload=WorkloadConfig(
            clients=(
                ClientSpec(name="client0", rate=2.0, deadline=1.5),
                ClientSpec(name="client1", process="burst", burst_size=3, period=2.0),
            ),
            horizon=12.0,
            seed=99,
        ),
        servers=(
            ServerSpec(name="edge0", bandwidth_steps=((0.0, 8.0), (5.0, 2.0))),
            ServerSpec(
                name="edge1",
                bandwidth_steps=((0.0, 4.0),),
                mobile_speedup=2.0,
                cloud_speedup=0.5,
                max_queue_depth=8,
                fault_plan=_rich_plan(),
                resilience=ResiliencePolicy(max_retries=1, transfer_timeout=0.25),
            ),
        ),
        scheme="PO",
        placement=PlacementConfig(
            policy="affinity", migration_backlog=6, migration_patience=1.0
        ),
        admission=AdmissionConfig(max_fleet_outstanding=40),
        faults=FaultsConfig(
            plan=FaultPlan(blackouts=(Blackout(2.0, 2.5),)),
            resilience=ResiliencePolicy(),
            compare_no_policy=True,
        ),
        observability=ObservabilityConfig(per_server_lanes=False, fleet_events=False),
    )


def test_rich_config_round_trips_through_json():
    config = _rich_config()
    wire = json.dumps(config.as_dict(), sort_keys=True)
    rebuilt = SystemConfig.from_dict(json.loads(wire))
    assert rebuilt == config
    # and the round-trip is a fixed point on the wire, too
    assert json.dumps(rebuilt.as_dict(), sort_keys=True) == wire


def test_builders_round_trip_and_are_json_safe():
    for config in (
        default_fleet(servers=3, clients=4, speedups=(1.0, 2.0)),
        capacity_scenario(servers=2, clients=4),
    ):
        wire = json.dumps(config.as_dict())  # raises if not JSON-safe
        assert SystemConfig.from_dict(json.loads(wire)) == config


def test_faults_config_collapses_the_old_knob_split():
    """The old run_fault_scenario options live in one sub-config now."""
    config = _rich_config()
    data = config.as_dict()["faults"]
    assert data["compare_no_policy"] is True
    assert data["plan"]["blackouts"] == [[2.0, 2.5]]
    assert data["resilience"]["max_retries"] == ResiliencePolicy().max_retries
    rebuilt = FaultsConfig.from_dict(json.loads(json.dumps(data)))
    assert rebuilt == config.faults


def test_per_server_overrides_win_over_fleet_wide_faults():
    config = _rich_config()
    edge0, edge1 = config.servers
    # edge0 has no overrides: the fleet-wide FaultsConfig applies
    assert config.fault_plan_for(edge0) is config.faults.plan
    assert config.resilience_for(edge0) is config.faults.resilience
    # edge1 carries its own plan/policy: the spec wins
    assert config.fault_plan_for(edge1) is edge1.fault_plan
    assert config.resilience_for(edge1) is edge1.resilience


def test_timeline_for_overlays_the_effective_plan():
    config = _rich_config()
    edge0, edge1 = config.servers
    # the fleet-wide blackout pins edge0's rate inside [2.0, 2.5)
    assert config.timeline_for(edge0).rate_at(2.2) < 1.0
    # edge1's own blackout window is [1.0, 2.0) instead
    assert config.timeline_for(edge1).rate_at(1.5) < 1.0
    assert config.timeline_for(edge1).rate_at(2.2) > 1.0


def test_without_resilience_strips_every_policy():
    bare = _rich_config().without_resilience()
    assert bare.faults.resilience is None
    assert bare.faults.compare_no_policy is False
    assert all(s.resilience is None for s in bare.servers)
    # fault plans stay: the baseline suffers the same faults, unprotected
    assert bare.faults.plan is not None
    assert bare.servers[1].fault_plan is not None


def test_from_scenario_matches_the_legacy_fields():
    legacy = default_scenario(clients=2, rate=1.0, horizon=10.0, deadline=2.0)
    system = SystemConfig.from_scenario(legacy, scheme="LO")
    assert system.scheme == "LO"
    assert system.workload.clients == legacy.clients
    assert system.workload.horizon == legacy.horizon
    assert system.workload.seed == legacy.seed
    (server,) = system.servers
    assert server.bandwidth_steps == legacy.bandwidth_steps
    assert server.max_queue_depth == legacy.max_queue_depth
    assert system.channel.ewma_alpha == legacy.ewma_alpha
    assert system.faults is None
    # compat mode keeps the historical single-gateway trace lanes
    assert system.observability.per_server_lanes is False
    assert system.observability.fleet_events is False


def test_validation_rejects_bad_configs():
    workload = WorkloadConfig(clients=(ClientSpec(name="c"),), horizon=5.0)
    with pytest.raises(ValueError, match="at least one server"):
        SystemConfig(workload=workload, servers=())
    with pytest.raises(ValueError, match="unique"):
        SystemConfig(
            workload=workload,
            servers=(ServerSpec(name="a"), ServerSpec(name="a")),
        )
    with pytest.raises(ValueError, match="scheme"):
        SystemConfig(workload=workload, servers=(ServerSpec(name="a"),), scheme="XX")
    with pytest.raises(ValueError, match="placement policy"):
        PlacementConfig(policy="random")
    with pytest.raises(ValueError):
        WorkloadConfig(clients=())
    with pytest.raises(ValueError):
        ServerSpec(name="")
