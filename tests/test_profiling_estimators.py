"""Profiler, regression, and lookup-table estimators."""

import pytest

from repro.net.bandwidth import TrafficShaper
from repro.net.channel import Channel
from repro.nn import zoo
from repro.profiling.lookup import LookupTable, build_lookup_table
from repro.profiling.profiler import measure_communication, profile_network
from repro.profiling.regression import CommLatencyModel, LayerLatencyModel
from repro.utils.units import mbps


@pytest.fixture(scope="module")
def records(mobile):
    nets = [zoo.alexnet(), zoo.vgg16()]
    out = []
    for net in nets:
        out.extend(profile_network(net, mobile, seed=42, noise=0.03))
    return out


def test_profile_records_cover_all_layers(mobile):
    net = zoo.alexnet()
    records = profile_network(net, mobile, seed=0)
    assert len(records) == net.num_layers
    by_id = {r.node_id for r in records}
    assert by_id == set(net.graph.node_ids)


def test_profile_noise_is_multiplicative(mobile):
    net = zoo.alexnet()
    records = profile_network(net, mobile, seed=0, noise=0.05, repeats=50)
    for record in records:
        truth = mobile.layer_time(net.node(record.node_id))
        if truth == 0:
            assert record.mean_time == 0
        else:
            assert record.mean_time == pytest.approx(truth, rel=0.1)
            assert all(s > 0 for s in record.samples)


def test_profile_zero_noise_is_exact(mobile):
    net = zoo.alexnet()
    records = profile_network(net, mobile, seed=0, noise=0.0, repeats=3)
    for record in records:
        assert record.mean_time == pytest.approx(mobile.layer_time(net.node(record.node_id)))


def test_profile_rejects_bad_args(mobile):
    net = zoo.alexnet()
    with pytest.raises(ValueError):
        profile_network(net, mobile, noise=-1)
    with pytest.raises(ValueError):
        profile_network(net, mobile, repeats=0)


def test_layer_regression_predicts_within_noise(records, mobile):
    model = LayerLatencyModel.fit(records)
    net = zoo.alexnet()
    for node in net.nodes():
        truth = mobile.layer_time(node)
        if truth == 0:
            assert model.predict(node) == 0.0
        elif node.kind in model.coefficients:
            # kinds with a dedicated fit track the truth closely
            assert model.predict(node) == pytest.approx(truth, rel=0.25, abs=1e-3)
        else:
            # rare kinds fall back to the global fit: coarse but bounded
            assert model.predict(node) == pytest.approx(truth, rel=4.0, abs=5e-3)
    total_pred = sum(model.predict(n) for n in net.nodes())
    total_true = sum(mobile.layer_time(n) for n in net.nodes())
    assert total_pred == pytest.approx(total_true, rel=0.1)


def test_layer_regression_generalizes_to_unseen_model(records, mobile):
    model = LayerLatencyModel.fit(records)  # fit on AlexNet + VGG
    net = zoo.nin()                         # predict NiN
    total_pred = sum(model.predict(n) for n in net.nodes())
    total_true = sum(mobile.layer_time(n) for n in net.nodes())
    assert total_pred == pytest.approx(total_true, rel=0.5)


def test_layer_regression_requires_records():
    with pytest.raises(ValueError):
        LayerLatencyModel.fit([])


def test_layer_regression_unfitted_predict_raises(mobile):
    net = zoo.alexnet()
    with pytest.raises(RuntimeError):
        LayerLatencyModel().predict(net.node("conv2d_1"))


def test_comm_regression_recovers_channel_parameters():
    channel = Channel(shaper=TrafficShaper(uplink_bps=mbps(10), downlink_bps=mbps(20)))
    sizes = [1e4, 5e4, 1e5, 5e5, 1e6]
    samples = measure_communication(channel, sizes, seed=7, noise=0.0)
    model = CommLatencyModel.fit(samples)
    # w0 ~ setup latency (plus the constant header term), w1 ~ 8 * overhead
    assert model.w0 == pytest.approx(channel.setup_latency, rel=0.2)
    assert model.w1 == pytest.approx(8 * channel.protocol_overhead, rel=0.05)
    # predictions match the channel across the range
    for size in (2e4, 3e5, 2e6):
        assert model.predict(size, channel.uplink_bps) == pytest.approx(
            channel.uplink_time(size), rel=0.05
        )


def test_comm_regression_extrapolates_across_bandwidth():
    channel = Channel(shaper=TrafficShaper(uplink_bps=mbps(10), downlink_bps=mbps(20)))
    model = CommLatencyModel.fit(
        measure_communication(channel, [1e4, 1e5, 1e6], seed=3, noise=0.02)
    )
    slow = Channel(shaper=TrafficShaper(uplink_bps=mbps(1.1), downlink_bps=mbps(2)))
    assert model.predict(5e5, slow.uplink_bps) == pytest.approx(
        slow.uplink_time(5e5), rel=0.1
    )


def test_comm_regression_zero_payload_is_free():
    channel = Channel(shaper=TrafficShaper(uplink_bps=mbps(10), downlink_bps=mbps(20)))
    model = CommLatencyModel.fit(measure_communication(channel, [1e4, 1e5], seed=1))
    assert model.predict(0, mbps(10)) == 0.0


def test_comm_regression_needs_two_samples():
    with pytest.raises(ValueError):
        CommLatencyModel.fit([])
    with pytest.raises(RuntimeError):
        CommLatencyModel().predict(10, 1e6)


def test_lookup_table_roundtrip(mobile):
    net = zoo.alexnet()
    table = build_lookup_table([net], mobile, seed=0, noise=0.0)
    assert table.covers(net)
    assert len(table) == net.num_layers
    predictor = table.predictor_for(net.name)
    for node in net.nodes():
        assert predictor(node) == pytest.approx(mobile.layer_time(node))


def test_lookup_table_misses_raise(mobile):
    table = LookupTable(device=mobile.name)
    with pytest.raises(KeyError, match="no lookup entry"):
        table.time("alexnet", "conv2d_1")
    with pytest.raises(ValueError):
        table.add("m", "l", -1.0)


def test_lookup_covers_is_strict(mobile):
    net = zoo.alexnet()
    table = build_lookup_table([net], mobile, seed=0)
    assert not table.covers(zoo.nin())
