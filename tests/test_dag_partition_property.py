"""Property suite: invariants that hold for *every* DAG partition.

Hypothesis drives random dyadic-grid DAG instances (via the same seed
expansion the differential oracle uses) through :func:`partition_dag`
and asserts the load-bearing guarantees:

* cut validity — every emitted plan's mobile set contains all sources
  and is downward-closed (no cloud->mobile back-edge exists);
* shared-once pricing — each plan's upload stage prices exactly the
  per-tail deduplicated crossing bytes, never the naive per-edge sum;
* wire format — the schedule survives ``to_dict -> from_dict -> to_dict``
  as a fixed point (the JSON round-trip the gateway relies on);
* determinism — the same instance always yields the same schedule;
* dominance — the true partitioner never prices worse than the Fig.-9
  duplication baseline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plans import Schedule
from repro.dag.cuts import cut_transfer_bytes, is_downward_closed
from repro.dag.partition import duplication_schedule, partition_dag
from repro.dag.topology import PathExplosionError
from tests.oracles.harness import dag_instance_from_seed

#: Property seeds live in their own range, away from the corpus scan
#: (0..) and the fuzz sweeps (1M / 2M bases).
SEEDS = st.integers(min_value=4_000_000, max_value=4_100_000)

SETTINGS = settings(max_examples=30, deadline=None)


def _partitioned(seed: int) -> tuple:
    instance = dag_instance_from_seed(seed)
    schedule = partition_dag(
        instance.dag, instance.node_cost, instance.upload_time, instance.n
    )
    return instance, schedule


@SETTINGS
@given(SEEDS)
def test_every_plan_cut_is_executable(seed):
    instance, schedule = _partitioned(seed)
    sources = set(instance.dag.sources())
    for job in schedule.jobs:
        assert job.mobile_nodes is not None
        assert sources <= job.mobile_nodes
        assert is_downward_closed(instance.dag, job.mobile_nodes)


@SETTINGS
@given(SEEDS)
def test_upload_prices_shared_tensors_once(seed):
    instance, schedule = _partitioned(seed)
    for job in schedule.jobs:
        shared_once = cut_transfer_bytes(instance.dag, job.mobile_nodes)
        per_edge = instance.dag.cut_volume(job.mobile_nodes)
        expected = instance.upload_time(shared_once) if shared_once > 0 else 0.0
        assert job.comm_time == expected
        assert shared_once <= per_edge  # dedup can only shrink the payload


@SETTINGS
@given(SEEDS)
def test_schedule_json_round_trip_is_a_fixed_point(seed):
    _, schedule = _partitioned(seed)
    encoded = schedule.to_dict()
    assert Schedule.from_dict(encoded).to_dict() == encoded


@SETTINGS
@given(SEEDS)
def test_partition_is_deterministic(seed):
    _, first = _partitioned(seed)
    _, second = _partitioned(seed)
    assert first.to_dict() == second.to_dict()


@SETTINGS
@given(SEEDS)
def test_partition_never_prices_worse_than_duplication(seed):
    instance, schedule = _partitioned(seed)
    try:
        baseline = duplication_schedule(
            instance.dag, instance.node_cost, instance.upload_time, instance.n
        )
    except (ValueError, PathExplosionError):
        return  # no Fig.-9 conversion exists to compare against
    assert schedule.makespan <= baseline.makespan + 1e-9
    assert baseline.metadata["over_shipped_bytes"] >= -1e-9
