"""Virtual-block clustering and the Fig.-9 path conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.graph import Dag
from repro.dag.topology import PathExplosionError, count_paths, parallel_blocks
from repro.dag.transform import (
    VirtualBlock,
    cluster_line_cut_points,
    collapse_clusterable_blocks,
    expand_members,
    linearize,
    should_cluster_block,
    to_independent_paths,
)
from repro.nn.zoo import branchy_dnn


# ----------------------------------------------------------------------
# cluster_line_cut_points
# ----------------------------------------------------------------------

def test_cluster_keeps_strict_running_minima():
    volumes = [10, 12, 8, 8, 5, 9, 0]
    assert cluster_line_cut_points(volumes) == [0, 2, 4, 6]


def test_cluster_always_keeps_last_position():
    assert cluster_line_cut_points([5, 6, 7]) == [0, 2]
    assert cluster_line_cut_points([3]) == [0]


def test_cluster_empty_and_negative():
    assert cluster_line_cut_points([]) == []
    with pytest.raises(ValueError):
        cluster_line_cut_points([1, -2])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0, 100), min_size=1, max_size=40))
def test_cluster_property_kept_volumes_strictly_decreasing(volumes):
    keep = cluster_line_cut_points(volumes)
    kept = [volumes[i] for i in keep]
    interior = kept[:-1] if keep[-1] == len(volumes) - 1 and (
        len(kept) > 1 and kept[-1] >= kept[-2]
    ) else kept
    # all kept positions except a forced last are strict running minima
    for a, b in zip(interior, interior[1:]):
        assert b < a
    assert keep[-1] == len(volumes) - 1  # last always present
    assert keep == sorted(set(keep))


# ----------------------------------------------------------------------
# block clustering
# ----------------------------------------------------------------------

def residual_block_dag(interior_volume: float) -> Dag:
    g = Dag(name="res")
    for v in ("in", "entry", "conv", "add", "out"):
        g.add_node(v)
    g.add_edge("in", "entry", 100)
    g.add_edge("entry", "conv", 100)
    g.add_edge("entry", "add", 100)   # bypass: entry tensor again
    g.add_edge("conv", "add", interior_volume)
    g.add_edge("add", "out", 100)
    return g


def test_residual_block_clusters():
    g = residual_block_dag(interior_volume=50)
    block = next(b for b in parallel_blocks(g) if not b.is_trivial)
    # interior cut = bypass (100) + conv tensor (50) = 150 >= entry (100)
    assert should_cluster_block(g, block)


def test_reducing_branch_block_does_not_cluster():
    """Two branches whose tensors shrink below the entry volume (Inception-like)."""
    g = Dag(name="inception-ish")
    for v in ("in", "entry", "b1", "b2", "concat", "out"):
        g.add_node(v)
    g.add_edge("in", "entry", 100)
    g.add_edge("entry", "b1", 100)
    g.add_edge("entry", "b2", 100)
    g.add_edge("b1", "concat", 30)
    g.add_edge("b2", "concat", 40)
    g.add_edge("concat", "out", 70)
    block = next(b for b in parallel_blocks(g) if not b.is_trivial)
    # best interior cut = 30 + 40 = 70 < entry 100
    assert not should_cluster_block(g, block)


def test_collapse_replaces_block_with_virtual_node():
    g = residual_block_dag(50)
    collapsed = collapse_clusterable_blocks(g)
    assert collapsed.is_line()
    virtual = [v for v in collapsed.node_ids if isinstance(collapsed.payload(v), VirtualBlock)]
    assert len(virtual) == 1
    assert set(expand_members(collapsed, virtual[0])) == {"conv", "add"}


def test_linearize_produces_line_with_decreasing_volumes(mobilenet):
    line = linearize(mobilenet.graph)
    assert line.is_line()
    order = line.line_order()
    volumes = [line.volume(a, b) for a, b in zip(order, order[1:])]
    assert all(b < a for a, b in zip(volumes, volumes[1:]))


def test_linearize_preserves_all_members(resnet):
    line = linearize(resnet.graph)
    members: list[str] = []
    for v in line.node_ids:
        members.extend(expand_members(line, v))
    assert sorted(members) == sorted(resnet.graph.node_ids)


def test_googlenet_keeps_general_structure_after_clustering(googlenet):
    collapsed = collapse_clusterable_blocks(googlenet.graph)
    assert not collapsed.is_line()  # deep Inception modules must survive


# ----------------------------------------------------------------------
# Fig.-9 conversion
# ----------------------------------------------------------------------

def test_to_independent_paths_branchy():
    net = branchy_dnn()
    converted = to_independent_paths(net.graph)
    assert converted.num_paths == count_paths(net.graph) == 6
    # duplicated graph: one chain per path, disjoint nodes
    dup = converted.duplicated
    assert len(dup.sources()) == 6
    assert len(dup.sinks()) == 6
    for path in converted.paths:
        assert path[0] == net.graph.topological_order()[0]


def test_duplicated_graph_preserves_edge_volumes():
    net = branchy_dnn()
    converted = to_independent_paths(net.graph)
    dup = converted.duplicated
    for index, path in enumerate(converted.paths):
        for tail, head in zip(path, path[1:]):
            assert dup.volume(f"p{index}:{tail}", f"p{index}:{head}") == net.graph.volume(
                tail, head
            )


def test_multiplicity_counts_duplication():
    net = branchy_dnn()
    converted = to_independent_paths(net.graph)
    source = net.graph.topological_order()[0]
    assert converted.multiplicity(source) == converted.num_paths
    # every node appears in at least one path
    covered = {v for p in converted.paths for v in p}
    assert covered == set(net.graph.node_ids)


def test_path_explosion_raises(googlenet):
    with pytest.raises(PathExplosionError, match="262144"):
        to_independent_paths(googlenet.graph, max_paths=1000)
