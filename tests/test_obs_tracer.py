"""Tracer invariants: nesting, ordering, well-formedness, NullTracer.

The hypothesis test is the load-bearing one: *any* properly bracketed
sequence of span opens/closes — arbitrary fan-out, arbitrary depth —
must yield a span set that passes ``well_formed`` and exports to
schema-valid Chrome trace JSON. Everything the exporters assume about
tracer output is pinned here, so exporter bugs and tracer bugs cannot
hide behind each other.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    NullTracer,
    Tracer,
    chrome_trace_events,
    validate_chrome_events,
    well_formed,
)

# ----------------------------------------------------------------------
# property: random open/close interleavings stay well-formed
# ----------------------------------------------------------------------

#: True opens a span; False closes the innermost open one (no-op when
#: nothing is open). Any such sequence is a valid bracketing once the
#: trailing opens are closed.
ACTIONS = st.lists(st.booleans(), max_size=60)


@given(actions=ACTIONS)
def test_random_open_close_is_well_formed(actions: list[bool]):
    tracer = Tracer()
    stack = []
    for index, open_one in enumerate(actions):
        if open_one:
            parent = stack[-1] if stack else None
            stack.append(tracer.start_span(f"s{index}", parent=parent, depth=len(stack)))
        elif stack:
            tracer.end_span(stack.pop())
    while stack:
        tracer.end_span(stack.pop())
    assert tracer.open_spans == 0
    assert well_formed(tracer.spans) == []
    events = chrome_trace_events(tracer.spans, tracer.instants)
    assert validate_chrome_events(events) == len(events)
    json.loads(json.dumps(events))  # JSON-serializable end to end


@given(actions=ACTIONS)
def test_spans_close_in_lifo_order_with_monotone_clock(actions: list[bool]):
    """A child entered after its parent never outlives it."""
    tracer = Tracer()
    stack = []
    for index, open_one in enumerate(actions):
        if open_one:
            parent = stack[-1] if stack else None
            stack.append(tracer.start_span(f"s{index}", parent=parent))
        elif stack:
            tracer.end_span(stack.pop())
    while stack:
        tracer.end_span(stack.pop())
    by_id = {span.span_id: span for span in tracer.spans}
    for span in tracer.spans:
        assert span.end is not None and span.end >= span.start
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.start <= span.start
            assert span.end <= parent.end


# ----------------------------------------------------------------------
# context-manager nesting
# ----------------------------------------------------------------------


def test_context_manager_nesting_sets_parents():
    tracer = Tracer()
    with tracer.span("outer", lane=("p", "t")) as outer:
        assert tracer.current is outer
        with tracer.span("inner") as inner:
            assert tracer.current is inner
            assert inner.parent_id == outer.span_id
            assert inner.lane == ("p", "t")  # inherited from the parent
        assert tracer.current is outer
    assert tracer.current is None
    assert [s.name for s in tracer.spans] == ["inner", "outer"]
    assert well_formed(tracer.spans) == []


def test_explicit_parent_overrides_contextvar():
    tracer = Tracer()
    with tracer.span("a") as a:
        with tracer.span("b"):
            child = tracer.start_span("c", parent=a)
            tracer.end_span(child)
    assert child.parent_id == a.span_id


def test_span_attributes_and_duration():
    tracer = Tracer()
    with tracer.span("work", model="alexnet", n=7) as span:
        pass
    assert span.attributes == {"model": "alexnet", "n": 7}
    assert span.duration >= 0


# ----------------------------------------------------------------------
# retro-recording and instants
# ----------------------------------------------------------------------


def test_record_appends_virtual_time_spans():
    tracer = Tracer()
    parent = tracer.record("request", 1.0, 5.0, lane=("req 1", "lifecycle"))
    child = tracer.record("compute", 1.5, 2.5, parent=parent)
    assert child.parent_id == parent.span_id
    assert well_formed(tracer.spans) == []


def test_record_rejects_backwards_interval():
    tracer = Tracer()
    with pytest.raises(ValueError, match="before start"):
        tracer.record("bad", 2.0, 1.0)


def test_end_span_twice_raises():
    tracer = Tracer()
    span = tracer.start_span("once")
    tracer.end_span(span)
    with pytest.raises(ValueError, match="not open"):
        tracer.end_span(span)


def test_instant_events_use_clock_or_explicit_timestamp():
    tracer = Tracer()
    stamped = tracer.instant("replan", timestamp=33.0, drift=0.4)
    clocked = tracer.instant("now")
    assert stamped.timestamp == 33.0 and stamped.attributes["drift"] == 0.4
    assert clocked.timestamp >= 0
    assert len(tracer.instants) == 2


def test_clock_is_rebased_near_zero():
    tracer = Tracer()
    span = tracer.start_span("first")
    tracer.end_span(span)
    assert 0 <= span.start < 1.0


# ----------------------------------------------------------------------
# well_formed catches the breakages exporters care about
# ----------------------------------------------------------------------


def test_well_formed_flags_open_unknown_parent_and_escape():
    tracer = Tracer()
    open_span = tracer.start_span("never-closed")
    problems = well_formed([open_span])
    assert any("never closed" in p for p in problems)

    orphan = tracer.record("orphan", 0.0, 1.0)
    orphan.parent_id = 999
    assert any("unknown parent" in p for p in well_formed([orphan]))

    parent = tracer.record("p", 0.0, 1.0)
    escapee = tracer.record("c", 0.5, 2.0, parent=parent)
    assert any("escapes parent" in p for p in well_formed([parent, escapee]))


# ----------------------------------------------------------------------
# NullTracer: same surface, zero recording
# ----------------------------------------------------------------------


def test_null_tracer_is_inert():
    tracer = NullTracer()
    assert tracer.enabled is False
    with tracer.span("anything", k=1) as span:
        inner = tracer.start_span("more")
        tracer.end_span(inner)
        tracer.record("virtual", 0.0, 1.0)
        tracer.instant("marker")
    assert span is inner  # the shared dummy span
    assert tracer.spans == () and tracer.instants == ()
    assert tracer.current is None and tracer.open_spans == 0
    assert tracer.chrome_trace() == []


def test_null_tracer_context_is_shared():
    tracer = NullTracer()
    assert tracer.span("a") is tracer.span("b")
