"""BatchingServer on the bare engine: hold, flush, and exact windows.

Drives the hold-and-batch queue directly (no gateway, no fleet) so
every flush path is exercised in isolation: immediate serve-now
launches, timer flushes armed by the first held request, size flushes
at ``max_batch``, the ``max_wait == 0`` degenerate case, and the
adaptive policy's slack decision. Completion windows are checked
against the analytic batch latency to the float.
"""

import math

import pytest

from repro.cloud import BatchingServer, CloudGpuModel
from repro.sim.engine import Engine

MODEL = CloudGpuModel(overhead_fraction=0.5)


def _collect(done: list):
    def on_done(start: float, end: float) -> None:
        done.append((start, end))

    return on_done


def test_serve_now_launches_each_request_alone():
    engine = Engine()
    server = BatchingServer(engine, model=MODEL, policy="serve_now")
    done: list = []
    server.submit("a", 0.010, _collect(done))
    server.submit("b", 0.010, _collect(done))
    engine.run()
    # two batches of one, back to back on the exclusive GPU
    assert [batch["size"] for batch in server.batch_log] == [1, 1]
    assert server.flush_reasons == {"now": 2}
    assert done[0] == (0.0, pytest.approx(0.010))
    assert done[1] == (pytest.approx(0.010), pytest.approx(0.020))


def test_timer_flush_coalesces_the_hold():
    engine = Engine()
    server = BatchingServer(
        engine, model=MODEL, max_batch=8, max_wait=0.05, policy="batch"
    )
    done: list = []
    server.submit("a", 0.010, _collect(done))
    engine.schedule(0.01, lambda: server.submit("b", 0.010, _collect(done)))
    engine.run()
    assert [batch["size"] for batch in server.batch_log] == [2]
    assert server.flush_reasons == {"timer": 1}
    # flush at the first request's max_wait, runs for the batch latency
    latency = MODEL.batch_latency([0.010, 0.010])
    assert done == [(pytest.approx(0.05), pytest.approx(0.05 + latency))] * 2
    assert latency < 0.020  # strictly better than two solo inferences


def test_size_flush_preempts_the_timer():
    engine = Engine()
    server = BatchingServer(
        engine, model=MODEL, max_batch=2, max_wait=10.0, policy="batch"
    )
    done: list = []
    server.submit("a", 0.010, _collect(done))
    server.submit("b", 0.010, _collect(done))
    server.submit("c", 0.010, _collect(done))
    engine.run()
    # first pair flushes on size at t=0; the stale timer must not
    # double-flush; "c" waits for its own timer
    assert [batch["size"] for batch in server.batch_log] == [2, 1]
    assert server.flush_reasons == {"size": 1, "timer": 1}
    assert engine.now == pytest.approx(10.0 + 0.010)


def test_zero_max_wait_flushes_synchronously():
    engine = Engine()
    server = BatchingServer(
        engine, model=MODEL, max_batch=8, max_wait=0.0, policy="batch"
    )
    done: list = []
    server.submit("a", 0.010, _collect(done))
    engine.run()
    assert [batch["size"] for batch in server.batch_log] == [1]
    assert server.flush_reasons == {"timer": 1}
    assert done == [(0.0, pytest.approx(0.010))]


def test_adaptive_holds_with_slack_and_flushes_without():
    engine = Engine()
    server = BatchingServer(
        engine, model=MODEL, max_batch=8, max_wait=0.05, policy="adaptive"
    )
    done: list = []
    # plenty of slack: worth holding for company
    server.submit("relaxed", 0.010, _collect(done), slack=math.inf)
    assert server.held == 1
    # no slack: flush the hold (including "relaxed") immediately
    server.submit("urgent", 0.010, _collect(done), slack=0.001)
    assert server.held == 0
    engine.run()
    assert [batch["size"] for batch in server.batch_log] == [2]
    assert server.flush_reasons == {"slack": 1}
    assert done[0][0] == 0.0  # launched at submit time, not at max_wait


def test_batch_log_partitions_submissions():
    engine = Engine()
    server = BatchingServer(
        engine, model=MODEL, max_batch=3, max_wait=0.02, policy="batch"
    )
    labels = [f"r{i}" for i in range(10)]
    for index, label in enumerate(labels):
        engine.schedule(
            0.005 * index, lambda lab=label: server.submit(lab, 0.010, lambda s, e: None)
        )
    engine.run()
    flattened = [label for batch in server.batch_log for label in batch["requests"]]
    assert sorted(flattened) == sorted(labels)  # exactly-once, no loss
    assert all(batch["size"] <= 3 for batch in server.batch_log)
    assert server.held == 0
    assert server.backlog_seconds == pytest.approx(0.0)


def test_queue_delay_tracks_hold_and_backlog():
    engine = Engine()
    server = BatchingServer(
        engine, model=MODEL, max_batch=8, max_wait=0.05, policy="batch"
    )
    assert server.queue_delay() == 0.0
    server.submit("a", 0.010, lambda s, e: None)
    assert server.queue_delay() == pytest.approx(0.010)  # the held request
    engine.run()
    assert server.queue_delay() == 0.0


def test_invalid_configuration_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        BatchingServer(engine, policy="bogus")
    with pytest.raises(ValueError):
        BatchingServer(engine, max_batch=0)
    with pytest.raises(ValueError):
        BatchingServer(engine, max_wait=-0.1)
    with pytest.raises(ValueError):
        BatchingServer(engine, max_wait=math.inf)
