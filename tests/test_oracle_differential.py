"""Differential fuzz: jps_line vs jps_line_fast vs the brute-force oracle.

Two layers of defense: a seeded fuzz sweep over fresh random instances
every run (``--fuzz-rounds`` controls the budget; CI's fault-matrix job
runs 200), and an exact replay of the committed corpus in
``tests/data/oracle_corpus.json`` — gap-0 instances where JPS must equal
the exhaustive optimum to the last bit (regenerate with
``python -m tests.oracles.harness``).
"""

import numpy as np
import pytest

from repro.faults.oracle import (
    TOLERANCE,
    check_instance,
    exhaustive_optimal,
    random_line_table,
)
from tests.helpers import make_table
from tests.oracles.harness import (
    MAX_JOBS,
    MAX_POSITIONS,
    check_seed,
    instance_from_seed,
    load_corpus,
)

#: Fuzz seeds live far from the corpus scan (which starts at 0), so
#: raising --fuzz-rounds never replays committed instances.
FUZZ_SEED_BASE = 1_000_000


def test_fuzz_differential(fuzz_rounds):
    """No correctness mismatch on any random instance; gap never negative."""
    gaps = []
    for i in range(fuzz_rounds):
        result = check_seed(FUZZ_SEED_BASE + i)
        assert result.mismatches == (), (
            f"seed {FUZZ_SEED_BASE + i} (n={result.n}, k={result.k}): "
            f"{result.mismatches}"
        )
        assert result.gap >= -TOLERANCE
        gaps.append(result.gap)
    # the two-cut structure is near-optimal: most instances close the gap
    assert sum(1 for g in gaps if g == 0.0) > 0


def test_committed_corpus_is_exact():
    corpus = load_corpus()
    assert len(corpus) >= 24
    for entry in corpus:
        result = check_seed(entry["seed"])
        assert result.mismatches == ()
        assert result.n == entry["n"]
        assert result.k == entry["k"]
        # gap-0 corpus: JPS, its vectorized twin, and the exhaustive
        # optimum agree bit-for-bit with the committed value
        assert result.gap == 0.0
        assert result.jps_makespan == entry["makespan"]
        assert result.jps_fast_makespan == entry["makespan"]
        assert result.oracle_makespan == entry["makespan"]


def test_instance_expansion_is_deterministic_and_bounded():
    table_a, n_a = instance_from_seed(123)
    table_b, n_b = instance_from_seed(123)
    assert n_a == n_b
    assert np.array_equal(table_a.f, table_b.f)
    assert np.array_equal(table_a.g, table_b.g)
    assert 2 <= n_a <= MAX_JOBS
    assert 2 <= table_a.k <= MAX_POSITIONS


def test_oracle_hand_computed_instance():
    """k=2: cut 0 = (0, 1), cut 1 = (0.5, 0). The optimum mixes cuts."""
    table = make_table([0.0, 0.5], [1.0, 0.0])
    result = exhaustive_optimal(table, 2)
    assert result.makespan == pytest.approx(1.0)
    assert sorted(result.assignment) == [0, 1]
    # and the full differential check agrees with JPS on it
    check = check_instance(table, 2)
    assert check.mismatches == ()
    assert check.gap == pytest.approx(0.0)


def test_oracle_single_job_matches_min_cut():
    table = make_table([0.0, 0.2, 0.6], [0.7, 0.3, 0.0])
    result = exhaustive_optimal(table, 1)
    assert result.makespan == pytest.approx(
        min(f + g for f, g in (table.stage_lengths(p) for p in range(table.k)))
    )


def test_oracle_evaluation_guard():
    table = random_line_table(0, 8)
    with pytest.raises(ValueError, match="exhaustive search exceeded"):
        exhaustive_optimal(table, 6, max_evaluations=100)


def test_oracle_position_subset():
    table = make_table([0.0, 0.2, 0.6], [0.7, 0.3, 0.0])
    full = exhaustive_optimal(table, 2)
    narrowed = exhaustive_optimal(table, 2, positions=[0, 2])
    assert narrowed.makespan >= full.makespan - TOLERANCE
    assert set(narrowed.assignment) <= {0, 2}
