"""Differential fuzz: planners vs their brute-force oracles.

Two instance families (line cost tables and true DAGs), two layers of
defense each: a seeded fuzz sweep over fresh random instances every run
(``--fuzz-rounds`` controls the budget; CI's fault-matrix job runs 200),
and an exact replay of the committed corpora in
``tests/data/oracle_corpus.json`` / ``tests/data/dag_oracle_corpus.json``
— instances where the planner must equal the exhaustive optimum to the
last bit (regenerate with ``python -m tests.oracles.harness [dag]``).

On a DAG fuzz failure the full mismatch report is also written as JSON
to the path in ``$DAG_ORACLE_REPORT`` (CI uploads it as an artifact).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.dag.oracle import (
    TOLERANCE as DAG_TOLERANCE,
    check_dag_instance,
    dag_exhaustive_optimal,
)
from repro.faults.oracle import (
    TOLERANCE,
    check_instance,
    exhaustive_optimal,
    random_line_table,
)
from tests.helpers import make_table
from tests.oracles.harness import (
    DAG_EXACT_LIMIT,
    MAX_DAG_JOBS,
    MAX_DAG_NODES,
    MAX_JOBS,
    MAX_POSITIONS,
    MIN_DAG_NODES,
    check_dag_seed,
    check_seed,
    dag_instance_from_seed,
    instance_from_seed,
    load_corpus,
    load_dag_corpus,
)

#: Fuzz seeds live far from the corpus scan (which starts at 0), so
#: raising --fuzz-rounds never replays committed instances.
FUZZ_SEED_BASE = 1_000_000
DAG_FUZZ_SEED_BASE = 2_000_000


def test_fuzz_differential(fuzz_rounds):
    """No correctness mismatch on any random instance; gap never negative."""
    gaps = []
    for i in range(fuzz_rounds):
        result = check_seed(FUZZ_SEED_BASE + i)
        assert result.mismatches == (), (
            f"seed {FUZZ_SEED_BASE + i} (n={result.n}, k={result.k}): "
            f"{result.mismatches}"
        )
        assert result.gap >= -TOLERANCE
        gaps.append(result.gap)
    # the two-cut structure is near-optimal: most instances close the gap
    assert sum(1 for g in gaps if g == 0.0) > 0


def test_committed_corpus_is_exact():
    corpus = load_corpus()
    assert len(corpus) >= 24
    for entry in corpus:
        result = check_seed(entry["seed"])
        assert result.mismatches == ()
        assert result.n == entry["n"]
        assert result.k == entry["k"]
        # gap-0 corpus: JPS, its vectorized twin, and the exhaustive
        # optimum agree bit-for-bit with the committed value
        assert result.gap == 0.0
        assert result.jps_makespan == entry["makespan"]
        assert result.jps_fast_makespan == entry["makespan"]
        assert result.oracle_makespan == entry["makespan"]


def test_instance_expansion_is_deterministic_and_bounded():
    table_a, n_a = instance_from_seed(123)
    table_b, n_b = instance_from_seed(123)
    assert n_a == n_b
    assert np.array_equal(table_a.f, table_b.f)
    assert np.array_equal(table_a.g, table_b.g)
    assert 2 <= n_a <= MAX_JOBS
    assert 2 <= table_a.k <= MAX_POSITIONS


def test_oracle_hand_computed_instance():
    """k=2: cut 0 = (0, 1), cut 1 = (0.5, 0). The optimum mixes cuts."""
    table = make_table([0.0, 0.5], [1.0, 0.0])
    result = exhaustive_optimal(table, 2)
    assert result.makespan == pytest.approx(1.0)
    assert sorted(result.assignment) == [0, 1]
    # and the full differential check agrees with JPS on it
    check = check_instance(table, 2)
    assert check.mismatches == ()
    assert check.gap == pytest.approx(0.0)


def test_oracle_single_job_matches_min_cut():
    table = make_table([0.0, 0.2, 0.6], [0.7, 0.3, 0.0])
    result = exhaustive_optimal(table, 1)
    assert result.makespan == pytest.approx(
        min(f + g for f, g in (table.stage_lengths(p) for p in range(table.k)))
    )


def test_oracle_evaluation_guard():
    table = random_line_table(0, 8)
    with pytest.raises(ValueError, match="exhaustive search exceeded"):
        exhaustive_optimal(table, 6, max_evaluations=100)


def test_oracle_position_subset():
    table = make_table([0.0, 0.2, 0.6], [0.7, 0.3, 0.0])
    full = exhaustive_optimal(table, 2)
    narrowed = exhaustive_optimal(table, 2, positions=[0, 2])
    assert narrowed.makespan >= full.makespan - TOLERANCE
    assert set(narrowed.assignment) <= {0, 2}


# --------------------------------------------------------------------------
# DAG partitioner vs the 2^m-assignment oracle vs the Fig.-9 baseline
# --------------------------------------------------------------------------


def _write_dag_report(failures: list[dict]) -> None:
    """Dump fuzz mismatches to ``$DAG_ORACLE_REPORT`` for CI artifacts."""
    path = os.environ.get("DAG_ORACLE_REPORT")
    if path and failures:
        Path(path).write_text(json.dumps(failures, indent=1, sort_keys=True) + "\n")


def test_dag_fuzz_differential(fuzz_rounds):
    """Exact match on small DAGs, never worse than duplication on any."""
    failures = []
    exact_seen = large_seen = 0
    for i in range(fuzz_rounds):
        seed = DAG_FUZZ_SEED_BASE + i
        result = check_dag_seed(seed)
        if result.exact:
            exact_seen += 1
        else:
            large_seen += 1
        if result.mismatches:
            failures.append(
                {
                    "seed": seed,
                    "nodes": result.nodes,
                    "edges": result.edges,
                    "n": result.n,
                    "exact": result.exact,
                    "partition_makespan": result.partition_makespan,
                    "duplication_makespan": result.duplication_makespan,
                    "oracle_makespan": result.oracle_makespan,
                    "mismatches": list(result.mismatches),
                }
            )
    _write_dag_report(failures)
    assert not failures, f"{len(failures)}/{fuzz_rounds} DAG instances diverged"
    # the seed recipe spans both regimes: oracle-checked and bound-checked
    assert exact_seen > 0
    if fuzz_rounds >= 20:
        assert large_seen > 0


def test_dag_committed_corpus_is_exact():
    corpus = load_dag_corpus()
    assert len(corpus) >= 24
    witnesses = 0
    for entry in corpus:
        result = check_dag_seed(entry["seed"])
        assert result.mismatches == ()
        assert result.exact  # corpus commits only oracle-checked instances
        assert result.nodes == entry["nodes"]
        assert result.edges == entry["edges"]
        assert result.n == entry["n"]
        # dyadic grid: every float sum is exact, so replay is bit-exact
        assert result.partition_makespan == entry["makespan"]
        assert result.oracle_makespan == entry["makespan"]
        assert result.duplication_makespan == entry["duplication_makespan"]
        assert result.improvement == entry["improvement"]
        if entry["branch"] and entry["improvement"] > 0.0:
            witnesses += 1
    # acceptance witness: true cut pricing strictly beats path duplication
    # on at least one committed instance with a shared (fan-out) tensor
    assert witnesses >= 1


def test_dag_instance_expansion_is_deterministic_and_bounded():
    a = dag_instance_from_seed(77)
    b = dag_instance_from_seed(77)
    assert sorted(a.dag.node_ids) == sorted(b.dag.node_ids)
    assert a.node_time == b.node_time
    assert a.seconds_per_byte == b.seconds_per_byte
    assert a.n == b.n
    assert MIN_DAG_NODES <= len(a.dag) <= MAX_DAG_NODES
    assert 2 <= a.n <= MAX_DAG_JOBS
    source = a.dag.topological_order()[0]
    assert a.node_time[source] == 0.0


def test_dag_oracle_hand_computed_diamond():
    """Fan-out diamond: the true cut ships the shared tensor once.

    a fans out to b and c (same 100-byte tensor); mobile set {a} prices
    g = max(100, 100) * spb, while the Fig.-9 duplication transform puts
    the a->b and a->c copies on separate paths and ships 200 bytes.
    """
    from repro.dag.graph import Dag
    from repro.dag.partition import duplication_schedule, partition_dag

    dag = Dag(name="diamond")
    for v in "abcd":
        dag.add_node(v)
    dag.add_edge("a", "b", volume=100.0)
    dag.add_edge("a", "c", volume=100.0)
    dag.add_edge("b", "d", volume=10.0)
    dag.add_edge("c", "d", volume=10.0)
    times = {"a": 1.0, "b": 4.0, "c": 4.0, "d": 4.0}
    upload = lambda b: b * 0.005  # noqa: E731

    oracle = dag_exhaustive_optimal(dag, times, upload, 2)
    schedule = partition_dag(dag, times.__getitem__, upload, 2, schedule="exact")
    baseline = duplication_schedule(dag, times.__getitem__, upload, 2)
    assert schedule.makespan == pytest.approx(oracle.makespan)
    # strict improvement: duplication re-ships a's tensor on both paths
    assert schedule.makespan < baseline.makespan - DAG_TOLERANCE
    assert baseline.metadata["over_shipped_bytes"] > 0


def test_dag_check_flags_large_instances_as_bounded_only():
    instance = dag_instance_from_seed(2_500_001)
    result = check_dag_instance(instance, exact_limit=3)
    assert not result.exact
    assert result.oracle_makespan is None
    assert result.ok
    assert result.partition_makespan <= result.duplication_makespan + DAG_TOLERANCE


def test_dag_exact_limit_matches_harness_default():
    assert DAG_EXACT_LIMIT == 10
