"""Golden file: the canonical blackout → degrade → recover scenario.

The policy side of :func:`repro.faults.run_fault_scenario` runs under a
tracer; its replan event log, the degrade/recover/replan instant
markers from the exported Chrome trace, and the span-structure census
must byte-match ``tests/data/golden_fault_scenario.json``. A structural
test (degrade strictly inside the blackout, recovery strictly after it)
cross-checks the same artifact against the scenario's physics, so the
golden file cannot silently drift into agreement with a broken
policy state machine. Regenerate with
``python -m tests.test_faults_golden`` after an intentional change.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from pathlib import Path

from repro.faults import default_fault_scenario, run_fault_scenario
from repro.obs import Tracer, chrome_trace_events, validate_chrome_events

GOLDEN = Path(__file__).parent / "data" / "golden_fault_scenario.json"

#: Instant events that tell the scenario's story in the trace.
MARKER_NAMES = ("gateway/degrade", "gateway/recover", "gateway/replan")


def golden_document() -> dict:
    """The pinned artifact: replan log + trace markers + span census."""
    tracer = Tracer()
    report = run_fault_scenario(default_fault_scenario(), tracer=tracer)
    events = chrome_trace_events(tracer.spans, tracer.instants)
    validate_chrome_events(events)
    span_counts: Counter = Counter()
    for event in events:
        if event["ph"] == "X":
            name = event["name"]
            if name.startswith("request "):
                name = "request"
            span_counts[name] += 1
    markers = [
        {"name": e["name"], "ts": e["ts"], "args": e.get("args", {})}
        for e in events
        if e["ph"] == "i" and e["name"] in MARKER_NAMES
    ]
    return {
        "blackout": report["config"]["fault_plan"]["blackouts"][0],
        "comparison": report["comparison"],
        "replans": report["policy"]["report"]["replans"],
        "markers": markers,
        "span_counts": dict(sorted(span_counts.items())),
    }


def test_golden_fault_scenario_matches_file():
    document = json.loads(json.dumps(golden_document(), sort_keys=True))
    assert document == json.loads(GOLDEN.read_text())


def test_golden_story_is_physically_consistent():
    """The pinned markers must obey the scenario's timeline."""
    document = json.loads(GOLDEN.read_text())
    blackout_start, blackout_end = document["blackout"]
    by_name = {}
    for marker in document["markers"]:
        by_name.setdefault(marker["name"], []).append(marker)
    degrade = by_name["gateway/degrade"][0]
    recover = by_name["gateway/recover"][0]
    # degradation is detected inside the blackout (after >= 1 timeout),
    # recovery only after the channel is back (ts is microseconds)
    assert blackout_start * 1e6 < degrade["ts"] < blackout_end * 1e6
    assert recover["ts"] > blackout_end * 1e6
    assert degrade["ts"] < recover["ts"]
    # the replan log tells the same story in the same order
    kinds = [event.get("kind") for event in document["replans"]]
    assert kinds.index("degrade") < kinds.index("recovery")
    recovery_event = document["replans"][kinds.index("recovery")]
    assert recovery_event["time"] > blackout_end
    assert recovery_event["new_bps"] is not None


def test_golden_span_structure_covers_degraded_service():
    document = json.loads(GOLDEN.read_text())
    counts = document["span_counts"]
    # every completed request contributes a lifecycle + queue span pair
    assert counts["request"] == counts["queue"] > 0
    assert counts["compute"] == counts["request"]
    # some requests were served via uplink + cloud, some degraded locally
    assert 0 < counts["transfer"] < counts["request"]
    assert counts.get("fallback", 0) > 0
    assert counts["faults/policy"] == 1


def main() -> int:
    GOLDEN.write_text(
        json.dumps(golden_document(), indent=1, sort_keys=True) + "\n"
    )
    print(f"golden fault scenario -> {GOLDEN}")
    return 0


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    sys.exit(main())
