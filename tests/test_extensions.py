"""3-stage flow shop, heterogeneous jobs, end-effect refinement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import brute_force
from repro.core.joint import jps_line
from repro.core.plans import JobPlan
from repro.core.scheduling import flow_shop_makespan
from repro.extensions.flowshop3 import (
    flow_shop3_completion_times,
    flow_shop3_makespan,
    johnson3_order,
    johnson_dominance_holds,
    schedule_jobs_3stage,
    two_stage_approximation_gap,
)
from repro.extensions.heterogeneous import ModelJobs, jps_heterogeneous
from repro.extensions.refine import refine_end_jobs


# ----------------------------------------------------------------------
# 3-stage flow shop
# ----------------------------------------------------------------------

def test_flow_shop3_hand_computed():
    stages = [(1.0, 2.0, 1.0), (2.0, 1.0, 2.0)]
    completions = flow_shop3_completion_times(stages)
    assert completions == [(1.0, 3.0, 4.0), (3.0, 4.0, 6.0)]
    assert flow_shop3_makespan(stages) == 6.0
    assert flow_shop3_makespan([]) == 0.0
    with pytest.raises(ValueError):
        flow_shop3_makespan([(1.0, -1.0, 0.0)])


def test_zero_cloud_reduces_to_two_stage():
    stages3 = [(1.0, 2.0, 0.0), (3.0, 1.0, 0.0), (2.0, 2.0, 0.0)]
    stages2 = [(f, g) for f, g, _ in stages3]
    assert flow_shop3_makespan(stages3) == pytest.approx(flow_shop_makespan(stages2))


def test_dominance_condition():
    assert johnson_dominance_holds([(5.0, 1.0, 5.0), (6.0, 2.0, 7.0)])  # min f >= max g
    assert not johnson_dominance_holds([(1.0, 5.0, 1.0), (2.0, 4.0, 2.0)])
    assert johnson_dominance_holds([])


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.5, 5.0), st.floats(0.0, 0.4), st.floats(0.5, 5.0)),
        min_size=1,
        max_size=6,
    )
)
def test_johnson3_optimal_under_dominance(stages):
    """When machine 2 is dominated, the surrogate Johnson order is optimal."""
    from itertools import permutations

    assert johnson_dominance_holds(stages)  # f >= 0.5 > 0.4 >= g
    order = johnson3_order(stages)
    achieved = flow_shop3_makespan([stages[i] for i in order])
    best = min(
        flow_shop3_makespan(list(p)) for p in permutations(stages)
    )
    assert achieved == pytest.approx(best, rel=1e-9, abs=1e-9)


def test_two_stage_gap_bounded_by_cloud_times(env):
    """On real cost tables the 2-stage reduction loses < one full cloud pass."""
    table = env.cost_table("alexnet", 5.85)
    schedule = jps_line(table, 20)
    stages = [(p.compute_time, p.comm_time, p.cloud_time) for p in schedule.jobs]
    gap = two_stage_approximation_gap(stages)
    assert 0 <= gap <= max(c for _, _, c in stages) + 1e-9
    # and it is tiny relative to the makespan (the §3.1 assumption quantified)
    assert gap < 0.02 * schedule.makespan


def test_schedule_jobs_3stage_wraps():
    plans = [
        JobPlan(job_id=0, model="m", cut_position=0, compute_time=1, comm_time=3, cloud_time=0.1),
        JobPlan(job_id=1, model="m", cut_position=1, compute_time=4, comm_time=1, cloud_time=0.1),
    ]
    schedule = schedule_jobs_3stage(plans)
    assert schedule.method == "johnson3"
    assert schedule.makespan == flow_shop3_makespan(
        [(p.compute_time, p.comm_time, p.cloud_time) for p in schedule.jobs]
    )


# ----------------------------------------------------------------------
# heterogeneous job sets
# ----------------------------------------------------------------------

def test_heterogeneous_requires_groups():
    with pytest.raises(ValueError):
        jps_heterogeneous([])


def test_heterogeneous_two_models(env):
    a = ModelJobs(table=env.cost_table("alexnet", 5.85), count=10)
    b = ModelJobs(table=env.cost_table("mobilenet-v2", 5.85), count=10)
    mixed = jps_heterogeneous([a, b])
    assert mixed.num_jobs == 20
    models = {p.model for p in mixed.jobs}
    assert len(models) == 2
    # pooling never loses to scheduling the groups back-to-back
    solo_a = jps_line(a.table, a.count).makespan
    solo_b = jps_line(b.table, b.count).makespan
    assert mixed.makespan <= solo_a + solo_b + 1e-9


def test_heterogeneous_rebalance_never_hurts(env):
    a = ModelJobs(table=env.cost_table("alexnet", 5.85), count=8)
    b = ModelJobs(table=env.cost_table("resnet18", 5.85), count=8)
    greedy = jps_heterogeneous([a, b], rebalance=False)
    balanced = jps_heterogeneous([a, b], rebalance=True)
    assert balanced.makespan <= greedy.makespan + 1e-12


def test_heterogeneous_single_group_matches_jps(env):
    table = env.cost_table("alexnet", 5.85)
    hetero = jps_heterogeneous([ModelJobs(table=table, count=12)])
    homo = jps_line(table, 12)
    assert hetero.makespan == pytest.approx(homo.makespan, rel=1e-9)


# ----------------------------------------------------------------------
# end-effect refinement
# ----------------------------------------------------------------------

def test_refine_never_hurts(alexnet_table):
    for n in (2, 4, 8):
        base = jps_line(alexnet_table, n)
        refined = refine_end_jobs(alexnet_table, base)
        assert refined.makespan <= base.makespan + 1e-12
        if refined is not base:
            assert refined.method.endswith("+refine")
            assert refined.num_jobs == n


def test_refine_closes_most_of_the_bf_gap(alexnet_table):
    n = 8
    base = jps_line(alexnet_table, n)
    refined = refine_end_jobs(alexnet_table, base)
    bf = brute_force(alexnet_table, n)
    gap_base = base.makespan - bf.makespan
    gap_refined = refined.makespan - bf.makespan
    assert gap_refined <= gap_base
    assert gap_refined <= 0.5 * gap_base + 1e-9


def test_refine_single_job_noop(alexnet_table):
    base = jps_line(alexnet_table, 1)
    assert refine_end_jobs(alexnet_table, base) is base
