"""Device cost models."""

import pytest

from repro.nn.zoo import alexnet
from repro.profiling.device import DEVICES, DeviceModel


def test_registry():
    assert set(DEVICES) == {"raspberry-pi-4", "gtx1080-server"}
    assert DEVICES["raspberry-pi-4"]().name == "raspberry-pi-4"


def test_validation():
    with pytest.raises(ValueError):
        DeviceModel(name="x", default_throughput=0)
    with pytest.raises(ValueError):
        DeviceModel(name="x", default_throughput=1e9, memory_bandwidth=-1)
    with pytest.raises(ValueError):
        DeviceModel(name="x", default_throughput=1e9, layer_overhead=-1)
    with pytest.raises(ValueError):
        DeviceModel(name="x", default_throughput=1e9, kind_throughput={"conv2d": 0})


def test_throughput_fallback():
    device = DeviceModel(name="x", default_throughput=1e9, kind_throughput={"conv2d": 2e9})
    assert device.throughput("conv2d") == 2e9
    assert device.throughput("whatever") == 1e9


def test_input_layer_is_free(mobile):
    net = alexnet()
    input_node = net.node(net.input_id)
    assert mobile.layer_time(input_node) == 0.0


def test_layer_time_positive_and_monotone_in_flops(mobile):
    net = alexnet()
    conv1 = net.node("conv2d_1")
    conv_small = net.node("conv2d_9")
    assert mobile.layer_time(conv1) > 0
    # conv1 has ~3x the FLOPs of conv3; time ordering must follow
    assert mobile.layer_time(conv1) > mobile.layer_time(conv_small) or (
        conv1.flops < conv_small.flops
    )


def test_cloud_is_orders_of_magnitude_faster(mobile, cloud):
    net = alexnet()
    mobile_total = sum(mobile.layer_time(n) for n in net.nodes())
    cloud_total = sum(cloud.layer_time(n) for n in net.nodes())
    assert mobile_total / cloud_total > 50  # the §3.1 'negligible cloud' regime


def test_overhead_dominates_tiny_layers(mobile):
    net = alexnet()
    softmax = net.node("softmax_24")
    time = mobile.layer_time(softmax)
    assert time >= mobile.layer_overhead
    assert time < 2.5 * mobile.layer_overhead  # flops are negligible here
