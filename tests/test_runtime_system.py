"""RPC, client/server, scheduler runtime, and the system facade."""

import numpy as np
import pytest

from repro.net.bandwidth import FOUR_G, WIFI
from repro.nn import zoo
from repro.runtime.messages import InferenceReply, InferenceRequest
from repro.runtime.rpc import SimulatedRpc, VirtualClock
from repro.runtime.scheduler_runtime import OnDeviceScheduler
from repro.runtime.serialization import serialize_tensor
from repro.runtime.server import CloudServer
from repro.runtime.system import OffloadingSystem


@pytest.fixture(scope="module")
def system():
    sys_ = OffloadingSystem.at_preset(FOUR_G, seed=7)
    sys_.deploy(zoo.alexnet(), zoo.mobilenet_v2())
    return sys_


# ----------------------------------------------------------------------
# messages / rpc / server
# ----------------------------------------------------------------------

def test_message_validation():
    with pytest.raises(ValueError):
        InferenceRequest(job_id=0, model="", cut_frontier=(), payload=b"")
    with pytest.raises(TypeError):
        InferenceRequest(job_id=0, model="m", cut_frontier=(), payload="text")  # type: ignore
    with pytest.raises(ValueError):
        InferenceReply(job_id=0, payload=b"", server_compute_time=-1)


def test_virtual_clock():
    clock = VirtualClock()
    assert clock.advance(1.5) == 1.5
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_server_requires_registered_model(cloud):
    server = CloudServer(device=cloud)
    request = InferenceRequest(
        job_id=0, model="ghost", cut_frontier=(),
        payload=serialize_tensor(np.zeros(3, dtype=np.float32)),
    )
    with pytest.raises(KeyError, match="not initialized"):
        server.handle(request)


def test_server_completes_remaining_layers(cloud, alexnet):
    server = CloudServer(device=cloud)
    server.register(alexnet)
    cut_node = "maxpool2d_4"
    tensor = np.zeros(alexnet.node(cut_node).output_shape, dtype=np.float32)
    request = InferenceRequest(
        job_id=1, model=alexnet.name, cut_frontier=(cut_node,),
        payload=serialize_tensor(tensor),
    )
    reply = server.handle(request)
    assert reply.job_id == 1
    assert reply.server_compute_time > 0
    assert server.requests_served == 1
    # deeper cut -> less server work
    deeper = InferenceRequest(
        job_id=2, model=alexnet.name, cut_frontier=("linear_21",),
        payload=serialize_tensor(np.zeros((4096,), dtype=np.float32)),
    )
    assert server.handle(deeper).server_compute_time < reply.server_compute_time


def test_server_rejects_unknown_frontier(cloud, alexnet):
    server = CloudServer(device=cloud)
    server.register(alexnet)
    request = InferenceRequest(
        job_id=0, model=alexnet.name, cut_frontier=("nonsense",),
        payload=serialize_tensor(np.zeros(3, dtype=np.float32)),
    )
    with pytest.raises(ValueError, match="unknown layers"):
        server.handle(request)


def test_rpc_round_trip_times(cloud, alexnet, channel_4g):
    server = CloudServer(device=cloud)
    server.register(alexnet)
    rpc = SimulatedRpc(channel=channel_4g, server=server)
    payload = serialize_tensor(np.zeros((64, 27, 27), dtype=np.float32))
    request = InferenceRequest(
        job_id=0, model=alexnet.name, cut_frontier=("maxpool2d_4",), payload=payload
    )
    reply = rpc.call(request)
    stats = rpc.call_log[-1]
    assert stats.round_trip > 0
    assert stats.communication_delay == pytest.approx(
        stats.round_trip - reply.server_compute_time
    )
    # the client-side regression target: comm delay ~ uplink + downlink times
    expected = channel_4g.uplink_time(len(payload)) + channel_4g.downlink_time(
        len(reply.payload)
    )
    assert stats.communication_delay == pytest.approx(expected, rel=1e-9)


# ----------------------------------------------------------------------
# scheduler runtime
# ----------------------------------------------------------------------

def test_scheduler_requires_calibration(mobile, alexnet):
    scheduler = OnDeviceScheduler(mobile=mobile)
    with pytest.raises(RuntimeError, match="not calibrated"):
        scheduler.plan(alexnet, 5, bandwidth_bps=5e6)


def test_scheduler_requires_lookup_coverage(mobile, alexnet, channel_4g):
    scheduler = OnDeviceScheduler(mobile=mobile)
    scheduler.calibrate([alexnet], channel_4g, seed=0)
    with pytest.raises(KeyError, match="lookup"):
        scheduler.plan(zoo.nin(), 5, bandwidth_bps=5e6)


def test_scheduler_schemes(mobile, alexnet, channel_4g):
    scheduler = OnDeviceScheduler(mobile=mobile)
    scheduler.calibrate([alexnet], channel_4g, seed=0, noise=0.01)
    results = {
        scheme: scheduler.plan(alexnet, 10, channel_4g.uplink_bps, scheme=scheme)
        for scheme in ("JPS", "PO", "LO", "CO")
    }
    assert results["JPS"].schedule.makespan <= results["PO"].schedule.makespan + 1e-9
    assert all(r.overhead_s < 0.5 for r in results.values())
    with pytest.raises(ValueError, match="unknown scheme"):
        scheduler.plan(alexnet, 10, channel_4g.uplink_bps, scheme="magic")


# ----------------------------------------------------------------------
# system facade
# ----------------------------------------------------------------------

def test_system_plan_matches_execution_closely(system):
    run = system.run("alexnet", 15, "JPS")
    assert run.plan_error < 0.10  # estimates within 10% of ground truth
    assert run.executed_makespan > 0
    assert run.result.max_stage_error < 0.25


def test_system_scheme_ordering(system):
    makespans = {s: system.run("alexnet", 15, s).executed_makespan for s in
                 ("LO", "CO", "PO", "JPS")}
    assert makespans["JPS"] <= min(makespans["LO"], makespans["PO"]) * 1.05


def test_system_shaping_changes_execution(system):
    before = system.run("mobilenet-v2", 10, "CO").executed_makespan
    system.set_uplink_mbps(1.0)
    slow = system.run("mobilenet-v2", 10, "CO").executed_makespan
    system.set_uplink_mbps(FOUR_G.uplink_bps / 1e6)
    assert slow > before * 3


def test_system_requires_deployed_model(system):
    with pytest.raises(KeyError, match="not loaded"):
        system.run("vgg16", 3)


def test_runtime_reports_payload_bytes(system):
    run = system.run("alexnet", 5, "JPS")
    offloaded = [r for r in run.result.reports if r.payload_bytes > 0]
    assert offloaded  # JPS at 4G offloads something
    for report in offloaded:
        assert report.actual_comm > 0
        assert report.planned_comm > 0


def test_system_general_structure_model(cloud, mobile):
    """The prototype executes frontier-cut plans on a general DAG."""
    from repro.nn import zoo as _zoo
    from repro.net.bandwidth import WIFI as _WIFI
    from repro.runtime.system import OffloadingSystem as _System

    sys_ = _System.at_preset(_WIFI, seed=3)
    sys_.deploy(_zoo.mini_inception(2))
    run = sys_.run("mini-inception", 8, "JPS")
    assert run.executed_makespan > 0
    assert run.plan_error < 0.2
    # some plan offloads through a frontier cut with a multi-tensor payload
    assert any(r.payload_bytes > 0 for r in run.result.reports)


def test_system_squeezenet_round_trip(cloud, mobile):
    from repro.nn import zoo as _zoo
    from repro.net.bandwidth import FOUR_G as _FOUR_G
    from repro.runtime.system import OffloadingSystem as _System

    sys_ = _System.at_preset(_FOUR_G, seed=5)
    sys_.deploy(_zoo.squeezenet())
    run = sys_.run("squeezenet", 10, "JPS")
    lo = sys_.run("squeezenet", 10, "LO")
    assert run.executed_makespan <= lo.executed_makespan * 1.05
