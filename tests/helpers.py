"""Test helpers shared across modules (importable, unlike conftest)."""

from __future__ import annotations

import numpy as np

from repro.profiling.latency import CostTable


def make_table(f, g, cloud=None, name="synthetic") -> CostTable:
    """Construct a CostTable straight from arrays (test convenience)."""
    f = np.asarray(f, dtype=float)
    g = np.asarray(g, dtype=float)
    if cloud is None:
        cloud = np.linspace(0.0, 1e-3, len(f))
    return CostTable(
        model_name=name,
        positions=tuple(f"l{i}" for i in range(len(f))),
        f=f,
        g=g,
        cloud=np.asarray(cloud, dtype=float),
    )
