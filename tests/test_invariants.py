"""Cross-cutting invariants over the whole model zoo and scheme space.

These tests sweep every (model, bandwidth) cell and check the global
contracts the rest of the library is built on — the kind of systematic
sanity net that catches a regression in one substrate through the eyes
of another.
"""

import numpy as np
import pytest

from repro.core.analysis import fractional_lower_bound
from repro.core.joint import jps_line
from repro.core.scheduling import flow_shop_makespan
from repro.experiments.runner import SCHEMES, ExperimentEnv
from repro.sim.pipeline import simulate_schedule
from repro.sim.trace import validate_against_recurrence

MODELS = ["alexnet", "vgg16", "nin", "tiny-yolov2", "mobilenet-v2",
          "resnet18", "googlenet"]
BANDWIDTHS = [1.1, 5.85, 18.88, 50.0]


@pytest.fixture(scope="module")
def sweep_env():
    return ExperimentEnv()


@pytest.mark.parametrize("model", MODELS)
def test_cost_table_invariants_everywhere(sweep_env, model):
    for bandwidth in BANDWIDTHS:
        table = sweep_env.cost_table(model, bandwidth)
        assert table.f[0] == 0.0                       # input is free
        assert table.g[-1] == 0.0                      # fully local is silent
        assert np.all(np.diff(table.f) >= 0)
        assert table.is_g_non_increasing()
        assert table.cloud[-1] < 0.05 * max(table.local_only_time, 1e-9)


@pytest.mark.parametrize("model", MODELS)
def test_scheme_dominance_everywhere(sweep_env, model):
    n = 25
    for bandwidth in BANDWIDTHS:
        makespans = {
            scheme: sweep_env.run_scheme(model, bandwidth, n, scheme).makespan
            for scheme in SCHEMES
        }
        assert makespans["JPS"] <= makespans["LO"] + 1e-9
        assert makespans["JPS"] <= makespans["CO"] + 1e-9
        assert makespans["JPS"] <= makespans["PO"] + 1e-9
        assert makespans["PO"] <= min(makespans["LO"], makespans["CO"]) + 1e-9


@pytest.mark.parametrize("model", MODELS)
def test_jps_within_lp_bound_factor(sweep_env, model):
    n = 50
    for bandwidth in BANDWIDTHS:
        table = sweep_env.cost_table(model, bandwidth)
        bound = fractional_lower_bound(table, n)
        jps = jps_line(table, n).makespan
        assert jps >= bound - 1e-9
        # the adjacent-pair JPS can drift on drastic tables (VGG-16's first
        # block holds most of the compute); the all-pairs split stays tight
        pair = jps_line(table, n, split="pair").makespan
        assert bound - 1e-9 <= pair <= jps + 1e-9
        assert pair <= bound * 1.25


@pytest.mark.parametrize("model", MODELS)
def test_des_matches_recurrence_everywhere(sweep_env, model):
    schedule = sweep_env.run_scheme(model, 5.85, 10, "JPS")
    result = simulate_schedule(schedule)
    validate_against_recurrence(result, schedule)


def test_jps_makespan_monotone_in_bandwidth(sweep_env):
    """More bandwidth never hurts JPS (it can always ignore it)."""
    n = 30
    for model in ("alexnet", "resnet18", "googlenet"):
        values = [
            sweep_env.run_scheme(model, bw, n, "JPS").makespan
            for bw in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
        ]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-9


def test_jps_makespan_superadditive_in_n(sweep_env):
    """Makespan grows with n, and per-job latency never grows."""
    table = sweep_env.cost_table("alexnet", 10.0)
    previous_makespan = 0.0
    previous_rate = float("inf")
    for n in (1, 2, 5, 10, 25, 50, 100):
        schedule = jps_line(table, n)
        assert schedule.makespan >= previous_makespan - 1e-12
        rate = schedule.makespan / n
        assert rate <= previous_rate + 1e-9
        previous_makespan, previous_rate = schedule.makespan, rate


def test_resource_busy_intervals_never_overlap(sweep_env):
    schedule = sweep_env.run_scheme("alexnet", 10.0, 15, "JPS")
    result = simulate_schedule(schedule)
    for resource in (result.mobile, result.uplink):
        intervals = sorted((b.start, b.end) for b in resource.busy_log)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-12
    # conservation: total busy time equals the stage sums
    assert result.mobile.total_busy_time == pytest.approx(
        sum(p.compute_time for p in schedule.jobs)
    )
    assert result.uplink.total_busy_time == pytest.approx(
        sum(p.comm_time for p in schedule.jobs)
    )


def test_schedule_job_ids_are_a_permutation(sweep_env):
    for scheme in SCHEMES:
        schedule = sweep_env.run_scheme("mobilenet-v2", 5.85, 12, scheme)
        ids = sorted(p.job_id for p in schedule.jobs)
        assert ids == list(range(12))
        assert schedule.makespan == pytest.approx(
            flow_shop_makespan([p.stages for p in schedule.jobs])
        )
