"""Alg. 1 (Johnson's rule), flow-shop recurrence, Prop. 4.1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plans import JobPlan
from repro.core.scheduling import (
    best_order_brute_force,
    flow_shop_completion_times,
    flow_shop_makespan,
    johnson_order,
    proposition_4_1_makespan,
    schedule_jobs,
)

stage = st.tuples(st.floats(0.0, 10.0), st.floats(0.0, 10.0))


def johnson_makespan(stages):
    order = johnson_order(stages)
    return flow_shop_makespan([stages[i] for i in order])


# ----------------------------------------------------------------------
# the go-through example of Fig. 2
# ----------------------------------------------------------------------

def test_fig2_example_heterogeneous_cuts_win():
    """Two 3-layer DNNs; cuts after l1 -> (4, 6), after l2 -> (7, 2).

    Homogeneous partitions give makespan 16, the mixed partition 13 —
    the paper's motivating example.
    """
    both_l1 = johnson_makespan([(4, 6), (4, 6)])
    both_l2 = johnson_makespan([(7, 2), (7, 2)])
    mixed = johnson_makespan([(4, 6), (7, 2)])
    assert both_l1 == 16
    assert both_l2 == 16
    assert mixed == 13


def test_fig2_example_flips_when_compute_changes():
    """Shrinking the l2 compute time 7 -> 5 makes a homogeneous partition
    optimal again (the paper's point: the best structure flips with costs)."""
    both_l1 = johnson_makespan([(4, 6), (4, 6)])
    both_l2 = johnson_makespan([(5, 2), (5, 2)])
    mixed = johnson_makespan([(4, 6), (5, 2)])
    assert both_l1 == 16
    assert both_l2 == 12
    assert mixed == 12
    # a homogeneous partition now matches the best mixed one
    assert min(both_l1, both_l2) <= mixed


# ----------------------------------------------------------------------
# recurrence + ordering
# ----------------------------------------------------------------------

def test_recurrence_hand_computed():
    stages = [(1, 10), (8, 2)]
    completions = flow_shop_completion_times(stages)
    assert completions == [(1, 11), (9, 13)]
    assert flow_shop_makespan(stages) == 13


def test_recurrence_rejects_negative():
    with pytest.raises(ValueError):
        flow_shop_makespan([(1, -1)])


def test_empty_schedule():
    assert flow_shop_makespan([]) == 0.0
    assert proposition_4_1_makespan([]) == 0.0


def test_johnson_order_splits_and_sorts():
    stages = [(5, 1), (1, 5), (2, 3), (4, 2)]
    order = johnson_order(stages)
    # S1 = {1 (f=1), 2 (f=2)} ascending f; S2 = {3 (g=2), 0 (g=1)} descending g
    assert order == [1, 2, 3, 0]


def test_johnson_order_deterministic_ties():
    stages = [(1, 2), (1, 2), (1, 2)]
    assert johnson_order(stages) == [0, 1, 2]


@settings(max_examples=200, deadline=None)
@given(st.lists(stage, min_size=1, max_size=7))
def test_johnson_is_optimal(stages):
    """Johnson's rule equals the best of all n! orders (2-machine flow shop)."""
    assert johnson_makespan(stages) == pytest.approx(
        best_order_brute_force(stages), rel=1e-12, abs=1e-12
    )


@settings(max_examples=200, deadline=None)
@given(
    f_a=st.floats(0.0, 5.0),
    surplus_a=st.floats(0.001, 5.0),
    g_b=st.floats(0.0, 5.0),
    surplus_b=st.floats(0.0, 5.0),
    n_a=st.integers(0, 12),
    n_b=st.integers(0, 12),
)
def test_proposition_4_1_exact_for_two_type_sets(f_a, surplus_a, g_b, surplus_b, n_a, n_b):
    """Prop. 4.1 equals the exact recurrence on Theorem-5.3-style job sets
    (one communication-heavy type, one computation-heavy type)."""
    if n_a + n_b == 0:
        return
    type_a = (f_a, f_a + surplus_a)       # f < g
    type_b = (g_b + surplus_b, g_b)       # f >= g
    stages = [type_a] * n_a + [type_b] * n_b
    order = johnson_order(stages)
    ordered = [stages[i] for i in order]
    assert proposition_4_1_makespan(ordered) == pytest.approx(
        flow_shop_makespan(ordered), rel=1e-9, abs=1e-9
    )


def test_proposition_4_1_not_exact_in_general():
    """The documented three-type counterexample: the formula under-reports."""
    ordered = [(0.1, 0.2), (1.0, 1.1), (0.9, 0.05)]
    assert johnson_order(ordered) == [0, 1, 2]  # already Johnson-ordered
    assert proposition_4_1_makespan(ordered) == pytest.approx(2.05)
    assert flow_shop_makespan(ordered) == pytest.approx(2.25)


@settings(max_examples=100, deadline=None)
@given(st.lists(stage, min_size=1, max_size=20))
def test_proposition_4_1_lower_bounds_any_order(stages):
    """For arbitrary (non-Johnson) orders the formula is a lower bound."""
    assert proposition_4_1_makespan(stages) <= flow_shop_makespan(stages) + 1e-9


@settings(max_examples=100, deadline=None)
@given(st.lists(stage, min_size=1, max_size=20))
def test_makespan_lower_bounds(stages):
    """Makespan >= max(total f + last g, first f + total g)."""
    order = johnson_order(stages)
    ordered = [stages[i] for i in order]
    makespan = flow_shop_makespan(ordered)
    total_f = sum(s[0] for s in ordered)
    total_g = sum(s[1] for s in ordered)
    assert makespan >= total_f + ordered[-1][1] - 1e-9
    assert makespan >= ordered[0][0] + total_g - 1e-9


def test_schedule_jobs_wraps_plans():
    plans = [
        JobPlan(job_id=0, model="m", cut_position=1, compute_time=5, comm_time=1),
        JobPlan(job_id=1, model="m", cut_position=0, compute_time=1, comm_time=5),
    ]
    schedule = schedule_jobs(plans)
    assert schedule.num_jobs == 2
    assert schedule.jobs[0].job_id == 1  # communication-heavy first
    # order (1,5) then (5,1): c1 = 1, 6; c2 = 6, max(6,6)+1 = 7
    assert schedule.makespan == 7
    assert schedule.metadata["s1_size"] == 1
    assert schedule.cut_histogram() == {0: 1, 1: 1}
    assert schedule.average_completion == pytest.approx(3.5)


def test_brute_force_order_cap():
    with pytest.raises(ValueError, match="factorial"):
        best_order_brute_force([(1.0, 1.0)] * 10)


# ----------------------------------------------------------------------
# empty- and single-job guards
# ----------------------------------------------------------------------

def test_completion_times_empty_sequence():
    assert flow_shop_completion_times([]) == []
    assert flow_shop_makespan([]) == 0.0


def test_completion_times_single_job():
    """One job trivially pipelines: C1 = f, C2 = f + g."""
    assert flow_shop_completion_times([(2.0, 3.0)]) == [(2.0, 5.0)]
    assert flow_shop_makespan([(2.0, 3.0)]) == 5.0
    assert flow_shop_completion_times([(0.0, 0.0)]) == [(0.0, 0.0)]


def test_proposition_4_1_empty_and_single_guards():
    assert proposition_4_1_makespan([]) == 0.0
    # a single job has no overlap to account for: exactly f + g
    assert proposition_4_1_makespan([(2.0, 3.0)]) == 5.0
    assert proposition_4_1_makespan([(4.0, 0.0)]) == flow_shop_makespan([(4.0, 0.0)])


@settings(max_examples=100, deadline=None)
@given(stage)
def test_proposition_4_1_single_job_matches_recurrence(pair):
    assert proposition_4_1_makespan([pair]) == flow_shop_makespan([pair])
