"""Deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, make_rng, spawn


def test_default_seed_is_stable():
    a = make_rng(None).random(4)
    b = make_rng(DEFAULT_SEED).random(4)
    assert np.allclose(a, b)


def test_integer_seed_reproducible():
    assert np.allclose(make_rng(7).random(8), make_rng(7).random(8))


def test_generator_passthrough():
    rng = np.random.default_rng(1)
    assert make_rng(rng) is rng


def test_spawn_children_are_independent():
    children = spawn(make_rng(3), 3)
    draws = [c.random(16) for c in children]
    assert not np.allclose(draws[0], draws[1])
    assert not np.allclose(draws[1], draws[2])


def test_spawn_is_deterministic():
    a = [c.random(4) for c in spawn(make_rng(5), 2)]
    b = [c.random(4) for c in spawn(make_rng(5), 2)]
    for x, y in zip(a, b):
        assert np.allclose(x, y)


def test_spawn_rejects_negative_count():
    with pytest.raises(ValueError):
        spawn(make_rng(0), -1)


def test_spawn_zero_children():
    assert spawn(make_rng(0), 0) == []
