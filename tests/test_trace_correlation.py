"""End-to-end request correlation: one request, one trace tree.

A traced run of the contended shared-GPU acceptance scenario must hand
back a *single well-formed tree per request* spanning the whole hop
sequence — placement decision, gateway queue wait, uplink transfer,
and the cloud stage carrying its batch window — with co-batched
request ids linked both ways (request → batch members, batch → member
child spans). This is the PR's tentpole acceptance criterion, locked
against the one scenario where every hop exists: fleet placement in
front, a shared hold-and-batch GPU behind.
"""

import pytest

from repro.engine import PlanningEngine
from repro.fleet import run_system
from repro.fleet.config import slo_acceptance_scenario
from repro.obs.slo import SLO_LANE
from repro.obs.tracer import Tracer, well_formed


@pytest.fixture(scope="module")
def traced_run():
    tracer = Tracer()
    report = run_system(
        slo_acceptance_scenario("contended"),
        planner=PlanningEngine(),
        tracer=tracer,
    )
    return report, tracer


def _children_of(tracer, span):
    return [s for s in tracer.spans if s.parent_id == span.span_id]


def _request_trees(tracer):
    """(request parent span, {stage name: child span}) pairs."""
    return [
        (span, {child.name: child for child in _children_of(tracer, span)})
        for span in tracer.spans
        if span.name.startswith("request ") and span.parent_id is None
    ]


def test_trace_is_well_formed(traced_run):
    report, tracer = traced_run
    assert report.ok
    assert well_formed(tracer.spans) == []


def test_one_tree_per_request_spanning_every_hop(traced_run):
    report, tracer = traced_run
    trees = _request_trees(tracer)
    assert len(trees) == report.served
    full = [
        (parent, stages)
        for parent, stages in trees
        if {"placement", "queue", "transfer", "cloud"} <= set(stages)
    ]
    assert full, "no request offloaded through the whole hop sequence"
    for parent, stages in full:
        # children nest inside the request window, in causal order
        assert stages["placement"].start == stages["placement"].end
        assert parent.start <= stages["queue"].start
        assert stages["queue"].end <= stages["transfer"].start
        assert stages["transfer"].end <= stages["cloud"].start
        assert stages["cloud"].end <= parent.end
        decision = stages["placement"].attributes
        assert decision["server"] in report.servers
        assert decision["policy"] == "least_loaded"


def test_cloud_stage_links_its_batch_and_peers(traced_run):
    report, tracer = traced_run
    trees = _request_trees(tracer)
    batch_spans = {
        span.attributes["batch"]: span
        for span in tracer.spans
        if span.lane is not None and span.lane[1] == "batches"
    }
    assert batch_spans
    linked = 0
    for parent, stages in trees:
        cloud = stages.get("cloud")
        if cloud is None or "batch" not in cloud.attributes:
            continue
        linked += 1
        rid = parent.attributes["request_id"]
        label = f"req{rid}/cloud"
        batch = batch_spans[cloud.attributes["batch"]]
        # the request names its peers; the batch names the request
        assert label in cloud.attributes["co_batched"]
        assert cloud.attributes["co_batched"] == batch.attributes["requests"]
        assert cloud.attributes["batch_size"] == batch.attributes["size"]
        assert cloud.attributes["flush_reason"] == batch.attributes["reason"]
        # the cloud stage window IS the batch window
        assert (cloud.start, cloud.end) == (batch.start, batch.end)
    assert linked > 0
    # every batch opens into one member child span per request it carried
    for index, batch in batch_spans.items():
        members = _children_of(tracer, batch)
        assert len(members) == batch.attributes["size"]
        assert {m.name for m in members} == set(batch.attributes["requests"])
        assert all(m.attributes["batch"] == index for m in members)


def test_hold_spans_carry_flush_reason(traced_run):
    _, tracer = traced_run
    holds = [
        span
        for span in tracer.spans
        if span.lane is not None and span.lane[1] == "hold"
    ]
    assert holds
    for span in holds:
        assert span.attributes["reason"] in ("size", "timer", "slack", "now")
        assert span.attributes["size"] >= 1
        assert span.end >= span.start


def test_slo_instants_and_gpu_gauges_surface(traced_run):
    report, tracer = traced_run
    fires = [i for i in tracer.instants if i.name == "slo/fire"]
    assert fires and all(i.lane == SLO_LANE for i in fires)
    places = [i for i in tracer.instants if i.name == "fleet/place"]
    assert len(places) == report.arrivals
    gauges = report.timeline["metrics"]["gauges"]
    busy = {k: v for k, v in gauges.items() if k.startswith("gpu_busy_fraction")}
    assert busy
    assert all(0.0 <= v <= 1.0 for v in busy.values())
