"""Failure injection: jitter, stragglers, mid-burst bandwidth changes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baselines import partition_only
from repro.core.joint import jps_line
from repro.sim.perturb import (
    executed_makespan,
    perturbed_schedule,
    straggler_schedule,
    two_phase_makespan,
)


def test_no_perturbation_is_identity(alexnet_table):
    schedule = jps_line(alexnet_table, 10)
    same = perturbed_schedule(schedule, seed=0)
    assert same.makespan == pytest.approx(schedule.makespan)
    for a, b in zip(schedule.jobs, same.jobs):
        assert a.stages == b.stages


def test_bandwidth_scale_inflates_comm(alexnet_table):
    schedule = jps_line(alexnet_table, 10)
    degraded = perturbed_schedule(schedule, seed=0, bandwidth_scale=0.5)
    for a, b in zip(schedule.jobs, degraded.jobs):
        assert b.comm_time == pytest.approx(2 * a.comm_time)
        assert b.compute_time == a.compute_time
    assert degraded.makespan > schedule.makespan


def test_perturbation_is_deterministic(alexnet_table):
    schedule = jps_line(alexnet_table, 6)
    a = perturbed_schedule(schedule, seed=3, compute_jitter=0.2, comm_jitter=0.2)
    b = perturbed_schedule(schedule, seed=3, compute_jitter=0.2, comm_jitter=0.2)
    assert a.makespan == b.makespan


def test_perturbation_validation(alexnet_table):
    schedule = jps_line(alexnet_table, 4)
    with pytest.raises(ValueError):
        perturbed_schedule(schedule, compute_jitter=-1)
    with pytest.raises(ValueError):
        perturbed_schedule(schedule, bandwidth_scale=0)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(jitter=st.floats(0.0, 0.3), scale=st.floats(0.5, 2.0), seed=st.integers(0, 99))
def test_perturbed_makespan_consistent(alexnet_table, jitter, scale, seed):
    # the fixture is read-only here, so sharing it across examples is safe
    schedule = jps_line(alexnet_table, 8)
    shaken = perturbed_schedule(
        schedule, seed=seed, compute_jitter=jitter, comm_jitter=jitter,
        bandwidth_scale=scale,
    )
    assert shaken.makespan == pytest.approx(executed_makespan(shaken))
    assert all(p.compute_time >= 0 and p.comm_time >= 0 for p in shaken.jobs)


def test_jitter_streams_are_independent(alexnet_table):
    """Enabling comm jitter must not shift the compute draws (and vice
    versa): the two families draw from independent named streams."""
    schedule = jps_line(alexnet_table, 8)
    compute_only = perturbed_schedule(schedule, seed=7, compute_jitter=0.2)
    both = perturbed_schedule(
        schedule, seed=7, compute_jitter=0.2, comm_jitter=0.3
    )
    for a, b in zip(compute_only.jobs, both.jobs):
        assert a.compute_time == b.compute_time
    comm_only = perturbed_schedule(schedule, seed=7, comm_jitter=0.3)
    for a, b in zip(comm_only.jobs, both.jobs):
        assert a.comm_time == b.comm_time


def test_generator_seed_also_splits_streams(alexnet_table):
    import numpy as np

    schedule = jps_line(alexnet_table, 6)
    a = perturbed_schedule(
        schedule, seed=np.random.default_rng(5), compute_jitter=0.2
    )
    b = perturbed_schedule(
        schedule, seed=np.random.default_rng(5), compute_jitter=0.2, comm_jitter=0.3
    )
    for x, y in zip(a.jobs, b.jobs):
        assert x.compute_time == y.compute_time


def test_empty_schedule_guards():
    from repro.core.plans import Schedule

    empty = Schedule(jobs=(), makespan=0.0, method="JPS")
    shaken = perturbed_schedule(empty, seed=1, compute_jitter=0.5)
    assert shaken.jobs == ()
    assert shaken.makespan == 0.0
    assert shaken.method.endswith("/perturbed")
    with pytest.raises(ValueError, match="empty schedule"):
        straggler_schedule(empty, job_index=0, slowdown=2.0)


def test_straggler_inflates_makespan(alexnet_table):
    schedule = jps_line(alexnet_table, 8)
    slow = straggler_schedule(schedule, job_index=3, slowdown=5.0)
    assert slow.makespan >= schedule.makespan
    assert slow.jobs[3].compute_time == pytest.approx(
        5.0 * schedule.jobs[3].compute_time
    )
    with pytest.raises(IndexError):
        straggler_schedule(schedule, job_index=99, slowdown=2.0)
    with pytest.raises(ValueError):
        straggler_schedule(schedule, job_index=0, slowdown=0.0)


def test_jps_degrades_gracefully_under_link_loss(env):
    """With the link halved mid-flight, committed JPS still beats committed PO."""
    table = env.cost_table("alexnet", 10.0)
    jps = jps_line(table, 30)
    po = partition_only(table, 30)
    jps_degraded = perturbed_schedule(jps, seed=1, bandwidth_scale=0.5)
    po_degraded = perturbed_schedule(po, seed=1, bandwidth_scale=0.5)
    assert jps_degraded.makespan <= po_degraded.makespan + 1e-9


def test_two_phase_adaptive_never_worse(env):
    before = env.cost_table("alexnet", 18.88)
    after = env.cost_table("alexnet", 2.0)
    oblivious, adaptive = two_phase_makespan(before, after, n=30, switch_after=10)
    assert adaptive <= oblivious + 1e-9
    # the drop is severe enough that replanning visibly helps
    assert adaptive < oblivious * 0.99


def test_two_phase_no_remaining_jobs(env):
    table = env.cost_table("alexnet", 10.0)
    oblivious, adaptive = two_phase_makespan(table, table, n=5, switch_after=5)
    assert oblivious == pytest.approx(adaptive)


def test_two_phase_validation(env):
    a = env.cost_table("alexnet", 10.0)
    b = env.cost_table("resnet18", 10.0)
    with pytest.raises(ValueError, match="same cut positions"):
        two_phase_makespan(a, b, n=4, switch_after=2)
    with pytest.raises(ValueError):
        two_phase_makespan(a, a, n=4, switch_after=9)
