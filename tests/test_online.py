"""Online (release-time) scheduling extension."""

import pytest

from repro.core.joint import jps_line
from repro.extensions.online import (
    OnlineJpsScheduler,
    ReleasedJob,
    clairvoyant_makespan,
    flow_shop_makespan_with_releases,
    offline_lower_bound,
)
from repro.core.plans import JobPlan


def _job(f: float, g: float, release: float, job_id: int = 0) -> ReleasedJob:
    return ReleasedJob(
        plan=JobPlan(job_id=job_id, model="m", cut_position=0,
                     compute_time=f, comm_time=g),
        release=release,
    )


def test_release_recurrence_hand_computed():
    jobs = [_job(1, 2, 0.0), _job(1, 1, 5.0)]
    # c1: 1 then max(1,5)+1=6; c2: 3 then max(3,6)+1=7
    assert flow_shop_makespan_with_releases(jobs) == pytest.approx(7.0)


def test_zero_releases_match_offline(alexnet_table):
    schedule = jps_line(alexnet_table, 8)
    jobs = [ReleasedJob(plan=p, release=0.0) for p in schedule.jobs]
    assert flow_shop_makespan_with_releases(jobs) == pytest.approx(schedule.makespan)


def test_release_validation():
    with pytest.raises(ValueError):
        _job(1, 1, -0.5)


def test_scheduler_round_robins_the_jps_mix(alexnet_table):
    scheduler = OnlineJpsScheduler(alexnet_table, nominal_burst=8)
    releases = [0.0] * 8
    jobs = scheduler.assign_cuts(releases)
    positions = {j.plan.cut_position for j in jobs}
    assert 1 <= len(positions) <= 2  # the two-type mix


def test_dispatch_with_zero_releases_matches_johnson(alexnet_table):
    scheduler = OnlineJpsScheduler(alexnet_table, nominal_burst=8)
    jobs = scheduler.assign_cuts([0.0] * 8)
    _, online = scheduler.dispatch(jobs)
    offline = clairvoyant_makespan(jobs)
    assert online == pytest.approx(offline)


def test_dispatch_respects_releases(alexnet_table):
    scheduler = OnlineJpsScheduler(alexnet_table, nominal_burst=4)
    interval = 0.05
    jobs = scheduler.assign_cuts([i * interval for i in range(12)])
    order, makespan = scheduler.dispatch(jobs)
    assert len(order) == 12
    # no job starts before its release: replay the recurrence
    assert makespan == pytest.approx(flow_shop_makespan_with_releases(order))
    # and the last release is a trivial lower bound
    assert makespan >= 11 * interval


def test_online_never_beats_the_lower_bound(alexnet_table):
    scheduler = OnlineJpsScheduler(alexnet_table, nominal_burst=6)
    for interval in (0.0, 0.02, 0.2):
        jobs = scheduler.assign_cuts([i * interval for i in range(10)])
        _, online = scheduler.dispatch(jobs)
        bound = offline_lower_bound(jobs)
        assert online >= bound - 1e-9
        # the dispatcher stays near the offline relaxation at any density
        assert online <= bound * 1.6


def test_online_can_beat_fixed_johnson_order(alexnet_table):
    """The documented effect: a fixed Johnson order can idle the CPU
    waiting for a late communication-heavy job; the dispatcher doesn't."""
    scheduler = OnlineJpsScheduler(alexnet_table, nominal_burst=6)
    jobs = scheduler.assign_cuts([i * 0.02 for i in range(10)])
    _, online = scheduler.dispatch(jobs)
    assert online <= clairvoyant_makespan(jobs) + 1e-9


def test_nominal_burst_validation(alexnet_table):
    with pytest.raises(ValueError):
        OnlineJpsScheduler(alexnet_table, nominal_burst=0)


def test_cut_mix_is_exposed_and_cyclic(alexnet_table):
    scheduler = OnlineJpsScheduler(alexnet_table, nominal_burst=6)
    mix = scheduler.cut_mix
    assert isinstance(mix, tuple) and len(mix) >= 1
    assert all(0 <= cut < alexnet_table.k for cut in mix)
    # cut_for walks the mix round-robin, wrapping at its length
    for i in range(2 * len(mix)):
        assert scheduler.cut_for(i) == mix[i % len(mix)]
    # assign_cuts agrees with the exposed rotation
    jobs = scheduler.assign_cuts([0.0] * 5)
    assert [j.plan.cut_position for j in jobs] == [scheduler.cut_for(i) for i in range(5)]
