"""ASCII plot renderer."""

import pytest

from repro.experiments.ascii_plot import line_plot


def test_basic_plot_shape():
    art = line_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=6, title="T")
    lines = art.splitlines()
    assert lines[0] == "T"
    assert len(lines) == 1 + 6 + 3  # title + grid + axis + labels + legend
    assert "o=a" in lines[-1]


def test_plot_positions_extremes():
    art = line_plot([0, 10], {"s": [0.0, 100.0]}, width=11, height=5)
    lines = art.splitlines()
    # min value at bottom-left, max at top-right
    assert lines[0].rstrip().endswith("o|")
    assert "o" in lines[4]


def test_multiple_series_get_distinct_glyphs():
    art = line_plot([1, 2], {"a": [1, 2], "b": [2, 1]}, width=10, height=4)
    assert "o=a" in art and "x=b" in art


def test_log_scale():
    art = line_plot([1, 2, 3], {"a": [1, 10, 100]}, log_y=True, width=10, height=7)
    assert "(log y)" in art
    # log spacing: the three decades land on three distinct grid rows
    grid_rows = [line for line in art.splitlines() if "|" in line]
    rows_with_glyph = [i for i, line in enumerate(grid_rows) if "o" in line]
    assert len(rows_with_glyph) == 3


def test_log_scale_rejects_non_positive():
    with pytest.raises(ValueError, match="non-positive"):
        line_plot([1, 2], {"a": [0.0, 1.0]}, log_y=True)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="length"):
        line_plot([1, 2], {"a": [1.0]})


def test_empty_rejected():
    with pytest.raises(ValueError):
        line_plot([], {})


def test_constant_series_renders():
    art = line_plot([1, 2, 3], {"flat": [5.0, 5.0, 5.0]}, width=12, height=4)
    assert "o" in art


def test_fig13_style_usage(env):
    """Render an actual Fig. 13 sweep without blowing up."""
    from repro.experiments import fig13

    curves = fig13.run(env, models=["alexnet"], bandwidths_mbps=[1, 10, 40], n=10)
    curve = curves[0]
    art = line_plot(
        curve.bandwidths_mbps,
        {s: [v * 1e3 for v in vs] for s, vs in curve.latency_s.items()},
        log_y=True,
        title="Fig 13 (ascii)",
    )
    assert "LO" in art and "JPS" in art