"""Time-varying bandwidth: closed-form transfers and trace-driven DES."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.joint import jps_line
from repro.net.timeline import BandwidthTimeline
from repro.sim.pipeline import simulate_schedule, simulate_schedule_on_timeline
from repro.utils.units import mbps


def two_step() -> BandwidthTimeline:
    """8 Mbps for the first second, then 4 Mbps."""
    return BandwidthTimeline(times=(0.0, 1.0), rates_bps=(8e6, 4e6))


# ----------------------------------------------------------------------
# the closed-form transfer solver
# ----------------------------------------------------------------------

def test_validation():
    with pytest.raises(ValueError, match="start at 0"):
        BandwidthTimeline(times=(1.0,), rates_bps=(1e6,))
    with pytest.raises(ValueError, match="equal lengths"):
        BandwidthTimeline(times=(0.0, 1.0), rates_bps=(1e6,))
    with pytest.raises(ValueError, match="strictly increasing"):
        BandwidthTimeline(times=(0.0, 0.0), rates_bps=(1e6, 2e6))
    with pytest.raises(ValueError):
        BandwidthTimeline(times=(0.0,), rates_bps=(0.0,))


def test_rate_at():
    tl = two_step()
    assert tl.rate_at(0.0) == 8e6
    assert tl.rate_at(0.999) == 8e6
    assert tl.rate_at(1.0) == 4e6
    assert tl.rate_at(100.0) == 4e6


def test_constant_matches_simple_division():
    tl = BandwidthTimeline.constant(mbps(8))
    # 1 MB over 8 Mbps = 1 s
    assert tl.transfer_end(0.0, 1e6) == pytest.approx(1.0)
    assert tl.transfer_end(5.0, 1e6) == pytest.approx(6.0)


def test_transfer_spanning_a_rate_change():
    tl = two_step()
    # 1.5 MB: first 1 s moves 8 Mb (1 MB), remaining 0.5 MB at 4 Mbps -> 1 s
    assert tl.transfer_end(0.0, 1.5e6) == pytest.approx(2.0)
    # started entirely in the slow regime
    assert tl.transfer_end(2.0, 0.5e6) == pytest.approx(3.0)


def test_zero_payload_free():
    assert two_step().transfer_end(3.0, 0.0) == 3.0
    assert two_step().uplink_time(0.0) == 0.0


def test_overheads_applied():
    tl = BandwidthTimeline.constant(
        mbps(8), setup_latency=0.5, header_bytes=0, protocol_overhead=2.0
    )
    # 0.5 MB * 2 overhead = 1 MB -> 1 s, plus 0.5 s setup
    assert tl.transfer_end(0.0, 0.5e6) == pytest.approx(1.5)


def test_steps_mbps_builder():
    tl = BandwidthTimeline.steps_mbps([(0.0, 10.0), (2.0, 1.0)])
    assert tl.rate_at(0.5) == 10e6
    assert tl.rate_at(2.5) == 1e6
    with pytest.raises(ValueError):
        BandwidthTimeline.steps_mbps([])


@settings(max_examples=100, deadline=None)
@given(
    payload=st.floats(1.0, 5e6),
    start=st.floats(0.0, 5.0),
    drop_at=st.floats(0.1, 4.0),
    fast=st.floats(2.0, 40.0),
    slow=st.floats(0.5, 2.0),
)
def test_transfer_end_properties(payload, start, drop_at, fast, slow):
    tl = BandwidthTimeline(times=(0.0, drop_at), rates_bps=(fast * 1e6, slow * 1e6))
    end = tl.transfer_end(start, payload)
    assert end > start
    # bounded by the all-fast and all-slow extremes
    wire_bits = payload * 8  # defaults: no header, overhead 1
    assert start + wire_bits / (fast * 1e6) <= end + 1e-9
    assert end <= start + wire_bits / (slow * 1e6) + 1e-9
    # starting later never finishes earlier (rates only drop in this family)
    later = tl.transfer_end(start + 0.1, payload)
    assert later + 1e-9 >= end


# ----------------------------------------------------------------------
# trace-driven pipeline
# ----------------------------------------------------------------------

def test_constant_timeline_matches_fixed_channel(alexnet_table, channel_10mbps):
    schedule = jps_line(alexnet_table, 8)
    timeline = BandwidthTimeline.constant(
        channel_10mbps.uplink_bps,
        setup_latency=channel_10mbps.setup_latency,
        header_bytes=channel_10mbps.header_bytes,
        protocol_overhead=channel_10mbps.protocol_overhead,
    )
    fixed = simulate_schedule(schedule)
    traced = simulate_schedule_on_timeline(
        schedule, timeline, bytes_of=lambda p: alexnet_table.transfer_bytes_at(p.cut_position)
    )
    assert traced.makespan == pytest.approx(fixed.makespan, rel=1e-9)


def test_mid_run_drop_increases_makespan(alexnet_table, channel_10mbps):
    schedule = jps_line(alexnet_table, 10)
    kwargs = dict(
        setup_latency=channel_10mbps.setup_latency,
        header_bytes=channel_10mbps.header_bytes,
        protocol_overhead=channel_10mbps.protocol_overhead,
    )
    steady = BandwidthTimeline.constant(channel_10mbps.uplink_bps, **kwargs)
    dropping = BandwidthTimeline(
        times=(0.0, 0.5), rates_bps=(channel_10mbps.uplink_bps, mbps(1.0)), **kwargs
    )
    bytes_of = lambda p: alexnet_table.transfer_bytes_at(p.cut_position)
    base = simulate_schedule_on_timeline(schedule, steady, bytes_of)
    degraded = simulate_schedule_on_timeline(schedule, dropping, bytes_of)
    assert degraded.makespan > base.makespan
    assert degraded.metadata["timeline"] is True


def test_bytes_of_validation(alexnet_table):
    schedule = jps_line(alexnet_table, 2)
    timeline = BandwidthTimeline.constant(mbps(10))
    with pytest.raises(ValueError, match="bytes_of"):
        simulate_schedule_on_timeline(schedule, timeline, bytes_of=lambda p: -1.0)


def test_transfer_bytes_at(alexnet_table):
    assert alexnet_table.transfer_bytes_at(alexnet_table.k - 1) == 0.0
    assert alexnet_table.transfer_bytes_at(0) == pytest.approx(3 * 224 * 224 * 4)
    with pytest.raises(IndexError):
        alexnet_table.transfer_bytes_at(alexnet_table.k)
