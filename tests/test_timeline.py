"""Time-varying bandwidth: closed-form transfers and trace-driven DES."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.joint import jps_line
from repro.net.timeline import BandwidthTimeline
from repro.sim.pipeline import simulate_schedule, simulate_schedule_on_timeline
from repro.utils.units import mbps


def two_step() -> BandwidthTimeline:
    """8 Mbps for the first second, then 4 Mbps."""
    return BandwidthTimeline(times=(0.0, 1.0), rates_bps=(8e6, 4e6))


# ----------------------------------------------------------------------
# the closed-form transfer solver
# ----------------------------------------------------------------------

def test_validation():
    with pytest.raises(ValueError, match="start at 0"):
        BandwidthTimeline(times=(1.0,), rates_bps=(1e6,))
    with pytest.raises(ValueError, match="equal lengths"):
        BandwidthTimeline(times=(0.0, 1.0), rates_bps=(1e6,))
    with pytest.raises(ValueError, match="strictly increasing"):
        BandwidthTimeline(times=(0.0, 0.0), rates_bps=(1e6, 2e6))
    with pytest.raises(ValueError):
        BandwidthTimeline(times=(0.0,), rates_bps=(0.0,))


def test_rate_at():
    tl = two_step()
    assert tl.rate_at(0.0) == 8e6
    assert tl.rate_at(0.999) == 8e6
    assert tl.rate_at(1.0) == 4e6
    assert tl.rate_at(100.0) == 4e6


def test_constant_matches_simple_division():
    tl = BandwidthTimeline.constant(mbps(8))
    # 1 MB over 8 Mbps = 1 s
    assert tl.transfer_end(0.0, 1e6) == pytest.approx(1.0)
    assert tl.transfer_end(5.0, 1e6) == pytest.approx(6.0)


def test_transfer_spanning_a_rate_change():
    tl = two_step()
    # 1.5 MB: first 1 s moves 8 Mb (1 MB), remaining 0.5 MB at 4 Mbps -> 1 s
    assert tl.transfer_end(0.0, 1.5e6) == pytest.approx(2.0)
    # started entirely in the slow regime
    assert tl.transfer_end(2.0, 0.5e6) == pytest.approx(3.0)


def test_zero_payload_free():
    assert two_step().transfer_end(3.0, 0.0) == 3.0
    assert two_step().uplink_time(0.0) == 0.0


def test_overheads_applied():
    tl = BandwidthTimeline.constant(
        mbps(8), setup_latency=0.5, header_bytes=0, protocol_overhead=2.0
    )
    # 0.5 MB * 2 overhead = 1 MB -> 1 s, plus 0.5 s setup
    assert tl.transfer_end(0.0, 0.5e6) == pytest.approx(1.5)


def test_steps_mbps_builder():
    tl = BandwidthTimeline.steps_mbps([(0.0, 10.0), (2.0, 1.0)])
    assert tl.rate_at(0.5) == 10e6
    assert tl.rate_at(2.5) == 1e6
    with pytest.raises(ValueError):
        BandwidthTimeline.steps_mbps([])


@settings(max_examples=100, deadline=None)
@given(
    payload=st.floats(1.0, 5e6),
    start=st.floats(0.0, 5.0),
    drop_at=st.floats(0.1, 4.0),
    fast=st.floats(2.0, 40.0),
    slow=st.floats(0.5, 2.0),
)
def test_transfer_end_properties(payload, start, drop_at, fast, slow):
    tl = BandwidthTimeline(times=(0.0, drop_at), rates_bps=(fast * 1e6, slow * 1e6))
    end = tl.transfer_end(start, payload)
    assert end > start
    # bounded by the all-fast and all-slow extremes
    wire_bits = payload * 8  # defaults: no header, overhead 1
    assert start + wire_bits / (fast * 1e6) <= end + 1e-9
    assert end <= start + wire_bits / (slow * 1e6) + 1e-9
    # starting later never finishes earlier (rates only drop in this family)
    later = tl.transfer_end(start + 0.1, payload)
    assert later + 1e-9 >= end


# ----------------------------------------------------------------------
# trace-driven pipeline
# ----------------------------------------------------------------------

def test_constant_timeline_matches_fixed_channel(alexnet_table, channel_10mbps):
    schedule = jps_line(alexnet_table, 8)
    timeline = BandwidthTimeline.constant(
        channel_10mbps.uplink_bps,
        setup_latency=channel_10mbps.setup_latency,
        header_bytes=channel_10mbps.header_bytes,
        protocol_overhead=channel_10mbps.protocol_overhead,
    )
    fixed = simulate_schedule(schedule)
    traced = simulate_schedule_on_timeline(
        schedule, timeline, bytes_of=lambda p: alexnet_table.transfer_bytes_at(p.cut_position)
    )
    assert traced.makespan == pytest.approx(fixed.makespan, rel=1e-9)


def test_mid_run_drop_increases_makespan(alexnet_table, channel_10mbps):
    schedule = jps_line(alexnet_table, 10)
    kwargs = dict(
        setup_latency=channel_10mbps.setup_latency,
        header_bytes=channel_10mbps.header_bytes,
        protocol_overhead=channel_10mbps.protocol_overhead,
    )
    steady = BandwidthTimeline.constant(channel_10mbps.uplink_bps, **kwargs)
    dropping = BandwidthTimeline(
        times=(0.0, 0.5), rates_bps=(channel_10mbps.uplink_bps, mbps(1.0)), **kwargs
    )
    bytes_of = lambda p: alexnet_table.transfer_bytes_at(p.cut_position)
    base = simulate_schedule_on_timeline(schedule, steady, bytes_of)
    degraded = simulate_schedule_on_timeline(schedule, dropping, bytes_of)
    assert degraded.makespan > base.makespan
    assert degraded.metadata["timeline"] is True


def test_bytes_of_validation(alexnet_table):
    schedule = jps_line(alexnet_table, 2)
    timeline = BandwidthTimeline.constant(mbps(10))
    with pytest.raises(ValueError, match="bytes_of"):
        simulate_schedule_on_timeline(schedule, timeline, bytes_of=lambda p: -1.0)


def test_transfer_bytes_at(alexnet_table):
    assert alexnet_table.transfer_bytes_at(alexnet_table.k - 1) == 0.0
    assert alexnet_table.transfer_bytes_at(0) == pytest.approx(3 * 224 * 224 * 4)
    with pytest.raises(IndexError):
        alexnet_table.transfer_bytes_at(alexnet_table.k)


# ----------------------------------------------------------------------
# split consistency: the closed-form segment walk is self-consistent
# ----------------------------------------------------------------------

def _delivered_bits(tl: BandwidthTimeline, start: float, end: float) -> float:
    """∫ b(t) dt over [start, end], computed independently of transfer_end."""
    total = 0.0
    boundaries = list(tl.times) + [float("inf")]
    for i, rate in enumerate(tl.rates_bps):
        lo = max(start, boundaries[i])
        hi = min(end, boundaries[i + 1])
        if hi > lo:
            total += rate * (hi - lo)
    return total


@st.composite
def random_timelines(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=5.0), min_size=n - 1, max_size=n - 1
        )
    )
    times = [0.0]
    for gap in gaps:
        times.append(times[-1] + gap)
    rates = draw(
        st.lists(
            st.floats(min_value=1e5, max_value=1e8), min_size=n, max_size=n
        )
    )
    return BandwidthTimeline(times=tuple(times), rates_bps=tuple(rates))


@settings(max_examples=200, deadline=None)
@given(
    tl=random_timelines(),
    payload=st.floats(min_value=1.0, max_value=5e7),
    start=st.floats(min_value=0.0, max_value=10.0),
    fraction=st.floats(min_value=0.05, max_value=0.95),
)
def test_transfer_split_at_any_interior_point_is_consistent(
    tl, payload, start, fraction
):
    """transfer(B from t0) == transfer(remainder from t_mid) for any t_mid.

    This is the property the adaptive estimator leans on: a transfer
    interrupted and resumed at any interior instant finishes at the same
    time as the uninterrupted one, so per-transfer observations compose.
    """
    end = tl.transfer_end(start, payload)
    assert end > start
    t_mid = start + fraction * (end - start)
    delivered = _delivered_bits(tl, start, t_mid)
    total_bits = payload * 8.0
    remaining_bytes = (total_bits - delivered) / 8.0
    assert remaining_bytes > 0
    resumed = tl.transfer_end(t_mid, remaining_bytes)
    assert resumed == pytest.approx(end, rel=1e-9, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    tl=random_timelines(),
    payload=st.floats(min_value=1.0, max_value=5e7),
    start=st.floats(min_value=0.0, max_value=10.0),
)
def test_transfer_end_consistent_with_delivered_bits(tl, payload, start):
    """At the reported end, the integral of b(t) equals the payload.

    Tolerance is loose in absolute terms: reconstructing a sub-µs
    transfer duration from two O(10 s) timestamps cancels ~10 digits.
    """
    end = tl.transfer_end(start, payload)
    delivered = _delivered_bits(tl, start, end)
    assert delivered == pytest.approx(payload * 8.0, rel=1e-6, abs=1e-4)
