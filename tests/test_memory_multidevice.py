"""Memory-constrained partitioning and shared-uplink multi-device runs."""

import pytest

from repro.core.joint import jps_line
from repro.extensions.memory import (
    feasible_positions,
    jps_memory_constrained,
    mobile_memory_bytes,
    restrict_table,
)
from repro.extensions.multidevice import (
    fair_share_tables,
    plan_contention_aware,
    simulate_shared_uplink,
)
from repro.utils.units import mb


# ----------------------------------------------------------------------
# memory budget
# ----------------------------------------------------------------------

def test_memory_footprint_monotone(alexnet_table):
    footprints = [
        mobile_memory_bytes(alexnet_table, i) for i in range(alexnet_table.k)
    ]
    # weights accumulate; peak activation is bounded by the early conv maps
    for a, b in zip(footprints, footprints[1:]):
        assert b >= a - 1e-6
    # position 0 holds just the input frame
    assert footprints[0] == pytest.approx(3 * 224 * 224 * 4)
    # the full network carries ~61 M float32 params (~244 MB)
    assert footprints[-1] > mb(240)


def test_feasible_positions_prefix(alexnet_table):
    # 16 MB: enough for the conv stages, not for the FC blocks
    feasible = feasible_positions(alexnet_table, mb(16))
    assert feasible == list(range(len(feasible)))
    assert 0 < len(feasible) < alexnet_table.k
    with pytest.raises(ValueError):
        feasible_positions(alexnet_table, 0)


def test_restrict_table_keeps_monotonicity(alexnet_table):
    restricted = restrict_table(alexnet_table, [0, 1, 2])
    assert restricted.k == 3
    assert restricted.is_g_non_increasing()
    assert restricted.g[-1] > 0  # the g=0 endpoint was cut off
    with pytest.raises(ValueError):
        restrict_table(alexnet_table, [])


def test_memory_constrained_jps(alexnet_table):
    unconstrained = jps_line(alexnet_table, 20, split="pair")
    constrained = jps_memory_constrained(alexnet_table, 20, mb(16))
    assert constrained.method == "JPS-mem"
    assert constrained.metadata["feasible_positions"] < alexnet_table.k
    # the budget can only hurt the makespan (same split policy both sides)
    assert constrained.makespan >= unconstrained.makespan - 1e-9
    # all chosen cuts fit the budget
    used = {p.cut_label for p in constrained.jobs}
    feasible_labels = {
        alexnet_table.positions[i]
        for i in feasible_positions(alexnet_table, mb(16))
    }
    assert used <= feasible_labels


def test_memory_constrained_generous_budget_matches_pair_jps(alexnet_table):
    generous = jps_memory_constrained(alexnet_table, 20, mb(4000))
    pair = jps_line(alexnet_table, 20, split="pair")
    assert generous.makespan == pytest.approx(pair.makespan)


def test_memory_requires_graph_backed_table(alexnet_table):
    restricted = restrict_table(alexnet_table, [0, 1])
    with pytest.raises(ValueError, match="graph-backed"):
        mobile_memory_bytes(restricted, 0)


# ----------------------------------------------------------------------
# shared uplink
# ----------------------------------------------------------------------

def test_single_device_matches_flow_shop(alexnet_table):
    schedule = jps_line(alexnet_table, 8)
    result = simulate_shared_uplink([schedule])
    assert result.makespan == pytest.approx(schedule.makespan)
    assert result.num_devices == 1


def test_two_devices_contend(alexnet_table):
    schedule = jps_line(alexnet_table, 8)
    solo = simulate_shared_uplink([schedule]).makespan
    duo = simulate_shared_uplink([schedule, schedule])
    # sharing can only slow each device down ...
    assert duo.makespan >= solo - 1e-9
    # ... but beats running the devices one after another
    assert duo.makespan <= 2 * solo + 1e-9
    assert 0 < duo.uplink_utilization <= 1


def test_empty_device_list_rejected():
    with pytest.raises(ValueError):
        simulate_shared_uplink([])


def test_fair_share_scales_g(alexnet_table):
    shared = fair_share_tables(alexnet_table, 3)
    assert shared.g[0] == pytest.approx(3 * alexnet_table.g[0])
    assert shared.f[0] == alexnet_table.f[0]
    with pytest.raises(ValueError):
        fair_share_tables(alexnet_table, 0)


def test_contention_aware_planning_helps(env):
    """Fair-share planning beats full-rate planning under contention."""
    table = env.cost_table("alexnet", 18.88)
    devices, n = 3, 10
    naive = [jps_line(table, n) for _ in range(devices)]
    aware = plan_contention_aware(table, devices, n)
    naive_result = simulate_shared_uplink(naive)
    aware_result = simulate_shared_uplink(aware)
    assert aware_result.makespan <= naive_result.makespan + 1e-9


def test_contention_aware_plans_carry_full_rate_comm(env):
    table = env.cost_table("alexnet", 18.88)
    plans = plan_contention_aware(table, 2, 6)
    for schedule in plans:
        for job in schedule.jobs:
            position = job.cut_position
            assert job.comm_time == pytest.approx(float(table.g[position]))
