"""LO / CO / PO / brute-force comparison schemes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.baselines import (
    brute_force,
    brute_force_search_space,
    cloud_only,
    local_only,
    partition_only,
    single_job_optimal_cut,
)
from tests.helpers import make_table


def test_local_only_serializes_compute(simple_table):
    schedule = local_only(simple_table, 5)
    assert schedule.method == "LO"
    assert schedule.makespan == pytest.approx(5 * simple_table.local_only_time)
    assert all(p.comm_time == 0 for p in schedule.jobs)
    assert all(p.cut_position == simple_table.k - 1 for p in schedule.jobs)


def test_cloud_only_serializes_uplink(simple_table):
    schedule = cloud_only(simple_table, 5)
    assert schedule.method == "CO"
    assert schedule.makespan == pytest.approx(5 * simple_table.cloud_only_upload)
    assert all(p.compute_time == 0 for p in schedule.jobs)


def test_single_job_optimal_cut_minimizes_latency(simple_table):
    position = single_job_optimal_cut(simple_table, include_cloud=False)
    totals = simple_table.f + simple_table.g
    assert totals[position] == totals.min()


def test_partition_only_uses_one_cut(simple_table):
    schedule = partition_only(simple_table, 8)
    assert len(schedule.cut_histogram()) == 1
    assert schedule.metadata["cut_position"] == single_job_optimal_cut(simple_table)


def test_po_beats_lo_and_co_single_job(simple_table):
    po = partition_only(simple_table, 1, include_cloud=False)
    lo = local_only(simple_table, 1)
    co = cloud_only(simple_table, 1)
    assert po.makespan <= min(lo.makespan, co.makespan) + 1e-12


def test_brute_force_search_space_formula():
    assert brute_force_search_space(2, 3) == 6        # C(4, 2)
    assert brute_force_search_space(4, 2) == 5        # C(5, 1)


def test_brute_force_small_instance_exact():
    # Fig. 2 as a table: positions (4,6) and (7,2), 2 jobs
    table = make_table(f=[4.0, 7.0], g=[6.0, 2.0])
    schedule = brute_force(table, 2)
    assert schedule.makespan == 13
    assert sorted(schedule.metadata["cut_multiset"]) == [0, 1]


def test_brute_force_cap_enforced(simple_table):
    with pytest.raises(ValueError, match="restrict"):
        brute_force(simple_table, 100, max_candidates=10)


def test_brute_force_restricted_positions(simple_table):
    full = brute_force(simple_table, 3)
    restricted = brute_force(simple_table, 3, positions=[0, simple_table.k - 1])
    assert full.makespan <= restricted.makespan + 1e-12


def test_brute_force_never_beaten_by_uniform(simple_table):
    n = 4
    bf = brute_force(simple_table, n)
    for scheme in (local_only, cloud_only, partition_only):
        assert bf.makespan <= scheme(simple_table, n).makespan + 1e-12


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(2, 5),
    n=st.integers(1, 4),
    data=st.data(),
)
def test_brute_force_optimal_over_random_tables(k, n, data):
    """BF <= any uniform cut assignment on random monotone tables."""
    f = np.cumsum(data.draw(st.lists(
        st.floats(0.0, 5.0), min_size=k, max_size=k)))
    g_raw = data.draw(st.lists(st.floats(0.0, 5.0), min_size=k, max_size=k))
    g = np.minimum.accumulate(np.asarray(g_raw))
    table = make_table(f, g)
    bf = brute_force(table, n)
    from repro.core.scheduling import flow_shop_makespan

    for position in range(k):
        uniform = flow_shop_makespan([table.stage_lengths(position)] * n)
        assert bf.makespan <= uniform + 1e-9
