"""Serving metrics: counters and streaming histogram accuracy."""

import numpy as np
import pytest

from repro.obs.metrics import Counter, MetricsRegistry, StreamingHistogram


def test_counter_monotone():
    counter = Counter("served")
    counter.increment()
    counter.increment(3)
    assert counter.value == 4
    with pytest.raises(ValueError, match="forward"):
        counter.increment(-1)


def test_histogram_rejects_bad_accuracy():
    with pytest.raises(ValueError, match="relative_accuracy"):
        StreamingHistogram(relative_accuracy=0.0)
    with pytest.raises(ValueError, match="relative_accuracy"):
        StreamingHistogram(relative_accuracy=1.0)


def test_histogram_empty_snapshot():
    hist = StreamingHistogram()
    assert hist.quantile(0.5) == 0.0
    snapshot = hist.as_dict()
    assert snapshot["count"] == 0 and snapshot["min"] == 0.0


def test_histogram_exact_facts():
    hist = StreamingHistogram()
    for v in (0.5, 1.5, 3.0):
        hist.observe(v)
    assert hist.count == 3
    assert hist.min == 0.5 and hist.max == 3.0
    assert hist.mean == pytest.approx(5.0 / 3.0)


def test_histogram_zeros_have_their_own_bucket():
    hist = StreamingHistogram()
    for _ in range(9):
        hist.observe(0.0)
    hist.observe(10.0)
    assert hist.quantile(0.5) == 0.0
    assert hist.quantile(1.0) == 10.0


@pytest.mark.parametrize("accuracy", [0.01, 0.05])
def test_histogram_quantiles_within_relative_error(accuracy):
    rng = np.random.default_rng(7)
    samples = rng.lognormal(mean=0.0, sigma=1.5, size=5000)
    hist = StreamingHistogram(relative_accuracy=accuracy)
    for v in samples:
        hist.observe(v)
    for q in (0.5, 0.95, 0.99):
        exact = np.quantile(samples, q)
        estimate = hist.quantile(q)
        # DDSketch guarantee is per-value; the rank interpolation between
        # numpy's definition and ours adds a little slack
        assert abs(estimate - exact) / exact < 2.5 * accuracy


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        StreamingHistogram().observe(-1.0)


def test_registry_reuses_and_snapshots():
    registry = MetricsRegistry()
    registry.counter("arrived").increment(2)
    assert registry.counter("arrived") is registry.counter("arrived")
    registry.histogram("latency").observe(1.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"arrived": 2}
    assert snapshot["histograms"]["latency"]["count"] == 1
    assert set(snapshot["histograms"]["latency"]) >= {"p50", "p95", "p99"}
