"""Integration tests that replay the paper's worked examples end to end."""

import pytest

from repro.core.baselines import brute_force
from repro.core.joint import jps_line
from repro.core.plans import JobPlan
from repro.core.scheduling import schedule_jobs
from repro.sim.pipeline import simulate_schedule
from repro.sim.trace import validate_against_recurrence
from tests.helpers import make_table


def fig2_table():
    """Fig. 2's two cut options as a cost table: (f, g) = (4, 6) and (7, 2)."""
    return make_table(f=[4.0, 7.0], g=[6.0, 2.0])


def test_fig2_brute_force_finds_13():
    schedule = brute_force(fig2_table(), 2)
    assert schedule.makespan == 13.0
    result = simulate_schedule(schedule)
    validate_against_recurrence(result, schedule)


def test_fig2_jps_reproduces_the_mixed_partition():
    schedule = jps_line(fig2_table(), 2)
    assert schedule.makespan == 13.0
    assert sorted(schedule.cut_histogram()) == [0, 1]


def test_fig2_homogeneous_partitions_give_16():
    for position in (0, 1):
        table = fig2_table()
        plans = [
            JobPlan(job_id=i, model="fig2", cut_position=position,
                    compute_time=table.f[position], comm_time=table.g[position])
            for i in range(2)
        ]
        assert schedule_jobs(plans).makespan == 16.0


def test_fig1_four_layer_example_pipeline_overlap():
    """Fig. 1: two partitioned DNNs pipeline so comm hides behind compute."""
    # two identical jobs, each: compute 3, upload 2
    plans = [
        JobPlan(job_id=i, model="fig1", cut_position=0, compute_time=3.0, comm_time=2.0)
        for i in range(2)
    ]
    schedule = schedule_jobs(plans)
    # pipeline: 3 + 3 + 2 = 8 < sequential 10
    assert schedule.makespan == 8.0
    result = simulate_schedule(schedule)
    # job 1's upload overlaps job 2's computation
    assert result.traces[1].compute.start < result.traces[0].comm.end


def test_fig6_makespan_formula_visualized():
    """Prop. 4.1 on a Fig. 6-style sorted set (S1 then S2)."""
    from repro.core.scheduling import (
        flow_shop_makespan,
        johnson_order,
        proposition_4_1_makespan,
    )

    stages = [(1.0, 4.0), (2.0, 3.0), (5.0, 2.0), (6.0, 1.0)]
    order = johnson_order(stages)
    assert order == [0, 1, 2, 3]  # already S1 (asc f) then S2 (desc g)
    ordered = [stages[i] for i in order]
    assert proposition_4_1_makespan(ordered) == pytest.approx(
        flow_shop_makespan(ordered)
    )


def test_theorem_5_3_exact_condition():
    """When f(l*-1)+f(l*) = g(l*-1)+g(l*) and g(l*-1) = f(l*), the half/half
    two-type partition hides communication perfectly."""
    # construct a table satisfying the condition: f = [2, 4], g = [4, 2]
    table = make_table(f=[2.0, 4.0], g=[4.0, 2.0])
    n = 10
    schedule = jps_line(table, n)
    # perfect pipeline: makespan = f(x1) + sum of the rest of the f's + g(xn)
    # with both resources saturated -> average completion ~ (f_a + f_b) / 2
    bf = brute_force(table, n)
    assert schedule.makespan == pytest.approx(bf.makespan)
    histogram = schedule.cut_histogram()
    assert histogram.get(0) == n // 2 and histogram.get(1) == n // 2
