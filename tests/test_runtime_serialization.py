"""Tensor wire format: round trips, size accounting, corruption handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.runtime.serialization import (
    SerializationError,
    deserialize_tensor,
    serialize_tensor,
    serialized_size,
)


def test_roundtrip_float32():
    tensor = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
    again = deserialize_tensor(serialize_tensor(tensor))
    assert again.dtype == np.float32
    assert np.array_equal(again, tensor)


def test_roundtrip_scalar_like():
    tensor = np.array([3.5], dtype=np.float64)
    assert np.array_equal(deserialize_tensor(serialize_tensor(tensor)), tensor)


def test_serialized_size_matches_actual():
    for shape in ((3, 224, 224), (1000,), (64, 55, 55)):
        tensor = np.zeros(shape, dtype=np.float32)
        assert len(serialize_tensor(tensor)) == serialized_size(shape)


def test_serialized_size_includes_header():
    assert serialized_size((10,)) > 10 * 4


def test_unsupported_dtype_rejected():
    with pytest.raises(SerializationError, match="dtype"):
        serialize_tensor(np.zeros(3, dtype=np.complex64))
    with pytest.raises(SerializationError):
        serialized_size((3,), dtype="complex64")


def test_bad_magic_rejected():
    payload = bytearray(serialize_tensor(np.zeros(3, dtype=np.float32)))
    payload[:4] = b"EVIL"
    with pytest.raises(SerializationError, match="magic"):
        deserialize_tensor(bytes(payload))


def test_truncated_payload_rejected():
    payload = serialize_tensor(np.zeros((4, 4), dtype=np.float32))
    with pytest.raises(SerializationError, match="length"):
        deserialize_tensor(payload[:-3])
    with pytest.raises(SerializationError, match="header"):
        deserialize_tensor(b"RP")


def test_non_contiguous_input_handled():
    base = np.arange(24, dtype=np.float32).reshape(4, 6)
    view = base[:, ::2]  # non-contiguous
    again = deserialize_tensor(serialize_tensor(view))
    assert np.array_equal(again, view)


def test_result_is_writable_copy():
    tensor = np.ones(4, dtype=np.float32)
    again = deserialize_tensor(serialize_tensor(tensor))
    again[0] = 99  # must not raise (frombuffer alone would be read-only)


@settings(max_examples=60, deadline=None)
@given(
    hnp.arrays(
        dtype=st.sampled_from([np.float32, np.int32, np.uint8]),
        shape=hnp.array_shapes(min_dims=1, max_dims=4, min_side=1, max_side=8),
        elements=st.integers(0, 200),
    )
)
def test_roundtrip_property(tensor):
    again = deserialize_tensor(serialize_tensor(tensor))
    assert again.shape == tensor.shape
    assert again.dtype == tensor.dtype
    assert np.array_equal(again, tensor)
