"""Property suite: invariants that hold for *every* fault plan.

Hypothesis drives randomized fault plans (blackouts, corruption,
outages, misestimation, with and without a resilience policy) through a
small gateway run and asserts the three load-bearing guarantees:

* accounting — served + degraded + dropped + pending == arrived, drop
  reasons tile the dropped total, no negative histogram observations;
* liveness — the engine drains (no stuck probes/retries) and virtual
  time never moves backwards;
* replay — the same seed reproduces a bit-identical report.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import (
    Blackout,
    ClientOutage,
    CostMisestimation,
    FaultPlan,
    MonotoneClockMonitor,
    ResiliencePolicy,
    TransferCorruption,
    accounting_violations,
)
from repro.net.timeline import BandwidthTimeline
from repro.serving import Gateway, Request


@st.composite
def fault_plans(draw) -> FaultPlan:
    seed = draw(st.integers(0, 2**31 - 1))
    blackouts = ()
    if draw(st.booleans()):
        start = draw(st.floats(0.0, 3.0))
        duration = draw(st.floats(0.3, 2.0))
        blackouts = (Blackout(start, start + duration),)
    corruption = None
    probability = draw(st.sampled_from([0.0, 0.2, 0.8]))
    if probability:
        corruption = TransferCorruption(probability)
    outages = ()
    if draw(st.booleans()):
        outages = (ClientOutage("c0", 1.0, 2.5),)
    misestimation = None
    if draw(st.booleans()):
        misestimation = CostMisestimation(
            compute_scale=draw(st.sampled_from([0.5, 1.0, 1.7])),
            payload_scale=draw(st.sampled_from([1.0, 1.5])),
            jitter=draw(st.sampled_from([0.0, 0.2])),
        )
    return FaultPlan(
        seed=seed,
        blackouts=blackouts,
        corruption=corruption,
        outages=outages,
        misestimation=misestimation,
    )


@st.composite
def policies(draw) -> "ResiliencePolicy | None":
    if not draw(st.booleans()):
        return None
    return ResiliencePolicy(
        max_retries=draw(st.integers(0, 3)),
        backoff_base=0.02,
        transfer_timeout=draw(st.sampled_from([0.2, 0.5, None])),
        degrade_after_failures=draw(st.integers(1, 3)),
        local_fallback=draw(st.booleans()),
        probe_interval=0.25,
    )


def _workload(deadline):
    return [
        Request(
            client_id=f"c{i % 2}",
            request_id=i,
            model="alexnet",
            arrival=0.35 * i,
            deadline=deadline,
        )
        for i in range(10)
    ]


def _run(plan: FaultPlan, policy, deadline):
    timeline = plan.apply_to_timeline(BandwidthTimeline.steps_mbps([(0.0, 8.0)]))
    gateway = Gateway(timeline, scheme="JPS", faults=plan, resilience=policy)
    clock = MonotoneClockMonitor().attach(gateway.engine)
    result = gateway.run(_workload(deadline))
    return gateway, result, gateway.report(result), clock


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=fault_plans(), policy=policies(), deadline=st.sampled_from([None, 1.5]))
def test_accounting_holds_for_every_fault_plan(plan, policy, deadline):
    _, result, report, clock = _run(plan, policy, deadline)
    assert accounting_violations(report) == []
    assert clock.violations == []
    # the run drained: no request is stuck behind a retry or probe loop
    assert result.pending == 0
    counters = report["counters"]
    total = (
        counters.get("served", 0)
        + counters.get("degraded", 0)
        + counters.get("dropped", 0)
    )
    assert total == counters["arrived"] == 10
    # every admitted request has exactly one terminal record
    assert len(result.records) == 10
    assert len({r.request_id for r in result.records}) == 10


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=fault_plans(), policy=policies(), deadline=st.sampled_from([None, 1.5]))
def test_queue_depths_and_waits_never_negative(plan, policy, deadline):
    _, _, report, _ = _run(plan, policy, deadline)
    for name in ("queue_depth", "queue_wait", "latency"):
        histogram = report["histograms"].get(name)
        if histogram and histogram["count"]:
            assert histogram["min"] >= 0.0


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=fault_plans(), policy=policies(), deadline=st.sampled_from([None, 1.5]))
def test_replay_is_bit_identical(plan, policy, deadline):
    _, result_a, report_a, _ = _run(plan, policy, deadline)
    _, result_b, report_b, _ = _run(plan, policy, deadline)
    assert json.dumps(report_a, sort_keys=True) == json.dumps(
        report_b, sort_keys=True
    )
    assert result_a.makespan == result_b.makespan
    assert [(r.request_id, r.outcome, r.latency) for r in result_a.records] == [
        (r.request_id, r.outcome, r.latency) for r in result_b.records
    ]
