"""Model zoo: published shapes, FLOP counts, parameter counts, structure."""

import pytest

from repro.dag.topology import count_paths, is_series_parallel
from repro.nn import zoo


def test_registry_contents():
    for name in ("alexnet", "vgg16", "mobilenet-v2", "resnet18", "googlenet"):
        assert name in zoo.MODELS
    with pytest.raises(KeyError, match="unknown model"):
        zoo.get_model("lenet-9000")


@pytest.mark.parametrize(
    "name, gflops, params_m",
    [
        # published MAC*2 / parameter figures (batch 1, 224x224 unless noted)
        ("alexnet", 1.43, 61.1),
        ("vgg16", 31.0, 138.4),
        ("resnet18", 3.64, 11.7),
        ("mobilenet-v2", 0.60, 3.5),
        ("googlenet", 3.0, 7.0),
    ],
)
def test_published_flops_and_params(name, gflops, params_m):
    net = zoo.get_model(name)
    assert net.total_flops / 1e9 == pytest.approx(gflops, rel=0.15)
    assert net.total_params / 1e6 == pytest.approx(params_m, rel=0.10)


def test_alexnet_is_line_with_1000_classes(alexnet):
    assert alexnet.is_line()
    assert alexnet.output_shape == (1000,)


def test_alexnet_conv1_shape(alexnet):
    node = alexnet.node("conv2d_1")
    assert node.output_shape == (64, 55, 55)


def test_vgg16_structure():
    net = zoo.vgg16()
    assert net.is_line()
    convs = [n for n in net.nodes() if n.kind == "conv2d"]
    assert len(convs) == 13


def test_nin_structure():
    net = zoo.nin()
    assert net.is_line()
    assert net.output_shape == (10,)


def test_tiny_yolo_output_grid():
    net = zoo.tiny_yolov2()
    assert net.is_line()
    assert net.output_shape == (125, 13, 13)


def test_mobilenet_v2_structure(mobilenet):
    assert not mobilenet.is_line()          # bypass links exist
    assert mobilenet.output_shape == (1000,)
    adds = [n for n in mobilenet.nodes() if n.kind == "add"]
    assert len(adds) == 10  # residual connections in the standard config
    assert is_series_parallel(mobilenet.graph)
    assert count_paths(mobilenet.graph) == 2 ** 10


def test_mobilenet_bottleneck_shapes(mobilenet):
    # Fig. 10 of the paper: expanded tensors are 6x the block I/O channels
    expand = mobilenet.node("b1.1.expand")
    assert expand.output_shape == (144, 56, 56)
    project = mobilenet.node("b1.1.project")
    assert project.output_shape == (24, 56, 56)


def test_resnet18_structure(resnet):
    assert not resnet.is_line()
    adds = [n for n in resnet.nodes() if n.kind == "add"]
    assert len(adds) == 8  # two blocks per stage, four stages
    downsamples = [n for n in resnet.nodes() if n.name.endswith("down.conv")]
    assert len(downsamples) == 3
    assert resnet.node("s0.0.conv1").output_shape == (64, 56, 56)
    assert resnet.node("s3.1.relu2").output_shape == (512, 7, 7)


def test_googlenet_structure(googlenet):
    assert not googlenet.is_line()
    concats = [n for n in googlenet.nodes() if n.kind == "concat"]
    assert len(concats) == 9  # nine Inception modules
    assert count_paths(googlenet.graph) == 4 ** 9


def test_googlenet_inception_3a_channels(googlenet):
    assert googlenet.node("3a.concat").output_shape == (256, 28, 28)
    assert googlenet.node("3b.concat").output_shape == (480, 28, 28)
    assert googlenet.node("5b.concat").output_shape == (1024, 7, 7)


def test_synthetic_line_dnn_volume_decay():
    net = zoo.line_dnn(depth=6)
    assert net.is_line()
    order = net.graph.line_order()
    pools = [v for v in order if "pool" in v]
    assert pools  # the decay mechanism exists


def test_mini_inception_path_growth():
    assert count_paths(zoo.mini_inception(1).graph) == 4
    assert count_paths(zoo.mini_inception(3).graph) == 64
    with pytest.raises(ValueError):
        zoo.mini_inception(0)


def test_branchy_dnn_paths(branchy):
    assert count_paths(branchy.graph) == 6


def test_random_cost_profile_shape():
    times, volumes = zoo.random_cost_profile(10, seed=1)
    assert len(times) == len(volumes) == 10
    assert all(t > 0 for t in times)
    assert all(v >= 0 for v in volumes)
    # same seed, same profile
    again = zoo.random_cost_profile(10, seed=1)
    assert again == (times, volumes)


def test_vgg_family_sizes():
    # parameters (M) from the VGG paper's Table 2
    for name, params_m in (("vgg11", 132.9), ("vgg13", 133.0), ("vgg19", 143.7)):
        net = zoo.get_model(name)
        assert net.is_line()
        assert net.total_params / 1e6 == pytest.approx(params_m, rel=0.01)


def test_vgg_depth_ordering():
    flops = [zoo.get_model(n).total_flops for n in ("vgg11", "vgg13", "vgg16", "vgg19")]
    assert flops == sorted(flops)


def test_squeezenet_published_size():
    net = zoo.squeezenet()
    assert net.total_params / 1e6 == pytest.approx(1.24, rel=0.05)
    assert net.output_shape == (1000,)
    assert count_paths(net.graph) == 2 ** 8  # eight fire modules


def test_squeezenet_clusters_to_line_keeping_squeeze_cuts():
    """Fire-module branches cluster (expand tensors exceed the squeeze),
    but the squeeze outputs are separators and survive as cut points."""
    from repro.dag import linearize, expand_members

    net = zoo.squeezenet()
    line = linearize(net.graph)
    assert line.is_line()
    # the strongest offloading points — small squeeze tensors — are
    # reachable: some clustered position's member list ends at a squeeze relu
    boundaries = set()
    order = line.line_order()
    for node_id in order:
        members = expand_members(line, node_id)
        boundaries.add(members[-1])
    assert any("squeeze" in b for b in boundaries)
