"""Unit-conversion helpers."""

import pytest

from repro.utils import units


def test_mbps_to_bps():
    assert units.mbps(1.1) == pytest.approx(1.1e6)


def test_kbps_and_gbps():
    assert units.kbps(1) == 1e3
    assert units.gbps(2) == 2e9


def test_byte_conversions():
    assert units.mb(1.5) == pytest.approx(1.5e6)
    assert units.kb(2) == 2e3


def test_time_conversions_roundtrip():
    assert units.seconds_to_ms(units.ms(250)) == pytest.approx(250)
    assert units.us(1_000_000) == pytest.approx(1.0)


def test_flops_conversions():
    assert units.gflops(2.5) == 2.5e9
    assert units.mflops(3) == 3e6


def test_transfer_time_basic():
    # 1 MB over 8 Mbps -> exactly 1 second
    assert units.transfer_time(1e6, 8e6) == pytest.approx(1.0)


def test_transfer_time_zero_bytes():
    assert units.transfer_time(0, 1e6) == 0.0


def test_transfer_time_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        units.transfer_time(100, 0)
    with pytest.raises(ValueError):
        units.transfer_time(100, -5)


def test_transfer_time_rejects_negative_bytes():
    with pytest.raises(ValueError):
        units.transfer_time(-1, 1e6)


def test_float32_bytes_constant():
    assert units.FLOAT32_BYTES == 4
    assert units.BITS_PER_BYTE == 8
