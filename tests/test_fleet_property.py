"""Property suite: fleet accounting tiles exactly for *every* topology.

Hypothesis drives randomized fleets — server count, heterogeneity,
placement policy, admission limit, per-link fault plans — through a
small ``run_system`` call and asserts the federation's load-bearing
guarantee: the per-server outcome sums (served + degraded + dropped +
pending), plus fleet-level admission rejects, tile the fleet arrival
count exactly. No request is lost or double-counted by placement,
migration, or admission, under any fault plan on any uplink.
"""

import warnings

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import PlanningEngine
from repro.faults.plan import Blackout, FaultPlan, RateSpike
from repro.fleet import (
    PLACEMENT_POLICIES,
    AdmissionConfig,
    PlacementConfig,
    ServerSpec,
    SystemConfig,
    WorkloadConfig,
    fleet_accounting_violations,
    run_system,
)
from repro.serving.workload import ClientSpec

# one warm planner across examples: structure caches make the suite fast
PLANNER = PlanningEngine()


@st.composite
def fleet_configs(draw) -> SystemConfig:
    n_servers = draw(st.integers(1, 4))
    servers = []
    for index in range(n_servers):
        plan = None
        if draw(st.booleans()):
            start = draw(st.floats(0.0, 2.0))
            if draw(st.booleans()):
                plan = FaultPlan(blackouts=(Blackout(start, start + 1.5),))
            else:
                plan = FaultPlan(spikes=(RateSpike(start, start + 1.5, 0.25),))
        servers.append(
            ServerSpec(
                name=f"s{index}",
                mobile_speedup=draw(st.sampled_from([0.5, 1.0, 2.0])),
                max_queue_depth=draw(st.sampled_from([2, 8, 64])),
                fault_plan=plan,
            )
        )
    clients = tuple(
        ClientSpec(
            name=f"c{i}",
            rate=draw(st.sampled_from([0.5, 1.5, 3.0])),
            deadline=draw(st.sampled_from([None, 1.0])),
        )
        for i in range(draw(st.integers(1, 6)))
    )
    return SystemConfig(
        workload=WorkloadConfig(
            clients=clients,
            horizon=4.0,
            seed=draw(st.integers(0, 2**31 - 1)),
        ),
        servers=tuple(servers),
        placement=PlacementConfig(
            policy=draw(st.sampled_from(PLACEMENT_POLICIES)),
            migration_backlog=draw(st.sampled_from([2, None])),
            migration_patience=0.5,
        ),
        admission=AdmissionConfig(
            max_fleet_outstanding=draw(st.sampled_from([None, 3, 16]))
        ),
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=fleet_configs())
def test_server_outcomes_tile_fleet_arrivals(config):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)  # new API never warns
        report = run_system(config, planner=PLANNER)
    document = report.as_dict()
    assert fleet_accounting_violations(document) == []
    assert report.violations == () and report.clock_violations == ()

    fleet = report.fleet
    outcome_sum = 0
    arrived_sum = 0
    for block in report.servers.values():
        counters = block["report"]["counters"]
        arrived_sum += counters.get("arrived", 0)
        outcome_sum += (
            counters.get("served", 0)
            + counters.get("degraded", 0)
            + counters.get("dropped", 0)
            + block["report"]["pending"]
        )
    assert arrived_sum + fleet["rejected_fleet"] == fleet["arrivals"]
    assert outcome_sum + fleet["rejected_fleet"] == fleet["arrivals"]
    # placement saw exactly the admitted requests
    assert sum(fleet["placement"]["per_server_arrivals"].values()) == arrived_sum
