"""Cost tables: construction, invariants, clustering, AlexNet' smoothing."""

import numpy as np
import pytest

from repro.dag.cuts import enumerate_frontier_cuts
from repro.profiling.latency import (
    CostTable,
    cut_costs,
    line_cost_table,
    node_mobile_time,
    path_cost_table,
    smooth_cost_table,
)


def test_cost_table_validation():
    with pytest.raises(ValueError, match="at least one"):
        CostTable("x", (), np.array([]), np.array([]), np.array([]))
    with pytest.raises(ValueError, match="shape"):
        CostTable("x", ("a",), np.array([0.0, 1.0]), np.array([0.0]), np.array([0.0]))
    with pytest.raises(ValueError, match="non-decreasing"):
        CostTable(
            "x", ("a", "b"), np.array([1.0, 0.5]), np.array([1.0, 0.0]), np.zeros(2)
        )
    with pytest.raises(ValueError, match="non-negative"):
        CostTable(
            "x", ("a", "b"), np.array([0.0, 1.0]), np.array([-1.0, 0.0]), np.zeros(2)
        )


def test_line_cost_table_boundaries(alexnet_table):
    # position 0 = Input: no local compute, raw-input upload
    assert alexnet_table.f[0] == 0.0
    assert alexnet_table.g[0] > 0.0
    # final position = fully local: no upload
    assert alexnet_table.g[-1] == 0.0
    assert alexnet_table.local_only_time == alexnet_table.f[-1]
    assert alexnet_table.cloud_only_upload == alexnet_table.g[0]


def test_line_cost_table_monotone(alexnet_table):
    assert np.all(np.diff(alexnet_table.f) >= 0)
    assert alexnet_table.is_g_non_increasing()


def test_stage_lengths_and_bounds(alexnet_table):
    f, g = alexnet_table.stage_lengths(1)
    assert f == alexnet_table.f[1] and g == alexnet_table.g[1]
    with pytest.raises(IndexError):
        alexnet_table.stage_lengths(alexnet_table.k)


def test_cloud_rest_decreasing(alexnet_table):
    rests = [alexnet_table.cloud_rest(i) for i in range(alexnet_table.k)]
    assert all(b <= a for a, b in zip(rests, rests[1:]))
    assert rests[-1] == 0.0


def test_position_of(alexnet_table):
    for i, pos in enumerate(alexnet_table.positions):
        assert alexnet_table.position_of(pos) == i
    with pytest.raises(KeyError):
        alexnet_table.position_of("nope")


def test_mobile_nodes_at_partition_the_graph(alexnet, alexnet_table):
    all_nodes = set(alexnet.graph.node_ids)
    last = alexnet_table.mobile_nodes_at(alexnet_table.k - 1)
    assert last == all_nodes
    first = alexnet_table.mobile_nodes_at(0)
    assert first == {alexnet.input_id}
    mid = alexnet_table.mobile_nodes_at(2)
    assert first < mid < last


def test_mobile_nodes_requires_graph(alexnet_table):
    table = CostTable(
        "x", ("a",), np.array([0.0]), np.array([0.0]), np.array([0.0]), graph=None
    )
    with pytest.raises(ValueError, match="no backing graph"):
        table.mobile_nodes_at(0)


def test_unclustered_table_matches_raw_layers(alexnet, mobile, cloud, channel_10mbps):
    raw = line_cost_table(alexnet, mobile, cloud, channel_10mbps, cluster=False)
    assert raw.k == alexnet.num_layers
    clustered = line_cost_table(alexnet, mobile, cloud, channel_10mbps, cluster=True)
    assert clustered.k < raw.k
    # total local time is preserved by clustering
    assert clustered.local_only_time == pytest.approx(raw.local_only_time)
    # clustered g values are a subset of raw g values
    raw_g = set(np.round(raw.g, 12))
    assert all(round(v, 12) in raw_g for v in clustered.g)


def test_with_channel_scaled(alexnet_table):
    doubled = alexnet_table.with_channel_scaled(2.0)
    assert np.allclose(doubled.g, alexnet_table.g * 2)
    with pytest.raises(ValueError):
        alexnet_table.with_channel_scaled(0)


def test_node_mobile_time_rejects_garbage(mobile):
    with pytest.raises(TypeError):
        node_mobile_time("not-a-node", mobile)


def test_path_cost_table(branchy, mobile, cloud, channel_10mbps):
    from repro.dag.topology import enumerate_paths

    path = tuple(enumerate_paths(branchy.graph)[0])
    table = path_cost_table(branchy, path, mobile, cloud, channel_10mbps)
    assert table.k == len(path)
    assert table.g[-1] == 0.0
    assert np.all(np.diff(table.f) >= 0)


def test_cut_costs_full_graph_has_zero_comm(branchy, mobile, cloud, channel_10mbps):
    cuts = enumerate_frontier_cuts(branchy.graph)
    costs = cut_costs(branchy, cuts, mobile, cloud, channel_10mbps)
    full = frozenset(branchy.graph.node_ids)
    f, g, rest = costs[full]
    assert g == 0.0 and f > 0
    assert rest == pytest.approx(0.0, abs=1e-12)  # floating summation dust
    # input-only cut: no compute, upload > 0, full cloud rest
    input_only = frozenset({branchy.graph.topological_order()[0]})
    f0, g0, rest0 = costs[input_only]
    assert f0 == 0.0 and g0 > 0.0 and rest0 > 0.0


def test_smooth_cost_table_properties(alexnet_table):
    prime = smooth_cost_table(alexnet_table)
    assert prime.k == alexnet_table.k
    assert prime.f[0] == 0.0 and prime.g[-1] == 0.0
    assert np.all(np.diff(prime.f) >= 0)
    assert prime.is_g_non_increasing()
    # interior g decays geometrically: ratios roughly constant
    interior = prime.g[1:-1]
    ratios = interior[1:] / interior[:-1]
    assert np.std(ratios) < 0.05
    assert prime.model_name.endswith("-prime")
