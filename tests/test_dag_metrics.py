"""Graph metrics, critical path, DOT export."""

import pytest

from repro.dag.graph import Dag
from repro.dag.metrics import (
    critical_path,
    duplication_metrics,
    graph_metrics,
    to_dot,
)


def diamond() -> Dag:
    g = Dag(name="diamond")
    for v in "abcd":
        g.add_node(v)
    g.add_edge("a", "b", 10)
    g.add_edge("a", "c", 20)
    g.add_edge("b", "d", 5)
    g.add_edge("c", "d", 7)
    return g


def test_graph_metrics_diamond():
    m = graph_metrics(diamond())
    assert m.nodes == 4 and m.edges == 4
    assert m.depth == 3
    assert m.max_width == 2
    assert m.branch_nodes == 1 and m.merge_nodes == 1
    assert m.total_edge_bytes == 42


def test_graph_metrics_on_zoo(googlenet, alexnet):
    g = graph_metrics(googlenet.graph)
    a = graph_metrics(alexnet.graph)
    assert g.branch_nodes == 9          # one split per Inception module
    assert g.merge_nodes == 9
    assert a.branch_nodes == a.merge_nodes == 0
    assert a.depth == a.nodes           # a line is as deep as it is long


def test_critical_path_unit_costs():
    path, length = critical_path(diamond(), cost=lambda v: 1.0)
    assert path[0] == "a" and path[-1] == "d"
    assert length == 3.0


def test_critical_path_weighted():
    costs = {"a": 1.0, "b": 10.0, "c": 1.0, "d": 1.0}
    path, length = critical_path(diamond(), cost=lambda v: costs[v])
    assert path == ["a", "b", "d"]
    assert length == 12.0


def test_critical_path_vs_total_on_branchy(branchy, mobile):
    from repro.profiling.latency import node_mobile_time

    cost = {v: node_mobile_time(branchy.graph.payload(v), mobile)
            for v in branchy.graph.node_ids}
    _, critical = critical_path(branchy.graph, cost=lambda v: cost[v])
    total = sum(cost.values())
    assert critical < total  # branches expose intra-job parallelism


def test_to_dot_plain():
    dot = to_dot(diamond())
    assert dot.startswith('digraph "diamond"')
    assert '"a" -> "b";' in dot
    assert dot.rstrip().endswith("}")


def test_to_dot_highlights_cut():
    dot = to_dot(diamond(), mobile_nodes={"a", "b"})
    assert 'fillcolor="#cfe8ff"' in dot
    # crossing edges a->c and b->d are bold and labelled
    assert dot.count("penwidth=2.5") == 2
    assert "KB" in dot


def test_to_dot_rejects_unknown_nodes():
    with pytest.raises(KeyError):
        to_dot(diamond(), mobile_nodes={"zzz"})


# ----------------------------------------------------------------------
# Fig.-9 duplication accounting
# ----------------------------------------------------------------------


def shared_chain() -> Dag:
    """a->b, then b fans out to c/d which merge in e: a->b is shared.

    Both independent paths (a,b,c,e) and (a,b,d,e) carry their own copy
    of the 100-byte a->b tensor, so duplication ships it twice.
    """
    g = Dag(name="shared-chain")
    for v in "abcde":
        g.add_node(v)
    g.add_edge("a", "b", 100)
    g.add_edge("b", "c", 10)
    g.add_edge("b", "d", 20)
    g.add_edge("c", "e", 5)
    g.add_edge("d", "e", 7)
    return g


def test_duplication_metrics_diamond_ships_bytes_once():
    m = duplication_metrics(diamond())
    # every edge lies on exactly one path: no byte duplication...
    assert m.num_paths == 2
    assert m.original_bytes == 42
    assert m.shipped_bytes == 42
    assert m.duplicated_bytes == 0
    assert m.duplication_factor == 1.0
    # ...but the shared endpoints a and d are copied onto both paths
    assert m.duplicated_nodes == 2
    assert m.node_work_factor == pytest.approx(6 / 4)


def test_duplication_metrics_shared_chain_over_ships():
    m = duplication_metrics(shared_chain())
    assert m.num_paths == 2
    assert m.original_bytes == 142
    # a->b is counted once per path through it
    assert m.shipped_bytes == 242
    assert m.duplicated_bytes == 100
    assert m.duplication_factor == pytest.approx(242 / 142)
    assert m.duplicated_nodes == 3          # a, b, e each appear on both paths
    assert m.node_work_factor == pytest.approx(8 / 5)


def test_duplication_metrics_line_is_the_identity():
    g = Dag(name="line")
    for v in "abc":
        g.add_node(v)
    g.add_edge("a", "b", 10)
    g.add_edge("b", "c", 20)
    m = duplication_metrics(g)
    assert m.num_paths == 1
    assert m.duplication_factor == 1.0
    assert m.duplicated_nodes == 0
    assert m.node_work_factor == 1.0
