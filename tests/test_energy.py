"""Energy model: job/schedule pricing and the energy-latency frontier."""

import pytest

from repro.core.baselines import cloud_only, local_only
from repro.core.joint import jps_line
from repro.core.plans import JobPlan
from repro.profiling.energy import (
    CELLULAR_POWER,
    WIFI_POWER,
    PowerProfile,
    energy_latency_frontier,
    job_energy,
    schedule_energy,
)


def test_power_profile_validation():
    with pytest.raises(ValueError):
        PowerProfile(name="bad", compute_watts=-1)
    with pytest.raises(ValueError):
        PowerProfile(name="bad", tail_joules=-0.1)


def test_job_energy_hand_computed():
    plan = JobPlan(job_id=0, model="m", cut_position=0, compute_time=2.0, comm_time=1.0)
    power = PowerProfile(name="p", compute_watts=4.0, radio_watts=1.0, tail_joules=0.5)
    assert job_energy(plan, power) == pytest.approx(4.0 * 2 + 1.0 * 1 + 0.5)


def test_local_job_pays_no_radio():
    plan = JobPlan(job_id=0, model="m", cut_position=0, compute_time=2.0, comm_time=0.0)
    assert job_energy(plan, CELLULAR_POWER) == pytest.approx(
        CELLULAR_POWER.compute_watts * 2.0
    )


def test_schedule_energy_sums_jobs(alexnet_table):
    schedule = jps_line(alexnet_table, 10)
    total = schedule_energy(schedule, WIFI_POWER)
    assert total == pytest.approx(
        sum(job_energy(p, WIFI_POWER) for p in schedule.jobs)
    )


def test_idle_floor_charged_over_makespan(alexnet_table):
    schedule = jps_line(alexnet_table, 10)
    floor = PowerProfile(name="floor", compute_watts=0, radio_watts=0, idle_watts=2.0)
    assert schedule_energy(schedule, floor) == pytest.approx(2.0 * schedule.makespan)


def test_offloading_saves_energy_at_wifi(alexnet_table):
    """At Wi-Fi rates, uploading early costs fewer joules than computing."""
    n = 10
    lo = local_only(alexnet_table, n)
    co = cloud_only(alexnet_table, n)
    assert schedule_energy(co, WIFI_POWER) < schedule_energy(lo, WIFI_POWER)


def test_cellular_tail_penalizes_offloading(alexnet_table):
    jps = jps_line(alexnet_table, 10)
    assert schedule_energy(jps, CELLULAR_POWER) > schedule_energy(jps, WIFI_POWER)


def test_frontier_is_pareto(alexnet_table):
    frontier = energy_latency_frontier(alexnet_table, WIFI_POWER)
    assert frontier
    latencies = [p.per_job_latency for p in frontier]
    energies = [p.per_job_energy for p in frontier]
    assert latencies == sorted(latencies)
    assert all(b < a for a, b in zip(energies, energies[1:]))
    # frontier points are actual cut positions of the table
    for point in frontier:
        assert 0 <= point.position < alexnet_table.k
        assert point.label == alexnet_table.positions[point.position]


def test_frontier_contains_extremes(alexnet_table):
    """The latency-optimal and the energy-optimal cuts both survive."""
    frontier = energy_latency_frontier(alexnet_table, WIFI_POWER)
    all_points = {p.position for p in frontier}
    # lowest f+g point is on the frontier by construction
    best_latency = min(
        range(alexnet_table.k),
        key=lambda i: alexnet_table.f[i] + alexnet_table.g[i],
    )
    assert best_latency in all_points
