"""Timeline renderers: watch table, ASCII plots, sparklines."""

from repro.experiments.ascii_plot import sparkline
from repro.obs.render import render_timeline, watch_table
from repro.obs.timeseries import TelemetryHub


def _hub():
    hub = TelemetryHub(bucket_width=0.5)
    for t in (0.1, 0.4, 1.2, 1.3, 2.6):
        hub.record("arrivals", t, server="s0")
        hub.observe("latency", t + 0.3, 0.2 + t / 10, server="s0")
    hub.record("served", 1.4, server="s0")
    hub.record("served", 1.6, server="s1")   # labels aggregate per base name
    return hub


def test_watch_table_rows_and_columns():
    table = watch_table(_hub().timeline(), every=1.0)
    lines = table.splitlines()
    assert "arrivals" in lines[0] and "p95(s)" in lines[0] and "alerts" in lines[0]
    rows = [line for line in lines if line.lstrip().startswith(("0.0", "1.0", "2.0"))]
    assert len(rows) == 3
    assert rows[0].split()[1] == "2"         # two arrivals in [0, 1)
    assert rows[1].split()[2] == "2"         # served sums across servers
    assert any(line.strip().startswith("arrivals") for line in lines[1:])  # sparkline


def test_watch_table_marks_active_alerts():
    alerts = {
        "slos": [
            {"alerts": [{"fired_at": 0.9, "cleared_at": 2.0}]},
        ]
    }
    table = watch_table(_hub().timeline(), alerts=alerts, every=1.0)
    row = next(l for l in table.splitlines() if l.lstrip().startswith("1.0"))
    assert row.split()[-1] == "1"


def test_watch_table_empty_timeline():
    assert watch_table({}) == "(no telemetry samples)"


def test_render_timeline_plots_rates_and_latency():
    out = render_timeline(_hub().timeline())
    assert "windowed rates" in out
    assert "windowed p95 completion latency" in out
    assert "arrivals" in out
    assert render_timeline({}) == "(no telemetry series to plot)"


def test_sparkline():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0]) == "▁▁"      # constant series stays flat
    ramp = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(ramp) == 4
    assert ramp[0] == "▁" and ramp[-1] == "█"
