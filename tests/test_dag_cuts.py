"""Cut semantics and frontier enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.cuts import (
    Cut,
    cut_edge_tails,
    cut_transfer_bytes,
    enumerate_frontier_cuts,
    is_downward_closed,
    make_cut,
    prune_dominated,
)
from repro.dag.graph import Dag


def residual() -> Dag:
    """entry -> (conv chain | bypass) -> add -> tail."""
    g = Dag(name="residual")
    for v in ("in", "entry", "c1", "c2", "add", "tail"):
        g.add_node(v)
    g.add_edge("in", "entry", 100)
    g.add_edge("entry", "c1", 50)
    g.add_edge("c1", "c2", 80)
    g.add_edge("entry", "add", 50)  # bypass carries entry's tensor
    g.add_edge("c2", "add", 60)
    g.add_edge("add", "tail", 40)
    return g


def test_downward_closed_detection():
    g = residual()
    assert is_downward_closed(g, {"in", "entry"})
    assert is_downward_closed(g, set())
    assert not is_downward_closed(g, {"c1"})  # missing entry
    assert not is_downward_closed(g, {"in", "entry", "add"})  # missing c2


def test_cut_edge_tails_distinct():
    g = residual()
    # cutting after entry: both crossing edges share the tail 'entry'
    assert cut_edge_tails(g, {"in", "entry"}) == ["entry"]
    assert cut_edge_tails(g, {"in", "entry", "c1"}) == ["entry", "c1"]


def test_transfer_bytes_counts_shared_tensor_once():
    g = residual()
    # entry feeds both c1 (50) and add (50): one tensor, charged once
    assert cut_transfer_bytes(g, {"in", "entry"}) == 50
    # cut {in, entry, c1}: entry->add (50) + c1->c2 (80)
    assert cut_transfer_bytes(g, {"in", "entry", "c1"}) == 130


def test_make_cut_validates_closure():
    g = residual()
    cut = make_cut(g, {"in", "entry"}, label="after-entry")
    assert cut.transfer_bytes == 50
    assert cut.frontier == ("entry",)
    with pytest.raises(ValueError, match="downward-closed"):
        make_cut(g, {"c1"})


def test_cut_rejects_negative_bytes():
    with pytest.raises(ValueError):
        Cut(mobile=frozenset(), frontier=(), transfer_bytes=-1)


def test_enumerate_frontier_cuts_residual():
    g = residual()
    cuts = enumerate_frontier_cuts(g)
    mobiles = {c.mobile for c in cuts}
    # after in, after entry, entry+c1, entry+c1+c2, after add, after tail
    assert frozenset({"in"}) in mobiles
    assert frozenset({"in", "entry"}) in mobiles
    assert frozenset({"in", "entry", "c1"}) in mobiles
    assert frozenset({"in", "entry", "c1", "c2"}) in mobiles
    assert frozenset(g.node_ids) in mobiles
    assert len(cuts) == 6
    for cut in cuts:
        assert is_downward_closed(g, cut.mobile)


def test_enumerate_include_empty_flag():
    g = residual()
    cuts = enumerate_frontier_cuts(g, include_empty=True)
    assert frozenset() in {c.mobile for c in cuts}


def test_enumerate_cut_cap():
    g = residual()
    with pytest.raises(ValueError, match="more than 2"):
        enumerate_frontier_cuts(g, max_cuts=2)


def test_exhaustive_cut_space_tiny():
    g = residual()
    order = g.topological_order()
    expected = set()
    for mask in range(2 ** len(order)):
        mobile = frozenset(v for i, v in enumerate(order) if mask >> i & 1)
        if mobile and is_downward_closed(g, mobile):
            expected.add(mobile)
    cuts = enumerate_frontier_cuts(g)
    assert {c.mobile for c in cuts} == expected


def test_prune_dominated_keeps_pareto_front():
    cuts = [
        Cut(mobile=frozenset({"a"}), frontier=("a",), transfer_bytes=100, label="A"),
        Cut(mobile=frozenset({"a", "b"}), frontier=("b",), transfer_bytes=60, label="B"),
        Cut(mobile=frozenset({"a", "c"}), frontier=("c",), transfer_bytes=120, label="C"),
        Cut(mobile=frozenset({"a", "b", "c"}), frontier=("d",), transfer_bytes=60, label="D"),
    ]
    costs = {
        frozenset({"a"}): 1.0,
        frozenset({"a", "b"}): 2.0,
        frozenset({"a", "c"}): 3.0,      # dominated by B: more f, more g
        frozenset({"a", "b", "c"}): 4.0,  # dominated by B: more f, equal g
    }
    survivors = prune_dominated(cuts, costs)
    assert [c.label for c in survivors] == ["A", "B"]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 10), st.floats(0, 10)), min_size=1, max_size=20))
def test_prune_dominated_property(pairs):
    """Survivors form a strict Pareto staircase covering every dropped cut."""
    cuts = [
        Cut(mobile=frozenset({f"n{i}"}), frontier=(), transfer_bytes=g, label=str(i))
        for i, (_, g) in enumerate(pairs)
    ]
    costs = {frozenset({f"n{i}"}): f for i, (f, _) in enumerate(pairs)}
    survivors = prune_dominated(cuts, costs)
    points = [(costs[c.mobile], c.transfer_bytes) for c in survivors]
    # sorted by f ascending, g strictly decreasing -> no survivor dominates another
    assert points == sorted(points, key=lambda p: p[0])
    assert all(b[1] < a[1] for a, b in zip(points, points[1:]))
    # every input cut is weakly dominated by some survivor
    for c in cuts:
        point = (costs[c.mobile], c.transfer_bytes)
        assert any(s[0] <= point[0] and s[1] <= point[1] for s in points)
