"""Process-pool campaign fan-out: chunking, parity, jobs resolution."""

import pytest

from repro.experiments.parallel import (
    GridCell,
    _model_chunks,
    plan_grid,
    resolve_jobs,
)
from repro.experiments.runner import ExperimentEnv


def cells_for(models, bandwidths, n=5):
    return [
        GridCell(model=m, bandwidth=float(b), n=n) for m in models for b in bandwidths
    ]


def test_resolve_jobs_serial_values():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4


def test_model_chunks_partition_exactly():
    cells = cells_for(["alexnet", "mobilenet-v2", "googlenet"], [1, 5, 10, 20])
    chunks = _model_chunks(cells, workers=4)
    flat = sorted(index for chunk in chunks for index in chunk)
    assert flat == list(range(len(cells)))
    for chunk in chunks:
        models = {cells[i].model for i in chunk}
        assert len(models) == 1  # a chunk never mixes models


def test_model_chunks_bound_per_model_spread():
    cells = cells_for(["googlenet"], range(20))
    chunks = _model_chunks(cells, workers=4)
    assert 1 <= len(chunks) <= 4  # one model never fans wider than the pool


def test_plan_grid_parallel_matches_serial():
    cells = cells_for(["alexnet", "mobilenet-v2"], [5.0, 20.0], n=5)
    env = ExperimentEnv()
    serial = plan_grid(cells, env=env, jobs=1)
    parallel = plan_grid(cells, env=ExperimentEnv(), jobs=2)
    assert len(serial) == len(parallel) == len(cells)
    for ours, theirs in zip(serial, parallel):
        assert ours.keys() == theirs.keys()
        for scheme in ours:
            assert ours[scheme].makespan == theirs[scheme].makespan
            assert [p.cut_position for p in ours[scheme].jobs] == [
                p.cut_position for p in theirs[scheme].jobs
            ]


def test_plan_grid_empty_and_single_cell():
    assert plan_grid([], jobs=4) == []
    env = ExperimentEnv()
    [only] = plan_grid(cells_for(["alexnet"], [10.0], n=3), env=env, jobs=4)
    assert only["JPS"].makespan == pytest.approx(
        env.run_scheme("alexnet", 10.0, 3, "JPS").makespan
    )


def test_harnesses_accept_jobs_knob():
    from repro.experiments import table1

    env = ExperimentEnv()
    serial = table1.run(env, models=["alexnet"], n=5, jobs=1)
    fanned = table1.run(ExperimentEnv(), models=["alexnet"], n=5, jobs=2)
    assert [r.reductions for r in serial] == [r.reductions for r in fanned]
