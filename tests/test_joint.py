"""JPS end to end: line, frontier, dominance over baselines, vs brute force."""

import numpy as np
import pytest

from repro.core.baselines import brute_force, cloud_only, local_only, partition_only
from repro.core.joint import frontier_table, jps, jps_frontier, jps_line
from repro.core.partition import binary_search_cut
from repro.profiling.latency import line_cost_table, smooth_cost_table


def test_jps_line_metadata(alexnet_table):
    schedule = jps_line(alexnet_table, 10)
    assert schedule.method == "JPS"
    assert schedule.num_jobs == 10
    assert schedule.metadata["l_star"] == binary_search_cut(alexnet_table)
    assert schedule.metadata["n_a"] + schedule.metadata["n_b"] == 10
    assert schedule.metadata["scheduler_overhead_s"] < 0.5


def test_jps_uses_at_most_two_cuts(alexnet_table):
    schedule = jps_line(alexnet_table, 50)
    assert len(schedule.cut_histogram()) <= 2


def test_jps_split_modes(alexnet_table):
    exact = jps_line(alexnet_table, 20, split="exact")
    ratio = jps_line(alexnet_table, 20, split="ratio")
    assert exact.makespan <= ratio.makespan + 1e-12
    with pytest.raises(ValueError, match="split mode"):
        jps_line(alexnet_table, 20, split="magic")


def test_jps_beats_baselines_across_models(env):
    for model in ("alexnet", "mobilenet-v2", "resnet18", "googlenet"):
        for bandwidth in (1.1, 5.85, 18.88):
            table = env.cost_table(model, bandwidth)
            j = jps_line(table, 30)
            assert j.makespan <= local_only(table, 30).makespan + 1e-9
            assert j.makespan <= cloud_only(table, 30).makespan + 1e-9
            assert j.makespan <= partition_only(table, 30).makespan + 1e-9


def test_jps_matches_brute_force_on_smoothed_table(alexnet_table):
    prime = smooth_cost_table(alexnet_table)
    for n in (2, 4, 6):
        j = jps_line(prime, n)
        bf = brute_force(prime, n)
        assert j.makespan <= bf.makespan * 1.15 + 1e-12  # near-optimal


def test_jps_gap_to_brute_force_bounded_on_raw_table(alexnet_table):
    for n in (2, 4, 8):
        j = jps_line(alexnet_table, n)
        bf = brute_force(alexnet_table, n)
        assert bf.makespan <= j.makespan + 1e-12
        assert j.makespan <= bf.makespan * 1.25


def test_frontier_table_is_line_shaped(googlenet, mobile, cloud, channel_10mbps):
    frontier = frontier_table(googlenet, mobile, cloud, channel_10mbps)
    table = frontier.table
    assert np.all(np.diff(table.f) >= 0)
    assert table.is_g_non_increasing()
    assert len(frontier.cuts) == table.k
    # boundary cuts: input-only (f=0) and full graph (g=0)
    assert table.f[0] == 0.0
    assert table.g[-1] == 0.0
    # every consecutive pair strictly improves g (Pareto staircase)
    assert all(b < a for a, b in zip(table.g[:-1], table.g[1:]))


def test_jps_frontier_attaches_mobile_sets(googlenet, mobile, cloud, channel_10mbps):
    schedule = jps_frontier(googlenet, mobile, cloud, channel_10mbps, 10)
    assert schedule.method == "JPS-frontier"
    assert all(p.mobile_nodes is not None for p in schedule.jobs)
    from repro.dag.cuts import is_downward_closed

    for plan in schedule.jobs:
        assert is_downward_closed(googlenet.graph, plan.mobile_nodes)


def test_jps_dispatch_auto(alexnet, googlenet, mobile, cloud, channel_10mbps):
    line = jps(alexnet, mobile, cloud, channel_10mbps, 5)
    assert line.method == "JPS"
    general = jps(googlenet, mobile, cloud, channel_10mbps, 5)
    assert general.method == "JPS-frontier"
    with pytest.raises(ValueError, match="structure"):
        jps(alexnet, mobile, cloud, channel_10mbps, 5, structure="nope")


def test_jps_dispatch_paths(mini_inception, mobile, cloud, channel_10mbps):
    schedule = jps(mini_inception, mobile, cloud, channel_10mbps, 4, structure="paths")
    assert schedule.method == "JPS-paths"


def test_frontier_beats_linearized_on_general_dag(googlenet, mobile, cloud, channel_10mbps):
    """Keeping intra-module cuts must not hurt (and usually helps)."""
    table = line_cost_table(googlenet, mobile, cloud, channel_10mbps)
    linearized = jps_line(table, 20)
    frontier = jps_frontier(googlenet, mobile, cloud, channel_10mbps, 20)
    assert frontier.makespan <= linearized.makespan + 1e-9
