"""Layer shape/FLOP/parameter arithmetic against hand-computed values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    Linear,
    LRN,
    MaxPool2d,
    ReLU,
    ShapeError,
    Softmax,
    numel,
)


def test_input_layer():
    layer = Input(shape=(3, 224, 224))
    assert layer.output_shape() == (3, 224, 224)
    assert layer.flops() == 0.0
    assert layer.arity == 0
    with pytest.raises(ShapeError):
        Input(shape=(0, 2))
    with pytest.raises(ShapeError):
        layer.output_shape((1,))


def test_conv2d_alexnet_first_layer():
    conv = Conv2d(64, kernel=11, stride=4, padding=2)
    out = conv.output_shape((3, 224, 224))
    assert out == (64, 55, 55)
    # 2 * 64*55*55 * 3*11*11 + bias adds
    assert conv.flops((3, 224, 224)) == pytest.approx(2 * 64 * 55 * 55 * 363 + 64 * 55 * 55)
    assert conv.param_count((3, 224, 224)) == 64 * 3 * 11 * 11 + 64


def test_conv2d_same_padding():
    conv = Conv2d(8, kernel=3, padding="same")
    assert conv.output_shape((4, 17, 17)) == (8, 17, 17)
    with pytest.raises(ShapeError, match="odd kernel"):
        Conv2d(8, kernel=4, padding="same").output_shape((4, 8, 8))


def test_conv2d_rejects_collapsed_output():
    with pytest.raises(ShapeError):
        Conv2d(8, kernel=7).output_shape((3, 4, 4))


def test_conv2d_no_bias():
    with_bias = Conv2d(8, kernel=3).flops((4, 10, 10))
    without = Conv2d(8, kernel=3, bias=False).flops((4, 10, 10))
    assert with_bias - without == numel((8, 8, 8))


def test_conv_config_validation():
    with pytest.raises(ShapeError):
        Conv2d(0, kernel=3)
    with pytest.raises(ShapeError):
        Conv2d(8, kernel=3, padding="full")


def test_depthwise_conv():
    dw = DepthwiseConv2d(kernel=3, stride=2, padding="same")
    assert dw.output_shape((32, 112, 112)) == (32, 56, 56)
    assert dw.flops((32, 112, 112)) == pytest.approx(2 * 32 * 56 * 56 * 9 + 32 * 56 * 56)
    assert dw.param_count((32, 112, 112)) == 32 * 9 + 32


def test_pools():
    assert MaxPool2d(kernel=3, stride=2).output_shape((64, 55, 55)) == (64, 27, 27)
    assert AvgPool2d(kernel=2).output_shape((8, 8, 8)) == (8, 4, 4)  # stride defaults to kernel
    assert MaxPool2d(kernel=3, stride=2, padding=1).output_shape((64, 112, 112)) == (64, 56, 56)
    assert GlobalAvgPool().output_shape((1024, 7, 7)) == (1024,)
    assert GlobalAvgPool().flops((1024, 7, 7)) == 1024 * 49


def test_linear():
    fc = Linear(4096)
    assert fc.output_shape((9216,)) == (4096,)
    assert fc.flops((9216,)) == 2 * 9216 * 4096 + 4096
    assert fc.param_count((9216,)) == 9216 * 4096 + 4096
    with pytest.raises(ShapeError):
        fc.output_shape((3, 4, 5))
    with pytest.raises(ShapeError):
        Linear(0)


def test_elementwise_layers():
    shape = (16, 8, 8)
    assert ReLU().output_shape(shape) == shape
    assert ReLU().flops(shape) == numel(shape)
    assert BatchNorm2d().flops(shape) == 2 * numel(shape)
    assert BatchNorm2d().param_count(shape) == 64
    assert LRN(local_size=5).flops(shape) == 9 * numel(shape)
    assert Dropout().flops(shape) == 0.0
    assert Softmax().flops((1000,)) == 5000


def test_flatten():
    assert Flatten().output_shape((256, 6, 6)) == (9216,)
    assert Flatten().flops((256, 6, 6)) == 0.0


def test_concat():
    cat = Concat()
    out = cat.output_shape((64, 28, 28), (128, 28, 28), (32, 28, 28))
    assert out == (224, 28, 28)
    assert cat.flops((64, 28, 28), (128, 28, 28)) == 0.0
    with pytest.raises(ShapeError, match="spatial"):
        cat.output_shape((64, 28, 28), (64, 14, 14))
    with pytest.raises(ShapeError):
        cat.output_shape((64, 28, 28))


def test_add():
    add = Add()
    assert add.output_shape((24, 56, 56), (24, 56, 56)) == (24, 56, 56)
    assert add.flops((24, 56, 56), (24, 56, 56)) == numel((24, 56, 56))
    with pytest.raises(ShapeError, match="share a shape"):
        add.output_shape((24, 56, 56), (12, 56, 56))


def test_unary_layers_reject_multiple_inputs():
    with pytest.raises(ShapeError):
        ReLU().output_shape((3, 4, 4), (3, 4, 4))


@settings(max_examples=60, deadline=None)
@given(
    c=st.integers(1, 16),
    size=st.integers(8, 64),
    out_c=st.integers(1, 32),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.integers(1, 3),
)
def test_conv_output_shape_formula(c, size, out_c, kernel, stride):
    pad = (kernel - 1) // 2
    conv = Conv2d(out_c, kernel=kernel, stride=stride, padding=pad)
    oc, oh, ow = conv.output_shape((c, size, size))
    assert oc == out_c
    assert oh == (size + 2 * pad - kernel) // stride + 1
    assert oh == ow
    assert conv.flops((c, size, size)) > 0
    assert conv.param_count((c, size, size)) > 0


@settings(max_examples=30, deadline=None)
@given(c=st.integers(1, 8), h=st.integers(2, 32), w=st.integers(2, 32))
def test_pool_never_increases_volume(c, h, w):
    out = MaxPool2d(kernel=2, stride=2).output_shape((c, h, w)) if h >= 2 and w >= 2 else None
    if out is not None:
        assert numel(out) <= numel((c, h, w))
