"""The experiment environment itself: caching, grids, scheme parity."""

import numpy as np
import pytest

from repro.experiments.runner import EXPERIMENT_MODELS, SCHEMES
from repro.net.bandwidth import FOUR_G


def test_constants():
    assert EXPERIMENT_MODELS == ["alexnet", "googlenet", "mobilenet-v2", "resnet18"]
    assert SCHEMES == ["LO", "CO", "PO", "JPS"]


def test_network_cache_returns_same_object(env):
    assert env.network("alexnet") is env.network("alexnet")


def test_channel_accepts_preset_and_mbps(env):
    a = env.channel(FOUR_G)
    b = env.channel(5.85)
    assert a.uplink_bps == pytest.approx(b.uplink_bps)


def test_scheme_grid_shape(env):
    grid = env.scheme_grid(["alexnet", "resnet18"], 10.0, 5)
    assert set(grid) == {"alexnet", "resnet18"}
    for schedules in grid.values():
        assert set(schedules) == set(SCHEMES)
        for schedule in schedules.values():
            assert schedule.num_jobs == 5


def test_jps_ratio_scheme_available(env):
    ratio = env.run_scheme("alexnet", 10.0, 10, "JPS-ratio")
    exact = env.run_scheme("alexnet", 10.0, 10, "JPS")
    assert ratio.metadata["split"] == "ratio"
    assert exact.makespan <= ratio.makespan + 1e-12


def test_frontier_table_bandwidth_scaling(env):
    """Cached frontier structure reprices g per bandwidth; f is invariant."""
    fast = env.cost_table("googlenet", 40.0)
    slow = env.cost_table("googlenet", 2.0)
    assert np.allclose(fast.f, slow.f)
    interior = slice(1, -1)
    assert np.all(slow.g[interior] > fast.g[interior])
    # the fully-local position never pays communication
    assert fast.g[-1] == slow.g[-1] == 0.0


def test_line_tables_are_graph_backed(env):
    table = env.cost_table("alexnet", 10.0)
    assert table.graph is not None
    general = env.cost_table("googlenet", 10.0)
    assert general.graph is None  # synthesized from the Pareto frontier


def test_multitask_and_inception_classified_general(env):
    assert not env.treats_as_line("multitask-perception")
    assert not env.treats_as_line("mini-inception")
    assert env.treats_as_line("squeezenet")
