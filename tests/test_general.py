"""Alg. 3: path decomposition, dedup scheduling, consistency repair."""

import pytest

from repro.core.general import (
    alg3_consistent_plans,
    alg3_partition,
    alg3_schedule,
    clustered_view,
    representative_paths,
)
from repro.dag.cuts import is_downward_closed
from repro.dag.topology import enumerate_paths
from tests.helpers import make_table


def test_clustered_view_filters_non_monotone_g():
    table = make_table(f=[0.0, 1.0, 2.0, 3.0], g=[5.0, 7.0, 4.0, 0.0])
    view, kept = clustered_view(table)
    assert kept == [0, 2, 3]
    assert view.is_g_non_increasing()
    assert list(view.f) == [0.0, 2.0, 3.0]


def test_clustered_view_keeps_last_position():
    table = make_table(f=[0.0, 1.0], g=[1.0, 1.0])
    view, kept = clustered_view(table)
    assert kept[-1] == 1


def test_alg3_partition_one_cut_per_path(branchy, mobile, cloud, channel_10mbps):
    plans, info = alg3_partition(branchy, mobile, cloud, channel_10mbps)
    assert info["conversion"] == "faithful"
    assert info["num_paths"] == 6
    for plan in plans:
        assert plan.path[: plan.cut_index + 1] == plan.mobile_prefix
        assert plan.nominal_compute >= 0
        assert plan.comm_time >= 0


def test_alg3_schedule_dedup_counts_layers_once(branchy, mobile, cloud, channel_10mbps):
    n = 3
    schedule = alg3_schedule(branchy, mobile, cloud, channel_10mbps, n)
    assert schedule.method == "JPS-paths"
    assert schedule.metadata["units"] == n * 6
    # total deduplicated compute <= n * full-graph mobile time
    from repro.profiling.latency import node_mobile_time

    full = sum(
        node_mobile_time(branchy.graph.payload(v), mobile)
        for v in branchy.graph.node_ids
    )
    total_compute = sum(p.compute_time for p in schedule.jobs)
    assert total_compute <= n * full + 1e-9
    # per job, each node charged at most once: group sums by job id
    per_job: dict[int, float] = {}
    for plan in schedule.jobs:
        per_job[plan.job_id] = per_job.get(plan.job_id, 0.0) + plan.compute_time
    for value in per_job.values():
        assert value <= full + 1e-9


def test_alg3_schedule_makespan_positive_and_bounded(mini_inception, mobile, cloud, channel_10mbps):
    schedule = alg3_schedule(mini_inception, mobile, cloud, channel_10mbps, 4)
    assert schedule.makespan > 0
    # sanity upper bound: everything serial (compute all + upload all cuts)
    serial = sum(p.compute_time for p in schedule.jobs) + sum(
        p.comm_time for p in schedule.jobs
    )
    assert schedule.makespan <= serial + 1e-9


def test_representative_paths_cover_all_nodes(googlenet):
    paths = representative_paths(googlenet.graph)
    covered = {v for p in paths for v in p}
    assert covered == set(googlenet.graph.node_ids)
    # sigma growth: one default + one variant per extra branch
    assert len(paths) < 40


def test_representative_paths_are_real_paths(mini_inception):
    graph = mini_inception.graph
    paths = representative_paths(graph)
    real = {tuple(p) for p in enumerate_paths(graph)}
    for path in paths:
        assert path in real


def test_alg3_falls_back_to_representative_paths(googlenet, mobile, cloud, channel_10mbps):
    plans, info = alg3_partition(googlenet, mobile, cloud, channel_10mbps, max_paths=100)
    assert info["conversion"] == "representative"
    assert 0 < info["num_paths"] < 40
    assert len(plans) == info["num_paths"]


def test_alg3_consistent_plan_is_executable(mini_inception, mobile, cloud, channel_10mbps):
    plan = alg3_consistent_plans(mini_inception, mobile, cloud, channel_10mbps)
    assert plan.mobile_nodes is not None
    assert is_downward_closed(mini_inception.graph, plan.mobile_nodes)
    assert plan.compute_time >= 0 and plan.comm_time >= 0


def test_alg3_consistent_on_googlenet(googlenet, mobile, cloud, channel_10mbps):
    plan = alg3_consistent_plans(googlenet, mobile, cloud, channel_10mbps, max_paths=100)
    assert is_downward_closed(googlenet.graph, plan.mobile_nodes)


def test_alg3_requires_positive_n(branchy, mobile, cloud, channel_10mbps):
    with pytest.raises(ValueError):
        alg3_schedule(branchy, mobile, cloud, channel_10mbps, 0)
