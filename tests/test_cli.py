"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_models_command(capsys):
    out = run_cli(capsys, "models")
    assert "alexnet" in out and "googlenet" in out
    assert "general" in out and "line" in out


def test_summary_command(capsys):
    out = run_cli(capsys, "summary", "nin")
    assert "nin" in out and "GFLOPs" in out


def test_table_command(capsys):
    out = run_cli(capsys, "table", "alexnet", "--mbps", "10")
    assert "cut positions" in out
    assert "f (ms)" in out


def test_plan_command(capsys):
    out = run_cli(capsys, "plan", "alexnet", "-n", "10", "--mbps", "10")
    assert "JPS" in out and "makespan" in out and "l*" in out


def test_plan_with_gantt(capsys):
    out = run_cli(capsys, "plan", "alexnet", "-n", "6", "--mbps", "10", "--gantt")
    assert "mobile-cpu" in out and "uplink" in out


def test_plan_baseline_scheme(capsys):
    out = run_cli(capsys, "plan", "alexnet", "-n", "5", "--scheme", "LO")
    assert "LO" in out


def test_compare_command(capsys):
    out = run_cli(capsys, "compare", "alexnet", "-n", "20", "--mbps", "10")
    assert "LP-LB" in out
    assert "reduction vs LO" in out
    # JPS row present and the bound row is last numeric row
    assert "JPS" in out


def test_experiment_fig4(capsys):
    out = run_cli(capsys, "experiment", "fig4")
    assert "Fig. 4" in out


def test_experiment_table1(capsys):
    out = run_cli(capsys, "experiment", "table1")
    assert "Table 1" in out


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["summary", "alexnet-9000"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_help_lists_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("models", "summary", "table", "plan", "compare", "experiment"):
        assert command in text


def test_dot_command(capsys):
    out = run_cli(capsys, "dot", "alexnet", "--mbps", "10")
    assert out.startswith("digraph")
    assert "fillcolor" in out          # the JPS cut is highlighted
    assert "penwidth=2.5" in out       # crossing edges marked


def test_dot_command_general_model(capsys):
    out = run_cli(capsys, "dot", "mini-inception", "--mbps", "10")
    assert out.startswith("digraph")


def test_energy_command(capsys):
    out = run_cli(capsys, "energy", "alexnet", "--radio", "cellular")
    assert "Pareto points" in out
    assert "J" in out


def test_campaign_command_roundtrip(capsys, tmp_path):
    out = run_cli(capsys, "campaign", str(tmp_path / "a.json"), "--quick")
    assert "campaign saved" in out
    out = run_cli(
        capsys, "campaign", str(tmp_path / "b.json"), "--quick",
        "--compare", str(tmp_path / "a.json"),
    )
    assert "no regressions" in out


def test_campaign_command_detects_regression(capsys, tmp_path, monkeypatch):
    import json

    run_cli(capsys, "campaign", str(tmp_path / "a.json"), "--quick")
    doc = json.loads((tmp_path / "a.json").read_text())
    doc["fig11"][0]["jps_s"] *= 3.0
    (tmp_path / "a.json").write_text(json.dumps(doc))
    from repro.cli import main as cli_main

    code = cli_main(
        ["campaign", str(tmp_path / "b.json"), "--quick",
         "--compare", str(tmp_path / "a.json")]
    )
    assert code == 1


def test_serve_command(capsys):
    out = run_cli(
        capsys, "serve", "--clients", "2", "--rate", "1", "--horizon", "8",
        "--scheme", "JPS", "--scheme", "LO",
    )
    assert "JPS" in out and "LO" in out
    assert "served" in out and "p95" in out


def test_serve_json_to_stdout(capsys):
    import json

    out = run_cli(
        capsys, "serve", "--clients", "2", "--rate", "1", "--horizon", "8",
        "--scheme", "JPS", "--json", "-",
    )
    payload = json.loads(out[out.index("{"):])
    assert payload["schemes"]["JPS"]["balance_ok"] is True
    assert payload["arrivals"] > 0


def test_serve_faults_command(capsys, tmp_path):
    import json

    artifact = tmp_path / "faults.json"
    out = run_cli(
        capsys, "serve", "--faults", "--clients", "2", "--rate", "1.5",
        "--horizon", "10", "--blackout-start", "3", "--blackout-duration", "1.5",
        "--json", str(artifact),
    )
    assert "blackout 3s +1.5s" in out
    assert "policy" in out and "no_policy" in out
    assert "accounting violations 0" in out
    payload = json.loads(artifact.read_text())
    assert payload["comparison"]["degradations"] >= 1
    assert payload["policy"]["violations"] == []
    assert payload["no_policy"]["violations"] == []


def test_serve_faults_json_to_stdout(capsys):
    import json

    out = run_cli(
        capsys, "serve", "--faults", "--clients", "2", "--rate", "1.5",
        "--horizon", "10", "--json", "-",
    )
    payload = json.loads(out[out.index("{"):])
    assert payload["config"]["fault_plan"]["blackouts"] == [[8.0, 10.0]]
    assert payload["config"]["resilience"]["local_fallback"] is True


def test_experiment_serving(capsys):
    out = run_cli(capsys, "experiment", "serving")
    assert "serving" in out.lower()
    assert "JPS" in out


def test_fleet_command_with_single_server_comparison(capsys):
    out = run_cli(
        capsys, "fleet", "--servers", "2", "--clients", "4", "--rate", "2",
        "--horizon", "6", "--compare-single",
    )
    assert "2 servers" in out and "within deadline" in out
    assert "violations 0" in out
    assert "vs single server" in out


def test_fleet_json_to_stdout(capsys):
    import json

    out = run_cli(
        capsys, "fleet", "--servers", "2", "--clients", "4", "--rate", "2",
        "--horizon", "6", "--json", "-",
    )
    payload = json.loads(out[out.index("{"):])
    assert payload["violations"] == [] and payload["clock_violations"] == []
    fleet = payload["fleet"]
    assert fleet["arrivals"] > 0
    assert set(payload["servers"]) == {"server0", "server1"}
    assert fleet["arrived_servers"] + fleet["rejected_fleet"] == fleet["arrivals"]


def test_fleet_json_artifact(capsys, tmp_path):
    import json

    artifact = tmp_path / "fleet.json"
    out = run_cli(
        capsys, "fleet", "--servers", "2", "--clients", "2", "--rate", "1",
        "--horizon", "6", "--placement", "eft", "--json", str(artifact),
    )
    assert "system report written to" in out
    payload = json.loads(artifact.read_text())
    assert payload["config"]["placement"]["policy"] == "eft"
    assert payload["violations"] == []


def test_experiment_fleet(capsys):
    out = run_cli(capsys, "experiment", "fleet")
    assert "fig_fleet" in out
    assert "invariant violations: 0" in out
