"""Burn-rate SLOs: unit math, acceptance scenarios, replay determinism.

The acceptance locks mirror the CI ``slo-smoke`` job exactly, through
the same single definition (:func:`repro.fleet.config.slo_acceptance_scenario`):

* **steady** — a healthy fleet with slack: zero alerts, ever (the
  negative control — an SLO board that fires here is miscalibrated);
* **blackout** — the PR-5 blackout (8s→10s): the alert first fires
  *during or just after* the outage and clears after recovery;
* **contended** — the PR-7 under-provisioned shared GPU: the alert
  fires within the first two seconds and is still active at the end.

Alert evaluation is driven purely by outcome events on the virtual
clock, so the same seed replays to the byte-identical alert list — the
Hypothesis property locks that across seeds, and a paired run asserts
telemetry never perturbs the simulation itself.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import PlanningEngine
from repro.fleet import run_system
from repro.fleet.config import (
    SCENARIO_SLO,
    SLO_SCENARIOS,
    blackout_fleet_scenario,
    slo_acceptance_scenario,
    steady_fleet_scenario,
    with_slo_telemetry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    NULL_BOARD,
    SloBoard,
    SloConfig,
    SloMonitor,
    default_slos,
)
from repro.obs.tracer import Tracer
from repro.core.plans import json_safe

PLANNER = PlanningEngine()


# ----------------------------------------------------------------------
# config validation + burn-rate math
# ----------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError, match="target"):
        SloConfig(target=1.0)
    with pytest.raises(ValueError, match="fast_window"):
        SloConfig(window=1.0, fast_window=2.0)
    config = SloConfig()
    assert config.budget == pytest.approx(0.1)
    assert SloConfig.from_dict(config.as_dict()) == config
    assert default_slos() == (SloConfig(),)


def test_burn_rate_is_miss_fraction_over_budget():
    monitor = SloMonitor(SloConfig(target=0.9, min_events=100))
    for i in range(8):
        monitor.record(0.1 * i, good=i % 2 == 0)   # 50% bad
    burn, events = monitor.burn_rate(4.0, now=0.8)
    assert events == 8
    assert burn == pytest.approx(0.5 / 0.1)        # 5x budget burn


def test_fire_requires_min_events():
    monitor = SloMonitor(SloConfig(min_events=8))
    for i in range(7):
        monitor.record(0.1 * i, good=False)
    assert not monitor.active
    monitor.record(0.8, good=False)                # 8th event trips it
    assert monitor.active
    assert monitor.alerts[0]["cleared_at"] is None


def test_fire_then_clear_on_fast_window_recovery():
    config = SloConfig(target=0.9, window=4.0, fast_window=1.0, min_events=8)
    tracer = Tracer()
    metrics = MetricsRegistry()
    monitor = SloMonitor(config, tracer=tracer, metrics=metrics)
    for i in range(10):
        monitor.record(0.05 * i, good=False)
    assert monitor.active
    # a clean fast window: goods far enough out that the 1 s fast
    # window no longer sees the bad burst
    for i in range(20):
        monitor.record(2.0 + 0.05 * i, good=True)
    assert not monitor.active
    alert = monitor.alerts[0]
    assert alert["cleared_at"] is not None
    assert alert["duration"] == pytest.approx(
        alert["cleared_at"] - alert["fired_at"]
    )
    names = [instant.name for instant in tracer.instants]
    assert names.count("slo/fire") == 1 and names.count("slo/clear") == 1
    snapshot = metrics.snapshot()
    assert snapshot["counters"]['slo_alerts_fired{slo="deadline-hit-rate"}'] == 1
    assert snapshot["counters"]['slo_alerts_cleared{slo="deadline-hit-rate"}'] == 1


def test_finalize_publishes_gauges():
    metrics = MetricsRegistry()
    monitor = SloMonitor(SloConfig(), metrics=metrics)
    monitor.record(0.1, good=True)
    monitor.finalize(1.0)
    gauges = metrics.snapshot()["gauges"]
    assert gauges['slo_active{slo="deadline-hit-rate"}'] == 0.0
    assert 'slo_burn_rate{slo="deadline-hit-rate",window="long"}' in gauges
    assert 'slo_burn_rate{slo="deadline-hit-rate",window="fast"}' in gauges


def test_board_fans_out_and_reports():
    board = SloBoard((SloConfig(name="a", min_events=1), SloConfig(name="b")))
    board.outcome(0.1, False)
    report = board.report()
    assert [block["slo"]["name"] for block in report["slos"]] == ["a", "b"]
    assert report["fired"] == 1 and board.fired == 1
    assert NULL_BOARD.enabled is False and NULL_BOARD.report() == {}


# ----------------------------------------------------------------------
# acceptance scenarios (the slo-smoke locks)
# ----------------------------------------------------------------------


def _alerts(report):
    return report.alerts["slos"][0]["alerts"]


def test_steady_scenario_fires_nothing():
    report = run_system(slo_acceptance_scenario("steady"), planner=PLANNER)
    assert report.ok
    assert report.alerts["fired"] == 0
    assert report.alerts["active_at_end"] == 0
    # the timeline recorded the run even though nothing fired
    assert report.timeline["series"]


def test_blackout_scenario_fires_during_outage_and_clears():
    config = slo_acceptance_scenario("blackout")
    blackout = config.faults.plan.blackouts[0]
    report = run_system(config, planner=PLANNER, tracer=Tracer())
    assert report.ok
    assert report.alerts["fired"] > 0
    assert report.alerts["cleared"] > 0
    first = _alerts(report)[0]
    # first fire lands in (or just after) the 8s→10s outage; the miss
    # backlog takes the alert past the outage end before it clears
    assert blackout.start <= first["fired_at"] <= blackout.end + 2.0
    assert first["cleared_at"] > blackout.end


def test_contended_scenario_fires_early_and_stays_active():
    report = run_system(slo_acceptance_scenario("contended"), planner=PLANNER)
    assert report.ok
    assert report.alerts["fired"] >= 1
    assert _alerts(report)[0]["fired_at"] < 2.0
    assert report.alerts["active_at_end"] >= 1


def test_unknown_scenario_rejected():
    assert SLO_SCENARIOS == ("steady", "blackout", "contended")
    with pytest.raises(ValueError, match="unknown SLO scenario"):
        slo_acceptance_scenario("meltdown")


def test_scenario_slo_calibration_is_locked():
    assert SCENARIO_SLO == SloConfig(target=0.6, fast_window=2.0)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------


def test_telemetry_never_perturbs_the_simulation():
    """Same seed, telemetry on vs off: identical serving outcome.

    Fresh planners on both sides: the gateway report embeds the engine
    cache gauges, which reflect planner warmth, not run behavior.
    """
    plain = run_system(steady_fleet_scenario(), planner=PlanningEngine())
    telemetered = run_system(
        with_slo_telemetry(steady_fleet_scenario()), planner=PlanningEngine()
    )
    assert json.dumps(json_safe(plain.servers), sort_keys=True) == json.dumps(
        json_safe(telemetered.servers), sort_keys=True
    )
    assert json.dumps(json_safe(plain.fleet), sort_keys=True) == json.dumps(
        json_safe(telemetered.fleet), sort_keys=True
    )
    assert plain.timeline is None and telemetered.timeline is not None


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_alert_replay_is_deterministic_under_seeded_faults(seed):
    def run():
        config = with_slo_telemetry(
            blackout_fleet_scenario(clients=2, horizon=12.0, seed=seed),
            slos=(SCENARIO_SLO,),
        )
        return run_system(config, planner=PLANNER)

    first, second = run(), run()
    assert json.dumps(json_safe(first.alerts), sort_keys=True) == json.dumps(
        json_safe(second.alerts), sort_keys=True
    )
    assert json.dumps(json_safe(first.timeline), sort_keys=True) == json.dumps(
        json_safe(second.timeline), sort_keys=True
    )
