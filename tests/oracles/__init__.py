"""Differential-oracle harness package (see :mod:`tests.oracles.harness`)."""
