"""Instance generation + corpus management for the differential oracles.

One seed deterministically expands to one small planning instance,
which a brute-force planner cross-examines. Two instance families:

* **line** — ``n`` jobs over a random dyadic-grid cost table, checked
  by :func:`repro.faults.oracle.check_instance`;
* **dag** — ``n`` jobs over a random dyadic-grid DAG, checked by
  :func:`repro.dag.oracle.check_dag_instance` (partitioner vs the
  ``2^m``-assignment oracle vs the Fig.-9 duplication baseline).

Two consumers each:

* ``tests/test_oracle_differential.py`` fuzzes ``--fuzz-rounds`` fresh
  seeds per run and replays the committed corpora exactly;
* ``python -m tests.oracles.harness [count]`` regenerates
  ``tests/data/oracle_corpus.json`` and
  ``python -m tests.oracles.harness dag [count]`` regenerates
  ``tests/data/dag_oracle_corpus.json`` — scanning seeds for instances
  where the planner *equals* the exhaustive optimum, so the committed
  corpora assert exact agreement, not just no-worse-than.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.dag.oracle import DagInstance, DagInstanceCheck, check_dag_instance, random_dag
from repro.faults.oracle import InstanceCheck, check_instance, random_line_table
from repro.profiling.latency import CostTable
from repro.utils.rng import make_rng

#: Instance bounds: small enough that the factorial oracle is fast,
#: large enough to exercise multi-job Johnson interleavings.
MAX_JOBS = 6
MAX_POSITIONS = 8

#: DAG instance bounds. Fuzz instances up to 14 nodes; the bitmask
#: oracle only runs on <= DAG_EXACT_LIMIT nodes (larger instances are
#: still checked against the duplication baseline and plan validity).
MIN_DAG_NODES = 4
MAX_DAG_NODES = 14
MAX_DAG_JOBS = 4
DAG_EXACT_LIMIT = 10

_DATA_DIR = Path(__file__).resolve().parent.parent / "data"
CORPUS_PATH = _DATA_DIR / "oracle_corpus.json"
DAG_CORPUS_PATH = _DATA_DIR / "dag_oracle_corpus.json"


def instance_from_seed(seed: int) -> tuple[CostTable, int]:
    """Deterministically expand one seed into ``(table, n)``."""
    rng = make_rng(seed)
    k = int(rng.integers(2, MAX_POSITIONS + 1))
    n = int(rng.integers(2, MAX_JOBS + 1))
    return random_line_table(rng, k), n


def check_seed(seed: int) -> InstanceCheck:
    table, n = instance_from_seed(seed)
    return check_instance(table, n)


def load_corpus() -> list[dict]:
    return json.loads(CORPUS_PATH.read_text())


def build_corpus(count: int = 24, start_seed: int = 0) -> list[dict]:
    """Scan seeds from ``start_seed`` for gap-0 instances.

    Only instances where JPS matches the exhaustive optimum exactly are
    committed, so the corpus test can assert float-equality; the fuzz
    test covers the gap>0 tail separately.
    """
    corpus: list[dict] = []
    seed = start_seed
    while len(corpus) < count:
        result = check_seed(seed)
        if result.mismatches:
            raise AssertionError(
                f"seed {seed} found a real divergence while building the "
                f"corpus: {result.mismatches}"
            )
        if result.gap == 0.0:
            corpus.append(
                {
                    "seed": seed,
                    "n": result.n,
                    "k": result.k,
                    "makespan": result.jps_makespan,
                }
            )
        seed += 1
    return corpus


def dag_instance_from_seed(seed: int) -> DagInstance:
    """Deterministically expand one seed into a dyadic-grid DAG instance.

    Node times are multiples of 1/1024 (the source pinned to 0, like the
    line tables' input pseudo-layer), edge volumes integer bytes, and
    the channel a power-of-two seconds-per-byte — every downstream float
    sum is exact, so corpus replay can compare makespans with ``==``.
    """
    rng = make_rng(seed)
    num_nodes = int(rng.integers(MIN_DAG_NODES, MAX_DAG_NODES + 1))
    n = int(rng.integers(2, MAX_DAG_JOBS + 1))
    seconds_per_byte = 2.0 ** -int(rng.integers(10, 15))
    dag = random_dag(rng, num_nodes, name=f"oracle-dag-{seed}")
    order = dag.topological_order()
    node_time = {order[0]: 0.0}
    for v in order[1:]:
        node_time[v] = int(rng.integers(0, 257)) / 1024.0
    return DagInstance(
        dag=dag, node_time=node_time, seconds_per_byte=seconds_per_byte, n=n
    )


def check_dag_seed(seed: int) -> DagInstanceCheck:
    return check_dag_instance(dag_instance_from_seed(seed), exact_limit=DAG_EXACT_LIMIT)


def load_dag_corpus() -> list[dict]:
    return json.loads(DAG_CORPUS_PATH.read_text())


def _has_branch(instance: DagInstance) -> bool:
    """Does any node fan out (a shared tensor duplication would re-ship)?"""
    return any(instance.dag.out_degree(v) >= 2 for v in instance.dag.node_ids)


def build_dag_corpus(count: int = 24, start_seed: int = 0) -> list[dict]:
    """Scan seeds for exact-oracle DAG instances.

    Only instances small enough for the bitmask oracle are committed, so
    the corpus test asserts float-equality against the exhaustive
    optimum; the fuzz test covers the larger duplication-bounded tail.
    The scan keeps going until at least one committed instance has a
    branch node *and* strictly beats the Fig.-9 duplication baseline —
    the acceptance witness that true cut pricing buys something real.
    """
    corpus: list[dict] = []
    seed = start_seed
    have_witness = False
    while len(corpus) < count or not have_witness:
        result = check_dag_seed(seed)
        if result.mismatches:
            raise AssertionError(
                f"seed {seed} found a real divergence while building the "
                f"DAG corpus: {result.mismatches}"
            )
        if result.exact:
            witness = result.improvement > 0.0 and _has_branch(
                dag_instance_from_seed(seed)
            )
            if len(corpus) < count or witness:
                corpus.append(
                    {
                        "seed": seed,
                        "nodes": result.nodes,
                        "edges": result.edges,
                        "n": result.n,
                        "makespan": result.partition_makespan,
                        "duplication_makespan": result.duplication_makespan,
                        "improvement": result.improvement,
                        "branch": _has_branch(dag_instance_from_seed(seed)),
                    }
                )
                have_witness = have_witness or witness
        seed += 1
    return corpus


def main(argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] == "dag":
        count = int(argv[2]) if len(argv) > 2 else 24
        corpus = build_dag_corpus(count)
        DAG_CORPUS_PATH.write_text(json.dumps(corpus, indent=1, sort_keys=True) + "\n")
        witnesses = sum(1 for e in corpus if e["improvement"] > 0.0 and e["branch"])
        print(
            f"{len(corpus)} exact DAG instances "
            f"({witnesses} strict-improvement witnesses) -> {DAG_CORPUS_PATH}"
        )
        return 0
    count = int(argv[1]) if len(argv) > 1 else 24
    corpus = build_corpus(count)
    CORPUS_PATH.write_text(json.dumps(corpus, indent=1, sort_keys=True) + "\n")
    print(f"{len(corpus)} gap-0 instances -> {CORPUS_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    sys.exit(main(sys.argv))
