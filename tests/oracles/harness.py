"""Instance generation + corpus management for the differential oracle.

One seed deterministically expands to one small planning instance
(``n`` jobs over a random dyadic-grid cost table), which
:func:`repro.faults.oracle.check_instance` cross-examines against the
exhaustive brute-force planner. Two consumers:

* ``tests/test_oracle_differential.py`` fuzzes ``--fuzz-rounds`` fresh
  seeds per run and replays the committed corpus exactly;
* ``python -m tests.oracles.harness [count]`` regenerates
  ``tests/data/oracle_corpus.json`` — scanning seeds for instances where
  JPS *equals* the exhaustive optimum (gap 0), so the committed corpus
  asserts exact agreement, not just no-worse-than.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.faults.oracle import InstanceCheck, check_instance, random_line_table
from repro.profiling.latency import CostTable
from repro.utils.rng import make_rng

#: Instance bounds: small enough that the factorial oracle is fast,
#: large enough to exercise multi-job Johnson interleavings.
MAX_JOBS = 6
MAX_POSITIONS = 8

CORPUS_PATH = Path(__file__).resolve().parent.parent / "data" / "oracle_corpus.json"


def instance_from_seed(seed: int) -> tuple[CostTable, int]:
    """Deterministically expand one seed into ``(table, n)``."""
    rng = make_rng(seed)
    k = int(rng.integers(2, MAX_POSITIONS + 1))
    n = int(rng.integers(2, MAX_JOBS + 1))
    return random_line_table(rng, k), n


def check_seed(seed: int) -> InstanceCheck:
    table, n = instance_from_seed(seed)
    return check_instance(table, n)


def load_corpus() -> list[dict]:
    return json.loads(CORPUS_PATH.read_text())


def build_corpus(count: int = 24, start_seed: int = 0) -> list[dict]:
    """Scan seeds from ``start_seed`` for gap-0 instances.

    Only instances where JPS matches the exhaustive optimum exactly are
    committed, so the corpus test can assert float-equality; the fuzz
    test covers the gap>0 tail separately.
    """
    corpus: list[dict] = []
    seed = start_seed
    while len(corpus) < count:
        result = check_seed(seed)
        if result.mismatches:
            raise AssertionError(
                f"seed {seed} found a real divergence while building the "
                f"corpus: {result.mismatches}"
            )
        if result.gap == 0.0:
            corpus.append(
                {
                    "seed": seed,
                    "n": result.n,
                    "k": result.k,
                    "makespan": result.jps_makespan,
                }
            )
        seed += 1
    return corpus


def main(argv: list[str]) -> int:
    count = int(argv[1]) if len(argv) > 1 else 24
    corpus = build_corpus(count)
    CORPUS_PATH.write_text(json.dumps(corpus, indent=1, sort_keys=True) + "\n")
    print(f"{len(corpus)} gap-0 instances -> {CORPUS_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    sys.exit(main(sys.argv))
