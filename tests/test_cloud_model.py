"""CloudGpuModel: the batch latency decomposition is exact and sane.

The whole batching subsystem leans on one algebraic fact: a batch of
one costs *exactly* the solo time (``fixed + marginal == unit`` in
floats, not approximately), which is what makes ``serve_now`` dispatch
event-for-event identical to the unbatched gateway path. These tests
lock that identity plus the qualitative shape of the throughput curve
(latency grows with batch size, per-item cost shrinks) and the JSON
round-trip / calibration contracts.
"""

import json

import pytest

from repro.cloud import CloudGpuModel


def test_batch_of_one_is_exactly_solo_time():
    model = CloudGpuModel(overhead_fraction=0.35)
    for solo in (0.001, 0.0123456789, 0.1, 1.7, 3.3e-4):
        unit = model.unit_time(solo)
        # exact float identity, not approx: serve_now parity depends on it
        assert model.fixed_part(unit) + model.marginal_part(unit) == unit
        assert model.batch_latency([unit]) == unit


def test_speedup_scales_unit_time():
    fast = CloudGpuModel(speedup=2.0)
    slow = CloudGpuModel(speedup=0.5)
    assert fast.unit_time(1.0) == pytest.approx(0.5)
    assert slow.unit_time(1.0) == pytest.approx(2.0)


def test_batch_latency_below_serial_sum():
    """Batching wins: one shared launch overhead instead of b of them."""
    model = CloudGpuModel(overhead_fraction=0.5)
    units = [0.010, 0.012, 0.008, 0.011]
    batched = model.batch_latency(units)
    serial = sum(units)
    assert batched < serial
    # exactly one max fixed part + all marginal parts
    expected = max(model.fixed_part(u) for u in units) + sum(
        model.marginal_part(u) for u in units
    )
    assert batched == expected


def test_throughput_curve_shape():
    model = CloudGpuModel(overhead_fraction=0.6)
    curve = model.throughput_curve(0.010, max_batch=8)
    assert [point["batch_size"] for point in curve] == list(range(1, 9))
    latencies = [point["latency"] for point in curve]
    per_item = [point["per_item"] for point in curve]
    items_per_s = [point["items_per_s"] for point in curve]
    assert latencies == sorted(latencies)  # latency grows with b
    assert per_item == sorted(per_item, reverse=True)  # amortizes down
    assert items_per_s == sorted(items_per_s)  # throughput grows
    assert latencies[0] == pytest.approx(0.010)


def test_amortized_latency_decreasing():
    model = CloudGpuModel(overhead_fraction=0.4)
    values = [model.amortized_latency(0.02, b) for b in range(1, 9)]
    assert values == sorted(values, reverse=True)
    assert values[0] == pytest.approx(0.02)


def test_round_trip():
    model = CloudGpuModel(name="my-gpu", overhead_fraction=0.7, speedup=0.1)
    document = json.loads(json.dumps(model.as_dict()))
    assert CloudGpuModel.from_dict(document) == model


def test_calibrate_from_profiles():
    model = CloudGpuModel.calibrate(model="alexnet")
    assert 0.0 < model.overhead_fraction < 1.0
    assert model.speedup == 1.0
    contended = CloudGpuModel.calibrate(model="alexnet", speedup=0.05)
    assert contended.speedup == 0.05
    assert contended.overhead_fraction == model.overhead_fraction


@pytest.mark.parametrize(
    "kwargs",
    [
        {"overhead_fraction": -0.1},
        {"overhead_fraction": 1.0},
        {"overhead_fraction": 1.5},
        {"speedup": 0.0},
        {"speedup": -1.0},
    ],
)
def test_validation_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        CloudGpuModel(**kwargs)


def test_batch_latency_rejects_empty():
    with pytest.raises(ValueError):
        CloudGpuModel().batch_latency([])
