"""Experiment harnesses: shapes of every figure/table (small, fast configs)."""

import numpy as np
import pytest

from repro.experiments import fig4, fig11, fig12, fig13, fig14, table1
from repro.experiments.report import format_series, format_table, reduction_vs
from repro.experiments.runner import EXPERIMENT_MODELS
from repro.net.bandwidth import FOUR_G, THREE_G, WIFI


# ----------------------------------------------------------------------
# report helpers
# ----------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["a", "metric"], [["x", 1.2345], ["long-name", 2.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "long-name" in lines[3]
    assert "1.2" in lines[2]


def test_format_series():
    text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
    assert "s1" in text and "s2" in text


def test_reduction_vs():
    assert reduction_vs(100.0, 75.0) == pytest.approx(25.0)
    assert reduction_vs(100.0, 120.0) == 0.0  # losses clamp to zero
    with pytest.raises(ValueError):
        reduction_vs(0.0, 1.0)


# ----------------------------------------------------------------------
# environment
# ----------------------------------------------------------------------

def test_env_classifies_structures(env):
    assert env.treats_as_line("alexnet")
    assert env.treats_as_line("mobilenet-v2")
    assert env.treats_as_line("resnet18")
    assert not env.treats_as_line("googlenet")


def test_env_cost_table_caches_frontier(env):
    t1 = env.cost_table("googlenet", 10.0)
    t2 = env.cost_table("googlenet", 1.0)
    assert t1.k == t2.k
    assert np.all(t2.g[:-1] >= t1.g[:-1])  # slower link, larger g


def test_env_run_scheme_rejects_unknown(env):
    with pytest.raises(ValueError):
        env.run_scheme("alexnet", 10.0, 5, "XX")


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------

def test_fig4_shape(env):
    rows = fig4.run(env)
    assert 5 <= len(rows) <= 10  # the paper plots 8 blocks
    comm = [r.comm_ms for r in rows]
    assert all(b <= a for a, b in zip(comm, comm[1:]))  # decaying g
    assert max(r.cloud_ms for r in rows) < 0.1 * max(r.mobile_ms for r in rows)
    assert "negligible" in fig4.render(rows)


def test_fig11_jps_tracks_bf(env):
    rows = fig11.run(env, job_counts=[2, 4])
    assert {r.model for r in rows} == {"AlexNet", "AlexNet'"}
    for row in rows:
        assert row.bf_s <= row.jps_s + 1e-12
        assert row.gap_percent < 15.0
    prime_rows = [r for r in rows if r.model == "AlexNet'" and r.n >= 4]
    assert all(r.gap_percent < 5.0 for r in prime_rows)
    assert "BF" in fig11.render(rows)


def test_fig12_ordering(env):
    cells = fig12.run(env, n=20, presets=[FOUR_G])
    value = {(c.model, c.scheme): c.avg_latency_s for c in cells}
    for model in EXPERIMENT_MODELS:
        assert value[(model, "JPS")] <= value[(model, "LO")] + 1e-9
        assert value[(model, "JPS")] <= value[(model, "PO")] + 1e-9
        assert value[(model, "JPS")] <= value[(model, "CO")] + 1e-9
    assert "Fig. 12" in fig12.render(cells)


def test_fig12_overhead_is_negligible(env):
    overheads = fig12.run_overhead(env, models=["alexnet", "googlenet"], n=20, repeats=3)
    # decision latency far below a single job's inference time (~0.1 s)
    assert all(v < 0.05 for v in overheads.values())
    assert "overhead" in fig12.render_overhead(overheads)


def test_table1_shape(env):
    rows = table1.run(env, n=20, presets=[THREE_G, WIFI])
    for row in rows:
        for preset in row.reductions.values():
            assert preset["JPS"] >= preset["PO"] - 1e-9
            assert 0 <= preset["JPS"] <= 100
    wifi = {r.model: r.reductions["Wi-Fi"]["JPS"] for r in rows}
    assert all(v > 30 for v in wifi.values())  # big wins at Wi-Fi
    assert "Table 1" in table1.render(rows)


def test_fig13_shapes(env):
    curves = fig13.run(env, models=["alexnet"], bandwidths_mbps=[1, 5, 20, 60], n=20)
    curve = curves[0]
    lo = curve.latency_s["LO"]
    co = curve.latency_s["CO"]
    jps = curve.latency_s["JPS"]
    assert len(set(np.round(lo, 9))) == 1                  # LO flat in bandwidth
    assert all(b < a for a, b in zip(co, co[1:]))          # CO falls with bandwidth
    assert all(j <= l + 1e-9 for j, l in zip(jps, lo))
    assert all(j <= c + 1e-9 for j, c in zip(jps, co))
    rng = fig13.benefit_range(curve)
    assert rng is not None and rng[0] == 1 and rng[1] == 60
    assert "benefit range" in fig13.render(curves)


def test_fig14_interior_optimum(env):
    curves = fig14.run(env, n=30)
    for curve in curves:
        for label, series in curve.makespan_s.items():
            assert len(series) == len(curve.ratios)
            assert min(series) > 0
        # the selected bandwidths admit an optimum inside the sweep
        interior = [
            curve.optimal_ratio[label] for label in curve.makespan_s
        ]
        assert any(
            curve.ratios[0] < r < curve.ratios[-1] for r in interior
        ) or len(set(interior)) > 1
    assert "optimal ratios" in fig14.render(curves)


def test_fig14_analytic_ratio(env):
    table = env.cost_table("resnet18", 10.0)
    ratio = fig14.analytic_optimal_ratio(table)
    if ratio is not None:
        assert ratio > 0


def test_fig14_forced_ratio_validations(env):
    table = env.cost_table("resnet18", 10.0)
    with pytest.raises(ValueError):
        fig14.forced_ratio_makespan(table, 0.0, 10)
    with pytest.raises(ValueError):
        fig14.forced_ratio_makespan(table, 2.0, 0)
