"""The stable ``repro.api`` facade and its top-level re-export."""

import pytest

import repro
from repro import api
from repro.core.joint import jps
from repro.net.bandwidth import WIFI, BandwidthPreset
from repro.net.channel import Channel
from repro.nn.zoo import MODELS, get_model


def test_facade_exports_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_top_level_reexport_is_the_facade():
    assert repro.plan is api.plan
    assert repro.compare is api.compare
    assert repro.PlanningEngine is api.PlanningEngine
    assert repro.Schedule is api.Schedule
    with pytest.raises(AttributeError):
        repro.no_such_symbol


def test_old_import_paths_still_work():
    from repro.core import jps as deep_jps
    from repro.core.plans import Schedule as DeepSchedule
    from repro.net.channel import Channel as DeepChannel

    assert deep_jps is jps
    assert DeepSchedule is api.Schedule
    assert DeepChannel is api.Channel


def test_list_models_matches_zoo():
    assert api.list_models() == sorted(MODELS)


def test_as_channel_coercions():
    ready = api.as_channel(12.0)
    assert isinstance(ready, Channel)
    assert api.as_channel(ready) is ready
    preset = api.as_channel(WIFI)
    assert isinstance(WIFI, BandwidthPreset)
    assert preset.uplink_bps == pytest.approx(WIFI.uplink_bps)
    assert ready.uplink_bps == pytest.approx(12e6)


def test_plan_accepts_enum_and_string_variants():
    by_string = api.plan("alexnet", n=10, bandwidth=10.0, split="ratio")
    by_enum = api.plan("alexnet", n=10, bandwidth=10.0, split=api.SplitMode.RATIO)
    assert by_string.makespan == by_enum.makespan
    with pytest.raises(ValueError, match="split mode"):
        api.plan("alexnet", n=10, bandwidth=10.0, split="sideways")


def test_compare_covers_all_schemes():
    side_by_side = api.compare("alexnet", n=10, bandwidth=10.0)
    assert set(side_by_side) == {"LO", "CO", "PO", "JPS"}
    assert side_by_side["JPS"].makespan <= side_by_side["LO"].makespan


def test_custom_engine_is_honored():
    engine = api.PlanningEngine()
    api.plan("alexnet", n=5, bandwidth=10.0, engine=engine)
    assert engine.stats()["line_structure"]["misses"] == 1


@pytest.mark.parametrize("name", sorted(MODELS))
def test_plan_matches_core_jps_for_every_zoo_model(name):
    """Regression net: the facade must reproduce the uncached planner."""
    network = get_model(name)
    engine = api.default_engine()
    channel = api.as_channel(10.0)
    direct = jps(network, engine.mobile, engine.cloud, channel, n=4)
    via_facade = api.plan(network, n=4, bandwidth=channel)
    assert via_facade.makespan == pytest.approx(direct.makespan, rel=1e-12)


def test_serving_surface_reexported():
    """The gateway, estimator, and online scheduler ride the facade."""
    from repro import serving
    from repro.extensions import online

    assert api.Gateway is serving.Gateway
    assert api.AdaptiveChannelEstimator is serving.AdaptiveChannelEstimator
    assert api.MetricsRegistry is serving.MetricsRegistry
    assert api.ClientSpec is serving.ClientSpec
    assert api.run_scenario is serving.run_scenario
    assert api.OnlineJpsScheduler is online.OnlineJpsScheduler
    assert api.ReleasedJob is online.ReleasedJob
    assert api.clairvoyant_makespan is online.clairvoyant_makespan
    # and through the lazy top-level package facade too
    import repro

    assert repro.Gateway is serving.Gateway
    assert repro.BandwidthTimeline is api.BandwidthTimeline
