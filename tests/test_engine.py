"""PlanningEngine: memoized caches are exact, keyed, bounded, observable."""

import pytest

from repro.core.joint import jps
from repro.engine import LRUCache, PlanningEngine
from repro.engine.keys import channel_fingerprint, network_fingerprint
from repro.experiments.runner import ExperimentEnv
from repro.net.bandwidth import TrafficShaper
from repro.net.channel import Channel
from repro.nn.zoo import get_model
from repro.utils.units import mbps


def make_channel(uplink_mbps: float) -> Channel:
    return Channel(
        shaper=TrafficShaper(
            uplink_bps=mbps(uplink_mbps), downlink_bps=mbps(2 * uplink_mbps)
        )
    )


@pytest.fixture()
def engine():
    return PlanningEngine()


def assert_same_schedule(a, b):
    assert a.makespan == b.makespan
    assert a.method == b.method
    assert len(a.jobs) == len(b.jobs)
    for pa, pb in zip(a.jobs, b.jobs):
        assert pa.cut_position == pb.cut_position
        assert pa.mobile_nodes == pb.mobile_nodes


# ----------------------------------------------------------------------
# cache hits, identity, invalidation
# ----------------------------------------------------------------------

def test_warm_plan_is_a_hit_and_identical(engine):
    channel = make_channel(10.0)
    cold = engine.plan("googlenet", 10, channel)
    warm = engine.plan("googlenet", 10, channel)
    assert_same_schedule(cold, warm)
    stats = engine.stats()
    assert stats["frontier_structure"]["misses"] == 1
    assert stats["frontier_tables"]["misses"] == 1
    assert stats["frontier_tables"]["hits"] >= 1


def test_line_model_warm_hit(engine):
    channel = make_channel(10.0)
    cold = engine.plan("alexnet", 20, channel)
    warm = engine.plan("alexnet", 20, channel)
    assert_same_schedule(cold, warm)
    stats = engine.stats()
    assert stats["line_structure"]["misses"] == 1
    assert stats["line_tables"]["hits"] >= 1


def test_perturbed_channel_misses_table_but_reuses_structure(engine):
    engine.plan("googlenet", 10, make_channel(10.0))
    before = engine.stats()
    engine.plan("googlenet", 10, make_channel(10.1))
    after = engine.stats()
    # new channel => new table key; structure is bandwidth-invariant
    assert after["frontier_tables"]["misses"] == before["frontier_tables"]["misses"] + 1
    assert after["frontier_structure"]["misses"] == before["frontier_structure"]["misses"]


def test_different_job_count_reuses_everything(engine):
    channel = make_channel(10.0)
    engine.plan("alexnet", 10, channel)
    before = engine.stats()["line_tables"]["misses"]
    engine.plan("alexnet", 200, channel)
    assert engine.stats()["line_tables"]["misses"] == before


def test_predictor_key_invalidates(engine):
    channel = make_channel(10.0)
    network = get_model("alexnet")
    predictor = None  # truth predictor either way; only the key differs
    engine.plan(network, 5, channel, predictor=predictor, predictor_key=("cal", 1))
    misses = engine.stats()["line_tables"]["misses"]
    engine.plan(network, 5, channel, predictor=predictor, predictor_key=("cal", 2))
    assert engine.stats()["line_tables"]["misses"] == misses + 1


def test_clear_resets_entries_not_counters(engine):
    channel = make_channel(10.0)
    engine.plan("alexnet", 5, channel)
    engine.clear()
    engine.plan("alexnet", 5, channel)
    assert engine.stats()["line_structure"]["misses"] == 2


# ----------------------------------------------------------------------
# exactness against the uncached path
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", ["alexnet", "mobilenet-v2", "googlenet"])
def test_engine_matches_core_jps(engine, name):
    channel = make_channel(8.0)
    network = get_model(name)
    direct = jps(network, engine.mobile, engine.cloud, channel, n=20)
    cached = engine.plan(network, 20, channel)
    assert cached.makespan == pytest.approx(direct.makespan, rel=1e-12)
    assert [p.cut_position for p in cached.jobs] == [
        p.cut_position for p in direct.jobs
    ]


@pytest.mark.parametrize("scheme", ["LO", "CO", "PO", "JPS"])
def test_engine_matches_experiment_env(engine, scheme):
    env = ExperimentEnv()
    for name in ("alexnet", "googlenet"):
        ours = engine.plan(name, 10, make_channel(10.0), scheme=scheme)
        theirs = env.run_scheme(name, 10.0, 10, scheme)
        assert ours.makespan == pytest.approx(theirs.makespan, rel=1e-12)


def test_paths_structure_matches_alg3(engine):
    from repro.core.general import alg3_schedule

    channel = make_channel(10.0)
    network = get_model("mini-inception")
    direct = alg3_schedule(network, engine.mobile, engine.cloud, channel, n=8)
    cached = engine.plan(network, 8, channel, structure="paths")
    again = engine.plan(network, 8, channel, structure="paths")
    assert cached.makespan == pytest.approx(direct.makespan, rel=1e-12)
    assert_same_schedule(cached, again)
    assert engine.stats()["alg3_plans"]["hits"] >= 1


def test_unknown_scheme_rejected(engine):
    with pytest.raises(ValueError, match="unknown scheme"):
        engine.plan("alexnet", 5, make_channel(10.0), scheme="BOGUS")


# ----------------------------------------------------------------------
# LRU bound and key helpers
# ----------------------------------------------------------------------

def test_lru_eviction_counts():
    engine = PlanningEngine(max_entries=2)
    for rate in (5.0, 10.0, 20.0):
        engine.plan("alexnet", 5, make_channel(rate))
    stats = engine.stats()["line_tables"]
    assert stats["evictions"] >= 1
    assert stats["entries"] <= 2


def test_lru_cache_recency_order():
    cache = LRUCache(max_entries=2)
    cache.get_or_build("a", lambda: 1)
    cache.get_or_build("b", lambda: 2)
    cache.get_or_build("a", lambda: 1)   # refresh "a"
    cache.get_or_build("c", lambda: 3)   # evicts "b", the stalest
    assert cache.peek("a") == 1
    assert cache.peek("b") is None
    assert cache.stats.evictions == 1


def test_channel_fingerprint_sensitivity():
    assert channel_fingerprint(make_channel(10.0)) == channel_fingerprint(
        make_channel(10.0)
    )
    assert channel_fingerprint(make_channel(10.0)) != channel_fingerprint(
        make_channel(10.1)
    )


def test_network_fingerprint_tracks_structure():
    assert network_fingerprint(get_model("alexnet")) == network_fingerprint(
        get_model("alexnet")
    )
    assert network_fingerprint(get_model("alexnet")) != network_fingerprint(
        get_model("vgg11")
    )


# ----------------------------------------------------------------------
# the public stats surface
# ----------------------------------------------------------------------

def test_stats_snapshot_totals_are_plain_and_consistent(engine):
    engine.plan("alexnet", 5, make_channel(10.0))
    engine.plan("alexnet", 5, make_channel(10.0))   # warm hit
    snapshot = engine.stats_snapshot()
    assert set(snapshot) == {"layers", "totals"}
    totals = snapshot["totals"]
    assert set(totals) == {"hits", "misses", "evictions", "entries", "hit_rate"}
    layers = snapshot["layers"]
    assert totals["hits"] == sum(s["hits"] for s in layers.values())
    assert totals["misses"] == sum(s["misses"] for s in layers.values())
    assert totals["entries"] == sum(s["entries"] for s in layers.values())
    assert 0.0 <= totals["hit_rate"] <= 1.0
    assert totals["hits"] > 0


def test_stats_snapshot_empty_engine():
    totals = PlanningEngine().stats_snapshot()["totals"]
    assert totals["hits"] == totals["misses"] == 0
    assert totals["hit_rate"] == 0.0


# ----------------------------------------------------------------------
# bandwidth-vectorized pricing: priced_table / plan_batch
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", ["alexnet", "googlenet"])
def test_priced_table_matches_cost_table(engine, name):
    for uplink_mbps in (1.0, 8.0, 40.0):
        channel = make_channel(uplink_mbps)
        via_channel = engine.cost_table(name, channel)
        priced = engine.priced_table(name, mbps(uplink_mbps))
        assert priced.table.model_name == via_channel.model_name
        assert priced.table.positions == via_channel.positions
        assert (priced.table.f == via_channel.f).all()
        assert (priced.table.g == via_channel.g).all()
        assert (priced.table.cloud == via_channel.cloud).all()


def test_priced_table_rejects_paths_structure(engine):
    with pytest.raises(ValueError, match="per-path tables"):
        engine.priced_table("alexnet", mbps(8.0), structure="paths")


@pytest.mark.parametrize("scheme", ["LO", "CO", "PO", "JPS"])
def test_plan_batch_matches_per_call_plan(engine, scheme):
    rates = [mbps(b) for b in (0.8, 4.0, 18.88, 65.0)]
    for name in ("alexnet", "googlenet"):
        batch = engine.plan_batch(name, 10, rates, scheme=scheme)
        assert len(batch) == len(rates)
        for uplink_bps, ours in zip(rates, batch):
            channel = make_channel(uplink_bps / 1e6)
            theirs = engine.plan(name, 10, channel, scheme=scheme)
            assert_same_schedule(ours, theirs)


def test_plan_batch_wrap_frontier_flag(engine):
    rates = [mbps(10.0)]
    wrapped = engine.plan_batch("googlenet", 6, rates)[0]
    plain = engine.plan_batch("googlenet", 6, rates, wrap_frontier=False)[0]
    assert wrapped.method == "JPS-frontier"
    assert plain.method == "JPS"
    assert wrapped.makespan == plain.makespan
    assert all(p.mobile_nodes is not None for p in wrapped.jobs)
    assert all(p.mobile_nodes is None for p in plain.jobs)


def test_plan_batch_prices_one_kernel_per_model(engine):
    rates = [mbps(b) for b in (1.0, 5.0, 25.0, 80.0)]
    engine.plan_batch("alexnet", 10, rates)
    first = engine.stats()["pricing_kernels"]
    assert first["misses"] == 1
    assert first["entries"] == 1
    engine.plan_batch("alexnet", 10, [mbps(b) for b in (2.0, 60.0)])
    second = engine.stats()["pricing_kernels"]
    assert second["misses"] == 1
    assert second["hits"] >= 1
