"""Tree-structure (multi-task) networks via the OutputCollector sink."""

import pytest

from repro.core.joint import jps
from repro.dag.cuts import enumerate_frontier_cuts, is_downward_closed
from repro.dag.topology import separators
from repro.nn.layers import OutputCollector, ShapeError
from repro.nn.zoo import multitask_perception


@pytest.fixture(scope="module")
def net():
    return multitask_perception()


def test_collector_layer_semantics():
    collector = OutputCollector()
    assert collector.arity == -1
    assert collector.output_shape((10,), (20,)) == (2,)
    assert collector.flops((10,), (20,)) == 0.0
    with pytest.raises(ShapeError):
        collector.output_shape((10,))


def test_single_sink_despite_two_heads(net):
    assert net.graph.sinks() == ["outputs"]
    assert net.output_shape == (2,)


def test_collector_edges_carry_zero_volume(net):
    for pred in net.graph.predecessors("outputs"):
        assert net.graph.volume(pred, "outputs") == 0.0
    # and the collector itself is free
    assert net.node("outputs").output_bytes == 0.0
    assert net.node("outputs").flops == 0.0


def test_backbone_nodes_are_separators(net):
    seps = separators(net.graph)
    assert "bb3.pool" in seps          # last backbone node
    assert "outputs" in seps
    assert "cls.fc" not in seps        # head interiors are parallel branches


def test_cut_space_allows_splitting_heads(net):
    cuts = enumerate_frontier_cuts(net.graph)
    split = [
        c for c in cuts
        if "cls.softmax" in c.mobile and "det.conv2" not in c.mobile
    ]
    assert split
    for cut in split:
        assert is_downward_closed(net.graph, cut.mobile)
        # the shared backbone tensor crosses once even though both heads
        # would consume it (distinct-tail counting)
        backbone_bytes = net.node("bb3.pool").output_bytes
        assert cut.transfer_bytes <= backbone_bytes + sum(
            net.node(v).output_bytes for v in cut.frontier if v != "bb3.pool"
        )


def test_finishing_one_head_locally_is_free(net):
    """A cut with the whole classification head on the mobile side pays
    only for the backbone tensor (the cls result returns for free)."""
    cuts = enumerate_frontier_cuts(net.graph)
    full_cls = next(
        c for c in cuts
        if "cls.softmax" in c.mobile and "det.conv1" not in c.mobile
    )
    assert full_cls.transfer_bytes == pytest.approx(net.node("bb3.pool").output_bytes)


def test_jps_on_multitask(net, mobile, cloud, channel_10mbps):
    schedule = jps(net, mobile, cloud, channel_10mbps, 10)
    assert schedule.method == "JPS-frontier"
    assert schedule.makespan > 0
    from repro.core.baselines import local_only
    from repro.profiling.latency import line_cost_table

    table = line_cost_table(net, mobile, cloud, channel_10mbps)
    assert schedule.makespan <= local_only(table, 10).makespan + 1e-9
