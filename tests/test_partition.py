"""Alg. 2 binary search, the ratio rule, and two-type splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    binary_search_cut,
    linear_scan_cut,
    partition_ratio,
    plans_for_split,
    split_by_paper_ratio,
    split_exact,
)
from repro.core.scheduling import flow_shop_makespan, johnson_order

from tests.helpers import make_table


# ----------------------------------------------------------------------
# binary search
# ----------------------------------------------------------------------

def test_binary_search_finds_crossing(simple_table):
    l_star = binary_search_cut(simple_table)
    assert simple_table.f[l_star] >= simple_table.g[l_star]
    if l_star > 0:
        assert simple_table.f[l_star - 1] < simple_table.g[l_star - 1]


def test_binary_search_matches_linear_scan(simple_table, alexnet_table):
    for table in (simple_table, alexnet_table):
        assert binary_search_cut(table) == linear_scan_cut(table)


def test_binary_search_crossing_at_zero():
    table = make_table(f=[0.5, 1.0, 1.5], g=[0.4, 0.2, 0.0])
    assert binary_search_cut(table) == 0


def test_binary_search_crossing_at_end():
    # g dominates everywhere except the forced-zero final position
    table = make_table(f=[0.0, 0.1, 0.2], g=[9.0, 8.0, 0.0])
    assert binary_search_cut(table) == 2


def test_binary_search_requires_monotone_g():
    table = make_table(f=[0.0, 1.0, 2.0], g=[1.0, 3.0, 0.0])
    with pytest.raises(ValueError, match="not non-increasing"):
        binary_search_cut(table)


@settings(max_examples=200, deadline=None)
@given(
    k=st.integers(2, 40),
    slope=st.floats(0.01, 2.0),
    scale=st.floats(0.1, 50.0),
    decay=st.floats(0.05, 1.5),
)
def test_binary_search_equals_scan_on_random_monotone_tables(k, slope, scale, decay):
    idx = np.arange(k, dtype=float)
    f = slope * idx
    g = scale * np.exp(-decay * idx)
    g[-1] = 0.0
    g = np.minimum.accumulate(g)
    table = make_table(f, g)
    assert binary_search_cut(table) == linear_scan_cut(table)


# ----------------------------------------------------------------------
# ratio rule
# ----------------------------------------------------------------------

def test_partition_ratio_hand_computed():
    # f = [0, 3], g = [5, 1]: surplus_comm(l*-1) = 5, surplus_comp(l*) = 2
    table = make_table(f=[0.0, 3.0], g=[5.0, 1.0])
    assert binary_search_cut(table) == 1
    assert partition_ratio(table, 1) == 0  # floor(2 / 5)
    # flip the magnitudes: comm surplus 1, comp surplus 6 -> ratio 6
    table2 = make_table(f=[1.0, 8.0], g=[2.0, 2.0])
    assert partition_ratio(table2, 1) == 6


def test_partition_ratio_guards():
    table = make_table(f=[0.0, 3.0], g=[5.0, 1.0])
    with pytest.raises(ValueError, match="undefined"):
        partition_ratio(table, 0)
    bad = make_table(f=[6.0, 7.0], g=[5.0, 1.0])  # position 0 already comp-heavy
    with pytest.raises(ValueError, match="not communication-heavy"):
        partition_ratio(bad, 1)


# ----------------------------------------------------------------------
# splits
# ----------------------------------------------------------------------

def test_split_exact_beats_or_matches_ratio(simple_table):
    l_star = binary_search_cut(simple_table)
    for n in (1, 2, 5, 10, 50):
        exact = split_exact(simple_table, l_star, n)
        paper = split_by_paper_ratio(simple_table, l_star, n)
        assert exact.total_jobs == paper.total_jobs == n
        assert exact.makespan <= paper.makespan + 1e-12


def test_split_exact_is_optimal_over_the_pair(simple_table):
    l_star = binary_search_cut(simple_table)
    n = 7
    exact = split_exact(simple_table, l_star, n)
    stages_a = simple_table.stage_lengths(l_star - 1)
    stages_b = simple_table.stage_lengths(l_star)

    def johnson_makespan(stages):
        order = johnson_order(stages)
        return flow_shop_makespan([stages[i] for i in order])

    best = min(
        johnson_makespan([stages_a] * n_a + [stages_b] * (n - n_a))
        for n_a in range(n + 1)
    )
    assert exact.makespan == pytest.approx(best)


def test_split_at_exact_crossing_uses_single_layer():
    table = make_table(f=[0.0, 2.0, 4.0], g=[4.0, 2.0, 0.0])  # f(1) == g(1)
    split = split_by_paper_ratio(table, 1, 10)
    assert split.n_a == 0 and split.n_b == 10
    assert split.position_a == split.position_b == 1


def test_split_crossing_at_zero_single_layer():
    table = make_table(f=[0.5, 1.0], g=[0.4, 0.0])
    for splitter in (split_by_paper_ratio, split_exact):
        split = splitter(table, 0, 5)
        assert split.n_a == 0 and split.n_b == 5


def test_split_validations(simple_table):
    l_star = binary_search_cut(simple_table)
    with pytest.raises(ValueError):
        split_by_paper_ratio(simple_table, l_star, 0)
    with pytest.raises(ValueError):
        split_exact(simple_table, l_star, 0)


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(1, 30),
    f_a=st.floats(0.0, 5.0),
    comm_surplus=st.floats(0.01, 5.0),
    g_b=st.floats(0.0, 5.0),
    comp_surplus=st.floats(0.01, 5.0),
)
def test_split_exact_never_worse_than_all_one_type(n, f_a, comm_surplus, g_b, comp_surplus):
    """Mixing two types never loses to either homogeneous choice."""
    f = [f_a, g_b + comp_surplus]
    g = [f_a + comm_surplus, g_b]
    if g[1] > g[0] or f[1] < f[0]:  # keep the table monotone
        return
    table = make_table(f=f, g=g)
    exact = split_exact(table, 1, n)
    all_a = flow_shop_makespan([table.stage_lengths(0)] * n)
    all_b = flow_shop_makespan([table.stage_lengths(1)] * n)
    assert exact.makespan <= min(all_a, all_b) + 1e-9


def test_plans_for_split_materialization(simple_table):
    l_star = binary_search_cut(simple_table)
    split = split_exact(simple_table, l_star, 6)
    plans = plans_for_split(simple_table, split)
    assert len(plans) == 6
    assert [p.job_id for p in plans] == list(range(6))
    n_a = sum(p.cut_position == split.position_a for p in plans)
    assert n_a == split.n_a or split.position_a == split.position_b
    for plan in plans:
        f, g = simple_table.stage_lengths(plan.cut_position)
        assert plan.compute_time == f and plan.comm_time == g


def test_plans_carry_mobile_nodes_for_graph_tables(alexnet_table):
    l_star = binary_search_cut(alexnet_table)
    plans = plans_for_split(alexnet_table, split_exact(alexnet_table, l_star, 4))
    assert all(plan.mobile_nodes is not None for plan in plans)


def test_split_best_pair_dominates_adjacent(alexnet_table, env):
    for model, bandwidth in (("alexnet", 10.0), ("vgg16", 10.0), ("vgg16", 2.0)):
        table = env.cost_table(model, bandwidth)
        from repro.core.partition import split_best_pair

        l_star = binary_search_cut(table)
        adjacent = split_exact(table, l_star, 20)
        pair = split_best_pair(table, 20)
        assert pair.makespan <= adjacent.makespan + 1e-12
        assert pair.total_jobs == 20


def test_split_best_pair_matches_brute_force_two_type(simple_table):
    """On a small table, the all-pairs split equals the best two-support
    multiset found by full brute force (BF may also use >2 supports)."""
    from itertools import combinations_with_replacement

    from repro.core.partition import split_best_pair

    n = 5
    pair = split_best_pair(simple_table, n)
    best = float("inf")
    for combo in combinations_with_replacement(range(simple_table.k), n):
        if len(set(combo)) > 2:
            continue
        stages = [simple_table.stage_lengths(p) for p in combo]
        order = johnson_order(stages)
        best = min(best, flow_shop_makespan([stages[i] for i in order]))
    assert pair.makespan == pytest.approx(best)


def test_split_best_pair_validation(simple_table):
    from repro.core.partition import split_best_pair

    with pytest.raises(ValueError):
        split_best_pair(simple_table, 0)
