"""Argument validation helpers."""

import pytest

from repro.utils import validation as v


def test_require_passes_and_fails():
    v.require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        v.require(False, "broken")


def test_require_positive():
    assert v.require_positive(0.5, "x") == 0.5
    with pytest.raises(ValueError, match="x must be > 0"):
        v.require_positive(0, "x")


def test_require_non_negative():
    assert v.require_non_negative(0, "x") == 0
    with pytest.raises(ValueError):
        v.require_non_negative(-1e-9, "x")


def test_require_in_range():
    assert v.require_in_range(5, 0, 10, "x") == 5
    with pytest.raises(ValueError):
        v.require_in_range(11, 0, 10, "x")


def test_require_index():
    assert v.require_index(2, 5, "i") == 2
    with pytest.raises(IndexError):
        v.require_index(5, 5, "i")
    with pytest.raises(TypeError):
        v.require_index(1.5, 5, "i")  # type: ignore[arg-type]


def test_require_same_length():
    v.require_same_length([1, 2], [3, 4], "a", "b")
    with pytest.raises(ValueError, match="same length"):
        v.require_same_length([1], [2, 3], "a", "b")


def test_require_non_empty():
    v.require_non_empty([1], "xs")
    with pytest.raises(ValueError, match="must not be empty"):
        v.require_non_empty([], "xs")


def test_require_non_empty_consumes_only_head_of_generator():
    def gen():
        yield 1
        raise RuntimeError("must not be reached")

    v.require_non_empty(gen(), "xs")


def test_require_sorted_non_decreasing():
    v.require_sorted_non_decreasing([1, 1, 2], "xs")
    with pytest.raises(ValueError, match="index 2"):
        v.require_sorted_non_decreasing([1, 3, 2], "xs")
