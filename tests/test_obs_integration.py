"""Observability threaded through the stack: engine, gateway, CLI.

These tests exercise the *instrumented* code paths end to end: a cold
plan must show its table builds as nested spans (and a warm plan must
not), a traced serving scenario must emit one lifecycle span family per
served request plus re-plan instants, and ``repro trace`` must write a
schema-valid Chrome trace from a real run.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.engine import PlanningEngine
from repro.net.bandwidth import TrafficShaper
from repro.net.channel import Channel
from repro.obs import (
    Tracer,
    exposition_from_snapshot,
    parse_prometheus,
    validate_chrome_events,
    well_formed,
)
from repro.obs.metrics import MetricsRegistry
from repro.serving import default_scenario, run_scenario
from repro.utils.units import mbps


def make_channel(uplink_mbps: float) -> Channel:
    return Channel(
        shaper=TrafficShaper(
            uplink_bps=mbps(uplink_mbps), downlink_bps=mbps(2 * uplink_mbps)
        )
    )


def small_scenario(**overrides):
    defaults = dict(clients=1, rate=1.0, horizon=10.0, schemes=("JPS",))
    defaults.update(overrides)
    return default_scenario(**defaults)


# ----------------------------------------------------------------------
# PlanningEngine spans + metrics bridge
# ----------------------------------------------------------------------


def test_cold_plan_nests_build_spans_warm_plan_does_not():
    engine = PlanningEngine(tracer=Tracer())
    channel = make_channel(10.0)
    engine.plan("alexnet", 8, channel)
    cold = [s for s in engine.tracer.spans if s.name == "engine/plan"]
    assert len(cold) == 1
    builds = [s for s in engine.tracer.spans if s.name == "engine/build"]
    assert builds, "a cold plan must build at least one structure/table"
    # builds chain up to the plan span (a table build contains the
    # structure build it triggered)
    by_id = {s.span_id: s for s in engine.tracer.spans}
    for build in builds:
        ancestor = by_id[build.parent_id]
        while ancestor.name == "engine/build":
            ancestor = by_id[ancestor.parent_id]
        assert ancestor is cold[0]
    kinds = {b.attributes["kind"] for b in builds}
    assert kinds <= {
        "line_structure", "frontier_structure", "line_table",
        "frontier_table", "alg3_plans",
    }

    before = len(engine.tracer.spans)
    engine.plan("alexnet", 8, channel)  # warm: every cache hits
    new = engine.tracer.spans[before:]
    assert [s.name for s in new] == ["engine/plan"]
    assert well_formed(engine.tracer.spans) == []


def test_engine_to_metrics_publishes_cache_gauges():
    engine = PlanningEngine()
    engine.plan("alexnet", 8, make_channel(10.0))
    registry = engine.to_metrics(MetricsRegistry())
    gauges = registry.snapshot()["gauges"]
    totals = engine.stats_snapshot()["totals"]
    assert gauges["engine_cache_misses"] == totals["misses"]
    assert gauges["engine_cache_hits"] == totals["hits"]
    assert any(key.startswith("engine_cache_misses{layer=") for key in gauges)
    # gauges are set, not accumulated: re-publishing overwrites
    engine.plan("alexnet", 8, make_channel(10.0))
    refreshed = engine.to_metrics(registry).snapshot()["gauges"]
    assert refreshed["engine_cache_hits"] == engine.stats_snapshot()["totals"]["hits"]


# ----------------------------------------------------------------------
# traced serving scenario
# ----------------------------------------------------------------------


def test_traced_scenario_emits_lifecycle_span_per_served_request():
    tracer = Tracer()
    report = run_scenario(small_scenario(), tracer=tracer)
    scheme_report = report["schemes"]["JPS"]
    served = scheme_report["counters"]["served"]
    assert served > 0

    requests = [s for s in tracer.spans if s.name.startswith("request ")]
    assert len(requests) == served
    children_of = {}
    for span in tracer.spans:
        children_of.setdefault(span.parent_id, []).append(span)
    for request in requests:
        names = {c.name for c in children_of.get(request.span_id, [])}
        assert {"queue", "compute", "transfer"} <= names
        assert request.attributes["latency"] > 0
        assert request.lane == (f"req {request.attributes['request_id']}", "lifecycle")

    # scheme wrapper + planner table builds share the trace: the shared
    # planner inherits the scenario tracer, so its cold-cache builds
    # land alongside the virtual-time gateway spans
    assert any(s.name == "scenario/scheme" for s in tracer.spans)
    assert any(s.name == "engine/build" for s in tracer.spans)
    assert well_formed(tracer.spans) == []
    events = tracer.chrome_trace()
    assert validate_chrome_events(events) == len(events)


def test_traced_scenario_records_replan_instants():
    tracer = Tracer()
    report = run_scenario(default_scenario(schemes=("JPS",)), tracer=tracer)
    replans = [i for i in tracer.instants if i.name == "gateway/replan"]
    assert len(replans) == len(report["schemes"]["JPS"]["replans"])
    assert replans, "the acceptance scenario must trigger a re-plan"
    for instant, logged in zip(replans, report["schemes"]["JPS"]["replans"]):
        assert instant.timestamp == logged["time"]
        assert instant.attributes["new_bps"] == logged["new_bps"]
        assert instant.lane == ("gateway", "events")


def test_report_gauges_round_trip_through_exposition():
    report = run_scenario(small_scenario())
    scheme_report = report["schemes"]["JPS"]
    assert any(k.startswith("engine_cache_") for k in scheme_report["gauges"])
    samples = parse_prometheus(exposition_from_snapshot(scheme_report))
    assert samples["repro_served_total"] == scheme_report["counters"]["served"]
    assert samples["repro_engine_cache_hits"] == scheme_report["gauges"][
        "engine_cache_hits"
    ]


def test_untraced_scenario_still_reports():
    """The NullTracer default keeps the plain path working unchanged."""
    report = run_scenario(small_scenario())
    assert report["schemes"]["JPS"]["balance_ok"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_trace_experiment_writes_valid_chrome_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "experiment", "--out", str(out)]) == 0
    events = json.loads(out.read_text())
    assert validate_chrome_events(events) == len(events)
    cells = [e for e in events if e["ph"] == "X"]
    assert cells and all(e["name"] == "experiment/cell" for e in cells)
    assert {e["args"]["model"] for e in cells} == {"alexnet", "googlenet"}
    processes = {
        e["args"]["name"] for e in events if e.get("name") == "process_name"
    }
    assert processes == {"experiments"}
    assert "perfetto" in capsys.readouterr().out


def test_cli_trace_experiment_rejects_prom(tmp_path, capsys):
    code = main(
        ["trace", "experiment", "--out", str(tmp_path / "t.json"), "--prom", "-"]
    )
    assert code == 2
    assert "serving" in capsys.readouterr().err
