"""Discrete-event engine and the pipeline simulator vs the analytic model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import flow_shop_makespan
from repro.sim.engine import Engine, Resource, SimulationError
from repro.sim.pipeline import simulate_schedule
from repro.sim.trace import render_gantt, validate_against_recurrence


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------

def test_engine_orders_events():
    engine = Engine()
    seen = []
    engine.schedule(2.0, lambda: seen.append("b"))
    engine.schedule(1.0, lambda: seen.append("a"))
    engine.schedule(3.0, lambda: seen.append("c"))
    assert engine.run() == 3.0
    assert seen == ["a", "b", "c"]


def test_engine_simultaneous_events_fire_in_schedule_order():
    engine = Engine()
    seen = []
    for tag in ("first", "second", "third"):
        engine.schedule(1.0, lambda t=tag: seen.append(t))
    engine.run()
    assert seen == ["first", "second", "third"]


def test_engine_rejects_negative_delay():
    with pytest.raises(SimulationError):
        Engine().schedule(-0.1, lambda: None)


def test_engine_run_until():
    engine = Engine()
    seen = []
    engine.schedule(1.0, lambda: seen.append(1))
    engine.schedule(5.0, lambda: seen.append(5))
    engine.run(until=2.0)
    assert seen == [1]
    assert engine.pending_events == 1
    engine.run()
    assert seen == [1, 5]


def test_resource_fifo_and_busy_log():
    engine = Engine()
    res = Resource(engine, "cpu")
    ends = []
    res.acquire("a", 2.0, lambda s, e: ends.append((s, e)))
    res.acquire("b", 1.0, lambda s, e: ends.append((s, e)))
    engine.run()
    assert ends == [(0.0, 2.0), (2.0, 3.0)]
    assert res.total_busy_time == 3.0
    assert res.utilization(3.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        res.utilization(0)


def test_resource_rejects_negative_duration():
    engine = Engine()
    res = Resource(engine, "cpu")
    with pytest.raises(SimulationError):
        res.acquire("x", -1.0)


# ----------------------------------------------------------------------
# pipeline vs analytic recurrence
# ----------------------------------------------------------------------

def _schedule_from_stages(stages) -> Schedule:
    jobs = tuple(
        JobPlan(job_id=i, model="m", cut_position=0, compute_time=f, comm_time=g)
        for i, (f, g) in enumerate(stages)
    )
    return Schedule(
        jobs=jobs,
        makespan=flow_shop_makespan(stages),
        method="test",
    )


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 5), st.floats(0, 5)), min_size=1, max_size=12))
def test_pipeline_matches_recurrence(stages):
    schedule = _schedule_from_stages(stages)
    result = simulate_schedule(schedule)
    validate_against_recurrence(result, schedule)
    assert result.makespan == pytest.approx(flow_shop_makespan(stages))


def test_pipeline_three_stage_adds_cloud_tail():
    jobs = tuple(
        JobPlan(job_id=i, model="m", cut_position=0,
                compute_time=1.0, comm_time=1.0, cloud_time=0.25)
        for i in range(3)
    )
    schedule = Schedule(jobs=jobs, makespan=0.0, method="test")
    two = simulate_schedule(schedule, include_cloud=False)
    three = simulate_schedule(schedule, include_cloud=True)
    assert three.makespan > two.makespan
    assert three.makespan == pytest.approx(two.makespan + 0.25)


def test_pipeline_zero_compute_goes_straight_to_uplink():
    jobs = tuple(
        JobPlan(job_id=i, model="m", cut_position=0, compute_time=0.0, comm_time=2.0)
        for i in range(3)
    )
    schedule = Schedule(jobs=jobs, makespan=6.0, method="CO")
    result = simulate_schedule(schedule)
    assert result.makespan == pytest.approx(6.0)
    assert result.mobile.total_busy_time == 0.0
    assert result.uplink.total_busy_time == pytest.approx(6.0)


def test_pipeline_local_only_never_touches_uplink():
    jobs = tuple(
        JobPlan(job_id=i, model="m", cut_position=0, compute_time=1.5, comm_time=0.0)
        for i in range(4)
    )
    schedule = Schedule(jobs=jobs, makespan=6.0, method="LO")
    result = simulate_schedule(schedule)
    assert result.uplink.total_busy_time == 0.0
    assert result.makespan == pytest.approx(6.0)


def test_eager_discipline_lets_zero_compute_jobs_jump_ahead():
    # job 0: long compute then upload; job 1: nothing to compute
    stages = [(5.0, 1.0), (0.0, 1.0)]
    schedule = _schedule_from_stages(stages)
    strict = simulate_schedule(schedule, discipline="permutation")
    eager = simulate_schedule(schedule, discipline="eager")
    # strict: job 1's upload waits behind job 0's pipeline -> makespan 7
    assert strict.makespan == pytest.approx(7.0)
    # eager: job 1 uploads during job 0's compute -> makespan 6
    assert eager.makespan == pytest.approx(6.0)


def test_unknown_discipline_rejected():
    schedule = _schedule_from_stages([(1.0, 1.0)])
    with pytest.raises(ValueError, match="discipline"):
        simulate_schedule(schedule, discipline="chaotic")


def test_validate_rejects_cloud_runs():
    schedule = _schedule_from_stages([(1.0, 1.0)])
    result = simulate_schedule(schedule, include_cloud=True)
    with pytest.raises(ValueError, match="2-stage"):
        validate_against_recurrence(result, schedule)


def test_traces_record_stage_spans():
    schedule = _schedule_from_stages([(1.0, 2.0), (3.0, 1.0)])
    result = simulate_schedule(schedule)
    first = result.traces[0]
    assert first.compute.start == 0.0 and first.compute.end == 1.0
    assert first.comm.start == 1.0 and first.comm.end == 3.0
    assert first.completion == 3.0
    assert result.traces[1].comm.start == pytest.approx(4.0)  # waits for own compute


def test_render_gantt_shape():
    schedule = _schedule_from_stages([(1.0, 2.0), (3.0, 1.0)])
    result = simulate_schedule(schedule)
    art = render_gantt(result, width=40)
    lines = art.splitlines()
    assert len(lines) == 4
    assert "mobile-cpu" in lines[0] and "#" in lines[0]
    assert "uplink" in lines[1]


def test_render_gantt_empty():
    schedule = _schedule_from_stages([(0.0, 0.0)])
    result = simulate_schedule(schedule)
    assert render_gantt(result) == "(empty timeline)"


def test_pipeline_utilization_consistency(alexnet_table):
    from repro.core.joint import jps_line

    schedule = jps_line(alexnet_table, 12)
    result = simulate_schedule(schedule)
    validate_against_recurrence(result, schedule)
    horizon = result.makespan
    total = result.mobile.utilization(horizon) + result.uplink.utilization(horizon)
    # a balanced JPS pipeline keeps both resources mostly busy
    assert total > 1.0


# ----------------------------------------------------------------------
# FIFO fairness under simultaneous acquires — the serving gateway's
# dispatch correctness rests on same-timestamp events serving in
# schedule order
# ----------------------------------------------------------------------

def test_resource_fifo_under_simultaneous_acquires():
    """Acquires issued by events at the same instant serve in event order."""
    engine = Engine()
    res = Resource(engine, "cpu")
    order = []
    for tag, duration in (("a", 3.0), ("b", 1.0), ("c", 2.0)):
        engine.schedule(
            1.0,
            lambda t=tag, d=duration: res.acquire(
                t, d, lambda s, e, t=t: order.append((t, s, e))
            ),
        )
    engine.run()
    assert [t for t, _, _ in order] == ["a", "b", "c"]
    assert [label.label for label in res.busy_log] == ["a", "b", "c"]
    # strict back-to-back service, no overlap and no idle gaps
    assert order == [("a", 1.0, 4.0), ("b", 4.0, 5.0), ("c", 5.0, 7.0)]


def test_resource_fifo_fairness_across_waves():
    """Later same-time waves queue strictly behind earlier ones."""
    engine = Engine()
    res = Resource(engine, "link")
    served = []
    def grab(tag):
        return lambda: res.acquire(tag, 1.0, lambda s, e, t=tag: served.append(t))
    for wave, tags in ((0.0, ("w0-a", "w0-b")), (1.0, ("w1-a", "w1-b"))):
        for tag in tags:
            engine.schedule(wave, grab(tag))
    engine.run()
    assert served == ["w0-a", "w0-b", "w1-a", "w1-b"]


def test_resource_fifo_with_zero_durations_keeps_order():
    """Zero-length holds (LO comm stages) must not let later work overtake."""
    engine = Engine()
    res = Resource(engine, "cpu")
    served = []
    for tag, duration in (("long", 2.0), ("zero1", 0.0), ("zero2", 0.0)):
        res.acquire(tag, duration, lambda s, e, t=tag: served.append(t))
    engine.run()
    assert served == ["long", "zero1", "zero2"]


# ----------------------------------------------------------------------
# span export: the Gantt and the Chrome trace share one span model
# ----------------------------------------------------------------------

def test_validate_empty_schedule_trivially_passes():
    schedule = Schedule(jobs=(), makespan=0.0, method="test")
    result = simulate_schedule(schedule)
    validate_against_recurrence(result, schedule)  # must not raise


def test_validate_rejects_trace_schedule_length_mismatch():
    two = _schedule_from_stages([(1.0, 1.0), (2.0, 1.0)])
    one = _schedule_from_stages([(1.0, 1.0)])
    result = simulate_schedule(two)
    with pytest.raises(AssertionError, match="trace/schedule mismatch"):
        validate_against_recurrence(result, one)


def test_pipeline_spans_carry_lanes_and_attributes():
    from repro.sim.trace import pipeline_spans

    schedule = _schedule_from_stages([(1.0, 2.0), (3.0, 1.0)])
    result = simulate_schedule(schedule)
    spans = pipeline_spans(result)
    assert [(s.lane, s.name) for s in spans] == [
        (("job 0", "mobile-cpu"), "job0/compute"),
        (("job 0", "uplink"), "job0/comm"),
        (("job 1", "mobile-cpu"), "job1/compute"),
        (("job 1", "uplink"), "job1/comm"),
    ]
    for span, trace in zip(spans[::2], result.traces):
        assert span.attributes["job"] == trace.job_id
        assert span.attributes["resource"] == "mobile-cpu"
        assert (span.start, span.end) == (trace.compute.start, trace.compute.end)


def test_write_pipeline_trace_emits_valid_chrome_json(tmp_path):
    import json

    from repro.obs import validate_chrome_events
    from repro.sim.trace import write_pipeline_trace

    schedule = _schedule_from_stages([(1.0, 2.0), (3.0, 1.0)])
    result = simulate_schedule(schedule)
    path = write_pipeline_trace(result, tmp_path / "t.json")
    events = json.loads(path.read_text())
    assert validate_chrome_events(events) == len(events)
    assert sum(e["ph"] == "X" for e in events) == 4


def test_gantt_and_chrome_export_share_span_windows():
    """render_gantt draws exactly the spans pipeline_spans reports."""
    from repro.sim.trace import pipeline_spans

    schedule = _schedule_from_stages([(1.0, 2.0), (3.0, 1.0)])
    result = simulate_schedule(schedule)
    spans = pipeline_spans(result)
    art = render_gantt(result, width=40)
    cpu_row = next(line for line in art.splitlines() if "mobile-cpu" in line)
    cpu_busy = sum(s.end - s.start for s in spans if s.lane[1] == "mobile-cpu")
    # bar mass matches simulated busy time (one '#' per width/makespan cell)
    scale = 40 / result.makespan
    assert abs(cpu_row.count("#") - cpu_busy * scale) <= 2


def test_render_gantt_rejects_bad_width():
    schedule = _schedule_from_stages([(1.0, 1.0)])
    result = simulate_schedule(schedule)
    with pytest.raises(ValueError, match="width"):
        render_gantt(result, width=0)
