"""Campaign runner: structure, persistence, regression diffing."""

import pytest

from repro.experiments.campaign import (
    compare_campaigns,
    load_campaign,
    run_campaign,
    save_campaign,
)


@pytest.fixture(scope="module")
def campaign(env):
    return run_campaign(env, quick=True)


def test_campaign_structure(campaign):
    for section in ("fig4", "fig11", "fig12", "table1", "fig13", "fig14"):
        assert section in campaign
        assert campaign[section]
    assert campaign["quick"] is True
    assert campaign["version"]


def test_campaign_fig12_contains_all_cells(campaign):
    cells = campaign["fig12"]
    presets = {c["preset"] for c in cells}
    schemes = {c["scheme"] for c in cells}
    assert presets == {"3G", "4G", "Wi-Fi"}
    assert schemes == {"LO", "CO", "PO", "JPS"}


def test_save_and_load_roundtrip(campaign, tmp_path):
    path = save_campaign(campaign, tmp_path / "campaigns" / "run.json")
    assert path.exists()
    again = load_campaign(path)
    assert again == campaign


def test_load_missing_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_campaign(tmp_path / "nope.json")


def test_self_comparison_is_clean(campaign):
    assert compare_campaigns(campaign, campaign) == []


def test_comparison_flags_moved_values(campaign):
    import copy

    mutated = copy.deepcopy(campaign)
    mutated["fig11"][0]["jps_s"] *= 2.0
    problems = compare_campaigns(campaign, mutated)
    assert any("moved" in p and "jps_s" in p for p in problems)


def test_comparison_flags_structure_changes(campaign):
    import copy

    mutated = copy.deepcopy(campaign)
    mutated["fig12"] = mutated["fig12"][:-1]
    problems = compare_campaigns(campaign, mutated)
    assert any(p.startswith("missing in new") for p in problems)


def test_comparison_respects_tolerance(campaign):
    import copy

    mutated = copy.deepcopy(campaign)
    mutated["fig11"][0]["jps_s"] *= 1.01  # 1% move, 5% tolerance
    assert compare_campaigns(campaign, mutated, rel_tolerance=0.05) == []
    assert compare_campaigns(campaign, mutated, rel_tolerance=0.001)


def test_campaign_determinism(env):
    a = run_campaign(env, quick=True)
    b = run_campaign(env, quick=True)
    # scheduler overheads use wall time and are not part of the document;
    # everything recorded must be bit-identical
    assert compare_campaigns(a, b, rel_tolerance=0.0) == []
