"""Theorem 5.2 machinery: convex models, crossing point, LSE, KKT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.continuous import (
    ContinuousProblem,
    ExponentialCommModel,
    LinearComputeModel,
    average_makespan,
    crossing_point,
    fit_continuous,
    kkt_stationarity_residual,
    lse_max,
)


def problem(slope=1.0, scale=10.0, decay=0.5, depth=10.0) -> ContinuousProblem:
    return ContinuousProblem(
        f=LinearComputeModel(slope=slope),
        g=ExponentialCommModel(scale=scale, decay=decay),
        depth=depth,
    )


def test_model_validation():
    with pytest.raises(ValueError):
        LinearComputeModel(slope=0)
    with pytest.raises(ValueError):
        ExponentialCommModel(scale=0, decay=1)
    with pytest.raises(ValueError):
        ExponentialCommModel(scale=1, decay=-1)
    with pytest.raises(ValueError):
        ContinuousProblem(f=LinearComputeModel(1), g=ExponentialCommModel(1, 1), depth=0)


def test_model_shapes():
    p = problem()
    xs = np.linspace(0, 10, 50)
    f = np.asarray(p.f(xs))
    g = np.asarray(p.g(xs))
    assert np.all(np.diff(f) > 0)      # increasing
    assert np.all(np.diff(g) < 0)      # decreasing
    assert np.all(np.diff(np.diff(g)) > -1e-12)  # convex


def test_crossing_point_solves_equality():
    p = problem()
    x_star = crossing_point(p)
    assert 0 < x_star < p.depth
    assert p.f(x_star) == pytest.approx(p.g(x_star), rel=1e-9)


def test_crossing_point_clamps():
    # f rises steeply: the crossing collapses toward the input layer
    fast = problem(slope=100.0, scale=1.0)
    assert crossing_point(fast) < 0.05
    # g dominates everywhere on the domain: clamp to fully local
    slow = problem(slope=1e-6, scale=100.0, decay=0.01, depth=5.0)
    assert crossing_point(slow) == 5.0


def test_lse_max_converges_from_above():
    values = np.array([1.0, 3.0, 2.0])
    for alpha in (1.0, 10.0, 100.0):
        assert lse_max(values, alpha) >= 3.0
    assert lse_max(values, 500.0) == pytest.approx(3.0, abs=1e-2)
    with pytest.raises(ValueError):
        lse_max(values, 0)


def test_average_makespan_domain_check():
    p = problem()
    with pytest.raises(ValueError):
        average_makespan(p, np.array([-1.0]))
    with pytest.raises(ValueError):
        average_makespan(p, np.array([99.0]))


@settings(max_examples=100, deadline=None)
@given(
    slope=st.floats(0.1, 5.0),
    scale=st.floats(1.0, 50.0),
    decay=st.floats(0.1, 1.0),
    perturbations=st.lists(st.floats(-2.0, 2.0), min_size=1, max_size=8),
)
def test_theorem_5_2_symmetric_point_is_optimal(slope, scale, decay, perturbations):
    """No perturbed assignment beats cutting every job at x*."""
    p = problem(slope=slope, scale=scale, decay=decay, depth=20.0)
    x_star = crossing_point(p)
    n = len(perturbations)
    best = average_makespan(p, np.full(n, x_star))
    xs = np.clip(np.full(n, x_star) + np.array(perturbations), 0.0, p.depth)
    assert average_makespan(p, xs) >= best - 1e-9


def test_theorem_5_2_averaging_does_not_help():
    """Fig. 8(a): pairing x' and x'' around x* still loses (convexity of g)."""
    p = problem()
    x_star = crossing_point(p)
    for delta in (0.5, 1.0, 2.0):
        xs = np.array([x_star - delta, x_star + delta])
        assert average_makespan(p, xs) > average_makespan(p, np.array([x_star] * 2))


def test_kkt_residual_vanishes_at_crossing():
    p = problem()
    x_star = crossing_point(p)
    at_opt = kkt_stationarity_residual(p, np.full(4, x_star), alpha=500.0)
    off_opt = kkt_stationarity_residual(p, np.full(4, x_star + 2.0), alpha=500.0)
    assert at_opt < off_opt
    assert at_opt < 0.2  # near-stationary at the crossing


def test_fit_continuous_recovers_synthetic_table():
    from tests.helpers import make_table

    idx = np.arange(12, dtype=float)
    f = 0.05 * idx
    g = 2.0 * np.exp(-0.4 * idx)
    g[-1] = 0.0
    table = make_table(f, g)
    p = fit_continuous(table)
    assert p.f.slope == pytest.approx(0.05, rel=0.05)
    assert p.g.decay == pytest.approx(0.4, rel=0.05)
    assert p.g.scale == pytest.approx(2.0, rel=0.1)


def test_fit_continuous_on_real_model(alexnet_table):
    p = fit_continuous(alexnet_table)
    x_star = crossing_point(p)
    assert 0 <= x_star <= p.depth
    # discrete crossing and continuous crossing land in the same region
    from repro.core.partition import binary_search_cut

    l_star = binary_search_cut(alexnet_table)
    assert abs(x_star - l_star) <= 2.0
