"""Byte parity of the two event cores over randomized systems.

The SoA core (ISSUE 9) is only allowed to be *fast*; it is never
allowed to be *different*. Hypothesis drives randomized fleets — server
heterogeneity, fault plans on the uplinks, every placement policy,
optional shared batching cloud — through :func:`run_system` on both
``core="heap"`` and ``core="fast"`` and asserts the serialized reports
are byte-identical. One shared sequence counter per engine plus
identical resource-completion ordering is the whole argument (see
docs/performance.md); this suite is where the argument meets arbitrary
workloads.

The golden locks elsewhere (``tests/test_fleet_system.py``,
``tests/test_faults_golden.py``) run the default fast core against
byte-frozen reports, so heap==fast here transitively re-locks the heap
core too.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import CloudConfig
from repro.engine import PlanningEngine
from repro.faults.plan import Blackout, FaultPlan, RateSpike
from repro.fleet import (
    ENGINE_CORES,
    PLACEMENT_POLICIES,
    AdmissionConfig,
    PlacementConfig,
    ServerSpec,
    SystemConfig,
    WorkloadConfig,
    run_system,
)
from repro.serving.workload import ClientSpec

assert ENGINE_CORES == ("fast", "heap")


@st.composite
def parity_configs(draw) -> SystemConfig:
    n_servers = draw(st.integers(1, 3))
    servers = []
    for index in range(n_servers):
        plan = None
        if draw(st.booleans()):
            start = draw(st.floats(0.0, 2.0))
            if draw(st.booleans()):
                plan = FaultPlan(blackouts=(Blackout(start, start + 1.5),))
            else:
                plan = FaultPlan(spikes=(RateSpike(start, start + 1.5, 0.25),))
        servers.append(
            ServerSpec(
                name=f"s{index}",
                mobile_speedup=draw(st.sampled_from([0.5, 1.0, 2.0])),
                max_queue_depth=draw(st.sampled_from([2, 64])),
                fault_plan=plan,
            )
        )
    clients = tuple(
        ClientSpec(
            name=f"c{i}",
            rate=draw(st.sampled_from([0.5, 3.0])),
            deadline=draw(st.sampled_from([None, 1.0])),
        )
        for i in range(draw(st.integers(1, 4)))
    )
    cloud = None
    if draw(st.booleans()):
        cloud = CloudConfig(
            gpus=draw(st.integers(1, 3)),
            max_batch=draw(st.sampled_from([1, 4])),
            max_wait=draw(st.sampled_from([0.0, 0.05])),
            policy=draw(st.sampled_from(["serve_now", "batch"])),
            assignment=draw(st.sampled_from(["round_robin", "least_queued"])),
        )
    return SystemConfig(
        workload=WorkloadConfig(
            clients=clients,
            horizon=3.0,
            seed=draw(st.integers(0, 2**31 - 1)),
        ),
        servers=tuple(servers),
        placement=PlacementConfig(
            policy=draw(st.sampled_from(PLACEMENT_POLICIES)),
            migration_backlog=draw(st.sampled_from([2, None])),
            migration_patience=0.5,
        ),
        admission=AdmissionConfig(
            max_fleet_outstanding=draw(st.sampled_from([None, 16]))
        ),
        cloud=cloud,
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=parity_configs())
def test_heap_and_fast_cores_produce_byte_identical_reports(config):
    # fresh planners per core: shared caches would skew the gauge
    # counters between the first and second run, not the simulation
    heap = run_system(config, planner=PlanningEngine(), core="heap")
    fast = run_system(config, planner=PlanningEngine(), core="fast")
    assert json.dumps(heap.as_dict(), sort_keys=True) == json.dumps(
        fast.as_dict(), sort_keys=True
    )
    assert fast.violations == () and fast.clock_violations == ()


def test_unknown_core_rejected():
    from repro.fleet import capacity_scenario

    with pytest.raises(ValueError, match="engine core"):
        run_system(capacity_scenario(servers=1, clients=1), core="warp")
