"""NetworkBuilder wiring and Network accessors."""

import pytest

from repro.nn.layers import Add, Concat, Conv2d, Flatten, Linear, ReLU, ShapeError
from repro.nn.network import NetworkBuilder
from repro.utils.units import FLOAT32_BYTES


def test_sequential_build_is_line():
    b = NetworkBuilder("toy", input_shape=(3, 8, 8))
    b.add(Conv2d(4, kernel=3, padding=1))
    b.add(ReLU())
    b.add(Flatten())
    b.add(Linear(10))
    net = b.build()
    assert net.is_line()
    assert net.num_layers == 5  # input + 4
    assert net.input_shape == (3, 8, 8)
    assert net.output_shape == (10,)


def test_edge_volumes_are_tail_output_bytes():
    b = NetworkBuilder("toy", input_shape=(3, 8, 8))
    conv = b.add(Conv2d(4, kernel=3, padding=1))
    net_builder_last = b.add(ReLU())
    net = b.build()
    assert net.graph.volume(conv, net_builder_last) == 4 * 8 * 8 * FLOAT32_BYTES


def test_shape_error_names_offending_layer():
    b = NetworkBuilder("toy", input_shape=(3, 8, 8))
    with pytest.raises(ShapeError, match="linear_1"):
        b.add(Linear(10), name="linear_1")


def test_branching_and_merge():
    b = NetworkBuilder("branch", input_shape=(4, 8, 8))
    trunk = b.add(Conv2d(8, kernel=1), name="trunk")
    left = b.add(Conv2d(8, kernel=3, padding=1), name="left", inputs=trunk)
    merged = b.add(Add(), name="merge", inputs=(left, trunk))
    b.add(Flatten(), inputs=merged)
    b.add(Linear(2))
    net = b.build()
    assert not net.is_line()
    assert net.graph.in_degree("merge") == 2
    assert net.node("merge").output_shape == (8, 8, 8)


def test_merge_arity_enforced():
    b = NetworkBuilder("branch", input_shape=(4, 8, 8))
    trunk = b.add(Conv2d(8, kernel=1))
    with pytest.raises(ShapeError, match="merges"):
        b.add(Concat(), inputs=(trunk,))


def test_unary_arity_enforced():
    b = NetworkBuilder("t", input_shape=(4, 8, 8))
    a = b.add(Conv2d(4, kernel=1))
    c = b.add(Conv2d(4, kernel=1), inputs="input_1" if False else a)
    with pytest.raises(ShapeError, match="exactly one"):
        b.add(ReLU(), inputs=(a, c))


def test_sequence_helper():
    b = NetworkBuilder("seq", input_shape=(3, 8, 8))
    last = b.sequence([Conv2d(4, kernel=1), ReLU(), Flatten(), Linear(5)])
    assert b.last == last
    net = b.build()
    assert net.output_shape == (5,)


def test_build_requires_single_output():
    b = NetworkBuilder("dangling", input_shape=(3, 8, 8))
    trunk = b.add(Conv2d(4, kernel=1))
    b.add(Conv2d(4, kernel=1), inputs=trunk)
    b.add(Conv2d(4, kernel=1), inputs=trunk)  # second dangling sink
    with pytest.raises(ValueError, match="exactly one output"):
        b.build()


def test_summary_mentions_every_layer():
    b = NetworkBuilder("toy", input_shape=(3, 8, 8))
    b.add(Conv2d(4, kernel=3, padding=1), name="theconv")
    b.add(Flatten())
    b.add(Linear(10), name="thefc")
    net = b.build()
    text = net.summary()
    assert "theconv" in text and "thefc" in text
    assert "GFLOPs" in text


def test_total_flops_and_params_sum_nodes():
    b = NetworkBuilder("toy", input_shape=(3, 8, 8))
    b.add(Conv2d(4, kernel=3, padding=1))
    b.add(Flatten())
    b.add(Linear(10))
    net = b.build()
    assert net.total_flops == sum(n.flops for n in net.nodes())
    assert net.total_params == sum(n.params for n in net.nodes())


def test_node_accessor_type_checks():
    b = NetworkBuilder("toy", input_shape=(3, 8, 8))
    b.add(Conv2d(4, kernel=1))
    net = b.build()
    with pytest.raises(KeyError):
        net.node("missing")


def test_dtype_bytes_validation():
    with pytest.raises(ValueError):
        NetworkBuilder("bad", input_shape=(1, 2, 2), dtype_bytes=0)
