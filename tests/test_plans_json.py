"""Schedule/JobPlan JSON round-trips and the schedule wire format."""

import json

import numpy as np
import pytest

from repro import api
from repro.core.plans import JobPlan, Schedule
from repro.experiments.runner import ExperimentEnv
from repro.runtime.serialization import (
    SerializationError,
    deserialize_schedule,
    serialize_schedule,
)


@pytest.fixture(scope="module")
def line_schedule():
    return ExperimentEnv().run_scheme("alexnet", 10.0, 12, "JPS")


@pytest.fixture(scope="module")
def frontier_schedule():
    return api.plan("googlenet", n=8, bandwidth=10.0, engine=api.PlanningEngine())


def assert_roundtrip_equal(schedule: Schedule, again: Schedule) -> None:
    assert again.makespan == schedule.makespan
    assert again.method == schedule.method
    assert again.metadata == json.loads(json.dumps(schedule.to_dict()))["metadata"]
    assert len(again.jobs) == len(schedule.jobs)
    for ours, theirs in zip(schedule.jobs, again.jobs):
        assert ours.job_id == theirs.job_id
        assert ours.cut_position == theirs.cut_position
        assert ours.cut_label == theirs.cut_label
        assert ours.compute_time == theirs.compute_time
        assert ours.comm_time == theirs.comm_time
        assert ours.cloud_time == theirs.cloud_time
        assert ours.mobile_nodes == theirs.mobile_nodes


def test_line_schedule_roundtrips_through_json_text(line_schedule):
    text = json.dumps(line_schedule.to_dict(), sort_keys=True)
    again = Schedule.from_dict(json.loads(text))
    assert_roundtrip_equal(line_schedule, again)


def test_frontier_mobile_nodes_survive_as_frozensets(frontier_schedule):
    assert any(p.mobile_nodes for p in frontier_schedule.jobs)
    text = json.dumps(frontier_schedule.to_dict(), sort_keys=True)
    again = Schedule.from_dict(json.loads(text))
    assert_roundtrip_equal(frontier_schedule, again)
    for plan in again.jobs:
        if plan.mobile_nodes is not None:
            assert isinstance(plan.mobile_nodes, frozenset)


def test_to_dict_is_json_clean_with_numpy_metadata():
    plan = JobPlan(
        job_id=np.int64(0),
        model="toy",
        cut_position=np.int64(1),
        cut_label="after:a",
        compute_time=np.float64(0.5),
        comm_time=0.1,
        cloud_time=0.2,
        mobile_nodes=frozenset({"a", "b"}),
    )
    schedule = Schedule(
        jobs=(plan,),
        makespan=np.float64(0.8),
        method="JPS",
        metadata={"l_star": np.int64(3), "cuts": frozenset({"a"})},
    )
    document = schedule.to_dict()
    text = json.dumps(document)  # must not raise on numpy scalars / frozensets
    parsed = json.loads(text)
    assert parsed["metadata"]["l_star"] == 3
    assert parsed["metadata"]["cuts"] == ["a"]
    again = Schedule.from_dict(parsed)
    assert again.jobs[0].mobile_nodes == frozenset({"a", "b"})
    assert again.makespan == pytest.approx(0.8)


def test_wire_format_roundtrip(line_schedule, frontier_schedule):
    for schedule in (line_schedule, frontier_schedule):
        payload = serialize_schedule(schedule)
        assert payload.startswith(b"RPS1")
        assert_roundtrip_equal(schedule, deserialize_schedule(payload))


def test_wire_format_rejects_corruption(line_schedule):
    payload = serialize_schedule(line_schedule)
    with pytest.raises(SerializationError, match="magic"):
        deserialize_schedule(b"EVIL" + payload[4:])
    with pytest.raises(SerializationError):
        deserialize_schedule(payload[:-10])
