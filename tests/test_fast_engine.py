"""SoA event core contracts: FastEngine/FastResource vs the heap oracle.

Three groups of locks from ISSUE 9:

* **Engine-compat surface** — ``FastEngine`` honors the exact
  :class:`~repro.sim.engine.Engine` contracts the serving stack relies
  on (ordering, simultaneity, FIFO resources, ``run(until=)``), so the
  ``engine=`` seam swaps cores without behavior drift.
* **Native surface** — ``schedule_many`` assigns sequence numbers in
  input order (same tie-break a loop of ``schedule`` calls produces),
  merges with an unconsumed backbone, and degrades to per-event pushes
  mid-run; handler kinds dispatch through the table.
* **Resume-order regression (satellite 1)** — on *both* cores a
  deferred event keeps its original sequence number across
  ``run(until=)``, firing before same-timestamp events scheduled after
  the pause. The old heap core re-pushed with a fresh sequence number
  and lost the race.
"""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.fast import FastEngine, run_chain, run_chain_scalar

BOTH_CORES = [Engine, FastEngine]


# ----------------------------------------------------------------------
# Engine-compatible surface
# ----------------------------------------------------------------------

def test_fast_engine_orders_events():
    engine = FastEngine()
    seen = []
    engine.schedule(2.0, lambda: seen.append("b"))
    engine.schedule(1.0, lambda: seen.append("a"))
    engine.schedule(3.0, lambda: seen.append("c"))
    assert engine.run() == 3.0
    assert seen == ["a", "b", "c"]


def test_fast_engine_simultaneous_events_fire_in_schedule_order():
    engine = FastEngine()
    seen = []
    for tag in ("first", "second", "third"):
        engine.schedule(1.0, lambda t=tag: seen.append(t))
    engine.run()
    assert seen == ["first", "second", "third"]


def test_fast_engine_rejects_negative_delay():
    with pytest.raises(SimulationError):
        FastEngine().schedule(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        FastEngine().schedule_kind(-0.1, 1)


def test_fast_engine_run_until_and_pending_events():
    engine = FastEngine()
    seen = []
    engine.schedule(1.0, lambda: seen.append(1))
    engine.schedule(5.0, lambda: seen.append(5))
    engine.run(until=2.0)
    assert seen == [1]
    assert engine.pending_events == 1
    engine.run()
    assert seen == [1, 5]
    assert engine.pending_events == 0


@pytest.mark.parametrize("core", BOTH_CORES)
def test_deferred_event_keeps_sequence_across_resume(core):
    """Satellite 1: pausing at ``until`` must not re-sequence the head.

    The event deferred past ``until`` was scheduled *first*; an event
    scheduled for the same timestamp after the pause must still fire
    second. The pre-fix heap core popped and re-pushed the head with a
    fresh sequence number, losing the tie.
    """
    engine = core()
    seen = []
    engine.schedule(5.0, lambda: seen.append("early-bird"))
    engine.run(until=2.0)
    assert seen == []
    engine.schedule(5.0 - engine.now, lambda: seen.append("latecomer"))
    engine.run()
    assert seen == ["early-bird", "latecomer"]


@pytest.mark.parametrize("core", BOTH_CORES)
def test_run_until_does_not_advance_clock_past_last_event(core):
    engine = core()
    engine.schedule(1.0, lambda: None)
    engine.schedule(9.0, lambda: None)
    assert engine.run(until=4.0) == 1.0
    assert engine.now == 1.0


def test_fast_engine_on_advance_observer_fires_per_event():
    engine = FastEngine()
    ticks = []
    engine.on_advance = ticks.append
    engine.schedule(1.0, lambda: None)
    engine.schedule_kind(2.0, engine.register_kind(lambda arg: None))
    engine.run()
    assert ticks == [1.0, 2.0]


# ----------------------------------------------------------------------
# native surface: kinds + bulk backbone
# ----------------------------------------------------------------------

def test_schedule_many_matches_schedule_loop_tie_break():
    """Bulk input order == per-call schedule order at equal timestamps."""
    loop, bulk = FastEngine(), FastEngine()
    order_loop, order_bulk = [], []
    tags = ["a", "b", "c", "d"]
    times = [2.0, 1.0, 2.0, 1.0]
    for tag, time in zip(tags, times):
        loop.schedule(time, lambda t=tag: order_loop.append(t))
    kind = bulk.register_kind(order_bulk.append)
    bulk.schedule_many(times, kind, tags)
    loop.run()
    bulk.run()
    assert order_bulk == order_loop == ["b", "d", "a", "c"]


def test_schedule_many_interleaves_with_heap_events_by_sequence():
    """Backbone and heap events at one timestamp merge by (time, seq)."""
    engine = FastEngine()
    seen = []
    kind = engine.register_kind(seen.append)
    engine.schedule(1.0, lambda: seen.append("heap-first"))   # seq 0
    engine.schedule_many([1.0, 1.0], kind, ["bulk-a", "bulk-b"])  # seq 1, 2
    engine.schedule(1.0, lambda: seen.append("heap-last"))    # seq 3
    engine.run()
    assert seen == ["heap-first", "bulk-a", "bulk-b", "heap-last"]


def test_schedule_many_merges_unconsumed_backbone():
    engine = FastEngine()
    seen = []
    kind = engine.register_kind(seen.append)
    engine.schedule_many([1.0, 5.0], kind, ["one", "five"])
    engine.run(until=2.0)
    assert seen == ["one"] and engine.pending_events == 1
    engine.schedule_many([3.0, 5.0], kind, ["three", "five-later"])
    engine.run()
    # the first batch's t=5 event outranks the second's by sequence
    assert seen == ["one", "three", "five", "five-later"]


def test_schedule_many_mid_run_degrades_to_heap_pushes():
    """Bulk calls issued from inside a handler still fire in order."""
    engine = FastEngine()
    seen = []
    kind = engine.register_kind(seen.append)

    def fan_out() -> None:
        seen.append("root")
        engine.schedule_many([2.0, 2.0, 3.0], kind, ["a", "b", "c"])

    engine.schedule(1.0, fan_out)
    engine.run()
    assert seen == ["root", "a", "b", "c"]


def test_schedule_many_validates_input():
    engine = FastEngine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError, match="before now"):
        engine.schedule_many([0.5], 1)
    with pytest.raises(SimulationError, match="kinds"):
        engine.schedule_many([1.0, 2.0], [1])
    with pytest.raises(SimulationError, match="args"):
        engine.schedule_many([1.0, 2.0], 1, ["only-one"])
    engine.schedule_many([], 1)  # empty bulk is a no-op
    assert engine.pending_events == 0


def test_fast_engine_rejects_time_travel():
    engine = FastEngine()
    kind = engine.register_kind(lambda arg: None)
    engine.schedule_many([1.0], kind)
    engine.run()
    engine._btime, engine._bseq = [0.5], [99]
    engine._bkind, engine._barg = [kind], [None]
    with pytest.raises(SimulationError, match="before now"):
        engine.run()


# ----------------------------------------------------------------------
# FastResource: the heap Resource contract, closure-free
# ----------------------------------------------------------------------

def test_fast_resource_fifo_and_busy_log():
    engine = FastEngine()
    res = engine.resource("cpu")
    ends = []
    res.acquire("a", 2.0, lambda s, e: ends.append((s, e)))
    res.acquire("b", 1.0, lambda s, e: ends.append((s, e)))
    engine.run()
    assert ends == [(0.0, 2.0), (2.0, 3.0)]
    assert res.total_busy_time == 3.0
    assert [b.label for b in res.busy_log] == ["a", "b"]
    assert res.utilization(3.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        res.utilization(0)


def test_fast_resource_rejects_negative_duration():
    engine = FastEngine()
    with pytest.raises(SimulationError):
        engine.resource("cpu").acquire("x", -1.0)
    res = engine.resource("link")
    with pytest.raises(SimulationError, match="callable duration"):
        res.acquire("y", lambda start: -1.0)


def test_fast_resource_callable_duration_priced_at_grant():
    engine = FastEngine()
    res = engine.resource("link")
    grants = []
    res.acquire("a", 2.0, lambda s, e: grants.append((s, e)))
    res.acquire("b", lambda start: start, lambda s, e: grants.append((s, e)))
    engine.run()
    # b granted at t=2, priced there: holds 2 seconds
    assert grants == [(0.0, 2.0), (2.0, 4.0)]


def test_fast_resource_fifo_under_simultaneous_acquires():
    engine = FastEngine()
    res = engine.resource("cpu")
    order = []
    for tag, duration in (("a", 3.0), ("b", 1.0), ("c", 2.0)):
        engine.schedule(
            1.0,
            lambda t=tag, d=duration: res.acquire(
                t, d, lambda s, e, t=t: order.append((t, s, e))
            ),
        )
    engine.run()
    assert order == [("a", 1.0, 4.0), ("b", 4.0, 5.0), ("c", 5.0, 7.0)]
    assert [b.label for b in res.busy_log] == ["a", "b", "c"]


def test_fast_resource_zero_durations_keep_order():
    engine = FastEngine()
    res = engine.resource("cpu")
    served = []
    for tag, duration in (("long", 2.0), ("zero1", 0.0), ("zero2", 0.0)):
        res.acquire(tag, duration, lambda s, e, t=tag: served.append(t))
    engine.run()
    assert served == ["long", "zero1", "zero2"]


@pytest.mark.parametrize("core", BOTH_CORES)
def test_log_busy_opt_out_keeps_exact_busy_time(core):
    """Satellite 2: retention off, accumulator still exact — both cores."""
    engine = core(log_busy=False)
    res = engine.resource("cpu")
    res.acquire("a", 2.0)
    res.acquire("b", 1.5)
    engine.run()
    assert res.busy_log == []
    assert res.total_busy_time == pytest.approx(3.5)
    # per-resource override beats the engine default
    kept = engine.resource("audited", log_busy=True)
    kept.acquire("x", 1.0)
    engine.run()
    assert [b.label for b in kept.busy_log] == ["x"]


# ----------------------------------------------------------------------
# the chain pair: fast native path vs heap oracle
# ----------------------------------------------------------------------

def test_run_chain_matches_scalar_oracle():
    arrivals = [0.0, 0.1, 0.2, 0.2, 1.0, 1.5]
    durations = [
        [0.3, 0.1, 0.2, 0.05, 0.3, 0.1],   # mobile
        [0.1, 0.2, 0.1, 0.1, 0.05, 0.2],   # uplink
        [0.2, 0.1, 0.3, 0.1, 0.1, 0.05],   # cloud
    ]
    fast = run_chain(arrivals, durations)
    slow = run_chain_scalar(arrivals, durations)
    assert fast.checksum() == slow.checksum()
    assert fast.events == slow.events == 6 * 4
    assert all(c >= 0.0 for c in fast.completions)
    assert not any(fast.expired)


def test_run_chain_deadline_parity_with_scalar_oracle():
    arrivals = [0.0, 0.0, 0.5, 0.5]
    durations = [[1.0, 1.0, 1.0, 1.0], [0.5, 0.5, 0.5, 0.5]]
    deadlines = [2.0, 1.6, 10.0, 4.0]
    fast = run_chain(arrivals, durations, deadlines)
    slow = run_chain_scalar(arrivals, durations, deadlines)
    assert fast.checksum() == slow.checksum()
    assert fast.expired == [False, True, False, True]
    assert fast.busy_time[0] == pytest.approx(4.0)
