"""Prediction-noise sensitivity experiment."""

import pytest

from repro.experiments import noise


@pytest.fixture(scope="module")
def cells(env):
    return noise.run(env, models=["alexnet"], sigmas=[0.0, 0.1], n=20, trials=3)


def test_zero_noise_zero_regret(cells):
    exact = [c for c in cells if c.sigma == 0.0]
    assert exact
    for cell in exact:
        assert cell.mean_regret_percent == pytest.approx(0.0, abs=1e-9)
        assert cell.worst_regret_percent == pytest.approx(0.0, abs=1e-9)


def test_regret_non_negative(cells):
    for cell in cells:
        assert cell.worst_regret_percent >= cell.mean_regret_percent - 1e-9
        assert cell.mean_regret_percent >= -1e-9


def test_render(cells):
    text = noise.render(cells)
    assert "noise" in text and "regret" in text


def test_general_models_are_skipped(env):
    cells = noise.run(env, models=["googlenet"], sigmas=[0.0], n=5, trials=1)
    assert cells == []  # lookup-predictor path is line-structure only


def test_determinism(env):
    a = noise.run(env, models=["alexnet"], sigmas=[0.1], n=10, trials=2)
    b = noise.run(env, models=["alexnet"], sigmas=[0.1], n=10, trials=2)
    assert [c.mean_regret_percent for c in a] == [c.mean_regret_percent for c in b]
