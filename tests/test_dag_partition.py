"""True DAG partitioner: closed sets, cut tables, scheduling, engine wiring."""

import pytest

from repro.core.joint import Structure, jps
from repro.dag.graph import Dag
from repro.dag.partition import (
    dag_cut_table,
    dag_pareto_cuts,
    dag_schedule_from_table,
    duplication_mobile_set,
    duplication_schedule,
    enumerate_closed_sets,
    partition_dag,
    topo_prefix_sets,
    unique_cut_labels,
)
from repro.engine import PlanningEngine
from repro.net.bandwidth import TrafficShaper
from repro.net.channel import Channel
from repro.nn.layers import Add, Conv2d, ReLU
from repro.nn.network import Network, NetworkBuilder
from repro.utils.units import mbps


def diamond() -> Dag:
    """a fans out to b and c (the same 100-byte tensor), which merge in d."""
    dag = Dag(name="diamond")
    for v in "abcd":
        dag.add_node(v)
    dag.add_edge("a", "b", volume=100.0)
    dag.add_edge("a", "c", volume=100.0)
    dag.add_edge("b", "d", volume=10.0)
    dag.add_edge("c", "d", volume=10.0)
    return dag


DIAMOND_TIMES = {"a": 1.0, "b": 4.0, "c": 4.0, "d": 4.0}


def upload(num_bytes: float) -> float:
    return num_bytes * 0.005


def non_sp_network() -> Network:
    """A non-series-parallel net: one branch feeds two different merges."""
    b = NetworkBuilder("nonsp", input_shape=(3, 32, 32))
    a = b.add(Conv2d(32, kernel=3, padding="same"), name="conv_a")
    p = b.add(Conv2d(2, kernel=1), name="conv_p", inputs=(a,))
    q = b.add(Conv2d(2, kernel=1), name="conv_q", inputs=(a,))
    r = b.add(Add(), name="add_r", inputs=(p, q))
    t = b.add(ReLU(), name="relu_t", inputs=(p,))
    b.add(Add(), name="add_out", inputs=(r, t))
    return b.build()


def make_channel(uplink_mbps: float) -> Channel:
    return Channel(
        shaper=TrafficShaper(
            uplink_bps=mbps(uplink_mbps), downlink_bps=mbps(2 * uplink_mbps)
        )
    )


# ----------------------------------------------------------------------
# candidate closed sets
# ----------------------------------------------------------------------


def test_diamond_closed_sets_are_the_full_lattice():
    sets, exhaustive = enumerate_closed_sets(diamond())
    assert exhaustive
    assert set(sets) == {
        frozenset("a"),
        frozenset("ab"),
        frozenset("ac"),
        frozenset("abc"),
        frozenset("abcd"),
    }


def test_enumeration_truncates_at_budget():
    sets, exhaustive = enumerate_closed_sets(diamond(), max_states=3)
    assert not exhaustive
    assert len(sets) == 3


def test_topo_prefixes_are_closed_and_span_all_lengths():
    dag = diamond()
    prefixes = topo_prefix_sets(dag)
    assert [len(p) for p in prefixes] == [1, 2, 3, 4]
    closed, _ = enumerate_closed_sets(dag)
    assert set(prefixes) <= set(closed)


def test_pareto_cuts_diamond():
    cuts, info = dag_pareto_cuts(diamond(), DIAMOND_TIMES.__getitem__)
    assert info["mode"] == "exact-closure"
    assert info["states"] == 5
    # f strictly increasing, transfer bytes strictly decreasing
    f = [sum(DIAMOND_TIMES[v] for v in c.mobile) for c in cuts]
    bytes_ = [c.transfer_bytes for c in cuts]
    assert f == sorted(f)
    assert bytes_ == sorted(bytes_, reverse=True)
    # the shared tensor out of `a` is priced once: max(100, 100) == 100
    by_mobile = {c.mobile: c.transfer_bytes for c in cuts}
    assert by_mobile[frozenset("a")] == 100.0
    assert by_mobile[frozenset("abcd")] == 0.0


def test_refined_mode_kicks_in_past_budget():
    _, info = dag_pareto_cuts(diamond(), DIAMOND_TIMES.__getitem__, max_states=3)
    assert info["mode"] == "refined"


def test_unique_cut_labels_disambiguate():
    class FakeCut:
        def __init__(self, label):
            self.label = label

    labels = unique_cut_labels([FakeCut("x"), FakeCut("y"), FakeCut("x")])
    assert labels == ("x", "y", "x#2")


# ----------------------------------------------------------------------
# scheduling modes
# ----------------------------------------------------------------------


def test_exact_and_two_cut_agree_on_diamond():
    dct = dag_cut_table(diamond(), DIAMOND_TIMES.__getitem__, upload)
    exact = dag_schedule_from_table(dct.table, dct.cuts, 3, schedule="exact")
    two_cut = dag_schedule_from_table(dct.table, dct.cuts, 3, schedule="two-cut")
    auto = dag_schedule_from_table(dct.table, dct.cuts, 3, schedule="auto")
    assert exact.method == "JPS-dag"
    assert exact.metadata["schedule"] == "exact"
    assert two_cut.metadata["schedule"] == "two-cut"
    assert auto.metadata["schedule"] == "exact"  # menu fits the budget
    assert auto.makespan == exact.makespan
    assert two_cut.makespan >= exact.makespan  # exact menu is the optimum


def test_exact_over_budget_raises():
    dct = dag_cut_table(diamond(), DIAMOND_TIMES.__getitem__, upload)
    with pytest.raises(ValueError, match="exact menu needs"):
        dag_schedule_from_table(
            dct.table, dct.cuts, 10, schedule="exact", max_assignments=3
        )


def test_auto_falls_back_to_two_cut_over_budget():
    dct = dag_cut_table(diamond(), DIAMOND_TIMES.__getitem__, upload)
    schedule = dag_schedule_from_table(
        dct.table, dct.cuts, 10, schedule="auto", max_assignments=3
    )
    assert schedule.metadata["schedule"] == "two-cut"


def test_unknown_schedule_mode_raises():
    dct = dag_cut_table(diamond(), DIAMOND_TIMES.__getitem__, upload)
    with pytest.raises(ValueError, match="unknown schedule mode"):
        dag_schedule_from_table(dct.table, dct.cuts, 2, schedule="greedy")


def test_partition_dag_dominates_duplication_on_the_diamond():
    schedule = partition_dag(diamond(), DIAMOND_TIMES.__getitem__, upload, 2)
    baseline = duplication_schedule(diamond(), DIAMOND_TIMES.__getitem__, upload, 2)
    assert schedule.makespan < baseline.makespan
    assert baseline.metadata["over_shipped_bytes"] == 100.0
    assert schedule.metadata["cut_mode"] == "exact-closure"
    # every emitted plan carries an executable cut
    for job in schedule.jobs:
        assert job.mobile_nodes is not None
        assert "a" in job.mobile_nodes


def test_duplication_mobile_set_is_downward_closed():
    mobile = duplication_mobile_set(diamond(), DIAMOND_TIMES.__getitem__, upload)
    from repro.dag.cuts import is_downward_closed

    assert is_downward_closed(diamond(), mobile)
    assert "a" in mobile


def test_label_histogram_counts_by_cut_label():
    schedule = partition_dag(diamond(), DIAMOND_TIMES.__getitem__, upload, 4)
    histogram = schedule.label_histogram()
    assert sum(histogram.values()) == 4
    assert all(isinstance(k, str) for k in histogram)


def test_partition_is_deterministic():
    a = partition_dag(diamond(), DIAMOND_TIMES.__getitem__, upload, 3)
    b = partition_dag(diamond(), DIAMOND_TIMES.__getitem__, upload, 3)
    assert a.to_dict() == b.to_dict()


# ----------------------------------------------------------------------
# engine + jps() wiring
# ----------------------------------------------------------------------


def test_engine_classifies_non_sp_network_as_dag():
    engine = PlanningEngine()
    assert engine.structure_of(non_sp_network()) is Structure.DAG


def test_engine_plan_and_batch_agree_on_dag_models():
    engine = PlanningEngine()
    network = non_sp_network()
    for uplink in (1.0, 10.0, 50.0):
        single = engine.plan(network, 8, make_channel(uplink))
        (batched,) = engine.plan_batch(network, 8, [mbps(uplink)])
        assert single.method == "JPS-dag"
        assert single.to_dict() == batched.to_dict()


def test_engine_dag_table_cache_hits(mobile, cloud):
    engine = PlanningEngine()
    network = non_sp_network()
    channel = make_channel(10.0)
    engine.plan(network, 4, channel)
    before = engine.stats()
    engine.plan(network, 4, channel)
    after = engine.stats()
    assert after["dag_structure"]["misses"] == before["dag_structure"]["misses"]
    assert after["dag_tables"]["hits"] > before["dag_tables"]["hits"]
    # a different channel re-prices the table but reuses the structure
    engine.plan(network, 4, make_channel(20.0))
    final = engine.stats()
    assert final["dag_tables"]["misses"] == after["dag_tables"]["misses"] + 1
    assert final["dag_structure"]["misses"] == after["dag_structure"]["misses"]


def test_engine_cost_table_and_priced_table_carry_dag_cuts():
    engine = PlanningEngine()
    network = non_sp_network()
    channel = make_channel(10.0)
    table = engine.cost_table(network, channel)
    assert table.model_name.endswith("/dag")
    assert table.g[-1] == 0.0  # the fully-local cut ships nothing
    priced = engine.priced_table(network, mbps(10.0))
    assert priced.cuts is not None
    assert len(priced.cuts) == table.k


def test_engine_compare_jps_beats_baselines_on_dag_model():
    engine = PlanningEngine()
    results = engine.compare(non_sp_network(), 6, make_channel(10.0))
    for scheme, schedule in results.items():
        if scheme != "JPS":
            assert results["JPS"].makespan <= schedule.makespan + 1e-9


def test_engine_clear_resets_dag_caches():
    engine = PlanningEngine()
    engine.plan(non_sp_network(), 4, make_channel(10.0))
    engine.clear()
    stats = engine.stats()
    assert stats["dag_structure"]["entries"] == 0
    assert stats["dag_tables"]["entries"] == 0


def test_jps_auto_dispatches_non_sp_to_dag(mobile, cloud):
    network = non_sp_network()
    channel = make_channel(10.0)
    auto = jps(network, mobile, cloud, channel, 8)
    forced = jps(network, mobile, cloud, channel, 8, structure="dag")
    assert auto.method == "JPS-dag"
    assert auto.to_dict() == forced.to_dict()
    engine = PlanningEngine(mobile=mobile, cloud=cloud)
    assert engine.plan(network, 8, channel).makespan == auto.makespan


def test_jps_auto_keeps_zoo_models_on_their_structures(
    mobile, cloud, alexnet, googlenet
):
    channel = make_channel(10.0)
    assert jps(alexnet, mobile, cloud, channel, 4).method == "JPS"
    assert jps(googlenet, mobile, cloud, channel, 4).method == "JPS-frontier"
