"""Documentation consistency: the docs reference things that exist.

Keeps DESIGN.md / EXPERIMENTS.md / README.md honest as the code moves:
referenced modules import, referenced benchmark files exist, referenced
result artifacts are produced by some bench, and the zoo/scheme lists
in prose match the registries.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    return (ROOT / name).read_text()


def test_design_module_references_import():
    text = _read("DESIGN.md")
    for dotted in sorted(set(re.findall(r"`(repro\.[a-z_.]+)`", text))):
        candidate = dotted
        # references may point at module members (repro.core.joint.jps_frontier)
        while candidate:
            try:
                importlib.import_module(candidate)
                break
            except ModuleNotFoundError:
                candidate = candidate.rpartition(".")[0]
        assert candidate, f"DESIGN.md references unimportable {dotted}"


def test_design_bench_references_exist():
    text = _read("DESIGN.md")
    for bench in set(re.findall(r"benchmarks/(bench_\w+\.py)", text)):
        assert (ROOT / "benchmarks" / bench).exists(), f"DESIGN.md: missing {bench}"


def test_experiments_artifact_references_are_produced():
    """Every result file EXPERIMENTS.md cites is written by some bench."""
    text = _read("EXPERIMENTS.md")
    cited = set(re.findall(r"`([a-z0-9_]+\.txt)`", text))
    assert cited
    bench_sources = "".join(
        p.read_text() for p in (ROOT / "benchmarks").glob("bench_*.py")
    )
    for artifact in sorted(cited):
        stem = artifact[: -len(".txt")]
        assert f'"{stem}"' in bench_sources, (
            f"EXPERIMENTS.md cites {artifact} but no bench saves it"
        )


def test_readme_models_exist():
    from repro.nn.zoo import MODELS

    text = _read("README.md")
    for name in ("AlexNet", "GoogLeNet", "MobileNet-v2", "ResNet-18", "Inception-v4",
                 "SqueezeNet"):
        assert name in text
    # the registry names the README's headline models
    for key in ("alexnet", "googlenet", "mobilenet-v2", "resnet18",
                "inception-v4", "squeezenet"):
        assert key in MODELS


def test_examples_listed_in_examples_readme():
    text = _read("examples/README.md")
    scripts = {p.name for p in (ROOT / "examples").glob("*.py")}
    for script in scripts:
        assert script in text, f"examples/README.md does not mention {script}"


def test_docs_theory_references_tests_that_exist():
    text = _read("docs/theory.md")
    for ref in set(re.findall(r"`tests/(test_\w+\.py)", text)):
        assert (ROOT / "tests" / ref).exists(), f"docs/theory.md: missing {ref}"


def test_cli_docstring_lists_all_commands():
    from repro.cli import build_parser
    import repro.cli

    parser = build_parser()
    sub = next(
        a for a in parser._actions if hasattr(a, "choices") and a.choices
    )
    for command in sub.choices:
        assert command in (repro.cli.__doc__ or ""), (
            f"cli docstring misses command {command!r}"
        )


def test_api_facade_names_are_documented():
    """Every name `repro.api` exports is mentioned in docs/api.md."""
    import repro.api

    text = _read("docs/api.md")
    missing = [name for name in repro.api.__all__ if name not in text]
    assert not missing, f"docs/api.md misses facade exports: {missing}"


def test_facade_lazy_exports_resolve_and_match_api():
    """`repro.<name>` and `repro.api.<name>` hand out the same objects."""
    import repro
    import repro.api

    for name in sorted(repro._API_EXPORTS):
        assert getattr(repro, name) is getattr(repro.api, name), name
    assert repro._API_EXPORTS <= set(repro.api.__all__)


def test_cloud_names_reach_the_facade():
    """The batching subsystem's public names ride every export path."""
    import repro
    import repro.api

    names = (
        "BATCHING_POLICIES",
        "BatchingServer",
        "CloudConfig",
        "CloudGpuModel",
        "contended_cloud_scenario",
    )
    for name in names:
        assert name in repro.api.__all__, name
        assert name in repro._API_EXPORTS, name
    # the policy registry the CLI/docs quote is the real one
    assert repro.api.BATCHING_POLICIES == ("serve_now", "batch", "adaptive")


def test_costmodel_doc_constants_match_code():
    """docs/costmodel.md quotes the shipped device constants."""
    from repro.profiling.device import gtx1080_server, raspberry_pi_4

    text = _read("docs/costmodel.md")
    pi = raspberry_pi_4()
    assert pi.kind_throughput["conv2d"] == 5e9 and "5 GFLOP/s" in text
    assert pi.layer_overhead == pytest.approx(250e-6) and "250 µs" in text
    srv = gtx1080_server()
    assert srv.kind_throughput["conv2d"] == 2.5e12 and "2.5 TFLOP/s" in text
