"""Cloud batching through the fleet: parity, acceptance, reporting.

Three locks from ISSUE 7:

* **Parity** — a bijective serve-now cloud (one GPU per server, batch
  size one, default model) is *byte-identical* to the unbatched fleet
  on the identical stream: same per-server report JSON, same fleet
  dict minus the ``cloud`` section. Batching is strictly opt-in.
* **Acceptance** — on the contended scenario (N servers sharing one
  slow GPU) hold-and-batch serves strictly more requests within
  deadline than serve-now on the identical arrival stream, with zero
  accounting/clock violations.
* **Reporting** — ``SystemReport`` surfaces fleet-wide p99 latency,
  sustained throughput, and per-GPU batching stats; ``SystemConfig``
  round-trips the cloud block and omits it entirely when unset.
"""

import json
from dataclasses import replace

import pytest

from repro.cloud import CloudConfig, CloudGpuModel
from repro.engine import PlanningEngine
from repro.fleet import (
    SystemConfig,
    capacity_scenario,
    contended_cloud_scenario,
    run_system,
)


def test_cloud_config_round_trip():
    config = contended_cloud_scenario(servers=2, clients=4)
    assert config.cloud is not None
    document = json.loads(json.dumps(config.as_dict()))
    assert SystemConfig.from_dict(document) == config
    assert "cloud" in document


def test_as_dict_omits_cloud_when_unset():
    config = capacity_scenario(servers=2)
    assert config.cloud is None
    assert "cloud" not in config.as_dict()
    # golden byte-compat depends on this: absent, not null
    assert SystemConfig.from_dict(config.as_dict()) == config


def test_cloud_config_validation():
    with pytest.raises(ValueError):
        CloudConfig(gpus=0)
    with pytest.raises(ValueError):
        CloudConfig(max_batch=0)
    with pytest.raises(ValueError):
        CloudConfig(max_wait=-1.0)
    with pytest.raises(ValueError):
        CloudConfig(policy="nope")
    with pytest.raises(ValueError):
        CloudConfig(assignment="nope")


def test_serve_now_bijective_cloud_is_byte_identical_to_unbatched():
    """One serve-now GPU per server == the private per-server cloud.

    Pins ``assignment="round_robin"``: the bijection needs the static
    gateway ``i`` → GPU ``i`` wiring; least-queued routing would let
    servers share GPUs and break the one-to-one mirror.
    """
    base = capacity_scenario(servers=4)
    mirrored = replace(
        base,
        cloud=CloudConfig(
            gpus=len(base.servers),
            max_batch=1,
            max_wait=0.0,
            policy="serve_now",
            assignment="round_robin",
            model=CloudGpuModel(),
        ),
    )
    # fresh planners per run: a shared planner's cache gauges would
    # differ between the first and second run
    plain = run_system(base, planner=PlanningEngine()).as_dict()
    cloudy = run_system(mirrored, planner=PlanningEngine()).as_dict()
    assert json.dumps(plain["servers"], sort_keys=True) == json.dumps(
        cloudy["servers"], sort_keys=True
    )
    cloud_section = cloudy["fleet"].pop("cloud")
    assert json.dumps(plain["fleet"], sort_keys=True) == json.dumps(
        cloudy["fleet"], sort_keys=True
    )
    # every GPU ran pure batches of one
    assert all(gpu["max_batch_size"] <= 1 for gpu in cloud_section["servers"])


def test_batching_beats_serve_now_on_contended_cloud():
    """The ISSUE acceptance lock, on the shipped contended scenario."""
    batch = run_system(contended_cloud_scenario(), planner=PlanningEngine())
    serve_now = run_system(
        contended_cloud_scenario(policy="serve_now"), planner=PlanningEngine()
    )
    assert batch.arrivals == serve_now.arrivals  # identical stream
    assert batch.within_deadline > serve_now.within_deadline
    for report in (batch, serve_now):
        assert report.violations == () and report.clock_violations == ()
    # batching actually coalesced work on the shared GPU
    stats = batch.fleet["cloud"]["servers"]
    assert sum(gpu["batches"] for gpu in stats) < sum(
        gpu["batched_requests"] for gpu in stats
    )


def test_least_queued_router_spreads_load_across_gpus():
    """The default assignment routes per submit, touching every GPU."""
    report = run_system(
        contended_cloud_scenario(servers=4, gpus=2), planner=PlanningEngine()
    )
    cloud = report.fleet["cloud"]
    assert cloud["assignment_policy"] == "least_queued"
    # every server submits through the shared router, not a fixed GPU
    assert set(cloud["assignment"].values()) == {"least-queued-pool"}
    routed = cloud["routed"]
    assert set(routed) == {gpu["name"] for gpu in cloud["servers"]}
    assert all(count > 0 for count in routed.values())
    assert sum(routed.values()) == sum(gpu["submitted"] for gpu in cloud["servers"])
    assert report.violations == () and report.clock_violations == ()


def test_single_gpu_pool_identical_under_both_assignments():
    """gpus=1 never builds a router: the contended acceptance scenario
    (and its 71-within-deadline lock) is untouched by the new default."""
    base = contended_cloud_scenario()
    pinned = replace(base, cloud=replace(base.cloud, assignment="round_robin"))
    least = run_system(base, planner=PlanningEngine()).as_dict()
    fixed = run_system(pinned, planner=PlanningEngine()).as_dict()
    assert json.dumps(least["servers"], sort_keys=True) == json.dumps(
        fixed["servers"], sort_keys=True
    )
    for report in (least, fixed):
        report["fleet"]["cloud"].pop("assignment_policy")
    assert json.dumps(least["fleet"], sort_keys=True) == json.dumps(
        fixed["fleet"], sort_keys=True
    )


def test_fleet_report_surfaces_p99_and_cloud_section():
    report = run_system(
        contended_cloud_scenario(servers=2, clients=8, horizon=4.0),
        planner=PlanningEngine(),
    )
    latency = report.fleet["latency"]
    assert latency["p50"] <= latency["p95"] <= latency["p99"]
    assert report.p99_latency == latency["p99"]
    assert report.sustained_rps == report.fleet["sustained_rps"]
    assert report.sustained_rps > 0
    cloud = report.fleet["cloud"]
    assert cloud["gpus"] == 1
    assert len(cloud["servers"]) == 1
    assert cloud["servers"][0]["submitted"] > 0
    # every fleet server is assigned to some pool GPU
    assert set(cloud["assignment"]) == set(report.servers)
    assert set(cloud["assignment"].values()) == {cloud["servers"][0]["name"]}


def test_unbatched_report_has_latency_but_no_cloud():
    report = run_system(
        capacity_scenario(servers=2, clients=8),
        planner=PlanningEngine(),
    )
    assert "cloud" not in report.fleet
    assert report.fleet["latency"]["p99"] >= 0.0
    assert report.sustained_rps > 0


def test_eft_placement_prices_the_shared_cloud_queue():
    config = replace(
        contended_cloud_scenario(servers=2, clients=8, horizon=4.0),
        placement=replace(contended_cloud_scenario().placement, policy="eft"),
    )
    report = run_system(config, planner=PlanningEngine())
    assert report.violations == () and report.clock_violations == ()
    assert report.served > 0


@pytest.mark.parametrize("policy", ["serve_now", "batch", "adaptive"])
def test_every_policy_keeps_fleet_accounting_exact(policy):
    report = run_system(
        contended_cloud_scenario(servers=2, clients=6, horizon=3.0, policy=policy),
        planner=PlanningEngine(),
    )
    assert report.violations == () and report.clock_violations == ()
    # the shared GPUs saw exactly-once submission: every completed
    # batch member was submitted by some gateway
    stats = report.fleet["cloud"]["servers"]
    for gpu in stats:
        assert gpu["batched_requests"] == gpu["submitted"]
