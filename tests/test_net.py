"""Bandwidth presets, shaper, channel model."""

import pytest

from repro.net.bandwidth import FOUR_G, PRESETS, THREE_G, WIFI, BandwidthPreset, TrafficShaper
from repro.net.channel import Channel
from repro.utils.units import mbps


def test_paper_preset_rates():
    assert THREE_G.uplink_bps == pytest.approx(1.1e6)
    assert FOUR_G.uplink_bps == pytest.approx(5.85e6)
    assert WIFI.uplink_bps == pytest.approx(18.88e6)
    assert set(PRESETS) == {"3G", "4G", "Wi-Fi"}


def test_preset_validation():
    with pytest.raises(ValueError):
        BandwidthPreset("bad", uplink_bps=0, downlink_bps=1)


def test_shaper_mutation_is_seen_by_channel():
    shaper = TrafficShaper.from_preset(WIFI)
    channel = Channel(shaper=shaper)
    before = channel.uplink_time(1e6)
    shaper.set_uplink_mbps(1.0)
    after = channel.uplink_time(1e6)
    assert after > before * 10


def test_shaper_validation():
    shaper = TrafficShaper.from_preset(WIFI)
    with pytest.raises(ValueError):
        shaper.set_uplink_mbps(0)
    with pytest.raises(ValueError):
        shaper.set_downlink_mbps(-1)
    with pytest.raises(ValueError):
        TrafficShaper(uplink_bps=-1, downlink_bps=1)


def test_channel_zero_payload_costs_nothing():
    channel = Channel.from_preset(FOUR_G)
    assert channel.uplink_time(0) == 0.0
    assert channel.downlink_time(0) == 0.0


def test_channel_uplink_affine_in_bytes():
    channel = Channel.from_preset(FOUR_G)
    t1 = channel.uplink_time(1e5)
    t2 = channel.uplink_time(2e5)
    t3 = channel.uplink_time(3e5)
    # affine: equal increments
    assert t2 - t1 == pytest.approx(t3 - t2)
    # setup latency shows as an intercept
    assert t1 > 1e5 * 8 / FOUR_G.uplink_bps


def test_channel_includes_header_and_overhead():
    channel = Channel(
        shaper=TrafficShaper(uplink_bps=mbps(8), downlink_bps=mbps(8)),
        setup_latency=0.0,
        header_bytes=0,
        protocol_overhead=1.0,
    )
    # 1 MB over 8 Mbps with no overheads -> exactly 1 s
    assert channel.uplink_time(1e6) == pytest.approx(1.0)


def test_channel_rejects_negative_payload():
    channel = Channel.from_preset(FOUR_G)
    with pytest.raises(ValueError):
        channel.uplink_time(-1)


def test_channel_validation():
    with pytest.raises(ValueError):
        Channel(shaper=TrafficShaper.from_preset(FOUR_G), setup_latency=-1)
    with pytest.raises(ValueError):
        Channel(shaper=TrafficShaper.from_preset(FOUR_G), protocol_overhead=0)


def test_downlink_uses_downlink_rate():
    channel = Channel.from_preset(FOUR_G)
    assert channel.downlink_time(1e6) < channel.uplink_time(1e6)
