"""Units for fault plans, the injector, policies, and invariants."""

import pytest

from repro.faults import (
    BLACKOUT_BPS,
    Blackout,
    ClientOutage,
    CostMisestimation,
    FaultPlan,
    MonotoneClockMonitor,
    RateSpike,
    ResiliencePolicy,
    TransferCorruption,
    accounting_violations,
)
from repro.net.timeline import BandwidthTimeline
from repro.sim.engine import Engine


# ----------------------------------------------------------------------
# plan validation + timeline composition
# ----------------------------------------------------------------------
def test_fault_window_validation():
    with pytest.raises(ValueError):
        Blackout(2.0, 2.0)
    with pytest.raises(ValueError):
        Blackout(-1.0, 2.0)
    with pytest.raises(ValueError):
        RateSpike(0.0, 1.0, factor=0.0)
    with pytest.raises(ValueError):
        TransferCorruption(probability=1.5)
    with pytest.raises(ValueError):
        ClientOutage("", 0.0, 1.0)
    with pytest.raises(ValueError):
        CostMisestimation(compute_scale=0.0)


def test_noop_plan_leaves_timeline_untouched():
    base = BandwidthTimeline.constant(8e6, setup_latency=0.01)
    plan = FaultPlan()
    assert plan.is_noop
    assert plan.apply_to_timeline(base) is base


def test_blackout_overlays_timeline():
    base = BandwidthTimeline.constant(8e6)
    plan = FaultPlan(blackouts=(Blackout(2.0, 4.0),))
    faulted = plan.apply_to_timeline(base)
    assert faulted.rate_at(1.0) == 8e6
    assert faulted.rate_at(2.0) == BLACKOUT_BPS
    assert faulted.rate_at(3.999) == BLACKOUT_BPS
    assert faulted.rate_at(4.0) == 8e6
    assert plan.blackout_at(3.0) and not plan.blackout_at(4.0)


def test_transfer_stalls_through_blackout():
    """A transfer started inside a blackout resumes after the window."""
    base = BandwidthTimeline.constant(8e6)
    faulted = FaultPlan(blackouts=(Blackout(2.0, 4.0),)).apply_to_timeline(base)
    clean_duration = base.transfer_end(0.0, 100_000.0)
    end = faulted.transfer_end(2.5, 100_000.0)
    # essentially nothing moves during the blackout; the payload drains
    # at the base rate once the window ends
    assert end == pytest.approx(4.0 + clean_duration, abs=1e-6)


def test_spike_multiplies_and_blackout_wins():
    base = BandwidthTimeline.constant(8e6)
    plan = FaultPlan(
        blackouts=(Blackout(2.0, 3.0),),
        spikes=(RateSpike(1.0, 5.0, factor=2.0),),
    )
    faulted = plan.apply_to_timeline(base)
    assert faulted.rate_at(1.5) == 16e6
    assert faulted.rate_at(2.5) == BLACKOUT_BPS   # blackout over spike
    assert faulted.rate_at(4.0) == 16e6
    assert faulted.rate_at(5.0) == 8e6


def test_rate_windows_preserve_framing_constants():
    base = BandwidthTimeline.constant(
        8e6, setup_latency=0.02, header_bytes=64.0, protocol_overhead=1.1
    )
    faulted = base.with_rate_windows([(1.0, 2.0, 1e3)])
    assert faulted.setup_latency == base.setup_latency
    assert faulted.header_bytes == base.header_bytes
    assert faulted.protocol_overhead == base.protocol_overhead


def test_plan_as_dict_roundtrips_only_set_fields():
    assert FaultPlan(seed=7).as_dict() == {"seed": 7}
    full = FaultPlan(
        blackouts=(Blackout(1.0, 2.0),),
        corruption=TransferCorruption(0.5),
        misestimation=CostMisestimation(compute_scale=1.2),
    ).as_dict()
    assert full["blackouts"] == [[1.0, 2.0]]
    assert full["corruption"]["probability"] == 0.5
    assert full["misestimation"]["compute_scale"] == 1.2


# ----------------------------------------------------------------------
# injector determinism
# ----------------------------------------------------------------------
def test_corruption_draws_are_per_attempt_and_replayable():
    plan = FaultPlan(seed=11, corruption=TransferCorruption(0.5))
    a, b = plan.injector(), plan.injector()
    fates_a = [a.corrupted(rid, att, 1.0) for rid in range(20) for att in range(3)]
    fates_b = [b.corrupted(rid, att, 1.0) for rid in range(20) for att in range(3)]
    assert fates_a == fates_b
    assert any(fates_a) and not all(fates_a)
    assert a.corruptions == sum(fates_a)
    # asking out of order does not change any answer
    c = plan.injector()
    assert c.corrupted(7, 1, 1.0) == fates_a[7 * 3 + 1]


def test_corruption_respects_window_and_probability_edges():
    windowed = FaultPlan(
        seed=1, corruption=TransferCorruption(1.0, start=5.0, end=6.0)
    ).injector()
    assert not windowed.corrupted(0, 0, 4.9)
    assert windowed.corrupted(0, 0, 5.0)
    assert not windowed.corrupted(0, 0, 6.0)
    never = FaultPlan(seed=1, corruption=TransferCorruption(0.0)).injector()
    assert not never.corrupted(0, 0, 5.0)
    clean = FaultPlan(seed=1).injector()
    assert not clean.corrupted(0, 0, 5.0)


def test_disconnect_windows_tally():
    plan = FaultPlan(outages=(ClientOutage("c0", 1.0, 2.0),))
    injector = plan.injector()
    assert injector.disconnected("c0", 1.5)
    assert not injector.disconnected("c0", 2.0)
    assert not injector.disconnected("c1", 1.5)
    assert injector.disconnect_drops == 1


def test_misestimation_factors_deterministic_per_request():
    plan = FaultPlan(
        seed=3, misestimation=CostMisestimation(compute_scale=1.5, jitter=0.2)
    )
    a, b = plan.injector(), plan.injector()
    assert a.compute_factor(4) == b.compute_factor(4)
    assert a.compute_factor(4) == a.compute_factor(4)       # cached
    assert a.compute_factor(4) != a.compute_factor(5)       # per-request noise
    # compute and payload noise come from different streams
    scale_free = FaultPlan(seed=3, misestimation=CostMisestimation(jitter=0.2))
    injector = scale_free.injector()
    assert injector.compute_factor(4) != injector.payload_factor(4)
    assert FaultPlan(seed=3).injector().compute_factor(4) == 1.0


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
def test_policy_backoff_and_validation():
    policy = ResiliencePolicy(backoff_base=0.1, backoff_factor=2.0)
    assert policy.backoff(0) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.4)
    assert ResiliencePolicy(transfer_timeout=0.5).effective_probe_timeout == 0.5
    assert ResiliencePolicy(probe_timeout=0.2).effective_probe_timeout == 0.2
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(transfer_timeout=0.0)
    assert ResiliencePolicy().as_dict()["max_retries"] == 2


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
def _report(**overrides):
    counters = {
        "arrived": 10,
        "admitted": 8,
        "served": 6,
        "degraded": 1,
        "dropped": 3,
        "dropped_queue_full": 2,
        "dropped_deadline": 1,
    }
    counters.update(overrides.pop("counters", {}))
    report = {"counters": counters, "pending": 0, "histograms": {}}
    report.update(overrides)
    return report


def test_accounting_clean_report_passes():
    assert accounting_violations(_report()) == []


def test_accounting_catches_lost_requests():
    broken = _report(counters={"served": 5})
    assert any("arrived" in v for v in accounting_violations(broken))


def test_accounting_catches_bad_drop_tiling():
    broken = _report(counters={"dropped_deadline": 0})
    assert any("drop reasons" in v for v in accounting_violations(broken))


def test_accounting_catches_negative_histogram():
    broken = _report(histograms={"latency": {"count": 3, "min": -0.5}})
    assert any("latency" in v for v in accounting_violations(broken))


def test_monotone_clock_monitor_passes_and_chains():
    engine = Engine()
    seen = []
    engine.on_advance = seen.append
    monitor = MonotoneClockMonitor().attach(engine)
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.run()
    assert monitor.violations == []
    assert monitor.events == 2
    assert seen == [1.0, 2.0]                     # previous observer still fires


def test_monotone_clock_monitor_flags_regression():
    monitor = MonotoneClockMonitor()

    class _Fake:
        on_advance = None

    fake = _Fake()
    monitor.attach(fake)
    fake.on_advance(2.0)
    fake.on_advance(1.0)
    assert monitor.violations and "backwards" in monitor.violations[0]
