"""Metrics substrate: gauges, labeled counters, histogram merge.

The merge test states the strongest useful property: folding shard B
into shard A is *bit-identical* to having observed every sample in one
histogram — same buckets, same extremes, same quantiles — for any
partition of the samples. The relative-error test then bounds the
quantile estimates themselves against exact order statistics.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, StreamingHistogram

POSITIVE_SAMPLES = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=80,
)


# ----------------------------------------------------------------------
# StreamingHistogram.merge
# ----------------------------------------------------------------------


@given(left=POSITIVE_SAMPLES, right=POSITIVE_SAMPLES)
def test_merge_equals_direct_observation(left, right):
    merged = StreamingHistogram()
    shard = StreamingHistogram()
    direct = StreamingHistogram()
    for value in left:
        merged.observe(value)
        direct.observe(value)
    for value in right:
        shard.observe(value)
        direct.observe(value)
    result = merged.merge(shard)
    assert result is merged  # chains
    assert merged._buckets == direct._buckets
    assert merged.count == direct.count
    assert merged.total == pytest.approx(direct.total)
    assert merged.min == direct.min and merged.max == direct.max
    for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
        assert merged.quantile(q) == direct.quantile(q)


@given(left=POSITIVE_SAMPLES, right=POSITIVE_SAMPLES)
def test_merged_quantiles_keep_relative_error_bound(left, right):
    """Merged estimates stay within the sketch's relative accuracy.

    The q-quantile of n samples interpolates rank q*(n-1); the sketch
    returns a bucket representative within ``relative_accuracy`` of the
    sample it lands on, which must be one of the two samples bracketing
    that rank.
    """
    accuracy = 0.01
    h1 = StreamingHistogram(accuracy)
    h2 = StreamingHistogram(accuracy)
    for value in left:
        h1.observe(value)
    for value in right:
        h2.observe(value)
    h1.merge(h2)
    samples = sorted(left + right)
    for q in (0.5, 0.95, 0.99):
        rank = q * (len(samples) - 1)
        bracket = (samples[math.floor(rank)], samples[math.ceil(rank)])
        lo = min(bracket) * (1 - accuracy) * (1 - 1e-9)
        hi = max(bracket) * (1 + accuracy) * (1 + 1e-9)
        assert lo <= h1.quantile(q) <= hi


def test_merge_rejects_mismatched_accuracy():
    with pytest.raises(ValueError, match="relative_accuracy"):
        StreamingHistogram(0.01).merge(StreamingHistogram(0.05))


def test_merge_carries_zero_bucket():
    a = StreamingHistogram()
    b = StreamingHistogram()
    for _ in range(3):
        a.observe(0.0)
    b.observe(0.0)
    b.observe(5.0)
    a.merge(b)
    assert a.count == 5
    assert a.quantile(0.5) == 0.0  # 4 of 5 observations are zero
    assert a.max == 5.0


# ----------------------------------------------------------------------
# Gauge
# ----------------------------------------------------------------------


def test_gauge_set_increment_decrement():
    registry = MetricsRegistry()
    gauge = registry.gauge("cache_entries")
    gauge.set(10)
    gauge.increment(2.5)
    gauge.decrement()
    assert gauge.value == 11.5
    assert registry.gauge("cache_entries") is gauge  # same series


# ----------------------------------------------------------------------
# labels and snapshot keys
# ----------------------------------------------------------------------


def test_labeled_series_are_distinct_and_render_prometheus_style():
    registry = MetricsRegistry()
    registry.counter("hits").increment(5)
    registry.counter("hits", layer="line").increment(2)
    registry.counter("hits", layer="frontier").increment(3)
    registry.gauge("depth", client="a").set(4)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {
        "hits": 5,
        'hits{layer="frontier"}': 3,
        'hits{layer="line"}': 2,
    }
    assert snapshot["gauges"] == {'depth{client="a"}': 4.0}


def test_label_order_does_not_split_series():
    registry = MetricsRegistry()
    registry.counter("c", a="1", b="2").increment()
    registry.counter("c", b="2", a="1").increment()
    assert registry.snapshot()["counters"] == {'c{a="1",b="2"}': 2}


def test_unlabeled_snapshot_keeps_historical_wire_format():
    """Bare names for unlabeled series — the serving report schema."""
    registry = MetricsRegistry()
    registry.counter("arrived").increment(2)
    registry.histogram("latency").observe(1.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"arrived": 2}
    assert set(snapshot["histograms"]["latency"]) == {
        "count", "sum", "mean", "min", "max", "p50", "p95", "p99",
    }


# ----------------------------------------------------------------------
# the serving shim is gone: importing it fails loudly, pointing here
# ----------------------------------------------------------------------


def test_serving_metrics_shim_is_removed_with_a_loud_pointer():
    import sys

    sys.modules.pop("repro.serving.metrics", None)
    with pytest.raises(ImportError, match="repro.obs.metrics"):
        import repro.serving.metrics  # noqa: F401
