"""Property suite: batching never loses, duplicates, or oversizes.

Hypothesis drives randomized shared-cloud fleets — batching policy,
batch-size cap, wait window, GPU count, per-uplink fault plans —
through :class:`~repro.fleet.fleet.FleetGateway` directly (so the
GPU pool is inspectable) and asserts the subsystem's load-bearing
guarantees:

* every request submitted to a GPU lands in **exactly one** completed
  batch (the multiset of batch members equals the multiset of
  submissions — nothing lost, nothing double-served);
* no batch ever exceeds ``max_batch``;
* the fleet accounting invariant still tiles exactly (served +
  degraded + dropped + pending + fleet rejects == arrivals) and the
  virtual clock never runs backwards, under any policy × fault plan.
"""

import warnings

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import BATCHING_POLICIES, CloudConfig, CloudGpuModel
from repro.engine import PlanningEngine
from repro.faults.invariants import MonotoneClockMonitor
from repro.faults.plan import Blackout, FaultPlan
from repro.fleet import (
    FleetGateway,
    ServerSpec,
    SystemConfig,
    WorkloadConfig,
    fleet_accounting_violations,
)
from repro.serving.workload import ClientSpec, generate_requests

# one warm planner across examples: structure caches make the suite fast
PLANNER = PlanningEngine()


@st.composite
def cloud_configs(draw) -> SystemConfig:
    n_servers = draw(st.integers(1, 3))
    servers = []
    for index in range(n_servers):
        plan = None
        if draw(st.booleans()):
            start = draw(st.floats(0.0, 2.0))
            plan = FaultPlan(blackouts=(Blackout(start, start + 1.0),))
        servers.append(ServerSpec(name=f"s{index}", fault_plan=plan))
    clients = tuple(
        ClientSpec(
            name=f"c{i}",
            rate=draw(st.sampled_from([0.5, 2.0])),
            deadline=draw(st.sampled_from([None, 1.0])),
        )
        for i in range(draw(st.integers(1, 4)))
    )
    return SystemConfig(
        workload=WorkloadConfig(
            clients=clients,
            horizon=3.0,
            seed=draw(st.integers(0, 2**31 - 1)),
        ),
        servers=tuple(servers),
        cloud=CloudConfig(
            gpus=draw(st.integers(1, 3)),
            max_batch=draw(st.integers(1, 8)),
            max_wait=draw(st.sampled_from([0.0, 0.02, 0.25])),
            policy=draw(st.sampled_from(BATCHING_POLICIES)),
            model=CloudGpuModel(
                overhead_fraction=draw(st.sampled_from([0.0, 0.35, 0.9])),
                speedup=draw(st.sampled_from([0.05, 1.0, 4.0])),
            ),
        ),
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=cloud_configs())
def test_batches_partition_submissions_and_accounting_tiles(config):
    workload = config.workload
    requests = generate_requests(
        list(workload.clients), workload.horizon, workload.seed
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)  # new API never warns
        fleet = FleetGateway(config, planner=PLANNER)
        clock = MonotoneClockMonitor().attach(fleet.engine)
        result = fleet.run(requests)
        document = fleet.report(result)

    # fleet accounting + clock, unchanged by the shared cloud
    assert fleet_accounting_violations(document) == []
    assert clock.violations == []

    assert len(fleet.cloud_pool) == config.cloud.gpus
    for gpu in fleet.cloud_pool:
        members = [
            label for batch in gpu.batch_log for label in batch["requests"]
        ]
        # exactly-once: the multiset of batch members IS the multiset
        # of submissions — nothing held forever, lost, or double-run
        assert sorted(members) == sorted(gpu.submitted)
        assert gpu.held == 0
        assert all(batch["size"] <= config.cloud.max_batch for batch in gpu.batch_log)
        assert all(batch["end"] >= batch["start"] for batch in gpu.batch_log)
