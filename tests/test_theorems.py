"""Theorem verification suite: the paper's proofs, checked mechanically.

Beyond unit tests of the algorithms, these verify the *arguments* the
paper makes — the swap analysis of Theorem 5.3, the completeness of the
frontier cut space against an exhaustive oracle on random
series-parallel graphs, and the exchange property behind Johnson's
rule.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduling import flow_shop_makespan, johnson_order
from repro.dag.cuts import enumerate_frontier_cuts, is_downward_closed
from repro.nn.zoo import random_series_parallel_network
from tests.helpers import make_table


def johnson_makespan(stages):
    order = johnson_order(stages)
    return flow_shop_makespan([stages[i] for i in order])


# ----------------------------------------------------------------------
# Theorem 5.3's swap arguments
# ----------------------------------------------------------------------

def theorem_5_3_table():
    """A table satisfying the theorem's conditions:
    f(l*-1)+f(l*) = g(l*-1)+g(l*) and g(l*-1) = f(l*)."""
    # l* = 2: f = [0, 1, 4, 6], g = [6, 4, 3, 0] -> f(1)+f(2)=5? no.
    # use f(l*-1)=1, g(l*-1)=4, f(l*)=4, g(l*)=1: sums 5=5, g(l*-1)=f(l*)=4
    return make_table(f=[0.0, 1.0, 4.0, 6.0], g=[6.0, 4.0, 1.0, 0.0])


def test_theorem_5_3_half_half_hides_communication():
    table = theorem_5_3_table()
    n = 10
    stages = [table.stage_lengths(1)] * (n // 2) + [table.stage_lengths(2)] * (n // 2)
    makespan = johnson_makespan(stages)
    # perfect pipeline: f(x1) + sum of remaining f + g(xn)
    total_f = sum(s[0] for s in stages)
    assert makespan == pytest.approx(total_f + table.stage_lengths(2)[1] + 0, abs=1e-9) or (
        makespan == pytest.approx(
            table.stage_lengths(1)[0] + sum(s[1] for s in stages), abs=1e-9
        )
    )


def test_theorem_5_3_swap_toward_shallower_cut_hurts():
    """Swapping an S1 job to a cut left of l*-1 enlarges the makespan."""
    table = theorem_5_3_table()
    n = 10
    base = [table.stage_lengths(1)] * (n // 2) + [table.stage_lengths(2)] * (n // 2)
    swapped = [table.stage_lengths(0)] + base[1:]
    assert johnson_makespan(swapped) >= johnson_makespan(base) - 1e-12


def test_theorem_5_3_swap_toward_deeper_cut_hurts():
    """Swapping an S2 job to a cut right of l* enlarges the makespan."""
    table = theorem_5_3_table()
    n = 10
    base = [table.stage_lengths(1)] * (n // 2) + [table.stage_lengths(2)] * (n // 2)
    swapped = base[:-1] + [table.stage_lengths(3)]
    assert johnson_makespan(swapped) >= johnson_makespan(base) - 1e-12


def test_theorem_5_3_simultaneous_swaps_do_not_help():
    table = theorem_5_3_table()
    n = 10
    base = [table.stage_lengths(1)] * (n // 2) + [table.stage_lengths(2)] * (n // 2)
    both = [table.stage_lengths(0)] + base[1:-1] + [table.stage_lengths(3)]
    assert johnson_makespan(both) >= johnson_makespan(base) - 1e-12


@settings(max_examples=100, deadline=None)
@given(
    half=st.integers(1, 8),
    f1=st.floats(0.1, 5.0),
    delta=st.floats(0.1, 3.0),
)
def test_theorem_5_3_family_property(half, f1, delta):
    """For every table meeting the theorem's equalities, the half/half
    two-type schedule achieves the Prop. 4.1 perfect-pipeline value."""
    # construct: f(l*-1)=f1, f(l*)=f1+delta, g(l*-1)=f1+delta, g(l*)=f1
    a = (f1, f1 + delta)           # communication-heavy
    b = (f1 + delta, f1)           # computation-heavy
    stages = [a] * half + [b] * half
    order = johnson_order(stages)
    ordered = [stages[i] for i in order]
    makespan = flow_shop_makespan(ordered)
    fs = [s[0] for s in ordered]
    gs = [s[1] for s in ordered]
    expected = fs[0] + max(sum(fs[1:]), sum(gs[:-1])) + gs[-1]
    assert makespan == pytest.approx(expected)
    # and with the sums balanced, neither resource idles in the middle:
    assert sum(fs[1:]) == pytest.approx(sum(gs[:-1]))


# ----------------------------------------------------------------------
# Johnson's exchange property
# ----------------------------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.tuples(st.floats(0, 5), st.floats(0, 5)), min_size=2, max_size=10),
    st.data(),
)
def test_johnson_adjacent_exchange(stages, data):
    """Swapping any adjacent pair in the Johnson order never improves."""
    order = johnson_order(stages)
    ordered = [stages[i] for i in order]
    base = flow_shop_makespan(ordered)
    index = data.draw(st.integers(0, len(ordered) - 2))
    swapped = ordered.copy()
    swapped[index], swapped[index + 1] = swapped[index + 1], swapped[index]
    assert flow_shop_makespan(swapped) >= base - 1e-9


# ----------------------------------------------------------------------
# frontier completeness on random series-parallel graphs
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(8))
def test_frontier_cuts_equal_exhaustive_oracle(seed):
    """enumerate_frontier_cuts = all non-empty downward-closed sets."""
    net = random_series_parallel_network(seed=seed, blocks=2, max_branches=3)
    graph = net.graph
    order = graph.topological_order()
    if len(order) > 18:
        pytest.skip("oracle is exponential; generator produced a big graph")
    expected = set()
    for mask in range(1, 2 ** len(order)):
        mobile = frozenset(v for i, v in enumerate(order) if mask >> i & 1)
        if is_downward_closed(graph, mobile):
            expected.add(mobile)
    cuts = enumerate_frontier_cuts(graph)
    assert {c.mobile for c in cuts} == expected


@pytest.mark.parametrize("seed", range(8, 16))
def test_frontier_cuts_valid_on_larger_random_graphs(seed):
    net = random_series_parallel_network(seed=seed, blocks=4, max_branches=3)
    graph = net.graph
    cuts = enumerate_frontier_cuts(graph)
    assert len({c.mobile for c in cuts}) == len(cuts)  # no duplicates
    for cut in cuts:
        assert is_downward_closed(graph, cut.mobile)
        assert cut.transfer_bytes >= 0
