"""Dag structure: construction, invariants, traversals."""

import networkx as nx
import pytest

from repro.dag.graph import CycleError, Dag


def diamond() -> Dag:
    g = Dag(name="diamond")
    for v in "abcd":
        g.add_node(v)
    g.add_edge("a", "b", 10)
    g.add_edge("a", "c", 10)
    g.add_edge("b", "d", 5)
    g.add_edge("c", "d", 7)
    return g


def test_add_node_rejects_duplicates_and_bad_ids():
    g = Dag()
    g.add_node("x")
    with pytest.raises(ValueError, match="duplicate"):
        g.add_node("x")
    with pytest.raises(TypeError):
        g.add_node("")
    with pytest.raises(TypeError):
        g.add_node(3)  # type: ignore[arg-type]


def test_add_edge_validations():
    g = Dag()
    g.add_node("a")
    g.add_node("b")
    with pytest.raises(KeyError):
        g.add_edge("a", "missing")
    with pytest.raises(CycleError):
        g.add_edge("a", "a")
    g.add_edge("a", "b", 1.0)
    with pytest.raises(ValueError, match="duplicate edge"):
        g.add_edge("a", "b", 2.0)
    with pytest.raises(ValueError, match="volume"):
        g.add_edge("b", "a", -1.0)


def test_payload_roundtrip():
    g = Dag()
    g.add_node("a", payload={"x": 1})
    assert g.payload("a") == {"x": 1}
    g.set_payload("a", 42)
    assert g.payload("a") == 42
    with pytest.raises(KeyError):
        g.payload("nope")
    with pytest.raises(KeyError):
        g.set_payload("nope", 0)


def test_adjacency_and_degrees():
    g = diamond()
    assert g.successors("a") == ["b", "c"]
    assert g.predecessors("d") == ["b", "c"]
    assert g.out_degree("a") == 2
    assert g.in_degree("d") == 2
    assert g.volume("c", "d") == 7
    with pytest.raises(KeyError):
        g.volume("a", "d")


def test_sources_and_sinks():
    g = diamond()
    assert g.sources() == ["a"]
    assert g.sinks() == ["d"]


def test_topological_order_matches_networkx_constraints():
    g = diamond()
    order = g.topological_order()
    position = {v: i for i, v in enumerate(order)}
    for edge in g.edges():
        assert position[edge.tail] < position[edge.head]


def test_topological_order_detects_cycles():
    g = Dag()
    for v in "abc":
        g.add_node(v)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    with pytest.raises(CycleError):
        g.topological_order()


def test_ancestors_descendants():
    g = diamond()
    assert g.ancestors("d") == {"a", "b", "c"}
    assert g.descendants("a") == {"b", "c", "d"}
    assert g.ancestors("a") == set()
    assert g.descendants("d") == set()


def test_is_line_and_line_order():
    g = Dag()
    for v in "abc":
        g.add_node(v)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    assert g.is_line()
    assert g.line_order() == ["a", "b", "c"]
    assert not diamond().is_line()
    with pytest.raises(ValueError):
        diamond().line_order()


def test_empty_graph_is_not_line():
    assert not Dag().is_line()


def test_cut_volume_edge_sum():
    g = diamond()
    assert g.cut_volume({"a"}) == 20  # both a-edges cross (edge-sum semantics)
    assert g.cut_volume({"a", "b"}) == 15
    assert g.cut_volume({"a", "b", "c", "d"}) == 0
    with pytest.raises(KeyError):
        g.cut_volume({"zzz"})


def test_copy_is_structural():
    g = diamond()
    clone = g.copy()
    clone.add_node("e")
    clone.add_edge("d", "e")
    assert "e" not in g
    assert g.num_edges() == 4 and clone.num_edges() == 5


def test_validate_passes_on_well_formed():
    diamond().validate()


def test_validate_requires_source_and_sink():
    g = Dag()
    with pytest.raises(CycleError if False else ValueError):
        g.validate()  # empty graph: no source


def test_matches_networkx_topology():
    g = diamond()
    nxg = nx.DiGraph()
    for e in g.edges():
        nxg.add_edge(e.tail, e.head)
    assert nx.is_directed_acyclic_graph(nxg)
    assert set(nx.ancestors(nxg, "d")) == g.ancestors("d")
    assert set(nx.descendants(nxg, "a")) == g.descendants("a")
