"""Shared fixtures: devices, channels, networks, cost tables.

Expensive artifacts (zoo networks, GoogLeNet's frontier table) are
session-scoped; everything is deterministic (fixed seeds, fixed device
constants) so failures reproduce exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import ExperimentEnv
from repro.net.bandwidth import FOUR_G, TrafficShaper
from repro.net.channel import Channel
from repro.nn import zoo
from repro.profiling.device import gtx1080_server, raspberry_pi_4
from repro.profiling.latency import CostTable, line_cost_table
from repro.utils.units import mbps
from tests.helpers import make_table


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-rounds",
        type=int,
        default=20,
        help=(
            "random instances per differential-oracle fuzz test "
            "(CI's fault-matrix job raises this to 200)"
        ),
    )


@pytest.fixture(scope="session")
def fuzz_rounds(request) -> int:
    return request.config.getoption("--fuzz-rounds")


@pytest.fixture(scope="session")
def mobile():
    return raspberry_pi_4()


@pytest.fixture(scope="session")
def cloud():
    return gtx1080_server()


@pytest.fixture()
def channel_4g():
    return Channel.from_preset(FOUR_G)


@pytest.fixture()
def channel_10mbps():
    return Channel(shaper=TrafficShaper(uplink_bps=mbps(10), downlink_bps=mbps(20)))


@pytest.fixture(scope="session")
def alexnet():
    return zoo.alexnet()


@pytest.fixture(scope="session")
def mobilenet():
    return zoo.mobilenet_v2()


@pytest.fixture(scope="session")
def resnet():
    return zoo.resnet18()


@pytest.fixture(scope="session")
def googlenet():
    return zoo.googlenet()


@pytest.fixture(scope="session")
def branchy():
    return zoo.branchy_dnn()


@pytest.fixture(scope="session")
def mini_inception():
    return zoo.mini_inception(2)


@pytest.fixture()
def alexnet_table(alexnet, mobile, cloud, channel_10mbps) -> CostTable:
    return line_cost_table(alexnet, mobile, cloud, channel_10mbps)


@pytest.fixture(scope="session")
def env() -> ExperimentEnv:
    return ExperimentEnv()


@pytest.fixture()
def simple_table() -> CostTable:
    """A well-behaved 8-position table: f linear, g geometric decay."""
    f = np.linspace(0.0, 0.7, 8)
    g = np.array([0.8 * 0.5**i for i in range(8)])
    g[-1] = 0.0
    return make_table(f, g)
