"""Workload generators."""

import pytest

from repro.core.scheduling import schedule_jobs
from repro.experiments.workloads import (
    bursty_job_counts,
    heterogeneous_mix,
    ratio_mix,
    two_type_jobs,
    uniform_jobs,
)


def test_uniform_jobs(alexnet_table):
    plans = uniform_jobs(alexnet_table, 2, 5)
    assert len(plans) == 5
    assert len({p.cut_position for p in plans}) == 1
    assert [p.job_id for p in plans] == list(range(5))
    with pytest.raises(IndexError):
        uniform_jobs(alexnet_table, alexnet_table.k, 5)
    with pytest.raises(ValueError):
        uniform_jobs(alexnet_table, 0, 0)


def test_two_type_jobs(alexnet_table):
    plans = two_type_jobs(alexnet_table, 1, 2, 3, 4)
    assert len(plans) == 7
    assert sum(p.cut_position == 1 for p in plans) == 3
    assert sum(p.cut_position == 2 for p in plans) == 4
    with pytest.raises(ValueError):
        two_type_jobs(alexnet_table, 1, 2, 0, 0)


def test_ratio_mix_counts(alexnet_table):
    plans = ratio_mix(alexnet_table, ratio=3.0, n=20)
    positions = [p.cut_position for p in plans]
    n_comp = sum(p == max(positions) for p in positions)
    n_comm = len(plans) - n_comp
    assert n_comp + n_comm == 20
    assert n_comp == round(20 * 3 / 4)
    # both types present even at extreme ratios
    extreme = ratio_mix(alexnet_table, ratio=100.0, n=10)
    assert len({p.cut_position for p in extreme}) == 2


def test_ratio_mix_schedulable(alexnet_table):
    plans = ratio_mix(alexnet_table, ratio=2.0, n=12)
    schedule = schedule_jobs(plans)
    assert schedule.makespan > 0


def test_ratio_mix_validation(alexnet_table):
    with pytest.raises(ValueError):
        ratio_mix(alexnet_table, ratio=0.0, n=10)


def test_heterogeneous_mix(env):
    a = env.cost_table("alexnet", 10.0)
    m = env.cost_table("mobilenet-v2", 10.0)
    plans = heterogeneous_mix([(a, 1, 3), (m, 2, 2)])
    assert len(plans) == 5
    assert len({p.job_id for p in plans}) == 5  # ids unique across groups
    assert {p.model for p in plans} == {a.model_name, m.model_name}
    with pytest.raises(ValueError):
        heterogeneous_mix([])


def test_bursty_job_counts_deterministic():
    a = bursty_job_counts(10, 6.0, seed=4)
    b = bursty_job_counts(10, 6.0, seed=4)
    assert a == b
    assert len(a) == 10
    assert all(v >= 1 for v in a)
    assert sum(a) / len(a) == pytest.approx(6.0, rel=0.5)


def test_bursty_job_counts_minimum():
    counts = bursty_job_counts(50, 0.2, seed=0, minimum=2)
    assert all(v >= 2 for v in counts)
