"""Lower bounds, utilization, speedup reports."""

import pytest

from repro.core.analysis import (
    best_single_cut_rate,
    fractional_lower_bound,
    speedup_report,
    utilization_report,
)
from repro.core.baselines import brute_force, cloud_only, local_only, partition_only
from repro.core.joint import jps_line
from repro.sim.pipeline import simulate_schedule
from tests.helpers import make_table


def test_lower_bound_below_every_scheme(alexnet_table):
    n = 20
    bound = fractional_lower_bound(alexnet_table, n)
    for scheme in (local_only, cloud_only, partition_only):
        assert bound <= scheme(alexnet_table, n).makespan + 1e-9
    assert bound <= jps_line(alexnet_table, n).makespan + 1e-9
    assert bound <= brute_force(alexnet_table, 4).makespan * 5 + 1e-9


def test_lower_bound_is_tight_for_jps(alexnet_table):
    """JPS approaches the fractional bound as n grows (end effects amortize)."""
    n = 200
    bound = fractional_lower_bound(alexnet_table, n)
    jps = jps_line(alexnet_table, n).makespan
    assert jps >= bound
    assert jps <= bound * 1.10


def test_lower_bound_degenerate_single_position():
    table = make_table(f=[2.0], g=[0.0])
    assert fractional_lower_bound(table, 5) == pytest.approx(10.0)


def test_lower_bound_mixture_beats_single_cut():
    # two positions: (1, 3) and (3, 1); best single cut rate = 3,
    # the 50/50 mixture achieves rate 2
    table = make_table(f=[1.0, 3.0], g=[3.0, 1.0])
    _, single = best_single_cut_rate(table)
    assert single == pytest.approx(3.0)
    assert fractional_lower_bound(table, 10) == pytest.approx(20.0)


def test_best_single_cut_rate(alexnet_table):
    position, rate = best_single_cut_rate(alexnet_table)
    assert rate == pytest.approx(
        max(alexnet_table.f[position], alexnet_table.g[position])
    )
    for i in range(alexnet_table.k):
        assert rate <= max(alexnet_table.f[i], alexnet_table.g[i]) + 1e-12


def test_lower_bound_validation(alexnet_table):
    with pytest.raises(ValueError):
        fractional_lower_bound(alexnet_table, 0)


def test_utilization_report(alexnet_table):
    schedule = jps_line(alexnet_table, 10)
    report = utilization_report(simulate_schedule(schedule))
    assert report.makespan == pytest.approx(schedule.makespan)
    assert 0 < report.mobile_utilization <= 1
    assert 0 < report.uplink_utilization <= 1
    assert report.cloud_utilization == 0.0  # 2-stage run
    assert report.bottleneck in ("mobile", "uplink")


def test_speedup_report(alexnet_table):
    schedules = {
        "LO": local_only(alexnet_table, 10),
        "PO": partition_only(alexnet_table, 10),
        "JPS": jps_line(alexnet_table, 10),
    }
    reductions = speedup_report(schedules)
    assert set(reductions) == {"PO", "JPS"}
    assert reductions["JPS"] >= reductions["PO"]
    with pytest.raises(KeyError):
        speedup_report(schedules, baseline="CO")
