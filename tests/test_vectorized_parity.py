"""Property tests: vectorized kernels are bit-identical to scalar paths.

The perf layer (lexsort Johnson, cumsum flow shop, ``searchsorted``
crossing, matrix two-type split, ``plan_batch``) must never change a
single number. Each vectorized entry point is pinned to its scalar
oracle here:

* exact ``==`` on dyadic-grid inputs (multiples of 1/1024), where the
  closed-form cumsum reassociation is provably lossless;
* tight-tolerance equality on arbitrary floats, where only summation
  order may differ;
* tie-heavy inputs drawn from tiny value pools, locking the
  deterministic original-index tiebreak of the stable sort.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    _split_makespan,
    binary_search_cut,
    linear_scan_cut,
    searchsorted_cut,
    split_exact,
    split_exact_vectorized,
    two_type_makespans,
)
from repro.core.scheduling import (
    flow_shop_completion_times,
    flow_shop_completion_times_scalar,
    johnson_order,
    johnson_order_scalar,
)
from repro.engine import PlanningEngine
from repro.experiments.runner import ExperimentEnv
from repro.net.bandwidth import WIFI, TrafficShaper
from repro.net.channel import Channel
from repro.utils.units import mbps

from tests.helpers import make_table

# Dyadic rationals: cumsum of these is exactly representable, so the
# closed-form kernel must match the scalar recurrence bit for bit.
dyadic = st.integers(0, 2048).map(lambda v: v / 1024.0)
dyadic_stage = st.tuples(dyadic, dyadic)
float_stage = st.tuples(st.floats(0.0, 10.0), st.floats(0.0, 10.0))

# Tiny value pool: heavy ties in both Johnson groups.
tied = st.sampled_from([0.0, 0.5, 1.0])
tied_stage = st.tuples(tied, tied)


# ----------------------------------------------------------------------
# johnson_order: one stable lexsort == the scalar two-list construction
# ----------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(st.lists(float_stage, max_size=60))
def test_johnson_order_matches_scalar(stages):
    assert johnson_order(stages) == johnson_order_scalar(stages)


@settings(max_examples=200, deadline=None)
@given(st.lists(tied_stage, max_size=40))
def test_johnson_order_ties_keep_index_order(stages):
    order = johnson_order(stages)
    assert order == johnson_order_scalar(stages)
    # among fully identical jobs the stable sort must keep input order
    by_stage: dict[tuple[float, float], list[int]] = {}
    for position in order:
        by_stage.setdefault(tuple(stages[position]), []).append(position)
    for positions in by_stage.values():
        assert positions == sorted(positions)


# ----------------------------------------------------------------------
# flow_shop_completion_times: cumsum closed form == scalar recurrence
# ----------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(st.lists(dyadic_stage, max_size=60))
def test_flow_shop_bit_identical_on_dyadic_grid(stages):
    assert flow_shop_completion_times(stages) == flow_shop_completion_times_scalar(
        stages
    )


@settings(max_examples=200, deadline=None)
@given(st.lists(float_stage, min_size=1, max_size=60))
def test_flow_shop_close_on_arbitrary_floats(stages):
    vector = np.asarray(flow_shop_completion_times(stages))
    scalar = np.asarray(flow_shop_completion_times_scalar(stages))
    np.testing.assert_allclose(vector, scalar, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# searchsorted_cut == binary_search_cut == linear_scan_cut
# ----------------------------------------------------------------------

@st.composite
def monotone_tables(draw):
    """Valid CostTables: f/cloud non-decreasing, g non-increasing."""
    k = draw(st.integers(2, 20))
    f = np.cumsum(draw(st.lists(dyadic, min_size=k, max_size=k)))
    g = np.sort(np.asarray(draw(st.lists(dyadic, min_size=k, max_size=k))))[::-1]
    if draw(st.booleans()):
        g = g.copy()
        g[-1] = 0.0  # the full-local cut uploads nothing
    cloud = np.cumsum(draw(st.lists(dyadic, min_size=k, max_size=k)))
    return make_table(f=f, g=g.copy(), cloud=cloud)


@settings(max_examples=200, deadline=None)
@given(table=monotone_tables())
def test_searchsorted_cut_matches_binary_and_linear(table):
    l_star = searchsorted_cut(table)
    assert l_star == binary_search_cut(table)
    assert l_star == linear_scan_cut(table)


def test_searchsorted_cut_rejects_non_monotone_g():
    table = make_table(f=[0.0, 1.0, 2.0], g=[1.0, 3.0, 0.0])
    with pytest.raises(ValueError, match="not non-increasing"):
        searchsorted_cut(table)


# ----------------------------------------------------------------------
# matrix two-type split == scalar candidate loop
# ----------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(table=monotone_tables(), n=st.integers(1, 24))
def test_split_exact_vectorized_matches_scalar(table, n):
    l_star = binary_search_cut(table)
    fast = split_exact_vectorized(table, l_star, n)
    slow = split_exact(table, l_star, n)
    assert fast == slow


@settings(max_examples=100, deadline=None)
@given(table=monotone_tables(), n=st.integers(1, 16))
def test_two_type_makespan_rows_match_split_makespan(table, n):
    l_star = binary_search_cut(table)
    if l_star == 0:
        return  # no comm-heavy type exists; split degenerates
    makespans = two_type_makespans(
        table.stage_lengths(l_star - 1), table.stage_lengths(l_star), n
    )
    assert makespans.shape == (n + 1,)
    for n_a in range(n + 1):
        assert makespans[n_a] == _split_makespan(table, l_star, n_a, n - n_a)


# ----------------------------------------------------------------------
# plan_batch == per-call plan()/run_scheme() over real models
# ----------------------------------------------------------------------

BATCH_MODELS = ["alexnet", "googlenet"]  # one line model, one DAG
BATCH_SCHEMES = ["LO", "CO", "PO", "JPS", "JPS-ratio"]
BATCH_BANDWIDTHS = [0.7, 5.0, WIFI, 42.0]


@pytest.fixture(scope="module")
def batch_env():
    return ExperimentEnv()


@pytest.mark.parametrize("model", BATCH_MODELS)
@pytest.mark.parametrize("scheme", BATCH_SCHEMES)
def test_plan_batch_matches_per_cell_run_scheme(batch_env, model, scheme):
    n = 12
    batch = batch_env.run_scheme_batch(model, list(BATCH_BANDWIDTHS), n, scheme)
    assert len(batch) == len(BATCH_BANDWIDTHS)
    for bandwidth, ours in zip(BATCH_BANDWIDTHS, batch):
        theirs = batch_env.run_scheme(model, bandwidth, n, scheme)
        assert ours.makespan == theirs.makespan
        assert ours.method == theirs.method
        assert [p.cut_position for p in ours.jobs] == [
            p.cut_position for p in theirs.jobs
        ]
        assert [p.stages for p in ours.jobs] == [p.stages for p in theirs.jobs]


def _channel_at(uplink_bps: float) -> Channel:
    """The channel plan_batch's default pricing terms correspond to."""
    return Channel(
        shaper=TrafficShaper(uplink_bps=uplink_bps, downlink_bps=2 * uplink_bps)
    )


def test_plan_batch_matches_per_call_plan_over_bandwidth_grid():
    engine = PlanningEngine()
    rates = [mbps(b) for b in np.linspace(0.5, 60.0, 24)]
    n = 8
    for model in BATCH_MODELS:
        batch = engine.plan_batch(model, n, rates)
        for rate, ours in zip(rates, batch):
            theirs = engine.plan(model, n, _channel_at(rate))
            assert ours.makespan == theirs.makespan
            assert ours.method == theirs.method
            assert [p.mobile_nodes for p in ours.jobs] == [
                p.mobile_nodes for p in theirs.jobs
            ]
            assert [p.cut_position for p in ours.jobs] == [
                p.cut_position for p in theirs.jobs
            ]


@settings(max_examples=25, deadline=None)
@given(
    bandwidths=st.lists(st.floats(0.1, 200.0), min_size=1, max_size=6),
    n=st.integers(1, 6),
)
def test_plan_batch_property_random_grids(bandwidths, n):
    engine = _PROPERTY_ENGINE
    rates = [mbps(b) for b in bandwidths]
    batch = engine.plan_batch("alexnet", n, rates)
    for rate, ours in zip(rates, batch):
        theirs = engine.plan("alexnet", n, _channel_at(rate))
        assert ours.makespan == theirs.makespan
        assert [p.stages for p in ours.jobs] == [p.stages for p in theirs.jobs]


#: Shared across hypothesis examples so the structure/pricing caches warm
#: once — the property is about numbers, not cache state.
_PROPERTY_ENGINE = PlanningEngine()
