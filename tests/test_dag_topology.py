"""Path counting, separators, parallel blocks."""

import networkx as nx
import pytest

from repro.dag.graph import Dag
from repro.dag.topology import (
    PathExplosionError,
    count_paths,
    enumerate_paths,
    is_series_parallel,
    iter_paths,
    parallel_blocks,
    separators,
)


def fig9_dag() -> Dag:
    """The paper's Fig. 9(a): v0..v7 with two merge/split nodes."""
    g = Dag(name="fig9")
    for v in ("v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"):
        g.add_node(v)
    g.add_edge("v0", "v1")
    g.add_edge("v1", "v2")
    g.add_edge("v1", "v3")
    g.add_edge("v2", "v4")
    g.add_edge("v3", "v4")
    g.add_edge("v4", "v7")
    g.add_edge("v0", "v5")
    g.add_edge("v5", "v6")
    g.add_edge("v6", "v7")
    return g


def chain(k: int) -> Dag:
    g = Dag(name=f"chain{k}")
    for i in range(k):
        g.add_node(f"n{i}")
    for i in range(k - 1):
        g.add_edge(f"n{i}", f"n{i+1}")
    return g


def test_count_paths_fig9():
    assert count_paths(fig9_dag()) == 3


def test_count_paths_matches_networkx():
    g = fig9_dag()
    nxg = nx.DiGraph((e.tail, e.head) for e in g.edges())
    expected = len(list(nx.all_simple_paths(nxg, "v0", "v7")))
    assert count_paths(g) == expected


def test_count_paths_chain_is_one():
    assert count_paths(chain(5)) == 1


def test_enumerate_paths_fig9():
    paths = enumerate_paths(fig9_dag())
    assert sorted(paths) == sorted(
        [
            ["v0", "v1", "v2", "v4", "v7"],
            ["v0", "v1", "v3", "v4", "v7"],
            ["v0", "v5", "v6", "v7"],
        ]
    )


def test_enumerate_paths_cap_checked_before_walk():
    with pytest.raises(PathExplosionError):
        enumerate_paths(fig9_dag(), max_paths=2)


def test_iter_paths_lazy_matches_enumerate():
    g = fig9_dag()
    assert list(iter_paths(g)) == enumerate_paths(g)


def test_requires_single_source_sink():
    g = Dag()
    g.add_node("a")
    g.add_node("b")
    with pytest.raises(ValueError, match="exactly one source"):
        count_paths(g)


def test_separators_chain_every_node():
    g = chain(4)
    assert separators(g) == [f"n{i}" for i in range(4)]


def test_separators_fig9():
    assert separators(fig9_dag()) == ["v0", "v7"]


def test_separators_diamond_with_stem():
    g = Dag()
    for v in "sabct":
        g.add_node(v)
    g.add_edge("s", "a")
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "t")
    g.add_edge("c", "t")
    assert separators(g) == ["s", "a", "t"]


def test_parallel_blocks_exclude_endpoints():
    g = fig9_dag()
    blocks = parallel_blocks(g)
    assert len(blocks) == 1
    block = blocks[0]
    assert block.entry == "v0" and block.exit == "v7"
    assert sorted(len(b) for b in block.branches) == [2, 3, 3]
    assert block.interior_nodes() == {"v1", "v2", "v3", "v4", "v5", "v6"}


def test_parallel_blocks_trivial_edges():
    blocks = parallel_blocks(chain(3))
    assert len(blocks) == 2
    assert all(b.is_trivial for b in blocks)


def test_fig9_not_series_parallel_branches_share_v4():
    # branches v1->v2->v4 and v1->v3->v4 share v1 and v4 inside one block
    assert not is_series_parallel(fig9_dag())


def test_chain_and_zoo_are_series_parallel(mobilenet, googlenet):
    assert is_series_parallel(chain(5))
    assert is_series_parallel(mobilenet.graph)
    assert is_series_parallel(googlenet.graph)


def test_separator_count_on_zoo(resnet):
    seps = separators(resnet.graph)
    # stem (5 nodes incl. input) + per-block joints + head: strictly fewer
    # separators than nodes, and both endpoints present
    order = resnet.graph.topological_order()
    assert seps[0] == order[0] and seps[-1] == order[-1]
    assert 2 < len(seps) < len(order)
