"""Serving workload generators: determinism and process shape."""

import numpy as np
import pytest

from repro.serving.workload import (
    ClientSpec,
    Request,
    burst_arrivals,
    generate_requests,
    poisson_arrivals,
)


def test_poisson_rate_roughly_matches():
    times = poisson_arrivals(rate=10.0, horizon=200.0, rng=3)
    assert all(0 <= t < 200.0 for t in times)
    assert times == sorted(times)
    assert len(times) == pytest.approx(2000, rel=0.1)


def test_poisson_deterministic_under_seed():
    assert poisson_arrivals(2.0, 50.0, rng=11) == poisson_arrivals(2.0, 50.0, rng=11)


def test_burst_structure():
    times = burst_arrivals(burst_size=3, period=10.0, horizon=35.0, rng=5)
    assert len(times) % 3 == 0 or len(times) > 0
    assert all(0 <= t < 35.0 for t in times)
    # within a burst, spacing is the configured 1 ms
    assert times[1] - times[0] == pytest.approx(1e-3)


def test_request_validation():
    with pytest.raises(ValueError):
        Request(client_id="c", request_id=0, model="alexnet", arrival=-1.0)
    with pytest.raises(ValueError):
        Request(client_id="c", request_id=0, model="alexnet", arrival=0.0, deadline=0.0)
    unlimited = Request(client_id="c", request_id=0, model="alexnet", arrival=1.0)
    assert unlimited.expiry == float("inf")
    bounded = Request(
        client_id="c", request_id=1, model="alexnet", arrival=1.0, deadline=2.0
    )
    assert bounded.expiry == 3.0


def test_client_spec_validation():
    with pytest.raises(ValueError, match="arrival process"):
        ClientSpec(name="c", process="uniform")
    with pytest.raises(ValueError):
        ClientSpec(name="c", rate=0.0)


def test_generate_requests_merged_and_unique():
    clients = [
        ClientSpec(name="a", rate=2.0),
        ClientSpec(name="b", rate=1.0, deadline=5.0),
        ClientSpec(name="c", process="burst", burst_size=2, period=5.0),
    ]
    requests = generate_requests(clients, horizon=30.0, seed=42)
    arrivals = [r.arrival for r in requests]
    assert arrivals == sorted(arrivals)
    assert [r.request_id for r in requests] == list(range(len(requests)))
    assert {r.client_id for r in requests} == {"a", "b", "c"}
    assert all(r.deadline == 5.0 for r in requests if r.client_id == "b")
    # bit-identical regeneration under the same seed
    again = generate_requests(clients, horizon=30.0, seed=42)
    assert requests == again


def test_generate_requests_client_independence():
    """Adding a client must not perturb the other clients' arrivals."""
    base = [ClientSpec(name="a", rate=2.0), ClientSpec(name="b", rate=1.0)]
    extended = base + [ClientSpec(name="z", rate=3.0)]
    of = lambda reqs, name: [r.arrival for r in reqs if r.client_id == name]  # noqa: E731
    small = generate_requests(base, horizon=20.0, seed=9)
    large = generate_requests(extended, horizon=20.0, seed=9)
    assert of(small, "a") == of(large, "a")
    assert of(small, "b") == of(large, "b")


def test_generate_requests_rejects_duplicates_and_empty():
    with pytest.raises(ValueError, match="unique"):
        generate_requests(
            [ClientSpec(name="a"), ClientSpec(name="a")], horizon=1.0, seed=0
        )
    with pytest.raises(ValueError, match="at least one client"):
        generate_requests([], horizon=1.0, seed=0)


def test_spawned_streams_accept_generator_seed():
    rng = np.random.default_rng(1)
    times = poisson_arrivals(1.0, 10.0, rng=rng)
    assert times  # consumed from the provided generator
