"""Gateway resilience under injected faults, plus the acceptance scenario.

The headline test is the PR's acceptance criterion: under a seeded 2 s
uplink blackout, the JPS gateway with a resilience policy (timeouts →
degradation to local-only → probe-driven recovery replan) serves
strictly more requests within deadline than the policy-free gateway on
the identical stream, with zero accounting violations and at least one
degradation and one recovery replan event. The rest of the file pins
each policy mechanism in isolation and the strict opt-in contract
(fault-free gateways emit byte-identical reports).
"""

import json

import pytest

from repro.faults import (
    Blackout,
    ClientOutage,
    CostMisestimation,
    FaultPlan,
    ResiliencePolicy,
    TransferCorruption,
    accounting_violations,
    default_fault_scenario,
    run_fault_scenario,
)
from repro.net.timeline import BandwidthTimeline
from repro.serving import Gateway, Request, default_scenario, run_scenario
from repro.serving.gateway import MAX_BARE_RETRANSMITS


def flat_timeline(rate_mbps: float = 8.0) -> BandwidthTimeline:
    return BandwidthTimeline.steps_mbps([(0.0, rate_mbps)])


def requests_at(times, model="alexnet", deadline=None, client="c0"):
    return [
        Request(
            client_id=client, request_id=i, model=model, arrival=t, deadline=deadline
        )
        for i, t in enumerate(times)
    ]


def spread(n: float, every: float = 0.5):
    return [i * every for i in range(int(n))]


# ----------------------------------------------------------------------
# acceptance scenario (test-locked)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fault_report():
    return run_fault_scenario(default_fault_scenario())


def test_acceptance_policy_beats_bare_within_deadline(fault_report):
    comparison = fault_report["comparison"]
    assert comparison["within_deadline_policy"] > comparison["within_deadline_no_policy"]


def test_acceptance_degrades_and_recovers(fault_report):
    comparison = fault_report["comparison"]
    assert comparison["degradations"] >= 1
    assert comparison["recovery_replans"] >= 1
    kinds = [e.get("kind") for e in fault_report["policy"]["report"]["replans"]]
    assert "degrade" in kinds and "recovery" in kinds


def test_acceptance_accounting_is_exact(fault_report):
    for side in ("policy", "no_policy"):
        assert fault_report[side]["violations"] == []
        assert fault_report[side]["clock_violations"] == []
        assert fault_report[side]["report"]["balance_ok"]
        assert fault_report[side]["report"]["pending"] == 0


def test_acceptance_is_deterministic(fault_report):
    again = run_fault_scenario(default_fault_scenario())

    def strip(doc):
        # engine cache counters depend on planner reuse, drop them
        out = json.loads(json.dumps(doc))
        for side in ("policy", "no_policy"):
            out[side]["report"].pop("engine_cache", None)
            out[side]["report"]["counters"] = {
                k: v
                for k, v in out[side]["report"]["counters"].items()
                if not k.startswith("engine_")
            }
        return out

    assert strip(again) == strip(fault_report)


def test_acceptance_report_shape(fault_report):
    assert fault_report["policy"]["report"]["resilience"]["policy"]["max_retries"] == 1
    assert fault_report["policy"]["report"]["faults"]["plan"]["blackouts"] == [[8.0, 10.0]]
    assert fault_report["config"]["fault_plan"]["seed"] == fault_report["config"]["seed"]
    json.dumps(fault_report)                       # JSON-safe end to end


def test_fault_scenario_rejects_incomplete_configs():
    with pytest.raises(ValueError, match="fault_plan"):
        run_fault_scenario(default_scenario())
    from dataclasses import replace

    config = default_fault_scenario()
    with pytest.raises(ValueError, match="resilience"):
        run_fault_scenario(replace(config, resilience=None))
    with pytest.raises(ValueError, match="single scheme"):
        run_fault_scenario(replace(config, schemes=("JPS", "LO")))


# ----------------------------------------------------------------------
# strict opt-in: fault-free gateways are unchanged
# ----------------------------------------------------------------------

def test_fault_free_report_has_no_fault_surface():
    gateway = Gateway(flat_timeline(), scheme="JPS")
    result = gateway.run(requests_at(spread(12)))
    report = gateway.report(result)
    assert "resilience" not in report and "faults" not in report
    assert all("kind" not in event for event in report["replans"])
    fault_counters = {
        "degraded", "degradations", "recoveries", "probes", "local_fallbacks",
        "transfer_failures", "transfer_timeouts", "transfer_corruptions",
        "transfer_retries", "dropped_disconnected", "dropped_transfer_failed",
    }
    assert fault_counters.isdisjoint(report["counters"])
    assert report["balance_ok"]


def test_fault_free_scenario_echo_is_unchanged():
    config = default_scenario(horizon=10.0)
    assert "fault_plan" not in config.as_dict()
    assert "resilience" not in config.as_dict()


# ----------------------------------------------------------------------
# corruption: bare retransmit vs policy retry
# ----------------------------------------------------------------------

def test_bare_gateway_retransmits_corrupt_transfers():
    plan = FaultPlan(seed=5, corruption=TransferCorruption(0.3))
    gateway = Gateway(flat_timeline(), scheme="JPS", faults=plan)
    result = gateway.run(requests_at(spread(20)))
    counters = result.metrics.snapshot()["counters"]
    assert counters["transfer_corruptions"] > 0
    assert counters["served"] == 20               # every corruption retransmitted
    assert "transfer_retries" not in counters     # that's the policy counter
    assert accounting_violations(gateway.report(result)) == []


def test_bare_gateway_gives_up_after_max_retransmits():
    plan = FaultPlan(seed=5, corruption=TransferCorruption(1.0))
    gateway = Gateway(flat_timeline(), scheme="JPS", faults=plan)
    result = gateway.run(requests_at([0.0]))
    counters = result.metrics.snapshot()["counters"]
    assert counters["dropped_transfer_failed"] == 1
    assert counters["transfer_corruptions"] == MAX_BARE_RETRANSMITS
    assert result.records[-1].outcome == "failed"
    assert accounting_violations(gateway.report(result)) == []


def test_policy_retry_absorbs_corruption():
    plan = FaultPlan(seed=5, corruption=TransferCorruption(0.3))
    # degradation disabled so the test isolates the retry machinery
    policy = ResiliencePolicy(
        max_retries=4, backoff_base=0.01, degrade_after_failures=999
    )
    gateway = Gateway(flat_timeline(), scheme="JPS", faults=plan, resilience=policy)
    result = gateway.run(requests_at(spread(20)))
    counters = result.metrics.snapshot()["counters"]
    assert counters["transfer_retries"] > 0
    assert counters["served"] == 20
    assert accounting_violations(gateway.report(result)) == []


def test_policy_falls_back_locally_when_retries_exhaust():
    plan = FaultPlan(seed=5, corruption=TransferCorruption(1.0))
    policy = ResiliencePolicy(max_retries=1, backoff_base=0.01, degrade_after_failures=999)
    gateway = Gateway(flat_timeline(), scheme="JPS", faults=plan, resilience=policy)
    result = gateway.run(requests_at(spread(5)))
    counters = result.metrics.snapshot()["counters"]
    assert counters["local_fallbacks"] == 5
    assert counters["degraded"] == 5
    assert counters.get("served", 0) == 0
    assert all(r.outcome == "degraded" for r in result.records)
    assert all(r.latency is not None for r in result.records)
    assert accounting_violations(gateway.report(result)) == []


def test_policy_without_fallback_drops():
    plan = FaultPlan(seed=5, corruption=TransferCorruption(1.0))
    policy = ResiliencePolicy(
        max_retries=1, backoff_base=0.01, local_fallback=False,
        degrade_after_failures=999,
    )
    gateway = Gateway(flat_timeline(), scheme="JPS", faults=plan, resilience=policy)
    result = gateway.run(requests_at(spread(5)))
    counters = result.metrics.snapshot()["counters"]
    assert counters["dropped_transfer_failed"] == 5
    assert accounting_violations(gateway.report(result)) == []


# ----------------------------------------------------------------------
# blackout: timeouts, degradation, recovery
# ----------------------------------------------------------------------

def blackout_timeline(start=2.0, end=4.0):
    return FaultPlan(blackouts=(Blackout(start, end),)).apply_to_timeline(
        flat_timeline()
    )


def test_timeouts_fire_inside_blackout():
    policy = ResiliencePolicy(
        transfer_timeout=0.2, max_retries=0, backoff_base=0.01,
        degrade_after_failures=999,
    )
    gateway = Gateway(blackout_timeline(), scheme="JPS", resilience=policy)
    result = gateway.run(requests_at([0.0, 2.1, 2.2, 2.3]))
    counters = result.metrics.snapshot()["counters"]
    assert counters["transfer_timeouts"] > 0
    assert counters["local_fallbacks"] > 0
    assert accounting_violations(gateway.report(result)) == []


def test_degraded_mode_switches_admissions_to_local():
    policy = ResiliencePolicy(
        transfer_timeout=0.2, max_retries=0, degrade_after_failures=1,
        probe_interval=0.25,
    )
    gateway = Gateway(blackout_timeline(2.0, 30.0), scheme="JPS", resilience=policy)
    # the blackout never ends within the run: after degradation every
    # admission takes the LO cut and completes locally
    result = gateway.run(requests_at(spread(12)))
    counters = result.metrics.snapshot()["counters"]
    assert counters["degradations"] == 1
    assert counters["degraded"] > 0
    assert "recoveries" not in counters
    assert gateway.degraded_mode
    report = gateway.report(result)
    assert report["resilience"]["degraded_at_end"]
    assert accounting_violations(report) == []


def test_recovery_replan_after_blackout_lifts():
    policy = ResiliencePolicy(
        transfer_timeout=0.2, max_retries=0, degrade_after_failures=1,
        probe_interval=0.25,
    )
    gateway = Gateway(blackout_timeline(2.0, 4.0), scheme="JPS", resilience=policy)
    result = gateway.run(requests_at(spread(16)))
    counters = result.metrics.snapshot()["counters"]
    assert counters["degradations"] == 1
    assert counters["recoveries"] == 1
    assert counters["probes"] >= 1
    assert not gateway.degraded_mode
    kinds = [e.get("kind") for e in result.replan_events]
    assert "degrade" in kinds and "recovery" in kinds
    # offloading resumed: requests served after recovery used the uplink
    assert result.uplink.total_busy_time > 0
    assert accounting_violations(gateway.report(result)) == []


def test_probing_stops_when_idle():
    """A degraded gateway with no work must let the engine drain."""
    policy = ResiliencePolicy(
        transfer_timeout=0.2, max_retries=0, degrade_after_failures=1,
        probe_interval=0.25,
    )
    gateway = Gateway(blackout_timeline(0.5, 1e9), scheme="JPS", resilience=policy)
    result = gateway.run(requests_at([0.6, 0.7]))
    # run() returned at all — probes did not keep the engine alive forever
    assert result.pending == 0
    assert gateway.degraded_mode


# ----------------------------------------------------------------------
# disconnects and misestimation
# ----------------------------------------------------------------------

def test_disconnected_clients_are_dropped():
    plan = FaultPlan(outages=(ClientOutage("c0", 1.0, 2.0),))
    gateway = Gateway(flat_timeline(), scheme="LO", faults=plan)
    result = gateway.run(requests_at([0.0, 1.5, 2.5]))
    counters = result.metrics.snapshot()["counters"]
    assert counters["dropped_disconnected"] == 1
    assert counters["served"] == 2
    outcomes = [r.outcome for r in result.records]
    assert outcomes.count("failed") == 1
    report = gateway.report(result)
    assert report["faults"]["disconnect_drops"] == 1
    assert accounting_violations(report) == []


def test_misestimation_slows_execution_without_touching_plans():
    requests = requests_at(spread(10))
    clean = Gateway(flat_timeline(), scheme="JPS")
    clean_result = clean.run(list(requests))
    slow_plan = FaultPlan(misestimation=CostMisestimation(compute_scale=2.0))
    slow = Gateway(flat_timeline(), scheme="JPS", faults=slow_plan)
    slow_result = slow.run(list(requests))
    assert slow_result.makespan > clean_result.makespan
    # the plan itself is untouched: same cut choices on both gateways
    assert [r.request_id for r in slow_result.records] == [
        r.request_id for r in clean_result.records
    ]
    assert accounting_violations(slow.report(slow_result)) == []
