"""Inception-v4 (Fig. 3a) and the rectangular-kernel layer support."""

import pytest

from repro.dag.cuts import enumerate_frontier_cuts, is_downward_closed
from repro.dag.topology import count_paths, separators
from repro.nn.layers import Conv2d, ShapeError
from repro.nn.zoo import inception_v4


@pytest.fixture(scope="module")
def incv4():
    return inception_v4()


# ----------------------------------------------------------------------
# rectangular kernels
# ----------------------------------------------------------------------

def test_rect_conv_output_shape():
    conv = Conv2d(64, kernel=(7, 1), padding=(3, 0))
    assert conv.output_shape((64, 73, 73)) == (64, 73, 73)
    conv = Conv2d(64, kernel=(1, 7), padding=(0, 3))
    assert conv.output_shape((64, 73, 73)) == (64, 73, 73)


def test_rect_conv_flops_and_params():
    conv = Conv2d(8, kernel=(1, 7), padding=(0, 3), bias=False)
    flops = conv.flops((4, 10, 10))
    assert flops == 2 * 8 * 10 * 10 * (4 * 7)
    assert conv.param_count((4, 10, 10)) == 8 * 4 * 7


def test_rect_conv_factorization_is_cheaper_than_square():
    """1x7 + 7x1 factorization costs ~2/7 of a full 7x7 conv."""
    square = Conv2d(64, kernel=7, padding=3, bias=False).flops((64, 17, 17))
    factored = (
        Conv2d(64, kernel=(1, 7), padding=(0, 3), bias=False).flops((64, 17, 17))
        + Conv2d(64, kernel=(7, 1), padding=(3, 0), bias=False).flops((64, 17, 17))
    )
    assert factored == pytest.approx(square * 2 / 7)


def test_rect_conv_same_padding():
    assert Conv2d(4, kernel=(1, 7), padding="same").output_shape((2, 9, 9)) == (4, 9, 9)
    with pytest.raises(ShapeError, match="odd kernel"):
        Conv2d(4, kernel=(2, 7), padding="same").output_shape((2, 9, 9))


def test_rect_conv_validation():
    with pytest.raises(ShapeError):
        Conv2d(4, kernel=(0, 3))
    with pytest.raises(ShapeError):
        Conv2d(4, kernel=(3, 3, 3))  # type: ignore[arg-type]
    with pytest.raises(ShapeError):
        Conv2d(4, kernel=3, padding=(1, 2, 3))  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# the full network
# ----------------------------------------------------------------------

def test_published_size(incv4):
    # Szegedy et al. 2017: ~42.7 M parameters, ~24.6 GFLOPs at 299x299
    assert incv4.total_params / 1e6 == pytest.approx(42.7, rel=0.03)
    assert incv4.total_flops / 1e9 == pytest.approx(24.6, rel=0.10)
    assert incv4.output_shape == (1000,)


def test_stage_shapes(incv4):
    assert incv4.node("stem.concat3").output_shape == (384, 35, 35)
    assert incv4.node("A3.concat").output_shape == (384, 35, 35)
    assert incv4.node("redA.concat").output_shape == (1024, 17, 17)
    assert incv4.node("B6.concat").output_shape == (1024, 17, 17)
    assert incv4.node("redB.concat").output_shape == (1536, 8, 8)
    assert incv4.node("C2.concat").output_shape == (1536, 8, 8)


def test_path_explosion_vs_frontier(incv4):
    """Billions of paths, but a four-digit exact cut space."""
    assert count_paths(incv4.graph) > 1e9
    cuts = enumerate_frontier_cuts(incv4.graph)
    assert 5_000 < len(cuts) < 50_000
    sample = cuts[:: max(len(cuts) // 50, 1)]
    for cut in sample:
        assert is_downward_closed(incv4.graph, cut.mobile)


def test_separators_are_module_boundaries(incv4):
    seps = separators(incv4.graph)
    # every concat joint is a separator
    concats = [v for v in incv4.graph.node_ids if v.endswith(".concat")]
    for concat in concats:
        assert concat in seps


def test_reduced_variant_for_fast_tests():
    small = inception_v4(a_modules=1, b_modules=1, c_modules=1, name="incv4-mini")
    assert small.num_layers < 150
    assert small.output_shape == (1000,)
    with pytest.raises(ValueError):
        inception_v4(a_modules=0)


def test_nested_branch_cut_space():
    """Inception-C's nested split is covered by the frontier enumeration."""
    small = inception_v4(a_modules=1, b_modules=1, c_modules=1, name="incv4-c")
    cuts = enumerate_frontier_cuts(small.graph)
    # some cut must separate the two arms of the C-module's nested split:
    # one arm (b3.2a) on mobile, the sibling (b3.2b) on the cloud
    split_cuts = [
        c for c in cuts
        if "C0.b3.2a.conv" in c.mobile and "C0.b3.2b.conv" not in c.mobile
    ]
    assert split_cuts
    for cut in split_cuts[:10]:
        assert is_downward_closed(small.graph, cut.mobile)
