"""Chrome trace export: lanes, schema validation, the golden pipeline.

The golden-file test is the end-to-end anchor: a 3-job line-network
schedule with integer stage lengths is simulated and exported, and the
events must (a) byte-match ``tests/data/golden_pipeline_trace.json``
and (b) independently reproduce the Prop. 4.1 recurrence windows
computed by :func:`repro.core.scheduling.flow_shop_completion_times` —
so the golden file cannot silently drift into agreement with a broken
simulator.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import flow_shop_completion_times
from repro.obs import (
    Span,
    Tracer,
    chrome_trace_events,
    validate_chrome_events,
    write_chrome_trace,
)
from repro.sim.pipeline import simulate_schedule
from repro.sim.trace import pipeline_trace_events, write_pipeline_trace

GOLDEN = Path(__file__).parent / "data" / "golden_pipeline_trace.json"

#: (f, g) stage lengths of the golden 3-job schedule — integers, so the
#: exported microsecond timestamps are exact.
GOLDEN_STAGES = [(2.0, 3.0), (1.0, 2.0), (3.0, 1.0)]


def golden_schedule() -> Schedule:
    jobs = tuple(
        JobPlan(job_id=i, model="toy", cut_position=i, compute_time=f,
                comm_time=g, cut_label=f"cut{i}")
        for i, (f, g) in enumerate(GOLDEN_STAGES)
    )
    return Schedule(jobs=jobs, makespan=8.0, method="manual")


# ----------------------------------------------------------------------
# golden file
# ----------------------------------------------------------------------


def test_golden_pipeline_trace_matches_recurrence_and_file():
    result = simulate_schedule(golden_schedule())
    events = json.loads(json.dumps(pipeline_trace_events(result)))
    assert events == json.loads(GOLDEN.read_text())

    # independent cross-check: the X events ARE the Prop. 4.1 windows
    expected = flow_shop_completion_times(GOLDEN_STAGES)
    spans = {e["name"]: e for e in events if e["ph"] == "X"}
    assert len(spans) == 2 * len(GOLDEN_STAGES)
    c1_prev = 0.0
    for j, ((f, g), (c1, c2)) in enumerate(zip(GOLDEN_STAGES, expected)):
        compute = spans[f"job{j}/compute"]
        comm = spans[f"job{j}/comm"]
        assert compute.get("dur") == pytest.approx(f * 1e6)
        assert compute["ts"] + compute["dur"] == pytest.approx(c1 * 1e6)
        assert comm.get("dur") == pytest.approx(g * 1e6)
        assert comm["ts"] + comm["dur"] == pytest.approx(c2 * 1e6)
        assert compute["ts"] == pytest.approx(c1_prev * 1e6)  # CPU never idles
        c1_prev = c1


def test_golden_lane_mapping_one_process_per_job():
    events = json.loads(GOLDEN.read_text())
    processes = {
        e["args"]["name"]: e["pid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert processes == {"job 0": 1, "job 1": 2, "job 2": 3}
    tracks = {
        (e["pid"], e["args"]["name"]): e["tid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    for pid in processes.values():
        assert tracks[(pid, "mobile-cpu")] == 1
        assert tracks[(pid, "uplink")] == 2
    for event in events:
        if event["ph"] == "X":
            assert event["pid"] == processes[f"job {event['args']['job']}"]


def test_write_pipeline_trace_round_trips(tmp_path):
    result = simulate_schedule(golden_schedule())
    path = write_pipeline_trace(result, tmp_path / "pipeline.json")
    assert json.loads(path.read_text()) == json.loads(GOLDEN.read_text())


# ----------------------------------------------------------------------
# exporter mechanics
# ----------------------------------------------------------------------


def test_open_spans_are_skipped_instants_exported():
    tracer = Tracer()
    tracer.start_span("still-open")
    tracer.record("done", 0.0, 1.0, lane=("p", "t"))
    tracer.instant("mark", timestamp=0.5, lane=("p", "t"), reason="x")
    events = chrome_trace_events(tracer.spans + [tracer._open[0]], tracer.instants)
    phases = [e["ph"] for e in events]
    assert phases.count("X") == 1 and phases.count("i") == 1
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["ts"] == pytest.approx(0.5e6)
    assert instant["args"] == {"reason": "x"}


def test_default_lane_applies_when_none_given():
    events = chrome_trace_events([Span(name="s", start=0.0, end=1.0)])
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} == {"repro", "main"}


def test_write_chrome_trace_validates_and_writes(tmp_path):
    tracer = Tracer()
    tracer.record("a", 0.0, 2.0, lane=("p", "t"), k=1)
    path = write_chrome_trace(tmp_path / "t.json", tracer.spans, tracer.instants)
    events = json.loads(path.read_text())
    assert validate_chrome_events(events) == len(events)


# ----------------------------------------------------------------------
# the schema gate CI runs
# ----------------------------------------------------------------------


def test_validate_accepts_the_emitted_subset():
    events = json.loads(GOLDEN.read_text())
    assert validate_chrome_events(events) == len(events)


@pytest.mark.parametrize(
    "events, message",
    [
        ({"ph": "X"}, "array of events"),
        ([42], "not an object"),
        ([{"ph": "X", "ts": 0, "pid": 1}], "misses 'tid'"),
        ([{"ph": "Q", "ts": 0, "pid": 1, "tid": 1, "name": "x"}], "unknown phase"),
        ([{"ph": "i", "ts": "soon", "pid": 1, "tid": 1, "name": "x"}], "must be a number"),
        ([{"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "x"}], "without numeric dur"),
        (
            [{"ph": "X", "ts": 0, "dur": -5, "pid": 1, "tid": 1, "name": "x"}],
            "negative duration",
        ),
        ([{"ph": "i", "ts": 0, "pid": 1, "tid": 1}], "missing name"),
    ],
)
def test_validate_rejects_schema_violations(events, message):
    with pytest.raises(ValueError, match=message):
        validate_chrome_events(events)
