"""Prometheus exposition: format rules, round-trip, report re-exposure."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    exposition_from_snapshot,
    parse_prometheus,
    to_prometheus,
)


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("served").increment(42)
    registry.counter("hits", layer="line").increment(7)
    registry.counter("hits", layer="frontier").increment(3)
    registry.gauge("cache_entries").set(5)
    hist = registry.histogram("latency")
    for value in (0.1, 0.2, 0.4, 0.8, 1.6):
        hist.observe(value)
    return registry


def test_round_trip_preserves_every_sample():
    registry = _sample_registry()
    samples = parse_prometheus(to_prometheus(registry))
    assert samples["repro_served_total"] == 42
    assert samples['repro_hits_total{layer="line"}'] == 7
    assert samples['repro_hits_total{layer="frontier"}'] == 3
    assert samples["repro_cache_entries"] == 5.0
    assert samples["repro_latency_count"] == 5
    assert samples["repro_latency_sum"] == pytest.approx(3.1)
    snapshot = registry.snapshot()["histograms"]["latency"]
    for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
        assert samples[f'repro_latency{{quantile="{q:g}"}}'] == snapshot[key]


def test_one_type_line_per_family():
    """A labeled family emits a single # TYPE comment, samples grouped."""
    text = to_prometheus(_sample_registry())
    type_lines = [line for line in text.splitlines() if line.startswith("# TYPE")]
    assert len(type_lines) == len(set(type_lines))
    assert "# TYPE repro_hits_total counter" in type_lines
    # the family's samples follow its TYPE line contiguously
    lines = text.splitlines()
    at = lines.index("# TYPE repro_hits_total counter")
    assert lines[at + 1].startswith("repro_hits_total{")
    assert lines[at + 2].startswith("repro_hits_total{")


def test_counter_gauge_summary_conventions():
    text = to_prometheus(_sample_registry())
    assert "# TYPE repro_served_total counter" in text
    assert "# TYPE repro_cache_entries gauge" in text
    assert "# TYPE repro_latency summary" in text
    assert "repro_cache_entries_total" not in text  # gauges get no suffix


def test_namespace_and_name_sanitization():
    registry = MetricsRegistry()
    registry.counter("weird-name.x").increment()
    text = to_prometheus(registry, namespace="jps")
    assert "jps_weird_name_x_total 1" in text


def test_exposition_from_saved_gateway_report_shape():
    """A report dict (extra keys and all) re-exposes without a registry."""
    report = {
        "scheme": "JPS",
        "makespan": 61.2,
        "counters": {"served": 10, "arrived": 12},
        "gauges": {"engine_cache_hits": 4.0, 'engine_cache_hits{layer="line_tables"}': 3.0},
        "histograms": {
            "latency": {"count": 10, "sum": 5.0, "mean": 0.5,
                        "min": 0.1, "max": 1.0, "p50": 0.4, "p95": 0.9, "p99": 1.0}
        },
        "replans": [{"time": 33.0}],
    }
    samples = parse_prometheus(exposition_from_snapshot(report))
    assert samples["repro_served_total"] == 10
    assert samples["repro_engine_cache_hits"] == 4.0
    assert samples['repro_engine_cache_hits{layer="line_tables"}'] == 3.0
    assert samples['repro_latency{quantile="0.95"}'] == 0.9
    assert "repro_makespan" not in samples  # only the metric keys render


def test_empty_snapshot_renders_empty():
    assert exposition_from_snapshot({}) == ""
    assert to_prometheus(MetricsRegistry()) == ""


def test_parse_rejects_malformed_and_duplicate_lines():
    with pytest.raises(ValueError, match="not a prometheus sample"):
        parse_prometheus("this is not a sample\n")
    with pytest.raises(ValueError, match="duplicate"):
        parse_prometheus("a_total 1\na_total 2\n")


def test_infinity_formatting_round_trips():
    samples = parse_prometheus(
        exposition_from_snapshot({"gauges": {"inf_gauge": float("inf")}})
    )
    assert samples["repro_inf_gauge"] == float("inf")
