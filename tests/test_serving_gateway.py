"""Offload gateway: estimator, admission, dispatch, adaptive re-planning.

The headline test is the PR's acceptance scenario: three Poisson clients
over a trace with a mid-run rate drop must drive at least one adaptive
re-plan, keep the served/dropped/arrived accounting exact, and give JPS
a better p95 than the all-mobile and all-cloud baselines.
"""

import json

import pytest

from repro.engine import PlanningEngine
from repro.net.timeline import BandwidthTimeline
from repro.serving import (
    AdaptiveChannelEstimator,
    ClientSpec,
    Gateway,
    Request,
    ScenarioConfig,
    default_scenario,
    run_scenario,
)
from repro.utils.units import mbps


# ----------------------------------------------------------------------
# estimator
# ----------------------------------------------------------------------

def test_estimator_recovers_rate_from_clean_sample():
    est = AdaptiveChannelEstimator(initial_bps=mbps(8.0), alpha=1.0)
    # 1 Mbit over 1 second = 1 Mbps, no framing
    sample = est.observe(payload_bytes=125_000, duration=1.0)
    assert sample == pytest.approx(mbps(1.0))
    assert est.estimate_bps == pytest.approx(mbps(1.0))


def test_estimator_backs_out_framing():
    est = AdaptiveChannelEstimator(
        initial_bps=mbps(8.0),
        alpha=1.0,
        setup_latency=0.5,
        header_bytes=1000,
        protocol_overhead=2.0,
    )
    sample = est.observe(payload_bytes=124_000, duration=2.5)
    # (124000 + 1000) * 2 * 8 bits over 2 s of airtime
    assert sample == pytest.approx(1e6)


def test_estimator_ewma_and_drift_gate():
    est = AdaptiveChannelEstimator(
        initial_bps=1e6, alpha=0.5, drift_threshold=0.25, min_observations=3
    )
    # samples at half the planned rate: EWMA converges toward 0.5e6
    for _ in range(2):
        est.observe(payload_bytes=62_500, duration=1.0)   # 0.5 Mbps
    assert est.drift > 0.25
    assert not est.drifted()          # below min_observations
    est.observe(payload_bytes=62_500, duration=1.0)
    assert est.drifted()
    planned = est.rebase()
    assert planned == est.estimate_bps
    assert not est.drifted()


def test_estimator_channel_prices_like_the_link():
    est = AdaptiveChannelEstimator(
        initial_bps=mbps(4.0), setup_latency=0.01, header_bytes=64,
        protocol_overhead=1.1,
    )
    channel = est.channel()
    assert channel.uplink_bps == mbps(4.0)
    assert channel.setup_latency == 0.01
    assert channel.header_bytes == 64
    assert channel.protocol_overhead == 1.1


def test_estimator_validation():
    with pytest.raises(ValueError):
        AdaptiveChannelEstimator(initial_bps=0.0)
    with pytest.raises(ValueError, match="alpha"):
        AdaptiveChannelEstimator(initial_bps=1e6, alpha=1.5)
    est = AdaptiveChannelEstimator(initial_bps=1e6, setup_latency=1.0)
    with pytest.raises(ValueError, match="setup latency"):
        est.observe(payload_bytes=100.0, duration=0.5)


# ----------------------------------------------------------------------
# the acceptance scenario
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def acceptance_report():
    return run_scenario(default_scenario())


def test_acceptance_accounting_balances(acceptance_report):
    arrivals = acceptance_report["arrivals"]
    assert arrivals > 0
    for scheme, data in acceptance_report["schemes"].items():
        counters = data["counters"]
        assert data["balance_ok"], scheme
        assert data["pending"] == 0
        assert counters["served"] + counters.get("dropped", 0) == arrivals
        assert counters["arrived"] == arrivals


def test_acceptance_triggers_adaptive_replan(acceptance_report):
    jps = acceptance_report["schemes"]["JPS"]
    assert jps["counters"]["replans"] >= 1
    assert len(jps["replans"]) == jps["counters"]["replans"]
    first = jps["replans"][0]
    # the re-plan reacts to the 8 -> 4 Mbps drop: estimate moved down
    assert first["new_bps"] < first["old_bps"]
    assert first["drift"] > 0.25


def test_acceptance_jps_beats_baselines_at_p95(acceptance_report):
    p95 = {
        scheme: data["histograms"]["latency"]["p95"]
        for scheme, data in acceptance_report["schemes"].items()
    }
    assert p95["JPS"] < p95["LO"]
    assert p95["JPS"] < p95["CO"]


def test_acceptance_report_is_json_serializable(acceptance_report):
    encoded = json.dumps(acceptance_report, sort_keys=True)
    assert "engine_cache" in encoded


def test_acceptance_is_deterministic(acceptance_report):
    again = run_scenario(default_scenario())
    # engine cache counters differ run to run (fresh planner), drop them
    def strip(report):
        return {
            scheme: {k: v for k, v in data.items() if k != "engine_cache"}
            for scheme, data in report["schemes"].items()
        }

    assert strip(again) == strip(acceptance_report)


# ----------------------------------------------------------------------
# admission control and dispatch mechanics
# ----------------------------------------------------------------------

def flat_timeline(rate_mbps: float = 8.0) -> BandwidthTimeline:
    return BandwidthTimeline.steps_mbps([(0.0, rate_mbps)])


def requests_at(times, model="alexnet", deadline=None):
    return [
        Request(
            client_id="c0", request_id=i, model=model, arrival=t, deadline=deadline
        )
        for i, t in enumerate(times)
    ]


def test_queue_bound_rejects_excess():
    gateway = Gateway(flat_timeline(), scheme="LO", max_queue_depth=2)
    # a burst of 10 simultaneous requests; LO service time >> 0, so at
    # most 1 running + 2 queued are admitted before the bound trips
    result = gateway.run(requests_at([0.0] * 10))
    counters = result.metrics.snapshot()["counters"]
    assert counters["arrived"] == 10
    assert counters["dropped_queue_full"] > 0
    assert counters["served"] + counters["dropped"] == 10
    outcomes = {r.outcome for r in result.records}
    assert outcomes == {"served", "rejected"}


def test_deadline_expiry_drops_queued_work():
    gateway = Gateway(flat_timeline(), scheme="LO", max_queue_depth=64)
    # back-to-back arrivals with a deadline shorter than one service
    # time: whoever queues behind the first job expires before starting
    result = gateway.run(requests_at([0.0] * 5, deadline=0.05))
    counters = result.metrics.snapshot()["counters"]
    assert counters["dropped_deadline"] > 0
    assert counters["served"] + counters["dropped"] == counters["arrived"]
    assert any(r.outcome == "expired" for r in result.records)


def test_served_records_match_counters():
    gateway = Gateway(flat_timeline(), scheme="JPS")
    result = gateway.run(requests_at([0.0, 0.1, 0.2, 0.3]))
    counters = result.metrics.snapshot()["counters"]
    served = [r for r in result.records if r.outcome == "served"]
    assert len(served) == counters["served"] == 4
    assert all(r.latency is not None and r.latency > 0 for r in served)
    assert result.pending == 0


def test_baselines_never_replan():
    for scheme in ("LO", "CO"):
        gateway = Gateway(
            BandwidthTimeline.steps_mbps([(0.0, 8.0), (1.0, 2.0)]), scheme=scheme
        )
        result = gateway.run(requests_at([0.1 * i for i in range(20)]))
        assert result.replan_events == []
        assert "replans" not in result.metrics.snapshot()["counters"]


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown scheme"):
        Gateway(flat_timeline(), scheme="FIFO")


def test_shared_planner_reuses_structure_across_schemes():
    planner = PlanningEngine()
    for scheme in ("JPS", "LO", "CO"):
        Gateway(flat_timeline(), planner=planner, scheme=scheme).run(
            requests_at([0.0, 0.5])
        )
    totals = planner.stats_snapshot()["totals"]
    # one structure + table build for the first scheme, warm hits after
    assert totals["hits"] >= 2
    assert totals["hit_rate"] >= 0.5


def test_frontier_model_serves_end_to_end():
    gateway = Gateway(flat_timeline(18.88), scheme="JPS", nominal_burst=4)
    result = gateway.run(requests_at([0.0, 0.2, 0.4], model="nin"))
    counters = result.metrics.snapshot()["counters"]
    assert counters["served"] == 3


def test_mobile_stage_reuses_cpu_before_upload_finishes():
    """Pipelining: total makespan < sum of per-job (f + g) serial time."""
    gateway = Gateway(flat_timeline(4.0), scheme="JPS")
    result = gateway.run(requests_at([0.0] * 6))
    serial = sum(
        r.latency for r in result.records if r.latency is not None
    )
    assert result.makespan < serial


def test_scenario_config_validation():
    with pytest.raises(ValueError, match="at least one client"):
        ScenarioConfig(clients=(), bandwidth_steps=((0.0, 8.0),))
    with pytest.raises(ValueError, match="unknown schemes"):
        ScenarioConfig(
            clients=(ClientSpec(name="a"),),
            bandwidth_steps=((0.0, 8.0),),
            schemes=("JPS", "EDF"),
        )


def test_mass_expiry_burst_drains_every_queued_head():
    """Regression for the quadratic expiry drain: one dispatch pass after
    the anchor job completes must drop every expired head straight off
    the expiry heap, with exact accounting across many clients."""
    clients = 40
    requests = [
        Request(
            client_id=f"c{i}",
            request_id=i,
            model="alexnet",
            arrival=0.0,
            deadline=None if i == 0 else 0.05,
        )
        for i in range(clients)
    ]
    gateway = Gateway(flat_timeline(), scheme="JPS", max_queue_depth=4)
    result = gateway.run(requests)
    counters = result.metrics.snapshot()["counters"]
    assert counters["arrived"] == clients
    # c0 (no deadline) runs; every other client's lone request expires
    # while the CPU is busy, long before its turn comes up
    assert counters["served"] == 1
    assert counters["dropped_deadline"] == clients - 1
    assert counters["served"] + counters["dropped"] == counters["arrived"]
    expired = {r.client_id for r in result.records if r.outcome == "expired"}
    assert expired == {f"c{i}" for i in range(1, clients)}
    assert result.pending == 0
