"""Windowed time-series: ring semantics, merge identity, hub surface.

The two Hypothesis properties lock what the SLO engine leans on:

* **Merge bit-identity** — DDSketch merge is bucket-wise addition on a
  shared grid, so merging *any* partition of a sample stream's
  per-bucket sketches reproduces the whole-stream sketch exactly
  (sketch buckets, count, min/max, every snapshot quantile). Float
  ``sum`` is deliberately excluded: addition order differs across
  partitions.
* **Eviction safety** — as long as the queried window fits the ring
  (``window <= capacity * bucket_width``), a windowed count equals the
  brute-force count over the raw samples: eviction only ever discards
  buckets that no in-window query can reach, and too-old out-of-order
  arrivals it refuses were never in-window to begin with.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import SNAPSHOT_QUANTILES, StreamingHistogram
from repro.obs.timeseries import (
    NULL_HUB,
    SERIES_KINDS,
    TelemetryHub,
    TimeSeries,
)

# ----------------------------------------------------------------------
# TimeSeries unit behaviour
# ----------------------------------------------------------------------


def test_counter_windowed_reads():
    series = TimeSeries("arrivals", bucket_width=0.5)
    for t in (0.1, 0.2, 0.9, 1.4, 2.1):
        series.observe(t)
    assert series.count == 5
    # bucket-aligned: the last ceil(1.0/0.5)=2 buckets ([1.5, 2.5))
    # hold only the 2.1 sample
    assert series.window_count(1.0, now=2.1) == 1
    assert series.rate(1.0, now=2.1) == pytest.approx(1.0)
    assert series.window_count(4.0, now=2.1) == 5


def test_mean_and_totals():
    series = TimeSeries("depth", bucket_width=1.0, kind="gauge")
    series.observe(0.5, 4.0)
    series.observe(0.6, 6.0)
    assert series.window_total(1.0, now=0.9) == pytest.approx(10.0)
    assert series.mean(1.0, now=0.9) == pytest.approx(5.0)
    point = series.points()[0]
    assert point["last"] == 6.0 and point["min"] == 4.0 and point["max"] == 6.0


def test_out_of_order_within_ring_accepted():
    series = TimeSeries("x", bucket_width=1.0, capacity=8)
    series.observe(5.0)
    series.observe(1.5)          # older bucket, still on the ring
    assert series.window_count(8.0, now=5.0) == 2
    assert series.evicted_samples == 0


def test_too_old_sample_dropped_and_counted():
    series = TimeSeries("x", bucket_width=1.0, capacity=4)
    series.observe(10.0)
    series.observe(2.0)          # bucket 2 <= 10 - 4: off the ring
    assert series.count == 1
    assert series.evicted_samples == 1


def test_eviction_drops_old_buckets():
    series = TimeSeries("x", bucket_width=1.0, capacity=2)
    for t in (0.5, 1.5, 2.5, 3.5):
        series.observe(t)
    assert series.evicted_buckets == 2
    assert len(series.points()) == 2
    assert series.count == 4     # run totals survive eviction


def test_window_wider_than_ring_rejected():
    series = TimeSeries("x", bucket_width=1.0, capacity=4)
    series.observe(0.0)
    with pytest.raises(ValueError, match="exceeds ring span"):
        series.window_count(5.0, now=0.0)


def test_histogram_quantiles_and_serialization():
    series = TimeSeries("latency", bucket_width=1.0, kind="histogram")
    for value in (0.1, 0.2, 0.3, 0.4, 1.0):
        series.observe(0.5, value)
    assert series.quantile(1.0, window=1.0, now=0.5) == pytest.approx(1.0)
    point = series.points()[0]
    assert point["count"] == 5
    for q in SNAPSHOT_QUANTILES:
        assert f"p{round(q * 100):02d}" in point
    assert series.as_dict()["kind"] == "histogram"


def test_merged_requires_histogram_kind():
    series = TimeSeries("x", kind="counter")
    with pytest.raises(ValueError, match="not histogram"):
        series.merged(1.0, now=0.0)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown series kind"):
        TimeSeries("x", kind="summary")
    assert SERIES_KINDS == ("counter", "gauge", "histogram")


# ----------------------------------------------------------------------
# TelemetryHub surface
# ----------------------------------------------------------------------


def test_hub_labels_name_distinct_series():
    hub = TelemetryHub(bucket_width=0.5)
    hub.record("served", 0.1, server="s0")
    hub.record("served", 0.2, server="s1")
    timeline = hub.timeline()
    assert set(timeline["series"]) == {
        'served{server="s0"}',
        'served{server="s1"}',
    }
    assert timeline["bucket_width"] == 0.5


def test_hub_kind_conflict_rejected():
    hub = TelemetryHub()
    hub.record("latency", 0.1)
    with pytest.raises(ValueError, match="already registered"):
        hub.observe("latency", 0.2, 1.0)


def test_hub_label_named_kind_is_just_a_label():
    # positional-only parameters: a label called "kind" must not
    # collide with the series-kind argument
    hub = TelemetryHub()
    hub.record("replans", 1.0, 1.0, kind="drift", server="s0")
    assert 'replans{kind="drift",server="s0"}' in hub.timeline()["series"]


def test_null_hub_is_inert():
    assert NULL_HUB.enabled is False
    NULL_HUB.record("x", 0.0)
    NULL_HUB.sample("x", 0.0, 1.0, kind="drift")
    NULL_HUB.observe("x", 0.0, 1.0)
    assert NULL_HUB.timeline() == {}


# ----------------------------------------------------------------------
# Hypothesis: merge bit-identity over any partition
# ----------------------------------------------------------------------

values_strategy = st.lists(
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=120,
)


def _assert_sketches_identical(merged: StreamingHistogram, whole: StreamingHistogram):
    # bit-identical on everything except float total/mean (addition order)
    assert merged._buckets == whole._buckets
    assert merged._zeros == whole._zeros
    assert merged.count == whole.count
    assert merged.min == whole.min
    assert merged.max == whole.max
    for q in SNAPSHOT_QUANTILES:
        assert merged.quantile(q) == whole.quantile(q)


@settings(max_examples=60, deadline=None)
@given(values=values_strategy, data=st.data())
def test_histogram_merge_identity_over_any_partition(values, data):
    whole = StreamingHistogram()
    for value in values:
        whole.observe(value)
    # split the stream at arbitrary sorted cut points
    cuts = sorted(
        data.draw(
            st.lists(st.integers(0, len(values)), max_size=6), label="cuts"
        )
    )
    merged = StreamingHistogram()
    previous = 0
    for cut in cuts + [len(values)]:
        part = StreamingHistogram()
        for value in values[previous:cut]:
            part.observe(value)
        merged.merge(part)
        previous = cut
    _assert_sketches_identical(merged, whole)


@settings(max_examples=40, deadline=None)
@given(
    samples=st.lists(
        st.tuples(st.floats(0.0, 30.0, allow_nan=False), st.floats(0.0, 100.0)),
        min_size=1,
        max_size=80,
    )
)
def test_windowed_merge_matches_whole_run_sketch(samples):
    series = TimeSeries("latency", bucket_width=0.5, capacity=4096, kind="histogram")
    for t, value in samples:
        series.observe(t, value)
    now = max(t for t, _ in samples)
    # a window covering every retained bucket must reproduce the
    # whole-run sketch exactly (nothing was evicted: capacity is ample)
    merged = series.merged(2048.0, now=now)
    _assert_sketches_identical(merged, series.total_histogram)


# ----------------------------------------------------------------------
# Hypothesis: eviction never loses an in-window sample
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    times=st.lists(st.floats(0.0, 200.0, allow_nan=False), min_size=1, max_size=150),
    capacity=st.integers(2, 32),
    window_buckets=st.integers(1, 32),
)
def test_windowed_count_matches_brute_force(times, capacity, window_buckets):
    width = 1.0
    window_buckets = min(window_buckets, capacity)
    series = TimeSeries("x", bucket_width=width, capacity=capacity)
    for t in times:
        series.observe(t)
    now = max(times)
    window = window_buckets * width
    hi = math.floor(now / width)
    lo = hi - window_buckets + 1
    expected = sum(1 for t in times if lo <= math.floor(t / width) <= hi)
    assert series.window_count(window, now=now) == expected
