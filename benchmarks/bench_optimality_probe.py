"""Optimality probe at paper scale (n = 100), where brute force cannot go.

Sandwiches JPS between the fractional LP lower bound and the strongest
upper-bound search available (multiset local search with random
restarts), for every experiment model at 4G.
"""

from repro.core.analysis import fractional_lower_bound
from repro.core.joint import jps_line
from repro.core.search import local_search
from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_MODELS
from repro.extensions.refine import refine_end_jobs

N_JOBS = 100


def test_optimality_probe_at_scale(benchmark, env, save_artifact):
    def run_all():
        rows = []
        for model in EXPERIMENT_MODELS:
            table = env.cost_table(model, 5.85)
            bound = fractional_lower_bound(table, N_JOBS)
            jps = jps_line(table, N_JOBS)
            refined = refine_end_jobs(table, jps)
            searched = local_search(table, N_JOBS, restarts=2, seed=0)
            rows.append(
                (
                    model,
                    bound,
                    searched.makespan,
                    refined.makespan,
                    jps.makespan,
                    (refined.makespan / bound - 1) * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "optimality_probe_n100",
        format_table(
            headers=["model", "LP bound (s)", "local search (s)",
                     "JPS+refine (s)", "JPS (s)", "refine vs bound (%)"],
            rows=rows,
            title=f"Optimality probe at n = {N_JOBS} (4G)",
            float_format="{:.3f}",
        ),
    )
    for model, bound, searched, refined, jps, gap in rows:
        assert bound <= searched + 1e-9
        assert refined <= jps + 1e-9
        # JPS+refine within 11% of the LP bound -> near-optimal at scale
        assert gap < 11.0
