"""Micro-benchmarks of the algorithmic building blocks.

These are proper pytest-benchmark timings (many rounds) of the hot
paths: the O(log k) binary search against the O(k) scan, Johnson's rule
at n = 1000, the flow-shop recurrence, the DES pipeline, and frontier
cut enumeration — the quantities behind the Fig. 12(d) overhead claim.
"""

import numpy as np

from repro.core.partition import binary_search_cut, linear_scan_cut
from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import flow_shop_makespan, johnson_order
from repro.dag.cuts import enumerate_frontier_cuts
from repro.profiling.latency import CostTable
from repro.sim.pipeline import simulate_schedule


def big_table(k: int = 4096) -> CostTable:
    idx = np.arange(k, dtype=float)
    g = 50.0 * np.exp(-0.01 * idx)
    g[-1] = 0.0
    return CostTable(
        model_name="micro",
        positions=tuple(f"l{i}" for i in range(k)),
        f=0.01 * idx,
        g=np.minimum.accumulate(g),
        cloud=np.zeros(k),
    )


def test_binary_search_speed(benchmark):
    table = big_table()
    result = benchmark(binary_search_cut, table)
    assert result == linear_scan_cut(table)


def test_linear_scan_speed(benchmark):
    table = big_table()
    benchmark(linear_scan_cut, table)


def test_johnson_order_speed_n1000(benchmark):
    rng = np.random.default_rng(0)
    stages = list(zip(rng.random(1000), rng.random(1000)))
    order = benchmark(johnson_order, stages)
    assert sorted(order) == list(range(1000))


def test_flow_shop_recurrence_speed_n1000(benchmark):
    rng = np.random.default_rng(1)
    stages = list(zip(rng.random(1000), rng.random(1000)))
    value = benchmark(flow_shop_makespan, stages)
    assert value > 0


def test_pipeline_simulation_speed_n500(benchmark):
    rng = np.random.default_rng(2)
    jobs = tuple(
        JobPlan(job_id=i, model="m", cut_position=0,
                compute_time=float(f), comm_time=float(g))
        for i, (f, g) in enumerate(zip(rng.random(500), rng.random(500)))
    )
    schedule = Schedule(jobs=jobs, makespan=0.0, method="micro")
    result = benchmark(simulate_schedule, schedule)
    assert result.makespan > 0


def test_frontier_enumeration_speed_googlenet(benchmark, env):
    graph = env.network("googlenet").graph
    cuts = benchmark(enumerate_frontier_cuts, graph)
    assert len(cuts) > 2000
