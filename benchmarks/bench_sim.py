"""Event-core benchmarks (SoA vs heap) → ``BENCH_sim.json``.

Measures the ISSUE 9 perf trajectory and writes a machine-readable
artifact at the repo root:

* **gateway_dispatch** — the request-lifecycle chain (arrival → mobile
  CPU → uplink → cloud GPU, exclusive FIFO stages) on the SoA core's
  native path (:func:`repro.sim.fast.run_chain`: bulk backbone,
  integer-kind grants) against the heap oracle written the way the
  serving gateway drives :class:`~repro.sim.engine.Engine`
  (per-request closures, f-string labels). Events per second of wall
  time; this is the headline ≥10x (full) / ≥5x (quick, the CI gate).
  No per-request deadline timers: the real gateway expires lazily at
  dispatch, so its event mix is grant-dominated.
* **chain_with_deadlines** — the same chain plus one deadline timer
  per request (a timer-heavy worst case the gateway never produces:
  its flush/backoff/probe timers are far fewer than one per request).
  Reported for honesty, not gated.
* **fleet_sweep** — ``capacity_scenario(clients=2048)`` end to end
  through :func:`run_system` on the fast core: wall time, arrivals,
  and the zero-violation invariants. A small heap-vs-fast byte-parity
  assert runs first, and the chain checksum parity is asserted at the
  timed size before any clock starts.

Run as a CLI::

    python benchmarks/bench_sim.py [--quick] [--check] [--out PATH]

``--quick`` trims repeats and the chain length for CI smoke (the 2048
fleet sweep stays — it completes in seconds on the SoA core, which is
the point); ``--check`` exits non-zero when the speedup floor for the
mode is missed or an invariant trips.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import PlanningEngine
from repro.fleet import capacity_scenario, run_system
from repro.sim.fast import run_chain, run_chain_scalar

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_sim.json"

#: CI regression gate (quick mode): SoA chain over the heap oracle.
MIN_CHAIN_SPEEDUP_QUICK = 5.0
#: The committed full-run artifact must hold the ISSUE 9 headline.
MIN_CHAIN_SPEEDUP_FULL = 10.0

CHAIN_N = 20_000
CHAIN_N_QUICK = 4_000
CHAIN_STAGES = 3
SWEEP_CLIENTS = 2_048
PARITY_CLIENTS = 64


def best_of(fn, repeats: int) -> float:
    """Fastest of ``repeats`` timed calls (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def chain_workload(n: int, stages: int, seed: int = 11, load: float = 2.0):
    """Sorted Poisson-ish arrivals + overloaded per-stage service times.

    The slowest stage runs past saturation (like the capacity scenario,
    where <1% of 49k arrivals finish within deadline), so queues deepen
    through the run and grant chains, FIFO pumps, and idle wakeups all
    get exercised — the backlog of queued closures is exactly the
    allocation pressure the SoA core's index-only queues avoid."""
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, n, size=n))
    durations = [
        rng.uniform(0.2, 1.8, size=n) * load * (0.5 + 0.25 * s) for s in range(stages)
    ]
    deadlines = arrivals + rng.uniform(2.0, 12.0, size=n)
    return arrivals, durations, deadlines


def _warm_cores(n: int = 500) -> None:
    """One throwaway run per core so allocator/JIT-warmup noise lands
    outside every timed repeat."""
    arrivals, durations, deadlines = chain_workload(n, CHAIN_STAGES, seed=3)
    run_chain(arrivals, durations, deadlines)
    run_chain_scalar(arrivals, durations, deadlines)


def bench_chain(n: int, repeats: int, deadlines: bool) -> dict:
    arrivals, durations, deadline_times = chain_workload(n, CHAIN_STAGES)
    timers = deadline_times if deadlines else None

    fast = run_chain(arrivals, durations, timers)
    slow = run_chain_scalar(arrivals, durations, timers)
    assert fast.checksum() == slow.checksum(), "core parity broken at timed size"

    fast_s = best_of(lambda: run_chain(arrivals, durations, timers), repeats)
    slow_s = best_of(lambda: run_chain_scalar(arrivals, durations, timers), repeats)
    return {
        "requests": n,
        "stages": CHAIN_STAGES,
        "deadline_timers": deadlines,
        "events": fast.events,
        "expired": sum(fast.expired),
        "fast_events_per_s": fast.events / fast_s,
        "heap_events_per_s": fast.events / slow_s,
        "speedup": slow_s / fast_s,
    }


def bench_fleet_sweep(clients: int) -> dict:
    """The thousand-client sweep the SoA core exists to unlock."""
    small = capacity_scenario(clients=PARITY_CLIENTS)
    heap = run_system(small, planner=PlanningEngine(), core="heap")
    fast = run_system(small, planner=PlanningEngine(), core="fast")
    assert json.dumps(heap.as_dict(), sort_keys=True) == json.dumps(
        fast.as_dict(), sort_keys=True
    ), "fleet core parity broken"

    config = capacity_scenario(clients=clients)
    start = time.perf_counter()
    report = run_system(config, planner=PlanningEngine(), core="fast")
    elapsed = time.perf_counter() - start
    return {
        "clients": clients,
        "parity_clients": PARITY_CLIENTS,
        "arrivals": report.arrivals,
        "within_deadline": report.within_deadline,
        "wall_s": elapsed,
        "arrivals_per_s": report.arrivals / elapsed,
        "violations": len(report.violations),
        "clock_violations": len(report.clock_violations),
    }


def run(quick: bool) -> dict:
    repeats = 3 if quick else 5
    n = CHAIN_N_QUICK if quick else CHAIN_N
    _warm_cores()
    return {
        "generated_by": "benchmarks/bench_sim.py",
        "quick": quick,
        "thresholds": {
            "chain_speedup_min": (
                MIN_CHAIN_SPEEDUP_QUICK if quick else MIN_CHAIN_SPEEDUP_FULL
            ),
        },
        "gateway_dispatch": bench_chain(n, repeats, deadlines=False),
        "chain_with_deadlines": bench_chain(n, repeats, deadlines=True),
        "fleet_sweep": bench_fleet_sweep(SWEEP_CLIENTS),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check", action="store_true", help="exit 1 when a speedup floor is missed"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    document = run(quick=args.quick)
    args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    floor = document["thresholds"]["chain_speedup_min"]
    failures = []
    gd = document["gateway_dispatch"]
    print(
        f"gateway_dispatch n={gd['requests']}: {gd['fast_events_per_s']:,.0f} events/s "
        f"SoA vs {gd['heap_events_per_s']:,.0f} heap ({gd['speedup']:.2f}x, "
        f"floor {floor}x)"
    )
    if gd["speedup"] < floor:
        failures.append(f"gateway_dispatch speedup {gd['speedup']:.2f}x < {floor}x")
    cd = document["chain_with_deadlines"]
    print(
        f"chain+deadline timers n={cd['requests']}: {cd['fast_events_per_s']:,.0f} "
        f"events/s SoA vs {cd['heap_events_per_s']:,.0f} heap "
        f"({cd['speedup']:.2f}x, ungated)"
    )
    fs = document["fleet_sweep"]
    print(
        f"fleet sweep clients={fs['clients']}: {fs['arrivals']} arrivals in "
        f"{fs['wall_s']:.2f}s wall ({fs['arrivals_per_s']:,.0f} arrivals/s), "
        f"{fs['within_deadline']} within deadline"
    )
    if fs["violations"] or fs["clock_violations"]:
        failures.append(
            f"fleet sweep invariants: {fs['violations']} accounting, "
            f"{fs['clock_violations']} clock violations"
        )
    print(f"[artifact: {args.out}]")

    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
