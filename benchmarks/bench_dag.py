"""True-DAG partitioner benchmarks → ``BENCH_dag.json``.

Quantifies the two claims behind ``repro.dag.partition`` on random
dyadic-grid DAGs (the same seed expansion the differential oracle uses)
and writes a machine-readable artifact at the repo root:

* **pricing** — the priced makespan of :func:`partition_dag` against the
  Fig.-9 duplication baseline (:func:`duplication_schedule`), per
  instance and aggregated: the partitioner must never price worse, and
  the mean ratio shows what shared-once pricing buys;
* **scheduling** — wall time of the exact multiset menu against the
  two-cut split on identical cut tables, plus their makespan gap (the
  two-cut mode trades optimality for speed past the menu budget).

Run as a CLI::

    python benchmarks/bench_dag.py [--quick] [--check] [--out PATH]

``--quick`` trims the instance count for CI smoke; ``--check`` exits
non-zero when the dominance guarantee breaks (partition pricing worse
than duplication anywhere) or no instance shows a strict improvement.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# allow running from a source checkout without installation
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.dag.partition import (  # noqa: E402
    dag_cut_table,
    dag_schedule_from_table,
    duplication_schedule,
    partition_dag,
)
from repro.dag.topology import PathExplosionError  # noqa: E402
from tests.oracles.harness import dag_instance_from_seed  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_dag.json"

#: Bench seeds live in their own range, away from corpus/fuzz/property.
SEED_BASE = 5_000_000

TOLERANCE = 1e-9


def bench_pricing(instances: int) -> dict:
    """partition_dag vs the Fig.-9 duplication baseline."""
    ratios = []
    worse = strict = skipped = 0
    for i in range(instances):
        instance = dag_instance_from_seed(SEED_BASE + i)
        schedule = partition_dag(
            instance.dag, instance.node_cost, instance.upload_time, instance.n
        )
        try:
            baseline = duplication_schedule(
                instance.dag, instance.node_cost, instance.upload_time, instance.n
            )
        except (ValueError, PathExplosionError):
            skipped += 1
            continue
        if schedule.makespan > baseline.makespan + TOLERANCE:
            worse += 1
        if schedule.makespan < baseline.makespan - TOLERANCE:
            strict += 1
        if baseline.makespan > 0:
            ratios.append(schedule.makespan / baseline.makespan)
    return {
        "instances": instances,
        "skipped": skipped,
        "priced_worse": worse,
        "strictly_better": strict,
        "mean_cost_ratio": sum(ratios) / len(ratios) if ratios else 1.0,
        "worst_cost_ratio": max(ratios) if ratios else 1.0,
        "best_cost_ratio": min(ratios) if ratios else 1.0,
    }


def bench_scheduling(instances: int, n: int = 8) -> dict:
    """Exact multiset menu vs the two-cut split on identical tables."""
    exact_s = two_cut_s = 0.0
    gaps = []
    for i in range(instances):
        instance = dag_instance_from_seed(SEED_BASE + i)
        dct = dag_cut_table(instance.dag, instance.node_cost, instance.upload_time)
        start = time.perf_counter()
        exact = dag_schedule_from_table(dct.table, dct.cuts, n, schedule="exact")
        exact_s += time.perf_counter() - start
        start = time.perf_counter()
        two_cut = dag_schedule_from_table(dct.table, dct.cuts, n, schedule="two-cut")
        two_cut_s += time.perf_counter() - start
        if exact.makespan > 0:
            gaps.append(two_cut.makespan / exact.makespan - 1.0)
    return {
        "instances": instances,
        "jobs": n,
        "exact_ms_per_instance": 1e3 * exact_s / instances,
        "two_cut_ms_per_instance": 1e3 * two_cut_s / instances,
        "exact_over_two_cut_time": exact_s / two_cut_s if two_cut_s else 0.0,
        "mean_two_cut_gap": sum(gaps) / len(gaps) if gaps else 0.0,
        "max_two_cut_gap": max(gaps) if gaps else 0.0,
    }


def run(quick: bool) -> dict:
    instances = 40 if quick else 200
    return {
        "generated_by": "benchmarks/bench_dag.py",
        "quick": quick,
        "pricing": bench_pricing(instances),
        "scheduling": bench_scheduling(max(10, instances // 4)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check", action="store_true", help="exit 1 when the dominance gate breaks"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    document = run(quick=args.quick)
    args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    pricing = document["pricing"]
    scheduling = document["scheduling"]
    print(
        f"pricing: {pricing['instances']} instances, "
        f"{pricing['strictly_better']} strictly better, "
        f"{pricing['priced_worse']} worse, "
        f"mean ratio {pricing['mean_cost_ratio']:.3f} "
        f"(worst {pricing['worst_cost_ratio']:.3f})"
    )
    print(
        f"scheduling: exact {scheduling['exact_ms_per_instance']:.2f} ms vs "
        f"two-cut {scheduling['two_cut_ms_per_instance']:.2f} ms per instance, "
        f"mean two-cut gap {100 * scheduling['mean_two_cut_gap']:.2f}%"
    )

    failures = []
    if pricing["priced_worse"]:
        failures.append(
            f"{pricing['priced_worse']} instances priced worse than duplication"
        )
    if pricing["strictly_better"] == 0:
        failures.append("no instance showed a strict improvement over duplication")
    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
