"""Fig. 11 — JPS vs brute-force optimum on AlexNet and AlexNet'."""

from repro.experiments import fig11


def test_fig11_jps_vs_brute_force(benchmark, env, save_artifact):
    rows = benchmark.pedantic(
        fig11.run, args=(env,), kwargs={"job_counts": [2, 4, 8, 12]},
        rounds=1, iterations=1,
    )
    save_artifact("fig11_jps_vs_bf", fig11.render(rows))

    for row in rows:
        assert row.bf_s <= row.jps_s + 1e-12       # BF is the optimum
        assert row.gap_percent <= 15.0             # JPS stays close
    # on the smoothed AlexNet' (Theorem 5.3 conditions ~hold) the gap closes
    prime = [r for r in rows if r.model == "AlexNet'" and r.n >= 4]
    assert all(r.gap_percent < 5.0 for r in prime)
