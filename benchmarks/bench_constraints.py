"""Extension bench — memory budgets and shared-uplink contention."""

from repro.core.joint import jps_line
from repro.experiments.report import format_table
from repro.extensions.memory import feasible_positions, jps_memory_constrained
from repro.extensions.multidevice import plan_contention_aware, simulate_shared_uplink
from repro.utils.units import mb

N_JOBS = 50


def test_memory_budget_sweep(benchmark, env, save_artifact):
    table = env.cost_table("alexnet", 10.0)

    def run_all():
        rows = []
        for budget_mb in (1, 4, 16, 64, 256, 1024):
            feasible = feasible_positions(table, mb(budget_mb))
            if not feasible:
                rows.append((budget_mb, 0, float("nan")))
                continue
            schedule = jps_memory_constrained(table, N_JOBS, mb(budget_mb))
            rows.append(
                (budget_mb, len(feasible), schedule.makespan / N_JOBS * 1e3)
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "extensions_memory_budget",
        format_table(
            headers=["budget (MB)", "feasible cuts", "JPS-mem (ms/job)"],
            rows=rows,
            title=f"Extension — AlexNet under mobile RAM budgets ({N_JOBS} jobs, 10 Mbps)",
        ),
    )
    # latency is monotone non-increasing as the budget grows
    latencies = [r[2] for r in rows if r[1] > 0]
    for a, b in zip(latencies, latencies[1:]):
        assert b <= a + 1e-9


def test_shared_uplink_contention(benchmark, env, save_artifact):
    table = env.cost_table("alexnet", 18.88)
    n = 12

    def run_all():
        rows = []
        solo = jps_line(table, n)
        for devices in (1, 2, 3, 4):
            naive = simulate_shared_uplink([solo] * devices)
            aware = simulate_shared_uplink(
                plan_contention_aware(table, devices, n)
            )
            rows.append(
                (
                    devices,
                    naive.makespan,
                    aware.makespan,
                    naive.uplink_utilization * 100,
                    aware.uplink_utilization * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "extensions_shared_uplink",
        format_table(
            headers=["devices", "naive plan (s)", "fair-share plan (s)",
                     "naive link util (%)", "aware link util (%)"],
            rows=rows,
            title="Extension — devices sharing one uplink (AlexNet, 12 jobs each, Wi-Fi)",
            float_format="{:.2f}",
        ),
    )
    for devices, naive, aware, _, _ in rows:
        assert aware <= naive + 1e-9
