"""Extensions bench — heterogeneous job sets and the LP lower bound.

(a) Heterogeneous pooling: interleaving two models' jobs through one
    Johnson schedule vs running the groups back to back, with and
    without the coordinate-descent rebalance.
(b) Bound tightness: JPS vs the fractional LP lower bound across the
    experiment grid — how much makespan is left on the table anywhere.
"""

from repro.core.analysis import fractional_lower_bound
from repro.core.joint import jps_line
from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_MODELS
from repro.extensions.heterogeneous import ModelJobs, jps_heterogeneous


def test_heterogeneous_pooling(benchmark, env, save_artifact):
    def run_all():
        rows = []
        pairs = [("alexnet", "mobilenet-v2"), ("resnet18", "googlenet")]
        for left, right in pairs:
            a = ModelJobs(table=env.cost_table(left, 10.0), count=20)
            b = ModelJobs(table=env.cost_table(right, 10.0), count=20)
            greedy = jps_heterogeneous([a, b], rebalance=False)
            balanced = jps_heterogeneous([a, b], rebalance=True)
            back_to_back = (
                jps_line(a.table, a.count).makespan + jps_line(b.table, b.count).makespan
            )
            rows.append(
                (
                    f"{left}+{right}",
                    back_to_back,
                    greedy.makespan,
                    balanced.makespan,
                    (1 - balanced.makespan / back_to_back) * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "extensions_heterogeneous",
        format_table(
            headers=["mix (20+20 jobs)", "back-to-back (s)", "pooled (s)",
                     "pooled+rebalance (s)", "saved (%)"],
            rows=rows,
            title="Extension — heterogeneous job sets at 10 Mbps",
            float_format="{:.2f}",
        ),
    )
    for _, back_to_back, greedy, balanced, _ in rows:
        assert balanced <= greedy + 1e-9
        assert balanced <= back_to_back + 1e-9


def test_lower_bound_tightness(benchmark, env, save_artifact):
    n = 100

    def run_all():
        rows = []
        for model in EXPERIMENT_MODELS:
            for bandwidth in (1.1, 5.85, 18.88):
                table = env.cost_table(model, bandwidth)
                jps = jps_line(table, n).makespan
                bound = fractional_lower_bound(table, n)
                rows.append((model, bandwidth, bound, jps, (jps / bound - 1) * 100))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "extensions_lower_bound",
        format_table(
            headers=["model", "Mbps", "LP bound (s)", "JPS (s)", "gap (%)"],
            rows=rows,
            title=f"JPS vs fractional lower bound ({n} jobs)",
            float_format="{:.2f}",
        ),
    )
    for _, _, bound, jps, gap in rows:
        assert jps >= bound - 1e-9
        assert gap < 12.0  # JPS is near-optimal against *any* scheme