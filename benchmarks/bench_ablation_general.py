"""Ablation — general-structure treatments on series-parallel DNNs.

linearized (collapse everything) vs frontier JPS (exact cut space) vs
Alg. 3 paths (paper heuristic, its own optimistic accounting), on
GoogLeNet and on a small Inception network where the faithful Fig.-9
conversion is still tractable.
"""

from repro.core.general import alg3_schedule
from repro.core.joint import jps_frontier, jps_line
from repro.experiments.report import format_table
from repro.nn import zoo
from repro.profiling.latency import line_cost_table

N_JOBS = 30


def test_general_structure_ablation(benchmark, env, save_artifact):
    mobile, cloud = env.mobile, env.cloud
    channel = env.channel(5.85)
    networks = [env.network("googlenet"), zoo.mini_inception(2)]

    def run_all():
        rows = []
        for network in networks:
            linearized = jps_line(
                line_cost_table(network, mobile, cloud, channel), N_JOBS
            )
            frontier = jps_frontier(network, mobile, cloud, channel, N_JOBS)
            paths = alg3_schedule(network, mobile, cloud, channel, N_JOBS)
            rows.append(
                (
                    network.name,
                    linearized.makespan / N_JOBS * 1e3,
                    frontier.makespan / N_JOBS * 1e3,
                    paths.makespan / N_JOBS * 1e3,
                    paths.metadata["conversion"],
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "ablation_general_structure",
        format_table(
            headers=["model", "linearized (ms/job)", "frontier (ms/job)",
                     "Alg.3 paths* (ms/job)", "conversion"],
            rows=rows,
            title=(
                "Ablation — general-structure treatments (30 jobs, 4G)\n"
                "*Alg.3 uses the paper's per-path accounting (not an executable plan)"
            ),
            float_format="{:.1f}",
        ),
    )

    for name, linearized, frontier, _, _ in rows:
        # keeping intra-module cuts never hurts
        assert frontier <= linearized + 1e-9
