"""Extension bench — executing committed plans under bandwidth traces.

A committed JPS plan (priced at a steady 10 Mbps) is replayed over
piecewise-constant bandwidth traces: a clean link, a mid-burst cliff, a
dip-and-recover, and a slow ramp-down. The trace-driven simulator
resolves each transfer's duration at the moment the link is granted.
"""

from repro.core.joint import jps_line
from repro.experiments.report import format_table
from repro.net.timeline import BandwidthTimeline
from repro.sim.pipeline import simulate_schedule_on_timeline

N_JOBS = 30


def test_bandwidth_traces(benchmark, env, save_artifact):
    table = env.cost_table("alexnet", 10.0)
    channel = env.channel(10.0)
    kwargs = dict(
        setup_latency=channel.setup_latency,
        header_bytes=channel.header_bytes,
        protocol_overhead=channel.protocol_overhead,
    )
    traces = {
        "steady 10": BandwidthTimeline.steps_mbps([(0.0, 10.0)], **kwargs),
        "cliff 10->2 @1s": BandwidthTimeline.steps_mbps(
            [(0.0, 10.0), (1.0, 2.0)], **kwargs
        ),
        "dip 10->2->10": BandwidthTimeline.steps_mbps(
            [(0.0, 10.0), (1.0, 2.0), (2.5, 10.0)], **kwargs
        ),
        "ramp down": BandwidthTimeline.steps_mbps(
            [(0.0, 10.0), (1.0, 8.0), (2.0, 6.0), (3.0, 4.0), (4.0, 2.0)], **kwargs
        ),
    }

    def run_all():
        schedule = jps_line(table, N_JOBS)
        bytes_of = lambda p: table.transfer_bytes_at(p.cut_position)
        rows = []
        for label, timeline in traces.items():
            result = simulate_schedule_on_timeline(schedule, timeline, bytes_of)
            rows.append(
                (label, result.makespan, result.makespan / schedule.makespan)
            )
        return schedule.makespan, rows

    planned, rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "extensions_bandwidth_traces",
        format_table(
            headers=["trace", "executed (s)", "x planned"],
            rows=rows,
            title=(
                f"Extension — committed JPS plan ({N_JOBS} jobs, planned at a "
                f"steady 10 Mbps = {planned:.2f}s) under bandwidth traces"
            ),
            float_format="{:.2f}",
        ),
    )
    by_label = {label: makespan for label, makespan, _ in rows}
    assert by_label["steady 10"] <= planned * 1.01
    assert by_label["cliff 10->2 @1s"] > by_label["dip 10->2->10"]
    assert by_label["dip 10->2->10"] > by_label["steady 10"]
