"""Deployed-path comparison: the prototype, end to end.

Fig. 12's numbers on the real testbed come from a scheduler that plans
on *estimates* (lookup table + regression) and a system that executes
with *real* costs and serialized tensors. This bench runs that same
split through :class:`repro.runtime.OffloadingSystem` for every
experiment model at 4G and records both the executed latency and the
planning error — the quantity that says whether the §6.1 estimation
pipeline is good enough to trust the analytic results.
"""

from repro.experiments.report import format_table
from repro.net.bandwidth import FOUR_G
from repro.nn.zoo import get_model
from repro.runtime.system import OffloadingSystem

N_JOBS = 40
MODELS = ["alexnet", "mobilenet-v2", "resnet18", "googlenet"]
SCHEMES = ["LO", "CO", "PO", "JPS"]


def test_deployed_path(benchmark, save_artifact):
    def run_all():
        system = OffloadingSystem.at_preset(FOUR_G, seed=13)
        system.deploy(*(get_model(m) for m in MODELS))
        rows = []
        for model in MODELS:
            for scheme in SCHEMES:
                run = system.run(model, N_JOBS, scheme)
                rows.append(
                    (
                        model,
                        scheme,
                        run.average_completion * 1e3,
                        run.plan_error * 100,
                        run.scheduler_overhead_s * 1e3,
                    )
                )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "deployed_path",
        format_table(
            headers=["model", "scheme", "executed (ms/job)", "plan error (%)",
                     "scheduler (ms)"],
            rows=rows,
            title=f"Deployed path — plan on estimates, execute on truth (4G, {N_JOBS} jobs)",
            float_format="{:.2f}",
        ),
    )

    executed = {(m, s): v for m, s, v, _, _ in rows}
    for model in MODELS:
        # the analytic ordering survives the estimation noise end to end
        assert executed[(model, "JPS")] <= executed[(model, "LO")] * 1.02
        assert executed[(model, "JPS")] <= executed[(model, "PO")] * 1.02
    for _, _, _, error, overhead in rows:
        assert error < 12.0       # estimates stay close to ground truth
        assert overhead < 5000.0  # planning is bounded even for frontier DAGs
