"""Fig. 13 — latency vs uplink bandwidth (1-80 Mbps), AlexNet & MobileNet-v2."""

from repro.experiments import fig13


def test_fig13_bandwidth_sweep(benchmark, env, save_artifact):
    curves = benchmark.pedantic(fig13.run, args=(env,), rounds=1, iterations=1)
    save_artifact("fig13_bandwidth_sweep", fig13.render(curves))

    for curve in curves:
        lo = curve.latency_s["LO"]
        co = curve.latency_s["CO"]
        jps = curve.latency_s["JPS"]
        po = curve.latency_s["PO"]
        # LO flat, CO strictly falling
        assert max(lo) - min(lo) < 1e-9
        assert all(b < a for a, b in zip(co, co[1:]))
        # JPS dominates every other scheme at every bandwidth
        for series in (lo, co, po):
            assert all(j <= s + 1e-9 for j, s in zip(jps, series))
        # the benefit range covers 3G through Wi-Fi and beyond 50 Mbps
        rng = fig13.benefit_range(curve)
        assert rng is not None
        assert rng[0] <= 1.1 and rng[1] >= 50.0
