"""Fig. 12(a-c) — LO/CO/PO/JPS average latency at 3G/4G/Wi-Fi, 100 jobs,
and Fig. 12(d) — JPS scheduler overhead."""

from repro.experiments import fig12


def test_fig12_scheme_comparison(benchmark, env, save_artifact):
    cells = benchmark.pedantic(fig12.run, args=(env,), rounds=1, iterations=1)
    save_artifact("fig12_scheme_comparison", fig12.render(cells))

    value = {(c.preset, c.model, c.scheme): c.avg_latency_s for c in cells}
    models = sorted({c.model for c in cells})
    for preset in ("3G", "4G", "Wi-Fi"):
        for model in models:
            jps = value[(preset, model, "JPS")]
            assert jps <= value[(preset, model, "LO")] + 1e-9
            assert jps <= value[(preset, model, "PO")] + 1e-9
            assert jps <= value[(preset, model, "CO")] + 1e-9
    # CO at 3G is off the chart (paper: > 4,000 ms for every model)
    assert all(value[("3G", m, "CO")] > 4.0 for m in models)
    # 3G -> 4G: PO barely moves for ResNet while JPS exploits the bandwidth
    po_gain = value[("3G", "resnet18", "PO")] - value[("4G", "resnet18", "PO")]
    jps_gain = value[("3G", "resnet18", "JPS")] - value[("4G", "resnet18", "JPS")]
    assert jps_gain > po_gain


def test_fig12d_scheduler_overhead(benchmark, env, save_artifact):
    overheads = benchmark.pedantic(
        fig12.run_overhead, args=(env,), kwargs={"repeats": 5}, rounds=1, iterations=1
    )
    save_artifact("fig12d_scheduler_overhead", fig12.render_overhead(overheads))
    # "negligible compared with the inference time" (§6.3): < 50 ms vs
    # hundreds of ms per job
    assert all(v < 0.05 for v in overheads.values())
