"""Ablation — robustness of committed plans under execution faults.

The scheduler commits to cuts and an order, then reality intervenes:
the uplink degrades, a job straggles, measurements jitter. This bench
re-executes committed JPS and PO plans under those faults and records
the degradation, plus the value of mid-burst re-planning
(oblivious vs adaptive two-phase execution).
"""

import numpy as np

from repro.core.baselines import partition_only
from repro.core.joint import jps_line
from repro.experiments.report import format_table
from repro.sim.perturb import perturbed_schedule, straggler_schedule, two_phase_makespan

N_JOBS = 50


def test_fault_injection(benchmark, env, save_artifact):
    table = env.cost_table("alexnet", 10.0)

    def run_all():
        jps = jps_line(table, N_JOBS)
        po = partition_only(table, N_JOBS)
        rows = []
        for label, fault in (
            ("link x0.5", dict(bandwidth_scale=0.5)),
            ("link x0.25", dict(bandwidth_scale=0.25)),
            ("jitter 10%", dict(compute_jitter=0.1, comm_jitter=0.1)),
            ("jitter 30%", dict(compute_jitter=0.3, comm_jitter=0.3)),
        ):
            jps_runs = [
                perturbed_schedule(jps, seed=s, **fault).makespan for s in range(5)
            ]
            po_runs = [
                perturbed_schedule(po, seed=s, **fault).makespan for s in range(5)
            ]
            rows.append(
                (
                    label,
                    jps.makespan,
                    float(np.mean(jps_runs)),
                    po.makespan,
                    float(np.mean(po_runs)),
                )
            )
        straggled = straggler_schedule(jps, job_index=N_JOBS // 2, slowdown=10.0)
        rows.append(("straggler 10x", jps.makespan, straggled.makespan,
                     po.makespan, float("nan")))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "ablation_robustness",
        format_table(
            headers=["fault", "JPS plan (s)", "JPS faulted (s)",
                     "PO plan (s)", "PO faulted (s)"],
            rows=rows,
            title="Ablation — committed plans under execution faults (AlexNet, 10 Mbps)",
            float_format="{:.2f}",
        ),
    )
    # under every fault the committed JPS plan still beats the committed PO plan
    for label, _, jps_faulted, _, po_faulted in rows:
        if not np.isnan(po_faulted):
            assert jps_faulted <= po_faulted + 1e-9


def test_adaptive_replanning(benchmark, env, save_artifact):
    before = env.cost_table("alexnet", 18.88)

    def run_all():
        rows = []
        for drop_to in (5.85, 2.0, 1.1):
            after = env.cost_table("alexnet", drop_to)
            oblivious, adaptive = two_phase_makespan(
                before, after, n=N_JOBS, switch_after=N_JOBS // 3
            )
            rows.append((
                f"18.88 -> {drop_to:g} Mbps",
                oblivious,
                adaptive,
                (oblivious - adaptive) / oblivious * 100,
            ))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "ablation_adaptive_replanning",
        format_table(
            headers=["bandwidth drop", "oblivious (s)", "adaptive (s)", "saved (%)"],
            rows=rows,
            title="Ablation — mid-burst re-planning (AlexNet, 50 jobs, drop after 16)",
            float_format="{:.2f}",
        ),
    )
    for _, oblivious, adaptive, _ in rows:
        assert adaptive <= oblivious + 1e-9
