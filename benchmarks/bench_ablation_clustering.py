"""Ablation — virtual-block clustering (§3.2) on versus off.

Clustering is what makes g monotone (binary-searchable). Off-mode JPS
must fall back to a linear scan over the raw per-layer table; this
bench verifies clustering loses nothing (no optimal cut point is
dropped) while shrinking the search space several-fold.
"""

import numpy as np

from repro.core.baselines import brute_force
from repro.experiments.report import format_table
from repro.profiling.latency import line_cost_table


def test_clustering_ablation(benchmark, env, save_artifact):
    mobile, cloud = env.mobile, env.cloud
    channel = env.channel(10.0)

    def run_all():
        rows = []
        for model in ("alexnet", "vgg16", "mobilenet-v2", "resnet18"):
            network = env.network(model)
            clustered = line_cost_table(network, mobile, cloud, channel, cluster=True)
            if network.is_line():
                raw = line_cost_table(network, mobile, cloud, channel, cluster=False)
                raw_k = raw.k
                bf_raw = brute_force(raw, 4).makespan
            else:
                raw_k, bf_raw = np.nan, np.nan
            bf_clustered = brute_force(clustered, 4).makespan
            rows.append((model, raw_k, clustered.k, bf_raw * 1e3, bf_clustered * 1e3))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "ablation_clustering",
        format_table(
            headers=["model", "raw cuts", "clustered cuts", "BF raw (ms)", "BF clustered (ms)"],
            rows=rows,
            title="Ablation — virtual-block clustering (4 jobs, 10 Mbps)",
            float_format="{:.2f}",
        ),
    )

    for model, raw_k, clustered_k, bf_raw, bf_clustered in rows:
        if not np.isnan(raw_k):
            assert clustered_k < raw_k          # the table shrinks ...
            # ... and the optimum over the clustered cuts matches the raw one
            # (no optimal cut point was clustered away)
            assert abs(bf_clustered - bf_raw) <= 1e-6 * max(bf_raw, 1.0)
