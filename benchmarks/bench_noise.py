"""Ablation — prediction-noise sensitivity of the JPS planner."""

from repro.experiments import noise


def test_noise_sensitivity(benchmark, env, save_artifact):
    cells = benchmark.pedantic(
        noise.run, args=(env,), kwargs={"n": 50, "trials": 5}, rounds=1, iterations=1
    )
    save_artifact("ablation_noise_sensitivity", noise.render(cells))

    by_model_sigma = {(c.model, c.sigma): c for c in cells}
    for (model, sigma), cell in by_model_sigma.items():
        assert cell.mean_regret_percent >= -1e-9
        if sigma == 0.0:
            # exact estimates -> the ground-truth plan, zero regret
            assert cell.mean_regret_percent < 1e-6
        if sigma <= 0.05:
            # the paper's operating regime: a lookup table built from
            # ~5%-noise measurements costs almost nothing
            assert cell.mean_regret_percent < 3.0
    # regret grows (weakly) with noise
    for model in {m for m, _ in by_model_sigma}:
        sigmas = sorted(s for m, s in by_model_sigma if m == model)
        values = [by_model_sigma[(model, s)].mean_regret_percent for s in sigmas]
        assert values[-1] >= values[0] - 1e-9
