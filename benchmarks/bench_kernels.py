"""Vectorized planning kernel benchmarks → ``BENCH_kernels.json``.

Measures the three fast paths this repo's perf trajectory is pinned to
and writes a machine-readable artifact at the repo root:

* **kernels** — ``johnson_order`` (one stable lexsort) and
  ``flow_shop_completion_times`` (cumsum closed form) against their
  scalar parity oracles at n = 10k jobs, in ns per job;
* **plan_batch** — a 64-bandwidth ``PlanningEngine.plan_batch`` sweep
  against the warm per-call ``plan()`` loop, in cells per second;
* **gateway_dispatch** — served + dropped events per second of wall
  time through the incremental heap-indexed ``Gateway._dispatch``.

Every section asserts parity before timing (kernel inputs are drawn on
a dyadic grid where the closed form is bit-exact). Run as a CLI::

    python benchmarks/bench_kernels.py [--quick] [--check] [--out PATH]

``--quick`` trims repeats and workload sizes for CI smoke (kernel n
stays 10k — the regression gate is defined there); ``--check`` exits
non-zero when a speedup floor is missed (flow-shop ≥ 5x for CI; the
committed full-run artifact shows ≥ 10x kernel / ≥ 5x plan_batch).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.scheduling import (
    flow_shop_completion_arrays,
    flow_shop_completion_times,
    flow_shop_completion_times_scalar,
    johnson_order,
    johnson_order_indices,
    johnson_order_scalar,
)
from repro.engine import PlanningEngine
from repro.net.bandwidth import TrafficShaper
from repro.net.channel import Channel
from repro.net.timeline import BandwidthTimeline
from repro.serving.gateway import Gateway
from repro.serving.workload import ClientSpec, generate_requests
from repro.utils.units import mbps

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_kernels.json"

#: CI regression gate: vectorized kernels must hold this over scalar at n=10k.
MIN_KERNEL_SPEEDUP = 5.0
#: Floor for the batched sweep over the warm per-call loop.
MIN_PLAN_BATCH_SPEEDUP = 5.0

KERNEL_JOBS = 10_000
PLAN_BANDWIDTHS = 64
PLAN_N = 100


def best_of(fn, repeats: int) -> float:
    """Fastest of ``repeats`` timed calls (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def dyadic_stages(n: int, seed: int = 0) -> tuple[np.ndarray, list[tuple[float, float]]]:
    """(f, g) stage pairs on the 1/1024 grid, as an array and a list.

    Dyadic rationals keep every cumsum exactly representable, so the
    closed-form kernel is bit-identical to the scalar recurrence and
    parity can be asserted with ``==``.
    """
    rng = np.random.default_rng(seed)
    f = rng.integers(0, 4096, size=n) / 1024.0
    g = rng.integers(0, 4096, size=n) / 1024.0
    stages = np.column_stack([f, g])
    return stages, [tuple(pair) for pair in stages.tolist()]


def bench_kernels(repeats: int) -> dict:
    """Array-native kernels against the scalar loops they replaced.

    The timed vector paths are the kernel entry points the hot code
    actually calls (``johnson_order_indices``,
    ``flow_shop_completion_arrays``) — the list-of-tuples compatibility
    wrappers pay an O(n) Python conversion on top, which the parity
    asserts still cover.
    """
    stages, stage_list = dyadic_stages(KERNEL_JOBS)
    f = np.ascontiguousarray(stages[:, 0])
    g = np.ascontiguousarray(stages[:, 1])

    assert johnson_order(stages) == johnson_order_scalar(stage_list)
    assert flow_shop_completion_times(stages) == flow_shop_completion_times_scalar(
        stage_list
    )

    out: dict = {}
    for name, vector, scalar in (
        (
            "johnson_order",
            lambda: johnson_order_indices(f, g),
            lambda: johnson_order_scalar(stage_list),
        ),
        (
            "flow_shop_completion_times",
            lambda: flow_shop_completion_arrays(f, g),
            lambda: flow_shop_completion_times_scalar(stage_list),
        ),
    ):
        vector_s = best_of(vector, repeats)
        scalar_s = best_of(scalar, repeats)
        out[name] = {
            "n": KERNEL_JOBS,
            "scalar_ns_per_op": scalar_s / KERNEL_JOBS * 1e9,
            "vector_ns_per_op": vector_s / KERNEL_JOBS * 1e9,
            "speedup": scalar_s / vector_s,
        }
    return out


def make_channel(uplink_bps: float) -> Channel:
    return Channel(
        shaper=TrafficShaper(uplink_bps=uplink_bps, downlink_bps=2 * uplink_bps)
    )


def bench_plan_batch(repeats: int, model: str = "alexnet") -> dict:
    engine = PlanningEngine()
    rates = [mbps(bw) for bw in np.linspace(1.0, 80.0, PLAN_BANDWIDTHS)]
    channels = [make_channel(rate) for rate in rates]

    def per_call() -> list:
        return [engine.plan(model, PLAN_N, channel) for channel in channels]

    def batched() -> list:
        return engine.plan_batch(model, PLAN_N, rates)

    loop_schedules = per_call()  # also warms every cache layer
    batch_schedules = batched()
    for ours, theirs in zip(batch_schedules, loop_schedules):
        assert ours.makespan == theirs.makespan
        assert [p.cut_position for p in ours.jobs] == [
            p.cut_position for p in theirs.jobs
        ]

    per_call_s = best_of(per_call, repeats)
    batch_s = best_of(batched, repeats)
    return {
        "model": model,
        "n": PLAN_N,
        "bandwidths": PLAN_BANDWIDTHS,
        "per_call_cells_per_s": PLAN_BANDWIDTHS / per_call_s,
        "batch_cells_per_s": PLAN_BANDWIDTHS / batch_s,
        "speedup": per_call_s / batch_s,
    }


def bench_gateway_dispatch(clients: int, horizon: float) -> dict:
    """Events (served + dropped) per second of wall time, one full run.

    Tight deadlines against an overloaded mobile stage make expiry
    bursts routine, exercising exactly the path the incremental head
    index optimizes (expired drops used to rescan every client's head).
    """
    timeline = BandwidthTimeline.constant(mbps(8.0))
    specs = [
        ClientSpec(name=f"c{i}", process="poisson", rate=3.0, deadline=0.4)
        for i in range(clients)
    ]
    requests = generate_requests(specs, horizon=horizon, seed=7)
    gateway = Gateway(timeline, scheme="JPS", max_queue_depth=16)
    start = time.perf_counter()
    result = gateway.run(requests)
    elapsed = time.perf_counter() - start
    events = len(result.records)
    return {
        "clients": clients,
        "requests": len(requests),
        "events": events,
        "events_per_s": events / elapsed,
        "served": sum(1 for r in result.records if r.outcome == "served"),
        "expired": sum(1 for r in result.records if r.outcome == "expired"),
    }


def run(quick: bool) -> dict:
    repeats = 3 if quick else 7
    document = {
        "generated_by": "benchmarks/bench_kernels.py",
        "quick": quick,
        "thresholds": {
            "kernel_speedup_min": MIN_KERNEL_SPEEDUP,
            "plan_batch_speedup_min": MIN_PLAN_BATCH_SPEEDUP,
        },
        "kernels": bench_kernels(repeats),
        "plan_batch": bench_plan_batch(1 if quick else 3),
        "gateway_dispatch": bench_gateway_dispatch(
            clients=8 if quick else 32, horizon=20.0 if quick else 60.0
        ),
    }
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check", action="store_true", help="exit 1 when a speedup floor is missed"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    document = run(quick=args.quick)
    args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    failures = []
    for name, stats in document["kernels"].items():
        line = (
            f"{name:<28s} n={stats['n']}: {stats['vector_ns_per_op']:8.1f} ns/op "
            f"vector vs {stats['scalar_ns_per_op']:8.1f} scalar "
            f"({stats['speedup']:.1f}x)"
        )
        print(line)
        if stats["speedup"] < MIN_KERNEL_SPEEDUP:
            failures.append(f"{name} speedup {stats['speedup']:.2f}x < {MIN_KERNEL_SPEEDUP}x")
    pb = document["plan_batch"]
    print(
        f"plan_batch {pb['model']} n={pb['n']} x{pb['bandwidths']} bw: "
        f"{pb['batch_cells_per_s']:,.0f} cells/s vs {pb['per_call_cells_per_s']:,.0f} "
        f"per-call ({pb['speedup']:.1f}x)"
    )
    if pb["speedup"] < MIN_PLAN_BATCH_SPEEDUP:
        failures.append(
            f"plan_batch speedup {pb['speedup']:.2f}x < {MIN_PLAN_BATCH_SPEEDUP}x"
        )
    gd = document["gateway_dispatch"]
    print(
        f"gateway dispatch: {gd['events_per_s']:,.0f} events/s "
        f"({gd['served']} served, {gd['expired']} expired of {gd['requests']})"
    )
    print(f"[artifact: {args.out}]")

    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
