"""Ablation — two-type split policies against brute force.

Compares, over the same crossing pair (l*-1, l*):

* the paper's floor-ratio rule (Alg. 2 line 9),
* the exact integer split (default JPS),
* exact split + end-effect refinement (extensions.refine),
* the brute-force optimum over the full cut space.
"""

from repro.core.baselines import brute_force
from repro.core.joint import jps_line
from repro.experiments.report import format_table
from repro.extensions.refine import refine_end_jobs


def test_split_policy_ablation(benchmark, env, save_artifact):
    table = env.cost_table("alexnet", 10.0)

    def run_all():
        rows = []
        for n in (2, 4, 8, 12):
            ratio = jps_line(table, n, split="ratio")
            exact = jps_line(table, n, split="exact")
            pair = jps_line(table, n, split="pair")
            refined = refine_end_jobs(table, exact)
            bf = brute_force(table, n)
            rows.append(
                (
                    n,
                    ratio.makespan * 1e3,
                    exact.makespan * 1e3,
                    pair.makespan * 1e3,
                    refined.makespan * 1e3,
                    bf.makespan * 1e3,
                    (refined.makespan - bf.makespan) / bf.makespan * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "ablation_split_policies",
        format_table(
            headers=["n", "ratio (ms)", "exact (ms)", "all-pairs (ms)",
                     "+refine (ms)", "BF (ms)", "gap (%)"],
            rows=rows,
            title="Ablation — split policy vs brute force (AlexNet, 10 Mbps)",
            float_format="{:.2f}",
        ),
    )

    for n, ratio_ms, exact_ms, pair_ms, refined_ms, bf_ms, gap in rows:
        assert bf_ms <= refined_ms + 1e-9 <= exact_ms + 1e-9 <= ratio_ms + 1e-9
        assert pair_ms <= exact_ms + 1e-9
        assert gap < 5.0  # refinement closes the Fig.-11 end-effect gap
