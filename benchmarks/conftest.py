"""Benchmark fixtures and artifact plumbing.

Each figure/table bench times its core computation with
``pytest-benchmark`` *and* writes the regenerated paper table to
``benchmarks/results/<name>.txt`` so the reproduction evidence survives
the run (EXPERIMENTS.md references these artifacts).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentEnv

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def env() -> ExperimentEnv:
    environment = ExperimentEnv()
    # pre-warm the expensive caches (GoogLeNet frontier) outside any timer
    for model in ("alexnet", "googlenet", "mobilenet-v2", "resnet18"):
        environment.cost_table(model, 10.0)
    return environment


@pytest.fixture(scope="session")
def save_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[artifact: {path}]")
        return path

    return _save
