"""Cloud batching benchmark → ``BENCH_cloud.json``.

Quantifies what the hold-and-batch subsystem buys on the contended
32-client capacity scenario (4 gateways sharing one GPU 50x slower
than the planner believes) and locks its two contracts:

* **parity** — a bijective serve-now pool (one GPU per server, batch
  size one, default model) produces the *byte-identical* per-server
  report to the unbatched fleet on the identical stream; batching is
  strictly opt-in;
* **throughput** — ``batch`` and ``adaptive`` dispatch serve strictly
  more requests within deadline than ``serve_now`` on the identical
  arrival stream, with zero accounting/clock violations.

The artifact also records the analytic throughput curve of the
calibrated ``CloudGpuModel`` (items/s vs batch size). Run as a CLI::

    python benchmarks/bench_cloud.py [--quick] [--check] [--out PATH]

``--quick`` trims the horizon for CI smoke; ``--check`` exits non-zero
when parity breaks or batching fails to beat serve-now.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.cloud import BATCHING_POLICIES, CloudConfig, CloudGpuModel
from repro.engine import PlanningEngine
from repro.fleet import capacity_scenario, contended_cloud_scenario, run_system

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_cloud.json"


def bench_parity() -> dict:
    """Serve-now bijective pool == unbatched fleet, byte for byte."""
    base = capacity_scenario(servers=4)
    mirrored = replace(
        base,
        cloud=CloudConfig(
            gpus=len(base.servers),
            max_batch=1,
            max_wait=0.0,
            policy="serve_now",
            # round_robin keeps the server->GPU mapping bijective; the
            # least_queued default would re-route and break byte parity
            assignment="round_robin",
            model=CloudGpuModel(),
        ),
    )
    # fresh planners per side: a shared planner's cache gauges would
    # differ between the first and second run
    plain = run_system(base, planner=PlanningEngine()).as_dict()
    cloudy = run_system(mirrored, planner=PlanningEngine()).as_dict()
    servers_identical = json.dumps(plain["servers"], sort_keys=True) == json.dumps(
        cloudy["servers"], sort_keys=True
    )
    fleet_rest = dict(cloudy["fleet"])
    fleet_rest.pop("cloud", None)
    fleet_identical = json.dumps(plain["fleet"], sort_keys=True) == json.dumps(
        fleet_rest, sort_keys=True
    )
    return {
        "servers_identical": servers_identical,
        "fleet_identical_minus_cloud": fleet_identical,
        "within_deadline": plain["fleet"]["within_deadline"],
    }


def bench_policies(horizon: float) -> dict:
    """All three dispatch policies on the identical contended stream."""
    policies = {}
    for policy in BATCHING_POLICIES:
        config = contended_cloud_scenario(policy=policy, horizon=horizon)
        start = time.perf_counter()
        report = run_system(config, planner=PlanningEngine())
        elapsed = time.perf_counter() - start
        stats = report.fleet["cloud"]["servers"]
        batches = sum(gpu["batches"] for gpu in stats)
        items = sum(gpu["batched_requests"] for gpu in stats)
        policies[policy] = {
            "arrivals": report.arrivals,
            "served": report.served,
            "within_deadline": report.within_deadline,
            "p99_latency": report.p99_latency,
            "sustained_rps": report.sustained_rps,
            "mean_batch_size": items / batches if batches else 0.0,
            "violations": len(report.violations) + len(report.clock_violations),
            "wall_s": elapsed,
        }
    return policies


def bench_curve() -> list[dict]:
    """Analytic throughput curve of the calibrated batching model."""
    model = CloudGpuModel.calibrate(model="alexnet")
    solo = 0.010
    return model.throughput_curve(solo, max_batch=16)


def run(quick: bool = False) -> dict:
    horizon = 3.0 if quick else 8.0
    return {
        "scenario": {
            "name": "contended_cloud_scenario",
            "servers": 4,
            "clients": 32,
            "gpus": 1,
            "horizon": horizon,
        },
        "parity": bench_parity(),
        "policies": bench_policies(horizon),
        "throughput_curve": bench_curve(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when parity breaks or batching does not beat serve-now",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    document = run(quick=args.quick)
    args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    parity = document["parity"]
    print(
        f"parity (serve-now bijective vs unbatched): servers "
        f"{'==' if parity['servers_identical'] else '!='}, fleet "
        f"{'==' if parity['fleet_identical_minus_cloud'] else '!='}"
    )
    for policy, stats in document["policies"].items():
        print(
            f"{policy:<10s} within {stats['within_deadline']:>4d}/"
            f"{stats['arrivals']:<4d} p99 {stats['p99_latency']:6.2f}s "
            f"sustained {stats['sustained_rps']:6.2f} req/s "
            f"mean batch {stats['mean_batch_size']:5.2f} "
            f"({stats['wall_s']:.2f}s wall, {stats['violations']} violations)"
        )
    curve = document["throughput_curve"]
    print(
        f"calibrated curve: {curve[0]['items_per_s']:,.0f} items/s at b=1 -> "
        f"{curve[-1]['items_per_s']:,.0f} at b={curve[-1]['batch_size']}"
    )
    print(f"[artifact: {args.out}]")

    failures = []
    if not parity["servers_identical"] or not parity["fleet_identical_minus_cloud"]:
        failures.append("serve-now bijective pool is not identical to unbatched")
    policies = document["policies"]
    for policy in ("batch", "adaptive"):
        if (
            policies[policy]["within_deadline"]
            <= policies["serve_now"]["within_deadline"]
        ):
            failures.append(f"{policy} does not beat serve_now within deadline")
    for policy, stats in policies.items():
        if stats["violations"]:
            failures.append(f"{policy}: {stats['violations']} invariant violations")

    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
