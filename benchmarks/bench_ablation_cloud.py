"""Ablation — quantifying the "cloud time is negligible" reduction (§3.1).

For every experiment model and bandwidth preset, compare the 2-stage
makespan (paper's model) with the exact 3-stage makespan including
cloud computation. The gap is the modeling error the paper accepts;
it should be well under 1% of the makespan.
"""

from repro.core.joint import jps_line
from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_MODELS
from repro.extensions.flowshop3 import two_stage_approximation_gap


def test_cloud_negligibility(benchmark, env, save_artifact):
    def run_all():
        rows = []
        for model in EXPERIMENT_MODELS:
            for bandwidth in (1.1, 5.85, 18.88):
                table = env.cost_table(model, bandwidth)
                schedule = jps_line(table, 50)
                stages = [
                    (p.compute_time, p.comm_time, p.cloud_time) for p in schedule.jobs
                ]
                gap = two_stage_approximation_gap(stages)
                rows.append(
                    (
                        model,
                        bandwidth,
                        schedule.makespan,
                        gap * 1e3,
                        gap / schedule.makespan * 100,
                    )
                )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "ablation_cloud_negligibility",
        format_table(
            headers=["model", "Mbps", "2-stage makespan (s)", "3-stage gap (ms)", "gap (%)"],
            rows=rows,
            title="Ablation — cost of dropping the cloud stage (JPS, 50 jobs)",
            float_format="{:.3f}",
        ),
    )
    for _, _, _, _, gap_percent in rows:
        assert gap_percent < 1.0
