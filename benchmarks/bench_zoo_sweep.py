"""Zoo-wide sweep: JPS vs LO/CO across every model in the registry.

Not a paper figure — a completeness check that the whole pipeline
(build → cluster/enumerate → plan → price) works for every architecture
family in the zoo, including the heavyweight Inception-v4 (65 billion
paths) and the multi-task tree network.
"""

from repro.core.baselines import cloud_only, local_only
from repro.core.joint import jps_line
from repro.experiments.report import format_table
from repro.nn.zoo import MODELS, get_model
from repro.profiling.latency import line_cost_table

N_JOBS = 25
SKIP = {"alexnet-prime", "line-dnn"}  # aliases/synthetic duplicates


def test_zoo_sweep(benchmark, env, save_artifact):
    models = sorted(set(MODELS) - SKIP)

    def run_all():
        rows = []
        for name in models:
            network = get_model(name)
            if env.treats_as_line(name):
                table = line_cost_table(network, env.mobile, env.cloud, env.channel(5.85))
                structure = "line"
            else:
                # heavy general DAGs go through the cached frontier path
                table = env.cost_table(name, 5.85)
                structure = "frontier"
            lo = local_only(table, N_JOBS).average_completion
            co = cloud_only(table, N_JOBS).average_completion
            jps = jps_line(table, N_JOBS).average_completion
            rows.append(
                (
                    name,
                    structure,
                    table.k,
                    lo * 1e3,
                    co * 1e3,
                    jps * 1e3,
                    (1 - jps / min(lo, co)) * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "zoo_sweep",
        format_table(
            headers=["model", "structure", "cuts", "LO (ms)", "CO (ms)",
                     "JPS (ms)", "gain vs best baseline (%)"],
            rows=rows,
            title=f"Zoo-wide JPS sweep ({N_JOBS} jobs, 4G)",
            float_format="{:.1f}",
        ),
    )
    for name, structure, k, lo, co, jps, gain in rows:
        assert jps <= min(lo, co) + 1e-9
        assert k >= 2
