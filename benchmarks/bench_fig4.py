"""Fig. 4 — AlexNet per-layer time consumption (mobile/comm/cloud)."""

from repro.experiments import fig4


def test_fig4_per_layer_times(benchmark, env, save_artifact):
    rows = benchmark(fig4.run, env)
    save_artifact("fig4_alexnet_layers", fig4.render(rows))

    # reproduction checks: f accumulates, g decays, cloud negligible
    comm = [r.comm_ms for r in rows]
    assert all(b <= a for a, b in zip(comm, comm[1:]))
    assert max(r.cloud_ms for r in rows) * 20 < max(r.mobile_ms for r in rows)
