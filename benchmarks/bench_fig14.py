"""Fig. 14 — makespan vs the computation-/communication-heavy job ratio."""

from repro.experiments import fig14


def test_fig14_ratio_sensitivity(benchmark, env, save_artifact):
    curves = benchmark.pedantic(fig14.run, args=(env,), rounds=1, iterations=1)
    save_artifact("fig14_ratio_sensitivity", fig14.render(curves))

    assert {c.model for c in curves} == {"resnet18", "googlenet"}
    for curve in curves:
        optima = list(curve.optimal_ratio.values())
        # the optimal mix is generally not 1:1 ...
        assert any(abs(r - 1.0) > 1e-9 for r in optima)
        # ... and it shifts with the bandwidth configuration
        assert len(set(optima)) > 1 or all(
            curve.ratios[0] < r < curve.ratios[-1] for r in optima
        )
        # curves are unimodal-ish: the optimum beats both endpoints
        for label, series in curve.makespan_s.items():
            best = min(series)
            assert best <= series[0] + 1e-9
            assert best <= series[-1] + 1e-9
