"""Fig. 2 — the paper's go-through example, regenerated end to end.

Two 3-layer DNNs with cut options (f, g) = (4, 6) after l1 and (7, 2)
after l2. The paper's three schedules: both at l1 -> 16, mixed -> 13,
both at l2 -> 16; and the sensitivity flip when the l2 computation time
drops from 7 to 5.
"""

import numpy as np

from repro.core.baselines import brute_force
from repro.core.joint import jps_line
from repro.core.scheduling import flow_shop_makespan, johnson_order
from repro.experiments.report import format_table
from repro.profiling.latency import CostTable
from repro.sim.pipeline import simulate_schedule
from repro.sim.trace import render_gantt


def fig2_table(l2_compute: float = 7.0) -> CostTable:
    return CostTable(
        model_name="fig2",
        positions=("after-l1", "after-l2"),
        f=np.array([4.0, l2_compute]),
        g=np.array([6.0, 2.0]),
        cloud=np.zeros(2),
    )


def _johnson(stages):
    order = johnson_order(stages)
    return flow_shop_makespan([stages[i] for i in order])


def test_fig2_go_through_example(benchmark, save_artifact):
    def run_all():
        table = fig2_table()
        rows = [
            ("both after l1", _johnson([(4, 6), (4, 6)])),
            ("mixed l1 + l2", _johnson([(4, 6), (7, 2)])),
            ("both after l2", _johnson([(7, 2), (7, 2)])),
        ]
        jps = jps_line(table, 2)
        bf = brute_force(table, 2)
        flipped = fig2_table(l2_compute=5.0)
        flip_rows = [
            ("both after l1", _johnson([(4, 6), (4, 6)])),
            ("mixed l1 + l2", _johnson([(4, 6), (5, 2)])),
            ("both after l2", _johnson([(5, 2), (5, 2)])),
        ]
        return rows, jps, bf, flip_rows

    rows, jps, bf, flip_rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    gantt = render_gantt(simulate_schedule(jps), width=52)
    text = "\n\n".join(
        [
            format_table(["partition", "makespan"], rows,
                         title="Fig. 2 — original costs (l2 compute = 7)"),
            f"JPS finds the mixed partition: makespan {jps.makespan:g} "
            f"(= brute force {bf.makespan:g})\n{gantt}",
            format_table(["partition", "makespan"], flip_rows,
                         title="Fig. 2 — after changing the l2 time 7 -> 5 "
                               "(a homogeneous partition is optimal again)"),
        ]
    )
    save_artifact("fig2_go_through", text)

    assert [r[1] for r in rows] == [16.0, 13.0, 16.0]
    assert jps.makespan == bf.makespan == 13.0
    assert min(r[1] for r in flip_rows) == 12.0
    assert flip_rows[2][1] == 12.0  # the homogeneous l2 partition
