"""Observability tax: what instrumentation costs when off and when on.

The deal :mod:`repro.obs` offers is "instrument everything, pay nothing
until you ask": every site calls through the tracer unconditionally,
and the default :class:`~repro.obs.tracer.NullTracer` turns each span
into one no-op method call. This bench prices that deal on the fig4
workload (AlexNet cost-table readout plus a four-scheme planning sweep,
the instrumented path experiments actually take) and holds the
acceptance line: **the disabled path must cost < 2%**.

Two measurements back the claim:

* direct A/B — median workload time under a ``NullTracer`` vs a live
  :class:`~repro.obs.tracer.Tracer` (recorded; the live tax is allowed
  to be visible, that's what buys the trace);
* a per-span microbenchmark — the NullTracer's cost for one
  ``with tracer.span(...)`` — multiplied by the workload's span count
  and divided by the workload median. This ratio is what the < 2%
  assertion bites on: it is noise-robust where an A/B of two ~equal
  medians is not.
"""

from __future__ import annotations

import time

from repro.experiments import fig4
from repro.experiments.runner import SCHEMES, ExperimentEnv
from repro.obs import NullTracer, Tracer

#: Acceptance bound on the disabled-instrumentation overhead.
MAX_DISABLED_OVERHEAD = 0.02

REPEATS = 15
MICRO_SPANS = 50_000


def fig4_workload(env: ExperimentEnv) -> None:
    """One iteration: the Fig. 4 table + a 4-scheme plan of AlexNet."""
    fig4.run(env)
    for scheme in SCHEMES:
        env.run_scheme("alexnet", 10.0, 100, scheme)


def median_time(fn, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def per_span_cost(tracer) -> float:
    start = time.perf_counter()
    for _ in range(MICRO_SPANS):
        with tracer.span("bench", kind="micro"):
            pass
    return (time.perf_counter() - start) / MICRO_SPANS


def test_disabled_tracer_overhead(save_artifact):
    null_env = ExperimentEnv(tracer=NullTracer())
    live_env = ExperimentEnv(tracer=Tracer())
    # warm the model/table caches so iterations time the steady state —
    # the smallest workload denominator, i.e. the harshest overhead ratio
    fig4_workload(null_env)
    fig4_workload(live_env)

    spans_before = len(live_env.tracer.spans)
    fig4_workload(live_env)
    spans_per_iteration = len(live_env.tracer.spans) - spans_before

    null_median = median_time(lambda: fig4_workload(null_env))
    live_median = median_time(lambda: fig4_workload(live_env))
    null_span_cost = per_span_cost(NullTracer())
    live_span_cost = per_span_cost(Tracer())

    disabled_overhead = null_span_cost * spans_per_iteration / null_median
    lines = [
        "obs overhead on the fig4 workload "
        "(fig4 table + LO/CO/PO/JPS plans of alexnet, n=100, warm caches)",
        f"spans per iteration      : {spans_per_iteration}",
        f"median, NullTracer       : {null_median * 1e3:.3f} ms",
        f"median, live Tracer      : {live_median * 1e3:.3f} ms",
        f"A/B ratio (live/null)    : {live_median / null_median:.3f}x",
        f"per-span cost, disabled  : {null_span_cost * 1e9:.0f} ns",
        f"per-span cost, enabled   : {live_span_cost * 1e9:.0f} ns",
        f"disabled-path overhead   : {disabled_overhead * 100:.4f}% "
        f"(bound: {MAX_DISABLED_OVERHEAD * 100:.0f}%)",
    ]
    save_artifact("obs_overhead", "\n".join(lines))
    assert spans_per_iteration > 0, "workload no longer passes instrumented sites"
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
