"""Observability tax: what instrumentation costs when off and when on.

The deal :mod:`repro.obs` offers is "instrument everything, pay nothing
until you ask": every site calls through the tracer unconditionally,
and the default :class:`~repro.obs.tracer.NullTracer` turns each span
into one no-op method call. This bench prices that deal on the fig4
workload (AlexNet cost-table readout plus a four-scheme planning sweep,
the instrumented path experiments actually take) and holds the
acceptance line: **the disabled path must cost < 2%**.

Two measurements back the claim:

* direct A/B — median workload time under a ``NullTracer`` vs a live
  :class:`~repro.obs.tracer.Tracer` (recorded; the live tax is allowed
  to be visible, that's what buys the trace);
* a per-span microbenchmark — the NullTracer's cost for one
  ``with tracer.span(...)`` — multiplied by the workload's span count
  and divided by the workload median. This ratio is what the < 2%
  assertion bites on: it is noise-robust where an A/B of two ~equal
  medians is not.

The fleet telemetry (:mod:`repro.obs.timeseries` + :mod:`repro.obs.slo`)
is priced the same way on the fleet capacity scenario: disabled, every
publish site costs one ``enabled`` attribute check on the shared null
hub/board, so the < 2% line is held by the microbench-derived ratio
(guard count x per-guard cost / plain median). The enabled path is a
measured feature, not a freebie — the A/B ratio and the cost per
published sample are recorded, with a loose regression ceiling.
"""

from __future__ import annotations

import time

from repro.engine import PlanningEngine
from repro.experiments import fig4
from repro.experiments.runner import SCHEMES, ExperimentEnv
from repro.fleet import run_system
from repro.fleet.config import capacity_scenario, with_slo_telemetry
from repro.obs import NullTracer, Tracer
from repro.obs.slo import NULL_BOARD
from repro.obs.timeseries import NULL_HUB

#: Acceptance bound on the disabled-instrumentation overhead.
MAX_DISABLED_OVERHEAD = 0.02

#: Regression ceiling on the *enabled* telemetry path: wall cost per
#: published sample (hub publish + ring update, amortizing the SLO
#: evaluation). Generous by design — it catches an accidental
#: per-publish blowup, not normal jitter.
MAX_ENABLED_SAMPLE_COST = 50e-6

REPEATS = 15
MICRO_SPANS = 50_000
MICRO_CHECKS = 200_000


def fig4_workload(env: ExperimentEnv) -> None:
    """One iteration: the Fig. 4 table + a 4-scheme plan of AlexNet."""
    fig4.run(env)
    for scheme in SCHEMES:
        env.run_scheme("alexnet", 10.0, 100, scheme)


def median_time(fn, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def per_span_cost(tracer) -> float:
    start = time.perf_counter()
    for _ in range(MICRO_SPANS):
        with tracer.span("bench", kind="micro"):
            pass
    return (time.perf_counter() - start) / MICRO_SPANS


def per_guard_cost() -> float:
    """One disabled publish guard: an ``enabled`` check that is False."""
    sinks = (NULL_HUB, NULL_BOARD)
    start = time.perf_counter()
    for _ in range(MICRO_CHECKS):
        for sink in sinks:
            if sink.enabled:
                raise AssertionError("null sinks must be disabled")
    return (time.perf_counter() - start) / (2 * MICRO_CHECKS)


def test_disabled_tracer_overhead(save_artifact):
    null_env = ExperimentEnv(tracer=NullTracer())
    live_env = ExperimentEnv(tracer=Tracer())
    # warm the model/table caches so iterations time the steady state —
    # the smallest workload denominator, i.e. the harshest overhead ratio
    fig4_workload(null_env)
    fig4_workload(live_env)

    spans_before = len(live_env.tracer.spans)
    fig4_workload(live_env)
    spans_per_iteration = len(live_env.tracer.spans) - spans_before

    null_median = median_time(lambda: fig4_workload(null_env))
    live_median = median_time(lambda: fig4_workload(live_env))
    null_span_cost = per_span_cost(NullTracer())
    live_span_cost = per_span_cost(Tracer())

    disabled_overhead = null_span_cost * spans_per_iteration / null_median
    lines = [
        "obs overhead on the fig4 workload "
        "(fig4 table + LO/CO/PO/JPS plans of alexnet, n=100, warm caches)",
        f"spans per iteration      : {spans_per_iteration}",
        f"median, NullTracer       : {null_median * 1e3:.3f} ms",
        f"median, live Tracer      : {live_median * 1e3:.3f} ms",
        f"A/B ratio (live/null)    : {live_median / null_median:.3f}x",
        f"per-span cost, disabled  : {null_span_cost * 1e9:.0f} ns",
        f"per-span cost, enabled   : {live_span_cost * 1e9:.0f} ns",
        f"disabled-path overhead   : {disabled_overhead * 100:.4f}% "
        f"(bound: {MAX_DISABLED_OVERHEAD * 100:.0f}%)",
    ]
    save_artifact("obs_overhead", "\n".join(lines))
    assert spans_per_iteration > 0, "workload no longer passes instrumented sites"
    assert disabled_overhead < MAX_DISABLED_OVERHEAD


def test_disabled_telemetry_overhead_on_fleet_capacity(save_artifact):
    """The < 2% acceptance line for the fleet telemetry guards.

    A disabled run executes the exact same event stream as the
    pre-telemetry code (locked byte-identical by the golden-compat
    test) plus one ``enabled`` check per publish guard, so the bound
    bites on guard count x per-guard cost / plain median — the same
    noise-robust construction as the tracer test above. The enabled
    path is priced transparently alongside it.
    """
    planner = PlanningEngine()
    plain_config = capacity_scenario()
    telem_config = with_slo_telemetry(capacity_scenario())

    def run_plain():
        return run_system(plain_config, planner=planner)

    def run_telem():
        return run_system(telem_config, planner=planner)

    report = run_telem()  # warm the plan cache + count the publishes
    run_plain()
    publishes = sum(
        series["count"] for series in report.timeline["series"].values()
    )
    # at most one hub check per published sample, plus one hub and one
    # board check per resolved request: a safe upper bound on the
    # guards a disabled run executes
    guard_checks = publishes + 2 * report.arrivals

    plain_median = median_time(run_plain)
    telem_median = median_time(run_telem)
    guard_cost = per_guard_cost()
    disabled_overhead = guard_cost * guard_checks / plain_median
    per_sample = (telem_median - plain_median) / publishes
    lines = [
        "telemetry overhead on the fleet capacity scenario "
        "(warm plan cache, default SLOs)",
        f"published samples per run : {publishes}",
        f"guard checks (upper bound): {guard_checks}",
        f"median, telemetry off     : {plain_median * 1e3:.3f} ms",
        f"median, telemetry on      : {telem_median * 1e3:.3f} ms",
        f"A/B ratio (on/off)        : {telem_median / plain_median:.3f}x",
        f"per-guard cost, disabled  : {guard_cost * 1e9:.0f} ns",
        f"per-sample cost, enabled  : {per_sample * 1e6:.2f} us "
        f"(ceiling: {MAX_ENABLED_SAMPLE_COST * 1e6:.0f} us)",
        f"disabled-path overhead    : {disabled_overhead * 100:.4f}% "
        f"(bound: {MAX_DISABLED_OVERHEAD * 100:.0f}%)",
    ]
    save_artifact("telemetry_overhead", "\n".join(lines))
    assert publishes > 0, "capacity run no longer publishes telemetry"
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
    assert per_sample < MAX_ENABLED_SAMPLE_COST
