"""Extension bench — battery energy next to the latency results.

For each scheme at each preset: joules per job on the mobile device,
under Wi-Fi and cellular radio power profiles. The latency-optimal JPS
is not automatically the energy optimum (radio watts price uploads);
the energy-latency frontier quantifies the trade space.
"""

from repro.experiments.report import format_table
from repro.experiments.runner import SCHEMES
from repro.profiling.energy import (
    CELLULAR_POWER,
    WIFI_POWER,
    energy_latency_frontier,
    schedule_energy,
)

N_JOBS = 100


def test_energy_per_scheme(benchmark, env, save_artifact):
    def run_all():
        rows = []
        for model in ("alexnet", "mobilenet-v2"):
            for bandwidth, power in ((18.88, WIFI_POWER), (5.85, CELLULAR_POWER)):
                for scheme in SCHEMES:
                    schedule = env.run_scheme(model, bandwidth, N_JOBS, scheme)
                    rows.append(
                        (
                            model,
                            f"{bandwidth:g}Mbps/{power.name}",
                            scheme,
                            schedule.makespan / N_JOBS * 1e3,
                            schedule_energy(schedule, power) / N_JOBS,
                        )
                    )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "extensions_energy",
        format_table(
            headers=["model", "link/radio", "scheme", "ms/job", "J/job"],
            rows=rows,
            title="Extension — battery energy per job next to latency",
            float_format="{:.2f}",
        ),
    )

    by_key = {(m, l, s): (lat, joules) for m, l, s, lat, joules in rows}
    for model in ("alexnet", "mobilenet-v2"):
        # on Wi-Fi the cheap radio makes offloading a battery win too ...
        assert (
            by_key[(model, "18.88Mbps/wifi", "JPS")][1]
            < by_key[(model, "18.88Mbps/wifi", "LO")][1]
        )
        # ... but on cellular the radio watts + tail energy invert the
        # trade-off: the latency-optimal JPS costs MORE battery than LO.
        # Latency-optimal != energy-optimal — the point of this extension.
        assert (
            by_key[(model, "5.85Mbps/cellular", "JPS")][1]
            > by_key[(model, "5.85Mbps/cellular", "LO")][1]
        )


def test_energy_latency_frontier_sizes(benchmark, env, save_artifact):
    def run_all():
        lines = []
        for model in ("alexnet", "resnet18"):
            table = env.cost_table(model, 18.88)
            frontier = energy_latency_frontier(table, WIFI_POWER)
            lines.append(f"{model}: {len(frontier)} Pareto points of {table.k} cuts")
            for point in frontier:
                lines.append(
                    f"  {point.label:<36s} latency {point.per_job_latency * 1e3:7.1f} ms  "
                    f"energy {point.per_job_energy:6.2f} J"
                )
        return "\n".join(lines)

    text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact("extensions_energy_frontier", text)
    assert "Pareto points" in text
