"""Engine cache economics: cold vs warm planning, serial vs parallel grids.

Two claims are on trial. First, a warm :class:`~repro.engine.PlanningEngine`
re-plans for pennies: the structure phase (graph linearization, frontier
enumeration) is memoized, so a repeat ``plan()`` pays only the O(log k)
search plus the Johnson sort. Second, the campaign fan-out
(:mod:`repro.experiments.parallel`) distributes per-(model, bandwidth)
cells over a process pool without changing a single number.

The wall-time half of the second claim needs real cores: on a
single-CPU container the pool serializes onto one core and the fork +
per-worker structure warmup is pure overhead, so the serial-vs-parallel
assertion only arms when ``os.cpu_count() >= 2``. The parity half is
asserted unconditionally. The recorded artifact (``engine_cache.txt``)
states the host's core count so the numbers read in context.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.engine import PlanningEngine
from repro.experiments.parallel import GridCell, plan_grid
from repro.experiments.runner import EXPERIMENT_MODELS, ExperimentEnv
from repro.net.bandwidth import TrafficShaper
from repro.net.channel import Channel
from repro.utils.units import mbps

#: Warm-over-cold factor the engine must deliver on a frontier model.
MIN_WARM_SPEEDUP = 5.0


def make_channel(uplink_mbps: float) -> Channel:
    return Channel(
        shaper=TrafficShaper(
            uplink_bps=mbps(uplink_mbps), downlink_bps=mbps(2 * uplink_mbps)
        )
    )


def time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_cold_vs_warm_plan(save_artifact):
    channel = make_channel(10.0)
    lines = [
        "planning engine: cold vs warm plan() (n=100, 10 Mbps)",
        f"{'model':<14s} {'cold (ms)':>10s} {'warm (ms)':>10s} {'speedup':>8s}",
    ]
    speedups: dict[str, float] = {}
    for model in EXPERIMENT_MODELS:
        engine = PlanningEngine()
        cold = time_once(lambda: engine.plan(model, 100, channel))
        warm_samples = [
            time_once(lambda: engine.plan(model, 100, channel)) for _ in range(5)
        ]
        warm = sorted(warm_samples)[len(warm_samples) // 2]
        speedups[model] = cold / warm
        lines.append(
            f"{model:<14s} {cold * 1e3:>10.2f} {warm * 1e3:>10.3f} "
            f"{speedups[model]:>7.1f}x"
        )
        totals = engine.stats_snapshot()["totals"]
        assert totals["hits"] > 0 and totals["hit_rate"] > 0.0
    save_artifact("engine_cache", "\n".join(lines))
    # the headline acceptance: frontier-structure GoogLeNet, warm >= 5x cold.
    # Line models skip only a ~2 ms linearization, so their ratio is noise-
    # bound and is recorded rather than asserted.
    assert speedups["googlenet"] >= MIN_WARM_SPEEDUP


def test_campaign_grid_serial_vs_parallel(save_artifact):
    bandwidths = [float(b) for b in np.linspace(1, 80, 30)]
    cells = [
        GridCell(model=model, bandwidth=bw, n=100)
        for model in EXPERIMENT_MODELS
        for bw in bandwidths
    ]
    start = time.perf_counter()
    serial = plan_grid(cells, env=ExperimentEnv(), jobs=1)
    serial_time = time.perf_counter() - start
    start = time.perf_counter()
    parallel = plan_grid(cells, env=ExperimentEnv(), jobs=4)
    parallel_time = time.perf_counter() - start

    for ours, theirs in zip(serial, parallel):
        for scheme in ours:
            assert ours[scheme].makespan == theirs[scheme].makespan

    cores = os.cpu_count() or 1
    lines = [
        f"campaign grid: {len(cells)} cells "
        f"({len(EXPERIMENT_MODELS)} models x {len(bandwidths)} bandwidths, n=100)",
        f"host cores      : {cores}",
        f"serial          : {serial_time:.2f} s",
        f"--jobs 4        : {parallel_time:.2f} s",
        f"speedup         : {serial_time / parallel_time:.2f}x",
        "parity          : bit-identical makespans across all cells",
    ]
    if cores < 2:
        lines.append(
            "note: single-core host — the pool cannot beat serial here; "
            "on >=2 cores the model-grouped chunking wins (one structure "
            "build per worker, cells split across cores)."
        )
    save_artifact("engine_cache_parallel", "\n".join(lines))
    if cores >= 2:
        assert parallel_time < serial_time
