"""Table 1 — latency reduction of PO and JPS relative to LO (%)."""

from repro.experiments import table1


def test_table1_latency_reduction(benchmark, env, save_artifact):
    rows = benchmark.pedantic(table1.run, args=(env,), rounds=1, iterations=1)
    save_artifact("table1_reduction_vs_lo", table1.render(rows))

    by_model = {r.model: r.reductions for r in rows}
    for model, reductions in by_model.items():
        for preset, values in reductions.items():
            # JPS never reduces less than PO (joint optimization dominates)
            assert values["JPS"] >= values["PO"] - 1e-9
    # paper shapes: PO gains nothing at 3G for ResNet; everyone wins at Wi-Fi
    assert by_model["resnet18"]["3G"]["PO"] == 0.0
    assert all(reductions["Wi-Fi"]["JPS"] > 40 for reductions in by_model.values())
    # the 4G column shows the joint gain most clearly (paper §6.3: the
    # bandwidth improvement is wasted without scheduling)
    assert by_model["resnet18"]["4G"]["JPS"] - by_model["resnet18"]["4G"]["PO"] > 20
