#!/usr/bin/env python
"""General-structure partitioning on GoogLeNet (paper §5.3 / Alg. 3).

GoogLeNet's Inception modules must not be collapsed into virtual blocks
— their 1x1 reduction convs shrink branch tensors below the module's
input, so the best cut can thread *through* a module with a different
depth per branch. This example contrasts three treatments:

* linearized      — force a line structure (what the paper does for
                    MobileNet/ResNet; lossy here),
* Alg. 3 (paths)  — the paper's heuristic: independent paths, one cut
                    per path, duplicate-aware Johnson scheduling,
* frontier (ours) — exact enumeration of the series-parallel cut space,
                    Pareto-pruned, then the usual two-type JPS.

Run:  python examples/general_structure_googlenet.py
"""

from repro.core import alg3_schedule, jps_frontier, jps_line
from repro.dag import count_paths, enumerate_frontier_cuts, separators
from repro.net import FOUR_G, Channel
from repro.nn import zoo
from repro.profiling import gtx1080_server, line_cost_table, raspberry_pi_4

N_JOBS = 50


def main() -> None:
    network = zoo.googlenet()
    mobile, cloud = raspberry_pi_4(), gtx1080_server()
    channel = Channel.from_preset(FOUR_G)
    graph = network.graph

    print(f"{network.name}: {len(graph)} layers, "
          f"{count_paths(graph)} source-to-sink paths, "
          f"{len(separators(graph))} separators")
    cuts = enumerate_frontier_cuts(graph)
    print(f"exact cut space: {len(cuts)} downward-closed cuts "
          f"(vs 4^9 = {4**9} naive path combinations)\n")

    linearized = jps_line(line_cost_table(network, mobile, cloud, channel), N_JOBS)
    frontier = jps_frontier(network, mobile, cloud, channel, N_JOBS)
    paths = alg3_schedule(network, mobile, cloud, channel, N_JOBS)

    print(f"{'treatment':<22s} {'makespan (s)':>12s} {'avg/job (ms)':>13s}")
    rows = [
        ("linearized (lossy)", linearized),
        ("frontier JPS (exact)", frontier),
        ("Alg. 3 paths*", paths),
    ]
    for label, schedule in rows:
        # Alg. 3 schedules hold n x paths units, so divide by the job count
        # rather than using Schedule.average_completion
        print(f"{label:<22s} {schedule.makespan:12.2f} "
              f"{schedule.makespan / N_JOBS * 1e3:13.1f}")
    print("\n* Alg. 3 uses the paper's per-path accounting: duplicated layers are")
    print("  charged once per job, but the per-path cuts need not assemble into a")
    print("  single consistent frontier — treat its makespan as the paper's")
    print("  optimistic model, not an executable plan (see DESIGN.md).")

    chosen = {job.cut_label for job in frontier.jobs}
    print("\nfrontier JPS cut(s) chosen:")
    for label in sorted(chosen):
        print(f"  {label}")
    inside = [c for c in chosen if c.startswith("inside:")]
    if inside:
        print("  -> the optimal cut threads through an Inception module, which no")
        print("     line-structure treatment can express.")


if __name__ == "__main__":
    main()
