#!/usr/bin/env python
"""Streaming arrivals: scheduling frames that don't all exist at t = 0.

The paper releases the whole job set together (a camera *burst*). A
30 fps video feed instead delivers one frame every 33 ms. This example
runs the online dispatcher — Johnson's rule over whichever frames have
arrived, cuts fixed by the JPS two-type mix — across arrival rates from
"all at once" to "slower than the pipeline", and compares against the
offline relaxation bound.

Run:  python examples/online_streaming.py
"""

from repro.experiments.runner import ExperimentEnv
from repro.extensions.online import OnlineJpsScheduler, offline_lower_bound

N_FRAMES = 60
MODEL = "mobilenet-v2"
BANDWIDTH = 18.88


def main() -> None:
    env = ExperimentEnv()
    table = env.cost_table(MODEL, BANDWIDTH)
    scheduler = OnlineJpsScheduler(table, nominal_burst=12)
    print(f"{MODEL} @ {BANDWIDTH} Mbps, {N_FRAMES} frames, online dispatch\n")
    header = (f"{'arrival':>14s} {'makespan (s)':>13s} {'bound (s)':>10s} "
              f"{'overhead':>9s} {'throughput':>12s}")
    print(header)
    print("-" * len(header))
    for label, interval in (
        ("burst (0 ms)", 0.0),
        ("120 fps", 1 / 120),
        ("60 fps", 1 / 60),
        ("30 fps", 1 / 30),
        ("10 fps", 1 / 10),
    ):
        releases = [i * interval for i in range(N_FRAMES)]
        jobs = scheduler.assign_cuts(releases)
        _, makespan = scheduler.dispatch(jobs)
        bound = offline_lower_bound(jobs)
        throughput = N_FRAMES / makespan
        print(f"{label:>14s} {makespan:>13.3f} {bound:>10.3f} "
              f"{(makespan / bound - 1) * 100:>8.1f}% {throughput:>9.1f} fps")
    print("\nreading: up to ~60 fps the pipeline absorbs arrivals at burst")
    print("efficiency; beyond that the camera, not the schedule, is the")
    print("bottleneck and every policy degenerates to frame-at-a-time.")


if __name__ == "__main__":
    main()
