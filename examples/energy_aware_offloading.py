#!/usr/bin/env python
"""Battery-aware offloading: latency-optimal is not energy-optimal.

The paper minimizes makespan; a phone also cares about joules. This
example prices every scheme under Wi-Fi and cellular radio power
profiles and prints the energy-latency Pareto frontier of cut choices —
on cellular, the tail energy makes the latency-optimal JPS plan *more*
expensive for the battery than running locally, so an energy-aware
policy would pick a deeper cut.

Run:  python examples/energy_aware_offloading.py
"""

from repro.experiments.runner import SCHEMES, ExperimentEnv
from repro.profiling.energy import (
    CELLULAR_POWER,
    WIFI_POWER,
    energy_latency_frontier,
    schedule_energy,
)

N_JOBS = 100
MODEL = "alexnet"


def main() -> None:
    env = ExperimentEnv()
    print(f"{MODEL}, {N_JOBS} jobs\n")
    header = f"{'link/radio':<22s} {'scheme':<6s} {'ms/job':>8s} {'J/job':>8s}"
    print(header)
    print("-" * len(header))
    for bandwidth, power in ((18.88, WIFI_POWER), (5.85, CELLULAR_POWER)):
        for scheme in SCHEMES:
            schedule = env.run_scheme(MODEL, bandwidth, N_JOBS, scheme)
            joules = schedule_energy(schedule, power) / N_JOBS
            print(f"{bandwidth:>6.2f} Mbps/{power.name:<9s} {scheme:<6s} "
                  f"{schedule.makespan / N_JOBS * 1e3:>8.1f} {joules:>8.2f}")
        print()

    for power in (WIFI_POWER, CELLULAR_POWER):
        table = env.cost_table(MODEL, 18.88 if power is WIFI_POWER else 5.85)
        frontier = energy_latency_frontier(table, power)
        print(f"energy-latency frontier on {power.name} "
              f"({len(frontier)} of {table.k} cuts survive):")
        for point in frontier:
            print(f"  {point.label:<36s} {point.per_job_latency * 1e3:7.1f} ms  "
                  f"{point.per_job_energy:6.2f} J")
        print()
    print("reading: the leftmost frontier point is the latency pick, the")
    print("rightmost the battery pick; on cellular they are far apart.")


if __name__ == "__main__":
    main()
