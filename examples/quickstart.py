#!/usr/bin/env python
"""Quickstart: partition and schedule 100 AlexNet inference jobs.

Walks the whole public API in one file:

1. build a DNN from the model zoo,
2. derive its cost table for a mobile device + cloud server + 4G uplink,
3. run the paper's four schemes (LO, CO, PO, JPS),
4. execute the JPS schedule on the discrete-event pipeline and draw the
   timeline.

Run:  python examples/quickstart.py
"""

from repro.core import cloud_only, jps, jps_line, local_only, partition_only
from repro.net import FOUR_G, Channel
from repro.nn import zoo
from repro.profiling import gtx1080_server, line_cost_table, raspberry_pi_4
from repro.sim import render_gantt, simulate_schedule


def main() -> None:
    n_jobs = 100
    network = zoo.alexnet()
    mobile = raspberry_pi_4()
    cloud = gtx1080_server()
    channel = Channel.from_preset(FOUR_G)

    print(f"model: {network.name} — {network.num_layers} layers, "
          f"{network.total_flops / 1e9:.2f} GFLOPs")
    print(f"uplink: {FOUR_G.name} ({channel.uplink_bps / 1e6:.2f} Mbps)\n")

    # the (f, g) cost table after virtual-block clustering (§3.2)
    table = line_cost_table(network, mobile, cloud, channel)
    print(f"{'cut position':<32s} {'f (ms)':>8s} {'g (ms)':>8s}")
    for i, position in enumerate(table.positions):
        print(f"{position:<32s} {table.f[i] * 1e3:8.1f} {table.g[i] * 1e3:8.1f}")
    print()

    # the paper's comparison (§6.2)
    schedules = {
        "LO ": local_only(table, n_jobs),
        "CO ": cloud_only(table, n_jobs),
        "PO ": partition_only(table, n_jobs),
        "JPS": jps(network, mobile, cloud, channel, n_jobs),
    }
    print(f"{'scheme':<6s} {'makespan (s)':>12s} {'avg/job (ms)':>13s}")
    for name, schedule in schedules.items():
        print(f"{name:<6s} {schedule.makespan:12.2f} "
              f"{schedule.average_completion * 1e3:13.1f}")
    jps_schedule = schedules["JPS"]
    print(f"\nJPS cut split: {jps_schedule.cut_histogram()} "
          f"(l* = {jps_schedule.metadata['l_star']})\n")

    # execute a small slice on the discrete-event pipeline
    small = jps_line(table, 8)
    result = simulate_schedule(small)
    print("pipeline timeline for 8 JPS jobs "
          "(computation and upload overlap across jobs):")
    print(render_gantt(result))


if __name__ == "__main__":
    main()
