#!/usr/bin/env python
"""Self-driving-car scenario (paper §1): multiple cameras, one DNN.

A vehicle captures a burst of frames from six cameras every perception
cycle and runs the *same* ResNet-18 on each — exactly the homogeneous
multi-job workload the paper optimizes. This example plans the burst at
several uplink conditions, then adds a heterogeneous twist (a Tiny-YOLO
detector alongside the classifier) using the heterogeneous-jobs
extension.

Run:  python examples/self_driving_multicamera.py
"""

from repro.core import jps_line, local_only, partition_only
from repro.experiments.runner import ExperimentEnv
from repro.extensions import ModelJobs, jps_heterogeneous
from repro.sim import simulate_schedule, validate_against_recurrence

CAMERAS = 6
BURSTS_PER_SECOND = 5  # how many perception cycles must fit in a second


def deadline_report(label: str, makespan: float) -> str:
    budget = 1.0 / BURSTS_PER_SECOND
    verdict = "MEETS" if makespan <= budget else "MISSES"
    return f"  {label:<28s} burst makespan {makespan * 1e3:7.1f} ms — {verdict} the {budget * 1e3:.0f} ms budget"


def main() -> None:
    env = ExperimentEnv()
    print(f"{CAMERAS} cameras x ResNet-18 per perception cycle, "
          f"{BURSTS_PER_SECOND} cycles/s\n")

    for bandwidth in (1.1, 5.85, 18.88, 40.0):
        table = env.cost_table("resnet18", bandwidth)
        lo = local_only(table, CAMERAS)
        po = partition_only(table, CAMERAS)
        j = jps_line(table, CAMERAS)
        print(f"uplink {bandwidth:5.2f} Mbps:")
        print(deadline_report("local-only", lo.makespan))
        print(deadline_report("partition-only (Neurosurgeon)", po.makespan))
        print(deadline_report("JPS (joint)", j.makespan))

        # sanity: the planned makespan is what the pipeline actually yields
        result = simulate_schedule(j)
        validate_against_recurrence(result, j)
        print()

    print("heterogeneous burst: 6 classifier frames + 2 detector frames at 18.88 Mbps")
    classifier = ModelJobs(table=env.cost_table("resnet18", 18.88), count=CAMERAS)
    detector = ModelJobs(table=env.cost_table("tiny-yolov2", 18.88), count=2)
    mixed = jps_heterogeneous([classifier, detector])
    solo = (jps_line(classifier.table, classifier.count).makespan
            + jps_line(detector.table, detector.count).makespan)
    print(f"  pooled JPS-hetero makespan : {mixed.makespan * 1e3:7.1f} ms")
    print(f"  back-to-back homogeneous   : {solo * 1e3:7.1f} ms")
    print(f"  interleaving saves         : {(solo - mixed.makespan) * 1e3:7.1f} ms "
          f"({(1 - mixed.makespan / solo) * 100:.1f}%)")


if __name__ == "__main__":
    main()
