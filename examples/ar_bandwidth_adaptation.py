#!/usr/bin/env python
"""AR-glasses scenario: re-planning as the wireless link degrades.

Runs the *system prototype* end to end: models are deployed to the
mobile client and cloud server, the on-device scheduler calibrates its
lookup table and communication regression once, and then — as the
traffic shaper walks the uplink from Wi-Fi down to 3G and back — each
frame burst is re-planned on estimates and executed with ground-truth
costs and real serialized tensor sizes.

Watch two things: the chosen cut layers migrate deeper into the network
as bandwidth drops (offload less), and the planning error stays within
a few percent even though the scheduler never sees the true costs.

Run:  python examples/ar_bandwidth_adaptation.py
"""

from repro.net import WIFI
from repro.nn import zoo
from repro.runtime import OffloadingSystem

FRAMES_PER_BURST = 24
BANDWIDTH_WALK = [18.88, 10.0, 5.85, 2.5, 1.1, 5.85, 18.88]


def main() -> None:
    system = OffloadingSystem.at_preset(WIFI, seed=11)
    system.deploy(zoo.mobilenet_v2())
    print(f"deployed mobilenet-v2; {FRAMES_PER_BURST} frames per AR burst\n")
    header = (f"{'Mbps':>6s} {'scheme':>6s} {'cuts used':<34s} "
              f"{'exec (ms/frame)':>15s} {'plan err':>9s} {'sched (ms)':>10s}")
    print(header)
    print("-" * len(header))

    for mbps in BANDWIDTH_WALK:
        system.set_uplink_mbps(mbps)
        run = system.run("mobilenet-v2", FRAMES_PER_BURST, "JPS")
        cuts = ", ".join(
            f"{label.split('..')[-1]}x{count}"
            for label, count in sorted(
                (job.cut_label, c)
                for job, c in (
                    (next(j for j in run.result.schedule.jobs
                          if j.cut_position == pos), c)
                    for pos, c in run.result.schedule.cut_histogram().items()
                )
            )
        )
        print(f"{mbps:6.2f} {'JPS':>6s} {cuts:<34s} "
              f"{run.average_completion * 1e3:15.1f} "
              f"{run.plan_error * 100:8.2f}% "
              f"{run.scheduler_overhead_s * 1e3:10.2f}")

    # how much did adaptation matter? freeze the Wi-Fi plan and pay 3G prices
    system.set_uplink_mbps(1.1)
    adapted = system.run("mobilenet-v2", FRAMES_PER_BURST, "JPS")
    frozen_co = system.run("mobilenet-v2", FRAMES_PER_BURST, "CO")
    print(f"\nat 1.1 Mbps: adaptive JPS {adapted.average_completion * 1e3:.0f} ms/frame "
          f"vs cloud-offload-everything {frozen_co.average_completion * 1e3:.0f} ms/frame "
          f"({frozen_co.average_completion / adapted.average_completion:.1f}x worse)")


if __name__ == "__main__":
    main()
