from setuptools import setup

# Legacy shim: lets `pip install -e .` work in offline environments that
# lack the `wheel` package required by PEP-517 editable installs.
setup()
