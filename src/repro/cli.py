"""Command-line interface: ``python -m repro <command>``.

Commands
--------
models                         list the zoo with FLOP/param/structure info
summary MODEL                  per-layer table of one model
table MODEL [--mbps X]         the (f, g, cloud) cost table
plan MODEL [-n N] [--mbps X] [--scheme S] [--structure T] [--split M]
     [--json] [--gantt]       plan a job set and report the schedule
compare MODEL [-n N] [--mbps X] [--json]
                               all four schemes side by side + LP lower bound
serve [--clients N] [--rate R] [--horizon T] [--model M] [--mbps X]
      [--drop-mbps Y] [--drop-at T] [--deadline D] [--scheme S ...]
      [--seed K] [--queue-depth Q] [--json PATH]
      [--faults] [--blackout-start T] [--blackout-duration D]
                               multi-client offload gateway scenario;
                               --faults runs the blackout fault scenario
                               (resilience policy vs no policy) instead
fleet [--servers N] [--clients C] [--rate R] [--horizon T] [--model M]
      [--mbps X] [--deadline D] [--placement P] [--scheme S] [--seed K]
      [--queue-depth Q] [--compare-single] [--json PATH]
      [--cloud-gpus K] [--max-batch B] [--max-wait S] [--cloud-policy P]
      [--telemetry] [--slo] [--watch] [--core fast|heap]
                               N-server fleet through the unified
                               SystemConfig/run_system API: placement,
                               admission, per-server audit; exit 1 on
                               any accounting/clock violation.
                               --cloud-gpus > 0 routes all cloud stages
                               through K shared hold-and-batch GPUs
                               (repro.cloud) and reports batching stats.
                               --telemetry records windowed time-series
                               into the report, --slo evaluates the
                               default burn-rate objectives, --watch
                               prints the per-window operator table
experiment NAME [--jobs J]     regenerate a paper artifact
                               (fig4 | fig11 | fig12 | fig13 | fig14 | table1
                                | serving | fleet | cloud)
dot MODEL [--mbps X]           Graphviz DOT with the JPS cut highlighted
energy MODEL [--radio R]       energy-latency Pareto frontier
campaign OUT [--quick] [--compare OLD] [--tolerance T] [--jobs J]
                               run every experiment, save JSON, diff runs
trace TARGET [--out PATH] [--prom PATH] [--seed K]
      [--scenario S] [--timeline PATH]
                               run a target (serving | experiment | fleet)
                               under the tracer; export a Perfetto-loadable
                               Chrome trace and optionally a Prometheus
                               exposition. fleet runs an SLO acceptance
                               scenario (--scenario steady | blackout |
                               contended) with per-server and per-GPU lanes
                               and can also write the telemetry timeline
                               JSON (--timeline)
report PATH [--timeline] [--watch] [--every S]
                               render a saved SystemReport JSON: alert
                               summary by default, ASCII timeline plots
                               (--timeline), or the per-window operator
                               table (--watch)
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

from repro.cloud import BATCHING_POLICIES
from repro.core.analysis import fractional_lower_bound, speedup_report
from repro.core.joint import SplitMode, Structure
from repro.core.plans import Schedule
from repro.experiments import (
    fig4,
    fig11,
    fig12,
    fig13,
    fig14,
    fig_cloud,
    fig_fleet,
    fig_serving,
    table1,
)
from repro.experiments.runner import SCHEMES, ExperimentEnv
from repro.fleet import ENGINE_CORES, PLACEMENT_POLICIES
from repro.fleet.config import SLO_SCENARIOS
from repro.nn.zoo import MODELS
from repro.serving.gateway import GATEWAY_SCHEMES
from repro.sim.pipeline import simulate_schedule
from repro.sim.trace import render_gantt

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joint DNN partition and scheduling (ICPP'21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available models")

    p = sub.add_parser("summary", help="per-layer summary of a model")
    p.add_argument("model", choices=sorted(MODELS))

    p = sub.add_parser("table", help="print a model's cost table")
    p.add_argument("model", choices=sorted(MODELS))
    p.add_argument("--mbps", type=float, default=5.85, help="uplink rate (Mbps)")

    p = sub.add_parser("plan", help="plan a job set with one scheme")
    p.add_argument("model", choices=sorted(MODELS))
    p.add_argument("-n", "--jobs", type=int, default=100)
    p.add_argument("--mbps", type=float, default=5.85)
    p.add_argument("--scheme", choices=SCHEMES + ["JPS-ratio"], default="JPS")
    p.add_argument(
        "--structure",
        choices=Structure.values(),
        default=Structure.AUTO.value,
        help="graph treatment for JPS (auto picks line vs frontier)",
    )
    p.add_argument(
        "--split",
        choices=SplitMode.values(),
        default=SplitMode.EXACT.value,
        help="two-type split rule at the crossing layer",
    )
    p.add_argument("--json", action="store_true", help="emit the schedule as JSON")
    p.add_argument("--gantt", action="store_true", help="draw the pipeline timeline")

    p = sub.add_parser("compare", help="all schemes side by side")
    p.add_argument("model", choices=sorted(MODELS))
    p.add_argument("-n", "--jobs", type=int, default=100)
    p.add_argument("--mbps", type=float, default=5.85)
    p.add_argument("--json", action="store_true", help="emit all schedules as JSON")

    p = sub.add_parser("serve", help="run the multi-client offload gateway")
    p.add_argument("--clients", type=int, default=3, help="number of Poisson clients")
    p.add_argument("--rate", type=float, default=2.0, help="per-client req/s")
    p.add_argument("--horizon", type=float, default=60.0, help="arrival window (s)")
    p.add_argument("--model", choices=sorted(MODELS), default="alexnet")
    p.add_argument("--mbps", type=float, default=8.0, help="initial uplink rate")
    p.add_argument(
        "--drop-mbps", type=float, default=4.0,
        help="uplink rate after the mid-run drop (== --mbps for a flat trace)",
    )
    p.add_argument(
        "--drop-at", type=float, default=None,
        help="when the rate drops (default: mid-horizon)",
    )
    p.add_argument(
        "--deadline", type=float, default=None,
        help="per-request relative deadline (s); expired requests are dropped",
    )
    p.add_argument(
        "--scheme", action="append", choices=list(GATEWAY_SCHEMES), default=None,
        help="scheme(s) to serve under (repeatable; default JPS, LO, CO)",
    )
    p.add_argument("--seed", type=int, default=None, help="workload seed")
    p.add_argument("--queue-depth", type=int, default=64, help="per-client queue bound")
    p.add_argument(
        "--json", metavar="PATH",
        help="write the full metrics report as JSON ('-' for stdout)",
    )
    p.add_argument(
        "--faults", action="store_true",
        help="run the blackout fault scenario: the resilience policy "
             "(degrade to local-only, probe, recover) vs no policy on the "
             "identical stream (see docs/robustness.md)",
    )
    p.add_argument(
        "--blackout-start", type=float, default=8.0,
        help="uplink blackout start (s; --faults only)",
    )
    p.add_argument(
        "--blackout-duration", type=float, default=2.0,
        help="uplink blackout length (s; --faults only)",
    )

    p = sub.add_parser("fleet", help="run an N-server fleet via run_system")
    p.add_argument("--servers", type=int, default=4, help="number of fleet servers")
    p.add_argument("--clients", type=int, default=32, help="number of Poisson clients")
    p.add_argument("--rate", type=float, default=3.0, help="per-client req/s")
    p.add_argument("--horizon", type=float, default=12.0, help="arrival window (s)")
    p.add_argument("--model", choices=sorted(MODELS), default="alexnet")
    p.add_argument("--mbps", type=float, default=8.0, help="per-server uplink rate")
    p.add_argument(
        "--deadline", type=float, default=1.0,
        help="per-request relative deadline (s); <= 0 disables deadlines",
    )
    p.add_argument(
        "--placement", choices=list(PLACEMENT_POLICIES), default="least_loaded",
        help="client->server placement policy",
    )
    p.add_argument("--scheme", choices=list(GATEWAY_SCHEMES), default="JPS")
    p.add_argument("--seed", type=int, default=None, help="workload seed")
    p.add_argument("--queue-depth", type=int, default=64, help="per-client queue bound")
    p.add_argument(
        "--compare-single", action="store_true",
        help="also serve the identical stream on one server and report the "
             "within-deadline gain of the fleet",
    )
    p.add_argument(
        "--json", metavar="PATH",
        help="write the SystemReport as JSON ('-' for stdout)",
    )
    p.add_argument(
        "--cloud-gpus", type=int, default=0,
        help="share K hold-and-batch cloud GPUs across the fleet "
             "(0 = per-server private cloud, the default)",
    )
    p.add_argument(
        "--max-batch", type=int, default=8,
        help="GPU batch-size cap (with --cloud-gpus)",
    )
    p.add_argument(
        "--max-wait", type=float, default=0.02,
        help="hold-and-batch wait window in seconds (with --cloud-gpus)",
    )
    p.add_argument(
        "--cloud-policy", choices=list(BATCHING_POLICIES), default="batch",
        help="GPU dispatch policy (with --cloud-gpus)",
    )
    p.add_argument(
        "--telemetry", action="store_true",
        help="record windowed time-series into the report's timeline section",
    )
    p.add_argument(
        "--slo", action="store_true",
        help="evaluate the default burn-rate SLOs (implies --telemetry)",
    )
    p.add_argument(
        "--watch", action="store_true",
        help="print the per-window operator table after the run "
             "(implies --telemetry)",
    )
    p.add_argument(
        "--core", choices=list(ENGINE_CORES), default="fast",
        help="event core: the SoA fast engine (default) or the heap "
             "parity oracle — reports are byte-identical either way",
    )

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument(
        "name",
        choices=[
            "fig4", "fig11", "fig12", "fig13", "fig14", "table1", "serving",
            "fleet", "cloud",
        ],
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for grid experiments (fig12/fig13/table1)",
    )

    p = sub.add_parser("dot", help="Graphviz DOT of a model, JPS cut highlighted")
    p.add_argument("model", choices=sorted(MODELS))
    p.add_argument("--mbps", type=float, default=5.85)

    p = sub.add_parser("energy", help="energy-latency frontier of a model")
    p.add_argument("model", choices=sorted(MODELS))
    p.add_argument("--mbps", type=float, default=5.85)
    p.add_argument("--radio", choices=["wifi", "cellular"], default="wifi")

    p = sub.add_parser(
        "campaign", help="run every experiment, save JSON, optionally diff"
    )
    p.add_argument("output", help="path for the campaign JSON")
    p.add_argument("--quick", action="store_true", help="small n / short sweeps")
    p.add_argument("--compare", help="previous campaign JSON to diff against")
    p.add_argument("--tolerance", type=float, default=0.05)
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the planning grids (default: serial)",
    )

    p = sub.add_parser(
        "trace", help="run a target under the tracer, export Chrome trace JSON"
    )
    p.add_argument(
        "target",
        choices=["serving", "experiment", "fleet"],
        help="serving: the default gateway scenario; experiment: a scheme "
             "grid; fleet: an SLO acceptance scenario with per-server and "
             "per-GPU lanes",
    )
    p.add_argument(
        "--out", default="trace.json",
        help="Chrome trace-event JSON path (load in ui.perfetto.dev)",
    )
    p.add_argument(
        "--prom", metavar="PATH", default=None,
        help="also write the Prometheus exposition "
             "('-' for stdout; serving and fleet targets)",
    )
    p.add_argument(
        "--seed", type=int, default=None, help="workload seed (serving, fleet)"
    )
    p.add_argument(
        "--scenario", choices=list(SLO_SCENARIOS), default="blackout",
        help="which SLO acceptance scenario the fleet target runs",
    )
    p.add_argument(
        "--timeline", metavar="PATH", default=None,
        help="also write the telemetry timeline + alerts JSON "
             "('-' for stdout; fleet only)",
    )

    p = sub.add_parser(
        "report", help="render a saved SystemReport JSON (alerts, timeline)"
    )
    p.add_argument("path", help="SystemReport JSON written by 'repro fleet --json'")
    p.add_argument(
        "--timeline", action="store_true",
        help="ASCII plots of the windowed telemetry series",
    )
    p.add_argument(
        "--watch", action="store_true",
        help="the per-window operator table instead of plots",
    )
    p.add_argument(
        "--every", type=float, default=1.0,
        help="watch-table window width in seconds",
    )
    return parser


def _print_schedule(schedule: Schedule, n: int) -> None:
    print(f"scheme        : {schedule.method}")
    print(f"makespan      : {schedule.makespan:.3f} s")
    print(f"avg latency   : {schedule.makespan / n * 1e3:.1f} ms/job")
    histogram = schedule.cut_histogram()
    labels = {p.cut_position: p.cut_label for p in schedule.jobs}
    for position, count in histogram.items():
        print(f"  cut {labels[position]:<36s} x {count}")
    if "l_star" in schedule.metadata:
        print(f"l* = {schedule.metadata['l_star']}, "
              f"split = {schedule.metadata.get('n_a')}/{schedule.metadata.get('n_b')}")


def _print_alerts(alerts: dict) -> None:
    """One line per SLO alert, plus the fired/cleared totals."""
    print(
        f"slo alerts: {alerts['fired']} fired, {alerts['cleared']} cleared, "
        f"{alerts['active_at_end']} active at end"
    )
    for block in alerts.get("slos", []):
        name = block["slo"]["name"]
        for alert in block.get("alerts", []):
            cleared = alert.get("cleared_at")
            until = f"cleared {cleared:.2f}s" if cleared is not None else "active"
            print(
                f"  {name}: fired {alert['fired_at']:.2f}s ({until}, "
                f"burn {alert['burn_rate']:.2f}x over {alert['events']} events)"
            )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    env = ExperimentEnv()

    if args.command == "models":
        print(f"{'name':<16s} {'layers':>6s} {'GFLOPs':>8s} {'params(M)':>10s} {'structure':>10s}")
        for name in sorted(MODELS):
            net = env.network(name)
            structure = "line" if env.treats_as_line(name) else "general"
            print(f"{name:<16s} {net.num_layers:>6d} {net.total_flops / 1e9:>8.2f} "
                  f"{net.total_params / 1e6:>10.2f} {structure:>10s}")
        return 0

    if args.command == "summary":
        print(env.network(args.model).summary())
        return 0

    if args.command == "table":
        table = env.cost_table(args.model, args.mbps)
        print(f"{args.model} @ {args.mbps:g} Mbps — {table.k} cut positions")
        print(f"{'position':<40s} {'f (ms)':>9s} {'g (ms)':>9s} {'cloud rest (ms)':>16s}")
        for i, position in enumerate(table.positions):
            print(f"{position:<40s} {table.f[i] * 1e3:>9.1f} {table.g[i] * 1e3:>9.1f} "
                  f"{table.cloud_rest(i) * 1e3:>16.2f}")
        return 0

    if args.command == "plan":
        from repro import api

        scheme = args.scheme
        split = args.split
        if scheme == "JPS-ratio":        # legacy spelling of --scheme JPS --split ratio
            scheme, split = "JPS", SplitMode.RATIO.value
        schedule = api.plan(
            args.model,
            n=args.jobs,
            bandwidth=args.mbps,
            scheme=scheme,
            structure=args.structure,
            split=split,
        )
        if args.json:
            print(json.dumps(schedule.to_dict(), indent=2, sort_keys=True))
            return 0
        _print_schedule(schedule, args.jobs)
        if args.gantt:
            slice_ = Schedule(
                jobs=schedule.jobs[: min(8, len(schedule.jobs))],
                makespan=0.0,
                method=schedule.method,
            )
            print()
            print(render_gantt(simulate_schedule(slice_)))
        return 0

    if args.command == "compare":
        table = env.cost_table(args.model, args.mbps)
        schedules = {
            scheme: env.run_scheme(args.model, args.mbps, args.jobs, scheme)
            for scheme in SCHEMES
        }
        bound = fractional_lower_bound(table, args.jobs)
        if args.json:
            document = {
                "model": args.model,
                "mbps": args.mbps,
                "n": args.jobs,
                "lp_lower_bound": bound,
                "schedules": {s: sched.to_dict() for s, sched in schedules.items()},
            }
            print(json.dumps(document, indent=2, sort_keys=True))
            return 0
        print(f"{args.model} @ {args.mbps:g} Mbps, {args.jobs} jobs")
        print(f"{'scheme':<6s} {'makespan (s)':>12s} {'ms/job':>8s}")
        for scheme, schedule in schedules.items():
            print(f"{scheme:<6s} {schedule.makespan:>12.2f} "
                  f"{schedule.makespan / args.jobs * 1e3:>8.1f}")
        print(f"{'LP-LB':<6s} {bound:>12.2f} {bound / args.jobs * 1e3:>8.1f}")
        reductions = speedup_report(schedules)
        print("reduction vs LO: "
              + ", ".join(f"{k} {v:.1f}%" for k, v in reductions.items()))
        return 0

    if args.command == "dot":
        from repro.dag.metrics import to_dot

        table = env.cost_table(args.model, args.mbps)
        schedule = env.run_scheme(args.model, args.mbps, 10, "JPS")
        mobile_nodes = next(
            (p.mobile_nodes for p in schedule.jobs if p.mobile_nodes), None
        )
        if mobile_nodes is None and table.graph is not None:
            mobile_nodes = table.mobile_nodes_at(schedule.jobs[0].cut_position)
        graph = env.network(args.model).graph
        print(to_dot(graph, mobile_nodes=mobile_nodes or ()))
        return 0

    if args.command == "energy":
        from repro.profiling.energy import (
            CELLULAR_POWER,
            WIFI_POWER,
            energy_latency_frontier,
        )

        power = WIFI_POWER if args.radio == "wifi" else CELLULAR_POWER
        table = env.cost_table(args.model, args.mbps)
        frontier = energy_latency_frontier(table, power)
        print(f"{args.model} @ {args.mbps:g} Mbps, {power.name} radio — "
              f"{len(frontier)} Pareto points of {table.k} cuts")
        for point in frontier:
            print(f"  {point.label:<40s} {point.per_job_latency * 1e3:8.1f} ms "
                  f"{point.per_job_energy:7.2f} J")
        return 0

    if args.command == "serve" and args.faults:
        from pathlib import Path

        from repro.faults import default_fault_scenario, run_fault_scenario
        from repro.utils.rng import DEFAULT_SEED

        config = default_fault_scenario(
            clients=args.clients,
            rate=args.rate,
            horizon=args.horizon,
            model=args.model,
            seed=args.seed if args.seed is not None else DEFAULT_SEED,
            blackout_start=args.blackout_start,
            blackout_duration=args.blackout_duration,
            deadline=args.deadline if args.deadline is not None else 1.0,
            mbps=args.mbps,
        )
        with warnings.catch_warnings():
            # the CLI keeps the legacy report shape on purpose
            warnings.simplefilter("ignore", DeprecationWarning)
            report = run_fault_scenario(config)
        if args.json == "-":
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        comparison = report["comparison"]
        deadline = config.clients[0].deadline
        print(
            f"{args.model}: {args.clients} clients x {config.clients[0].rate:g} "
            f"req/s over {args.horizon:g}s, blackout "
            f"{args.blackout_start:g}s +{args.blackout_duration:g}s, "
            f"deadline {deadline:g}s ({report['arrivals']} arrivals)"
        )
        print(f"{'side':<10s} {'in-deadline':>12s} {'completed':>10s} {'dropped':>8s}")
        for side in ("policy", "no_policy"):
            data = report[side]
            print(
                f"{side:<10s} {data['within_deadline']:>12d} "
                f"{data['completed']:>10d} "
                f"{data['report']['counters'].get('dropped', 0):>8d}"
            )
        violations = len(report["policy"]["violations"]) + len(
            report["no_policy"]["violations"]
        )
        print(
            f"degradations {comparison['degradations']}, "
            f"recovery replans {comparison['recovery_replans']}, "
            f"within-deadline gain {comparison['within_deadline_gain']:+d}, "
            f"accounting violations {violations}"
        )
        if args.json:
            Path(args.json).write_text(json.dumps(report, indent=2, sort_keys=True))
            print(f"fault scenario report written to {args.json}")
        return 0 if violations == 0 else 1

    if args.command == "serve":
        import dataclasses

        from repro.serving import default_scenario, run_scenario

        schemes = (
            tuple(dict.fromkeys(args.scheme)) if args.scheme else ("JPS", "LO", "CO")
        )
        config = default_scenario(
            clients=args.clients,
            rate=args.rate,
            horizon=args.horizon,
            model=args.model,
            drop_at=args.drop_at,
            mbps_before=args.mbps,
            mbps_after=args.drop_mbps,
            deadline=args.deadline,
            schemes=schemes,
        )
        if args.seed is not None:
            config = dataclasses.replace(config, seed=args.seed)
        config = dataclasses.replace(config, max_queue_depth=args.queue_depth)
        with warnings.catch_warnings():
            # the CLI keeps the legacy per-scheme report shape on purpose
            warnings.simplefilter("ignore", DeprecationWarning)
            report = run_scenario(config)
        if args.json == "-":
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        print(
            f"{args.model}: {args.clients} clients x {args.rate:g} req/s over "
            f"{args.horizon:g}s, uplink {args.mbps:g} -> {args.drop_mbps:g} Mbps "
            f"({report['arrivals']} arrivals, {report['offered_load_rps']:.2f} req/s)"
        )
        print(
            f"{'scheme':<6s} {'served':>7s} {'dropped':>8s} {'p50':>8s} {'p95':>8s} "
            f"{'p99':>8s} {'thr/s':>7s} {'replans':>8s}"
        )
        for scheme, data in report["schemes"].items():
            counters = data["counters"]
            latency = data["histograms"]["latency"]
            print(
                f"{scheme:<6s} {counters.get('served', 0):>7d} "
                f"{counters.get('dropped', 0):>8d} {latency['p50']:>7.2f}s "
                f"{latency['p95']:>7.2f}s {latency['p99']:>7.2f}s "
                f"{data['throughput_rps']:>7.2f} {len(data['replans']):>8d}"
            )
        if args.json:
            from pathlib import Path

            Path(args.json).write_text(json.dumps(report, indent=2, sort_keys=True))
            print(f"metrics report written to {args.json}")
        return 0

    if args.command == "fleet":
        from pathlib import Path

        import dataclasses

        from repro.cloud import CloudConfig
        from repro.engine import PlanningEngine
        from repro.fleet import default_fleet, run_system
        from repro.utils.rng import DEFAULT_SEED

        seed = args.seed if args.seed is not None else DEFAULT_SEED
        deadline = args.deadline if args.deadline > 0 else None
        planner = PlanningEngine()
        want_telemetry = args.telemetry or args.slo or args.watch

        def _config(servers: int):
            config = default_fleet(
                servers=servers,
                clients=args.clients,
                rate=args.rate,
                horizon=args.horizon,
                model=args.model,
                mbps=args.mbps,
                deadline=deadline,
                seed=seed,
                placement=args.placement,
                scheme=args.scheme,
                max_queue_depth=args.queue_depth,
            )
            if args.cloud_gpus > 0:
                config = dataclasses.replace(
                    config,
                    cloud=CloudConfig(
                        gpus=args.cloud_gpus,
                        max_batch=args.max_batch,
                        max_wait=args.max_wait,
                        policy=args.cloud_policy,
                    ),
                )
            if want_telemetry:
                from repro.fleet.config import with_slo_telemetry

                # --slo attaches the default burn-rate objectives;
                # --telemetry/--watch alone record the timeline only
                config = with_slo_telemetry(
                    config, slos=None if args.slo else ()
                )
            return config

        report = run_system(_config(args.servers), planner=planner, core=args.core)
        document = report.as_dict()
        violations = len(report.violations) + len(report.clock_violations)
        if args.compare_single and args.servers != 1:
            single = run_system(_config(1), planner=planner, core=args.core)
            violations += len(single.violations) + len(single.clock_violations)
            document["single_server"] = single.as_dict()["fleet"]
            document["fleet_gain_within_deadline"] = (
                report.within_deadline - single.within_deadline
            )
        if args.json == "-":
            print(json.dumps(document, indent=2, sort_keys=True))
            return 0 if violations == 0 else 1
        print(
            f"{args.model}: {args.servers} servers ({args.scheme}, "
            f"{args.placement}), {args.clients} clients x {args.rate:g} req/s "
            f"over {args.horizon:g}s ({report.arrivals} arrivals, "
            f"{report.offered_load_rps:.2f} req/s offered)"
        )
        print(
            f"{'server':<10s} {'arrived':>8s} {'served':>7s} {'within':>7s} "
            f"{'dropped':>8s} {'pending':>8s} {'replans':>8s}"
        )
        for name, block in report.servers.items():
            counters = block["report"]["counters"]
            print(
                f"{name:<10s} {counters.get('arrived', 0):>8d} "
                f"{counters.get('served', 0):>7d} {block['within_deadline']:>7d} "
                f"{counters.get('dropped', 0):>8d} "
                f"{block['report']['pending']:>8d} "
                f"{len(block['report']['replans']):>8d}"
            )
        fleet = report.fleet
        print(
            f"fleet: served {fleet['served']}/{fleet['arrivals']}, "
            f"within deadline {fleet['within_deadline']}, "
            f"rejected at fleet {fleet['rejected_fleet']}, "
            f"migrations {len(fleet['placement']['migrations'])}, "
            f"violations {violations}"
        )
        print(
            f"latency p50/p95/p99: {fleet['latency']['p50']:.3f}s / "
            f"{fleet['latency']['p95']:.3f}s / {fleet['latency']['p99']:.3f}s, "
            f"sustained {fleet['sustained_rps']:.2f} req/s"
        )
        if "cloud" in fleet:
            batches = sum(gpu["batches"] for gpu in fleet["cloud"]["servers"])
            items = sum(
                gpu["batched_requests"] for gpu in fleet["cloud"]["servers"]
            )
            mean_batch = items / batches if batches else 0.0
            print(
                f"cloud: {fleet['cloud']['gpus']} GPU(s), policy "
                f"{fleet['cloud']['policy']} (max-batch "
                f"{fleet['cloud']['max_batch']}, max-wait "
                f"{fleet['cloud']['max_wait']:g}s), {batches} batches / "
                f"{items} requests, mean batch size {mean_batch:.2f}"
            )
        if args.compare_single and args.servers != 1:
            print(
                f"vs single server: within-deadline "
                f"{document['single_server']['within_deadline']} -> "
                f"{fleet['within_deadline']} "
                f"({document['fleet_gain_within_deadline']:+d})"
            )
        if report.alerts:
            _print_alerts(report.alerts)
        if args.watch and report.timeline:
            from repro.obs.render import watch_table

            print()
            print(watch_table(report.timeline, report.alerts))
        if args.json:
            Path(args.json).write_text(json.dumps(document, indent=2, sort_keys=True))
            print(f"system report written to {args.json}")
        return 0 if violations == 0 else 1

    if args.command == "campaign":
        from repro.experiments.campaign import (
            compare_campaigns,
            load_campaign,
            run_campaign,
            save_campaign,
        )

        document = run_campaign(env, quick=args.quick, jobs=args.jobs)
        path = save_campaign(document, args.output)
        print(f"campaign saved to {path}")
        if args.compare:
            problems = compare_campaigns(
                load_campaign(args.compare), document, rel_tolerance=args.tolerance
            )
            if problems:
                print(f"{len(problems)} regressions vs {args.compare}:")
                for problem in problems[:40]:
                    print(f"  {problem}")
                return 1
            print(f"no regressions vs {args.compare} (tolerance {args.tolerance:g})")
        return 0

    if args.command == "trace":
        import dataclasses
        from pathlib import Path

        from repro.obs import Tracer, exposition_from_snapshot, write_chrome_trace

        tracer = Tracer()
        exposition = None
        if args.timeline and args.target != "fleet":
            print("--timeline requires the fleet target", file=sys.stderr)
            return 2
        if args.target == "serving":
            from repro.serving import default_scenario, run_scenario

            config = default_scenario()
            if args.seed is not None:
                config = dataclasses.replace(config, seed=args.seed)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                report = run_scenario(config, tracer=tracer)
            # first scheme's report: gateway counters + engine cache gauges
            exposition = exposition_from_snapshot(
                report["schemes"][config.schemes[0]]
            )
        elif args.target == "fleet":
            from repro.fleet.config import slo_acceptance_scenario
            from repro.fleet.fleet import run_system

            config = slo_acceptance_scenario(args.scenario)
            if args.seed is not None:
                config = dataclasses.replace(
                    config,
                    workload=dataclasses.replace(
                        config.workload, seed=args.seed
                    ),
                )
            report = run_system(config, tracer=tracer)
            # the fleet registry snapshot rides inside the timeline
            exposition = exposition_from_snapshot(
                report.timeline.get("metrics", {})
            )
            print(
                f"{args.scenario}: served {report.served}/{report.arrivals}, "
                f"within deadline {report.within_deadline}, "
                f"ok {report.ok}"
            )
            if report.alerts:
                _print_alerts(report.alerts)
            if args.timeline:
                timeline_doc = json.dumps(
                    {
                        "scenario": args.scenario,
                        "timeline": report.timeline,
                        "alerts": report.alerts,
                    },
                    indent=2,
                    sort_keys=True,
                )
                if args.timeline == "-":
                    print(timeline_doc)
                else:
                    Path(args.timeline).write_text(timeline_doc)
                    print(f"timeline JSON written to {args.timeline}")
        else:
            if args.prom:
                print("--prom requires the serving or fleet target", file=sys.stderr)
                return 2
            env.tracer = tracer
            env.scheme_grid(["alexnet", "googlenet"], 10.0, 20)
        path = write_chrome_trace(args.out, tracer.spans, tracer.instants)
        print(
            f"{len(tracer.spans)} spans, {len(tracer.instants)} instant events "
            f"-> {path} (load in ui.perfetto.dev)"
        )
        if args.prom == "-":
            print(exposition, end="")
        elif args.prom:
            Path(args.prom).write_text(exposition)
            print(f"prometheus exposition written to {args.prom}")
        return 0

    if args.command == "report":
        from pathlib import Path

        from repro.obs.render import render_timeline, watch_table

        document = json.loads(Path(args.path).read_text())
        timeline = document.get("timeline") or {}
        alerts = document.get("alerts")
        if args.watch:
            print(watch_table(timeline, alerts, every=args.every))
            return 0
        if args.timeline:
            print(render_timeline(timeline))
            return 0
        fleet = document.get("fleet", {})
        if fleet:
            print(
                f"fleet: served {fleet.get('served', 0)}"
                f"/{fleet.get('arrivals', document.get('arrivals', 0))}, "
                f"within deadline {fleet.get('within_deadline', 0)}"
            )
        if alerts:
            _print_alerts(alerts)
        elif "alerts" not in document:
            print("(no SLOs configured; run 'repro fleet --slo --json PATH')")
        if not timeline:
            print("(no telemetry timeline; run 'repro fleet --telemetry --json PATH')")
        return 0

    if args.command == "experiment":
        harness = {
            "fig4": lambda: fig4.render(fig4.run(env)),
            "fig11": lambda: fig11.render(fig11.run(env)),
            "fig12": lambda: fig12.render(fig12.run(env, jobs=args.jobs)),
            "fig13": lambda: fig13.render(fig13.run(env, jobs=args.jobs)),
            "fig14": lambda: fig14.render(fig14.run(env, n=100)),
            "table1": lambda: table1.render(table1.run(env, jobs=args.jobs)),
            "serving": lambda: fig_serving.render(fig_serving.run()),
            "fleet": lambda: fig_fleet.render(fig_fleet.run()),
            "cloud": lambda: fig_cloud.render(fig_cloud.run()),
        }[args.name]
        print(harness())
        return 0

    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
