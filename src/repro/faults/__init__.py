"""Fault injection, resilience policies, and the differential oracle.

The package splits along an import boundary: the core modules here
(:mod:`~repro.faults.plan`, :mod:`~repro.faults.injector`,
:mod:`~repro.faults.policy`, :mod:`~repro.faults.oracle`,
:mod:`~repro.faults.invariants`) never import the serving stack, so
:mod:`repro.serving.gateway` can depend on them without a cycle. The
scenario helpers — which *do* drive gateways — live in
:mod:`repro.faults.scenario` and are re-exported lazily below.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.faults.invariants import MonotoneClockMonitor, accounting_violations
from repro.faults.oracle import (
    InstanceCheck,
    OracleResult,
    check_instance,
    exhaustive_optimal,
    random_line_table,
)
from repro.faults.plan import (
    BLACKOUT_BPS,
    Blackout,
    ClientOutage,
    CostMisestimation,
    FaultPlan,
    RateSpike,
    TransferCorruption,
)
from repro.faults.policy import ResiliencePolicy

__all__ = [
    "BLACKOUT_BPS",
    "Blackout",
    "ClientOutage",
    "CostMisestimation",
    "FaultInjector",
    "FaultPlan",
    "InstanceCheck",
    "MonotoneClockMonitor",
    "OracleResult",
    "RateSpike",
    "ResiliencePolicy",
    "TransferCorruption",
    "accounting_violations",
    "check_instance",
    "default_fault_scenario",
    "exhaustive_optimal",
    "random_line_table",
    "run_fault_scenario",
]

#: Names resolved lazily from :mod:`repro.faults.scenario` (PEP 562),
#: because that module imports the serving stack.
_SCENARIO_EXPORTS = frozenset({"default_fault_scenario", "run_fault_scenario"})


def __getattr__(name: str):
    if name in _SCENARIO_EXPORTS:
        from repro.faults import scenario

        return getattr(scenario, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _SCENARIO_EXPORTS)
