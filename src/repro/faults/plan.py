"""Fault plans: seeded, composable descriptions of what goes wrong.

A :class:`FaultPlan` is a declarative schedule of channel and client
faults — blackout/stall windows, bandwidth spikes, probabilistic
transfer corruption, client disconnect windows, cost-model
misestimation — that the serving stack executes deterministically under
its seed. The plan itself is pure data: timeline faults compose onto a
ground-truth :class:`~repro.net.timeline.BandwidthTimeline` via
:meth:`FaultPlan.apply_to_timeline`, and the runtime decisions (was
*this* transfer attempt corrupted?) are answered by a fresh
:class:`~repro.faults.injector.FaultInjector` per run, so replays with
the same seed are bit-identical and concurrent scheme comparisons never
share mutable fault state.

All random decision families follow the :func:`repro.utils.rng.stream_rng`
convention — one named stream per family — so toggling one fault kind
never shifts another kind's draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.timeline import BandwidthTimeline
from repro.utils.rng import DEFAULT_SEED
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
)

__all__ = [
    "BLACKOUT_BPS",
    "Blackout",
    "RateSpike",
    "TransferCorruption",
    "ClientOutage",
    "CostMisestimation",
    "FaultPlan",
]

#: Residual rate of a blacked-out uplink, in bits/s. Not zero — a
#: transfer that starts inside a blackout must *stall* (and resume when
#: the window ends), not divide by zero; at 1 mbit/1000 s the stall is
#: indistinguishable from a dead link on any realistic horizon.
BLACKOUT_BPS = 1e-3


@dataclass(frozen=True)
class Blackout:
    """Uplink blackout/stall window: the channel carries ~nothing.

    Transfers in flight at ``start`` stall until ``end`` and then resume
    at the base rate — exactly how a piecewise-constant rate trace prices
    a transfer crossing the window.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        require_non_negative(self.start, "start")
        if not self.end > self.start:
            raise ValueError(f"blackout end {self.end} must be > start {self.start}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RateSpike:
    """Multiplicative bandwidth window: ``factor`` > 1 spikes, < 1 sags."""

    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        require_non_negative(self.start, "start")
        if not self.end > self.start:
            raise ValueError(f"spike end {self.end} must be > start {self.start}")
        require_positive(self.factor, "factor")


@dataclass(frozen=True)
class TransferCorruption:
    """Each transfer attempt is corrupted (must retransmit) with
    probability ``probability``, inside ``[start, end)``.

    Decisions are drawn per ``(request, attempt)`` from a dedicated
    stream, so a retry's fate never depends on what other requests did.
    """

    probability: float
    start: float = 0.0
    end: float = float("inf")

    def __post_init__(self) -> None:
        require_in_range(self.probability, 0.0, 1.0, "probability")
        require_non_negative(self.start, "start")
        if not self.end > self.start:
            raise ValueError(f"corruption end {self.end} must be > start {self.start}")


@dataclass(frozen=True)
class ClientOutage:
    """One client's requests never reach the gateway on ``[start, end)``."""

    client_id: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.client_id:
            raise ValueError("client_id must be non-empty")
        require_non_negative(self.start, "start")
        if not self.end > self.start:
            raise ValueError(f"outage end {self.end} must be > start {self.start}")


@dataclass(frozen=True)
class CostMisestimation:
    """The planner's cost model is systematically wrong.

    Executed mobile compute is ``compute_scale`` times the planned
    value, uploaded payloads are ``payload_scale`` times the planned
    bytes, and ``jitter`` adds per-request log-normal noise (sigma) on
    top of both — the planner keeps planning with the clean numbers.
    """

    compute_scale: float = 1.0
    payload_scale: float = 1.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.compute_scale, "compute_scale")
        require_positive(self.payload_scale, "payload_scale")
        require_non_negative(self.jitter, "jitter")

    @property
    def is_noop(self) -> bool:
        return (
            self.compute_scale == 1.0
            and self.payload_scale == 1.0
            and self.jitter == 0.0
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, composable fault schedule for one serving run."""

    seed: int = DEFAULT_SEED
    blackouts: tuple[Blackout, ...] = ()
    spikes: tuple[RateSpike, ...] = ()
    corruption: TransferCorruption | None = None
    outages: tuple[ClientOutage, ...] = ()
    misestimation: CostMisestimation | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # tolerate lists from JSON-ish construction
        object.__setattr__(self, "blackouts", tuple(self.blackouts))
        object.__setattr__(self, "spikes", tuple(self.spikes))
        object.__setattr__(self, "outages", tuple(self.outages))

    # ------------------------------------------------------------------
    def apply_to_timeline(self, timeline: BandwidthTimeline) -> BandwidthTimeline:
        """The ground-truth trace with spikes and blackouts overlaid.

        Spikes first (multiplicative on the base rate), blackouts last —
        a blackout always wins over a concurrent spike.
        """
        faulted = timeline.with_rate_windows(
            [(s.start, s.end, s.factor) for s in self.spikes], multiply=True
        )
        return faulted.with_rate_windows(
            [(b.start, b.end, BLACKOUT_BPS) for b in self.blackouts]
        )

    def injector(self) -> "FaultInjector":
        """A fresh runtime injector for one gateway run."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self)

    # ------------------------------------------------------------------
    def blackout_at(self, t: float) -> bool:
        return any(b.start <= t < b.end for b in self.blackouts)

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.blackouts
            and not self.spikes
            and not self.outages
            and (self.corruption is None or self.corruption.probability == 0.0)
            and (self.misestimation is None or self.misestimation.is_noop)
        )

    def as_dict(self) -> dict:
        """JSON-safe echo, embedded in fault-scenario reports."""
        out: dict = {"seed": self.seed}
        if self.blackouts:
            out["blackouts"] = [[b.start, b.end] for b in self.blackouts]
        if self.spikes:
            out["spikes"] = [[s.start, s.end, s.factor] for s in self.spikes]
        if self.corruption is not None:
            out["corruption"] = {
                "probability": self.corruption.probability,
                "start": self.corruption.start,
                "end": self.corruption.end,
            }
        if self.outages:
            out["outages"] = [[o.client_id, o.start, o.end] for o in self.outages]
        if self.misestimation is not None:
            out["misestimation"] = {
                "compute_scale": self.misestimation.compute_scale,
                "payload_scale": self.misestimation.payload_scale,
                "jitter": self.misestimation.jitter,
            }
        if self.metadata:
            out["metadata"] = dict(self.metadata)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`as_dict` (the ``SystemConfig`` wire format)."""
        corruption = data.get("corruption")
        misestimation = data.get("misestimation")
        return cls(
            seed=data.get("seed", DEFAULT_SEED),
            blackouts=tuple(Blackout(*b) for b in data.get("blackouts", ())),
            spikes=tuple(RateSpike(*s) for s in data.get("spikes", ())),
            corruption=None if corruption is None else TransferCorruption(**corruption),
            outages=tuple(ClientOutage(*o) for o in data.get("outages", ())),
            misestimation=(
                None if misestimation is None else CostMisestimation(**misestimation)
            ),
            metadata=dict(data.get("metadata", {})),
        )
