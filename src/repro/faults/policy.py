"""Gateway resilience policies: how the serving layer answers faults.

A :class:`ResiliencePolicy` bundles the three responses the gateway can
mount against a misbehaving uplink, all strictly opt-in (a gateway
constructed without one behaves byte-identically to the policy-free
code path):

* **bounded retry with exponential backoff** — a failed transfer
  attempt (corrupt frame, per-attempt timeout) is retried up to
  ``max_retries`` times, attempt ``i`` waiting
  ``backoff_base * backoff_factor**i`` seconds first;
* **per-attempt transfer timeouts** — ``transfer_timeout`` caps how
  long one upload attempt may hold the uplink before it is abandoned
  (the stalled-in-blackout case the estimator alone cannot see, because
  no observation ever completes);
* **graceful degradation to local-only** — after
  ``degrade_after_failures`` consecutive failed attempts the gateway
  enters degraded mode: requests execute fully on the device (the LO
  cut) while small recovery probes test the uplink every
  ``probe_interval`` seconds; the first probe that returns within its
  timeout triggers a recovery re-plan and normal offloading resumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["ResiliencePolicy"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Opt-in fault responses for :class:`~repro.serving.gateway.Gateway`."""

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    transfer_timeout: float | None = 1.0
    degrade_after_failures: int = 2
    local_fallback: bool = True
    probe_interval: float = 0.5
    probe_bytes: float = 16 * 1024.0
    probe_timeout: float | None = None

    def __post_init__(self) -> None:
        require_non_negative(self.max_retries, "max_retries")
        require_non_negative(self.backoff_base, "backoff_base")
        require_positive(self.backoff_factor, "backoff_factor")
        if self.transfer_timeout is not None:
            require_positive(self.transfer_timeout, "transfer_timeout")
        require_positive(self.degrade_after_failures, "degrade_after_failures")
        require_positive(self.probe_interval, "probe_interval")
        require_positive(self.probe_bytes, "probe_bytes")
        if self.probe_timeout is not None:
            require_positive(self.probe_timeout, "probe_timeout")

    def backoff(self, attempt: int) -> float:
        """Wait before retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor**attempt

    @property
    def effective_probe_timeout(self) -> float | None:
        """Probe timeout, defaulting to the transfer timeout."""
        return (
            self.probe_timeout if self.probe_timeout is not None
            else self.transfer_timeout
        )

    def as_dict(self) -> dict:
        """JSON-safe echo for fault-scenario reports."""
        return {
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "transfer_timeout": self.transfer_timeout,
            "degrade_after_failures": self.degrade_after_failures,
            "local_fallback": self.local_fallback,
            "probe_interval": self.probe_interval,
            "probe_bytes": self.probe_bytes,
            "probe_timeout": self.probe_timeout,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResiliencePolicy":
        """Inverse of :meth:`as_dict` (the ``SystemConfig`` wire format)."""
        return cls(**data)
