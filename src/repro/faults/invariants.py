"""Accounting and clock invariants that must survive every fault plan.

The gateway's guarantees under faults are deliberately boring: whatever
the channel does, (1) every arrived request reaches exactly one
terminal state — ``served + degraded + dropped + pending == arrived`` —
(2) queue depths and wait times never go negative, and (3) the event
engine's virtual clock never runs backwards. :func:`accounting_violations`
audits (1) and (2) from a gateway report; :class:`MonotoneClockMonitor`
hooks :attr:`repro.sim.engine.Engine.on_advance` to watch (3) live.
Both return violation strings instead of raising, so a test can assert
``== []`` and show every broken invariant at once.
"""

from __future__ import annotations

__all__ = ["accounting_violations", "MonotoneClockMonitor"]

#: Drop sub-counters that must tile the ``dropped`` total when present.
DROP_REASONS = (
    "dropped_queue_full",
    "dropped_deadline",
    "dropped_disconnected",
    "dropped_transfer_failed",
)


def accounting_violations(report: dict) -> list[str]:
    """Audit one gateway report; returns human-readable violations.

    ``report`` is the dict :meth:`repro.serving.gateway.Gateway.report`
    produces. An empty list means every accounting invariant held.
    """
    violations: list[str] = []
    counters = report.get("counters", {})
    arrived = counters.get("arrived", 0)
    served = counters.get("served", 0)
    degraded = counters.get("degraded", 0)
    dropped = counters.get("dropped", 0)
    pending = report.get("pending", 0)
    terminal = served + degraded + dropped + pending
    if terminal != arrived:
        violations.append(
            f"served+degraded+dropped+pending == {terminal} != arrived {arrived}"
        )
    reasons = sum(counters.get(reason, 0) for reason in DROP_REASONS)
    if any(reason in counters for reason in DROP_REASONS) and reasons != dropped:
        violations.append(
            f"drop reasons sum to {reasons} but dropped == {dropped}"
        )
    admitted = counters.get("admitted", 0)
    rejected = counters.get("dropped_queue_full", 0) + counters.get(
        "dropped_disconnected", 0
    )
    if admitted + rejected != arrived:
        violations.append(
            f"admitted {admitted} + rejected-at-submit {rejected} != arrived {arrived}"
        )
    if pending < 0:
        violations.append(f"pending {pending} is negative")
    for name, histogram in report.get("histograms", {}).items():
        if histogram.get("count", 0) and histogram.get("min", 0.0) < 0.0:
            violations.append(f"histogram {name} observed {histogram['min']} < 0")
    return violations


class MonotoneClockMonitor:
    """Live watcher asserting the DES clock is non-decreasing.

    Attach to an engine before the run; read :attr:`violations` after.
    Chains with any observer already installed on the engine.
    """

    def __init__(self, tolerance: float = 1e-12) -> None:
        self.tolerance = tolerance
        self.violations: list[str] = []
        self.events = 0
        self._last = float("-inf")

    def attach(self, engine) -> "MonotoneClockMonitor":
        previous = engine.on_advance

        def observe(now: float) -> None:
            if previous is not None:
                previous(now)
            self.events += 1
            if now < self._last - self.tolerance:
                self.violations.append(
                    f"virtual time moved backwards: {now} after {self._last}"
                )
            self._last = max(self._last, now)

        engine.on_advance = observe
        return self
