"""Runtime fault oracle: the gateway's view of an executing fault plan.

A :class:`FaultInjector` answers the point questions the serving stack
asks while a run executes — *is this client reachable right now?*, *did
this transfer attempt arrive intact?*, *how long does this planned
compute stage actually take?* — and nothing else. Every answer is a
pure function of ``(plan.seed, question)``: corruption draws come from
a per-``(request, attempt)`` stream and misestimation noise from a
per-request stream (:func:`repro.utils.rng.stream_rng`), so answers do
not depend on the order the gateway happens to ask in. Two runs over
the same request stream with the same plan see byte-identical faults
even when their retry histories differ.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.utils.rng import stream_rng

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic per-run executor of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.corruptions = 0
        self.disconnect_drops = 0
        self._compute_factors: dict[int, float] = {}
        self._payload_factors: dict[int, float] = {}

    # ------------------------------------------------------------------
    # channel
    # ------------------------------------------------------------------
    def corrupted(self, request_id: int, attempt: int, at: float) -> bool:
        """Was transfer ``attempt`` (0-based) of this request corrupted?"""
        spec = self.plan.corruption
        if spec is None or spec.probability == 0.0:
            return False
        if not spec.start <= at < spec.end:
            return False
        draw = stream_rng(
            self.plan.seed, f"faults/corruption/{request_id}/{attempt}"
        ).random()
        hit = bool(draw < spec.probability)
        if hit:
            self.corruptions += 1
        return hit

    def blackout_at(self, t: float) -> bool:
        return self.plan.blackout_at(t)

    # ------------------------------------------------------------------
    # clients
    # ------------------------------------------------------------------
    def disconnected(self, client_id: str, at: float) -> bool:
        """True when the client's uplink to the gateway is down at ``at``."""
        down = any(
            o.client_id == client_id and o.start <= at < o.end
            for o in self.plan.outages
        )
        if down:
            self.disconnect_drops += 1
        return down

    # ------------------------------------------------------------------
    # cost-model misestimation
    # ------------------------------------------------------------------
    def _factor(
        self, cache: dict[int, float], kind: str, request_id: int, scale: float
    ) -> float:
        spec = self.plan.misestimation
        if request_id not in cache:
            jitter = spec.jitter if spec else 0.0
            noise = (
                stream_rng(
                    self.plan.seed, f"faults/misestimation/{kind}/{request_id}"
                ).lognormal(0.0, jitter)
                if jitter
                else 1.0
            )
            cache[request_id] = scale * noise
        return cache[request_id]

    def compute_factor(self, request_id: int) -> float:
        """Executed / planned ratio for this request's mobile compute."""
        spec = self.plan.misestimation
        if spec is None or spec.is_noop:
            return 1.0
        return self._factor(
            self._compute_factors, "compute", request_id, spec.compute_scale
        )

    def payload_factor(self, request_id: int) -> float:
        """Executed / planned ratio for this request's upload bytes."""
        spec = self.plan.misestimation
        if spec is None or spec.is_noop:
            return 1.0
        return self._factor(
            self._payload_factors, "payload", request_id, spec.payload_scale
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe injector tally for the run report."""
        return {
            "plan": self.plan.as_dict(),
            "corruptions": self.corruptions,
            "disconnect_drops": self.disconnect_drops,
        }
