"""Differential correctness oracle: exhaustive planning for small n.

The planning stack carries three layers of cleverness — Theorem 5.3's
two-cut structure, Johnson's rule, and the vectorized kernels — each of
which could silently drift. This module is the machinery that proves
they did not: a brute-force planner that enumerates **every** cut
assignment times **every** execution order (no Johnson, no two-cut
assumption, no shared code with the schemes under test) and the
differential checks that cross-examine :func:`repro.core.joint.jps_line`
and :func:`~repro.core.joint.jps_line_fast` against it.

The exhaustive makespan uses the independent critical-path identity for
a 2-machine permutation flow shop::

    C_max = max_j ( sum_{i<=j} f_i  +  sum_{i>=j} g_i )

evaluated as one vectorized pass per assignment over the whole
permutation batch — deliberately *not* the recurrence the production
kernels use, so the oracle cannot inherit their bugs.

``tests/oracles/`` hosts the harness built on top: seeded random
instances (dyadic-grid stage lengths, so scalar/vectorized parity is
bit-exact), a committed zero-mismatch corpus, and a ``--fuzz-rounds``
pytest knob for nightly-strength sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement, permutations

import numpy as np

from repro.core.joint import jps_line, jps_line_fast
from repro.core.scheduling import best_order_brute_force
from repro.profiling.latency import CostTable
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive

__all__ = [
    "OracleResult",
    "InstanceCheck",
    "exhaustive_optimal",
    "check_instance",
    "random_line_table",
]

#: Absolute tolerance for makespan comparisons. The random instances
#: live on a dyadic grid, so true equalities are exact and anything
#: beyond this is a real disagreement.
TOLERANCE = 1e-9


@dataclass(frozen=True)
class OracleResult:
    """The exhaustive optimum over assignments x orders."""

    makespan: float
    assignment: tuple[int, ...]       # cut position per job, in execution order
    evaluations: int                  # orders examined across all assignments


def _order_makespans(stage_rows: np.ndarray) -> np.ndarray:
    """Critical-path makespans of a (P, n, 2) batch of stage sequences."""
    f = stage_rows[:, :, 0]
    g = stage_rows[:, :, 1]
    cum_f = np.cumsum(f, axis=1)
    suffix_g = np.cumsum(g[:, ::-1], axis=1)[:, ::-1]
    return (cum_f + suffix_g).max(axis=1)


def exhaustive_optimal(
    table: CostTable,
    n: int,
    positions: "list[int] | None" = None,
    max_evaluations: int = 5_000_000,
) -> OracleResult:
    """Minimum makespan over all cut assignments x all execution orders.

    Job identity does not matter, so assignments reduce to multisets of
    cut positions; orders do matter to an oracle that refuses to trust
    Johnson's rule, so every distinct permutation of every multiset is
    priced. Factorial times combinatorial — keep ``n`` small (<= 6) and
    the position set narrow (<= 8); ``max_evaluations`` guards against
    accidental blow-ups.
    """
    require_positive(n, "n")
    candidates = list(range(table.k)) if positions is None else sorted(set(positions))
    if not candidates:
        raise ValueError("no candidate positions to search")
    stage_of = {p: table.stage_lengths(p) for p in candidates}

    best = float("inf")
    best_assignment: tuple[int, ...] | None = None
    evaluations = 0
    for combo in combinations_with_replacement(candidates, n):
        orders = sorted(set(permutations(combo)))
        evaluations += len(orders)
        if evaluations > max_evaluations:
            raise ValueError(
                f"exhaustive search exceeded {max_evaluations} order evaluations "
                f"(n={n}, positions={len(candidates)}); shrink the instance"
            )
        rows = np.array(
            [[stage_of[p] for p in order] for order in orders], dtype=float
        )
        makespans = _order_makespans(rows)
        index = int(np.argmin(makespans))
        if makespans[index] < best - TOLERANCE:
            best = float(makespans[index])
            best_assignment = orders[index]
    assert best_assignment is not None
    return OracleResult(
        makespan=best, assignment=best_assignment, evaluations=evaluations
    )


@dataclass(frozen=True)
class InstanceCheck:
    """One instance's differential verdict."""

    n: int
    k: int
    jps_makespan: float
    jps_fast_makespan: float
    oracle_makespan: float
    gap: float                        # jps - oracle, >= 0 when all is well
    mismatches: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def check_instance(table: CostTable, n: int) -> InstanceCheck:
    """Cross-examine JPS (scalar and fast) against the exhaustive oracle.

    A *mismatch* is a genuine correctness violation, not a gap: the two
    JPS implementations disagreeing with each other, JPS claiming a
    makespan below the exhaustive optimum (impossible if both are
    right), or Johnson's order being beaten on JPS's own cut choice. A
    positive ``gap`` alone is legitimate — end effects let the optimum
    beat the two-cut structure on some instances (cf. Fig. 11).
    """
    scalar = jps_line(table, n)
    fast = jps_line_fast(table, n)
    oracle = exhaustive_optimal(table, n)
    mismatches: list[str] = []
    if scalar.makespan != fast.makespan or [j.stages for j in scalar.jobs] != [
        j.stages for j in fast.jobs
    ]:
        mismatches.append(
            f"jps_line_fast diverged from jps_line: "
            f"{fast.makespan!r} vs {scalar.makespan!r}"
        )
    if scalar.makespan < oracle.makespan - TOLERANCE:
        mismatches.append(
            f"jps beat the exhaustive optimum ({scalar.makespan!r} < "
            f"{oracle.makespan!r}) — the oracle or the makespan math is broken"
        )
    johnson_best = best_order_brute_force([j.stages for j in scalar.jobs])
    if johnson_best < scalar.makespan - TOLERANCE:
        mismatches.append(
            f"Johnson order suboptimal for JPS's own assignment: "
            f"{johnson_best!r} < {scalar.makespan!r}"
        )
    return InstanceCheck(
        n=n,
        k=table.k,
        jps_makespan=scalar.makespan,
        jps_fast_makespan=fast.makespan,
        oracle_makespan=oracle.makespan,
        gap=scalar.makespan - oracle.makespan,
        mismatches=tuple(mismatches),
    )


def random_line_table(
    seed: "int | np.random.Generator", k: int, grid: int = 1024
) -> CostTable:
    """A random valid line cost table on a dyadic grid.

    ``f`` non-decreasing from 0, ``g`` non-increasing to 0 (the LO
    position exists, as on every real model), cloud identically 0 so the
    2-stage oracle and the planner price the same problem. All values
    are multiples of ``1/grid`` — exactly representable, so scalar and
    vectorized plans must agree bit-for-bit, not just approximately.
    """
    require_positive(k, "k")
    rng = make_rng(seed)
    f_steps = rng.integers(0, 257, size=k - 1) if k > 1 else np.empty(0, dtype=int)
    f = np.concatenate([[0.0], np.cumsum(f_steps)]) / grid
    g_raw = np.sort(rng.integers(1, 1025, size=k - 1))[::-1] if k > 1 else []
    g = np.concatenate([np.asarray(g_raw, dtype=float), [0.0]]) / grid
    return CostTable(
        model_name=f"oracle-random-k{k}",
        positions=tuple(f"l{i}" for i in range(k)),
        f=f,
        g=g,
        cloud=np.zeros(k),
    )
