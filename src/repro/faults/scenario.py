"""The canonical fault scenario: blackout → degrade → recover.

:func:`default_fault_scenario` builds the acceptance scenario from the
PR issue — deadline-bound Poisson clients over a healthy uplink that
goes dark for a 2 s window mid-run — and :func:`run_fault_scenario`
serves the *identical* request stream twice over the faulted timeline:
once with the configured :class:`~repro.faults.policy.ResiliencePolicy`
(timeouts, bounded retries, degradation to local-only, recovery
probing) and once with no policy at all (transfers stall through the
blackout; queued requests expire). The comparison report counts
completions within deadline on both sides and audits every accounting
and clock invariant (:mod:`repro.faults.invariants`), which is exactly
what the acceptance test and the CI ``fault-matrix`` job assert on.

Since the fleet PR, :func:`run_fault_scenario` is a deprecated wrapper:
it builds a single-server :class:`repro.fleet.SystemConfig` with a
``FaultsConfig(compare_no_policy=True)`` block, delegates to
:func:`repro.fleet.run_system`, and reassembles the historical report
shape (locked byte-identical by ``tests/data/golden_system_compat.json``).
New code should call ``run_system`` directly.
"""

from __future__ import annotations

import warnings

from repro.core.plans import json_safe
from repro.engine import PlanningEngine
from repro.faults.plan import Blackout, FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.obs.tracer import Tracer
from repro.serving.scenario import ScenarioConfig
from repro.serving.workload import ClientSpec
from repro.utils.rng import DEFAULT_SEED

__all__ = ["default_fault_scenario", "run_fault_scenario"]


def default_fault_scenario(
    clients: int = 3,
    rate: float = 2.5,
    horizon: float = 20.0,
    model: str = "alexnet",
    seed: int = DEFAULT_SEED,
    blackout_start: float = 8.0,
    blackout_duration: float = 2.0,
    deadline: float = 1.0,
    mbps: float = 8.0,
) -> ScenarioConfig:
    """The issue's acceptance fault scenario, parameterized.

    ``clients`` Poisson streams with a relative ``deadline`` over a flat
    ``mbps`` uplink that blacks out for ``blackout_duration`` seconds at
    ``blackout_start``. The paired policy is tuned so the blackout is
    detected well inside the deadline: two timed-out attempts trigger
    degradation, and quarter-second probes find the recovered channel
    fast enough to replan within the run.
    """
    plan = FaultPlan(
        seed=seed,
        blackouts=(Blackout(blackout_start, blackout_start + blackout_duration),),
        metadata={"scenario": "blackout-degrade-recover"},
    )
    policy = ResiliencePolicy(
        max_retries=1,
        backoff_base=0.05,
        backoff_factor=2.0,
        transfer_timeout=0.25,
        degrade_after_failures=2,
        local_fallback=True,
        probe_interval=0.25,
        probe_bytes=16 * 1024.0,
    )
    return ScenarioConfig(
        clients=tuple(
            ClientSpec(
                name=f"client{i}",
                model=model,
                process="poisson",
                rate=rate,
                deadline=deadline,
            )
            for i in range(clients)
        ),
        bandwidth_steps=((0.0, mbps),),
        horizon=horizon,
        schemes=("JPS",),
        seed=seed,
        fault_plan=plan,
        resilience=policy,
    )


def _audit_block(report) -> dict:
    """Reassemble one side's legacy audit block from a ``SystemReport``."""
    block = report.servers["gateway"]
    return {
        "report": block["report"],
        "completed": block["completed"],
        "within_deadline": block["within_deadline"],
        "events": block["events"],
        "violations": block["violations"],
        "clock_violations": list(report.clock_violations),
    }


def run_fault_scenario(
    config: ScenarioConfig | None = None,
    planner: PlanningEngine | None = None,
    tracer: "Tracer | None" = None,
) -> dict:
    """Policy-on vs no-policy over one faulted stream; full audit report.

    .. deprecated::
        ``run_fault_scenario`` is a thin wrapper over the unified entry
        point: build a :class:`repro.fleet.SystemConfig` with a
        ``FaultsConfig(compare_no_policy=True)`` block and call
        :func:`repro.fleet.run_system`. The wrapper's report is locked
        byte-identical to the pre-fleet implementation
        (``tests/data/golden_system_compat.json``).

    The optional ``tracer`` observes the policy run only (the golden
    trace test pins its span structure). Both passes share one planner,
    so the no-policy pass re-plans from warm structure caches.
    """
    warnings.warn(
        "run_fault_scenario is deprecated: build a repro.fleet.SystemConfig "
        "with FaultsConfig(compare_no_policy=True) and call "
        "repro.fleet.run_system",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.fleet import SystemConfig, run_system

    config = config or default_fault_scenario()
    if config.fault_plan is None:
        raise ValueError("run_fault_scenario needs a config with a fault_plan")
    if config.resilience is None:
        raise ValueError("run_fault_scenario needs a config with a resilience policy")
    if len(config.schemes) != 1:
        raise ValueError("fault scenarios compare policies under a single scheme")
    system = SystemConfig.from_scenario(config, compare_no_policy=True)
    outcome = run_system(system, planner=planner, tracer=tracer)
    return json_safe(
        {
            "config": config.as_dict(),
            "arrivals": outcome.arrivals,
            "policy": _audit_block(outcome),
            "no_policy": _audit_block(outcome.baseline),
            "comparison": outcome.comparison,
        }
    )
