"""The canonical fault scenario: blackout → degrade → recover.

:func:`default_fault_scenario` builds the acceptance scenario from the
PR issue — deadline-bound Poisson clients over a healthy uplink that
goes dark for a 2 s window mid-run — and :func:`run_fault_scenario`
serves the *identical* request stream twice over the faulted timeline:
once with the configured :class:`~repro.faults.policy.ResiliencePolicy`
(timeouts, bounded retries, degradation to local-only, recovery
probing) and once with no policy at all (transfers stall through the
blackout; queued requests expire). The comparison report counts
completions within deadline on both sides and audits every accounting
and clock invariant (:mod:`repro.faults.invariants`), which is exactly
what the acceptance test and the CI ``fault-matrix`` job assert on.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.plans import json_safe
from repro.engine import PlanningEngine
from repro.faults.invariants import MonotoneClockMonitor, accounting_violations
from repro.faults.plan import Blackout, FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.obs.tracer import NullTracer, Tracer
from repro.serving.estimator import AdaptiveChannelEstimator
from repro.serving.gateway import Gateway
from repro.serving.scenario import ScenarioConfig
from repro.serving.workload import ClientSpec, generate_requests
from repro.utils.rng import DEFAULT_SEED

__all__ = ["default_fault_scenario", "run_fault_scenario"]


def default_fault_scenario(
    clients: int = 3,
    rate: float = 2.5,
    horizon: float = 20.0,
    model: str = "alexnet",
    seed: int = DEFAULT_SEED,
    blackout_start: float = 8.0,
    blackout_duration: float = 2.0,
    deadline: float = 1.0,
    mbps: float = 8.0,
) -> ScenarioConfig:
    """The issue's acceptance fault scenario, parameterized.

    ``clients`` Poisson streams with a relative ``deadline`` over a flat
    ``mbps`` uplink that blacks out for ``blackout_duration`` seconds at
    ``blackout_start``. The paired policy is tuned so the blackout is
    detected well inside the deadline: two timed-out attempts trigger
    degradation, and quarter-second probes find the recovered channel
    fast enough to replan within the run.
    """
    plan = FaultPlan(
        seed=seed,
        blackouts=(Blackout(blackout_start, blackout_start + blackout_duration),),
        metadata={"scenario": "blackout-degrade-recover"},
    )
    policy = ResiliencePolicy(
        max_retries=1,
        backoff_base=0.05,
        backoff_factor=2.0,
        transfer_timeout=0.25,
        degrade_after_failures=2,
        local_fallback=True,
        probe_interval=0.25,
        probe_bytes=16 * 1024.0,
    )
    return ScenarioConfig(
        clients=tuple(
            ClientSpec(
                name=f"client{i}",
                model=model,
                process="poisson",
                rate=rate,
                deadline=deadline,
            )
            for i in range(clients)
        ),
        bandwidth_steps=((0.0, mbps),),
        horizon=horizon,
        schemes=("JPS",),
        seed=seed,
        fault_plan=plan,
        resilience=policy,
    )


def _event_kinds(replan_events: list[dict]) -> dict[str, int]:
    kinds: dict[str, int] = {}
    for event in replan_events:
        kind = event.get("kind", "drift")
        kinds[kind] = kinds.get(kind, 0) + 1
    return kinds


def _serve(
    config: ScenarioConfig,
    requests: list,
    planner: PlanningEngine,
    tracer: "Tracer | NullTracer",
    policy: ResiliencePolicy | None,
) -> dict:
    """One gateway pass over the shared stream; returns its audit block."""
    scheme = config.schemes[0]
    gateway = Gateway(
        timeline=config.timeline(),
        planner=planner,
        scheme=scheme,
        estimator=AdaptiveChannelEstimator(
            initial_bps=config.timeline().rates_bps[0],
            alpha=config.ewma_alpha,
            drift_threshold=config.drift_threshold,
            setup_latency=config.setup_latency,
            header_bytes=config.header_bytes,
            protocol_overhead=config.protocol_overhead,
        ),
        max_queue_depth=config.max_queue_depth,
        nominal_burst=config.nominal_burst,
        include_cloud=config.include_cloud,
        tracer=tracer,
        resilience=policy,
        faults=config.fault_plan,
    )
    clock = MonotoneClockMonitor().attach(gateway.engine)
    result = gateway.run(requests)
    report = gateway.report(result)
    deadline = config.clients[0].deadline
    completed = [r for r in result.records if r.latency is not None]
    within = (
        [r for r in completed if r.latency <= deadline]
        if deadline is not None
        else completed
    )
    return {
        "report": report,
        "completed": len(completed),
        "within_deadline": len(within),
        "events": _event_kinds(result.replan_events),
        "violations": accounting_violations(report),
        "clock_violations": clock.violations,
    }


def run_fault_scenario(
    config: ScenarioConfig | None = None,
    planner: PlanningEngine | None = None,
    tracer: "Tracer | None" = None,
) -> dict:
    """Policy-on vs no-policy over one faulted stream; full audit report.

    The optional ``tracer`` observes the policy run only (the golden
    trace test pins its span structure). Both passes share one planner,
    so the no-policy pass re-plans from warm structure caches.
    """
    config = config or default_fault_scenario()
    if config.fault_plan is None:
        raise ValueError("run_fault_scenario needs a config with a fault_plan")
    if config.resilience is None:
        raise ValueError("run_fault_scenario needs a config with a resilience policy")
    if len(config.schemes) != 1:
        raise ValueError("fault scenarios compare policies under a single scheme")
    planner = planner or PlanningEngine()
    obs = tracer or NullTracer()
    requests = generate_requests(list(config.clients), config.horizon, config.seed)
    with obs.span("faults/policy", lane=("scenario", "policy")):
        policy_side = _serve(config, requests, planner, obs, config.resilience)
    bare_side = _serve(
        replace(config, resilience=None), requests, planner, NullTracer(), None
    )
    return json_safe(
        {
            "config": config.as_dict(),
            "arrivals": len(requests),
            "policy": policy_side,
            "no_policy": bare_side,
            "comparison": {
                "within_deadline_policy": policy_side["within_deadline"],
                "within_deadline_no_policy": bare_side["within_deadline"],
                "within_deadline_gain": (
                    policy_side["within_deadline"] - bare_side["within_deadline"]
                ),
                "degradations": policy_side["events"].get("degrade", 0),
                "recovery_replans": policy_side["events"].get("recovery", 0),
            },
        }
    )
