"""fig_serving: offered load × bandwidth sweep of the offload gateway.

The paper's figures compare schemes on one closed batch; this harness
asks the serving question instead: *at what offered load does each
scheme stop keeping up?* For every (bandwidth preset, per-client rate)
cell the same Poisson request stream is served under each scheme and we
record throughput, p95 latency, and drop rate. A cell counts as
**sustainable** when nothing was dropped and the p95 latency stays under
``SUSTAINABLE_P95_S`` — a queueing-stability proxy: an overloaded
gateway's tail grows with the horizon, a stable one's does not.

All cells share one :class:`~repro.engine.PlanningEngine`, so the sweep
is also a cache workout: only the first cell of a model pays the
structure build, every re-plan after that is a priced-table miss.
"""

from __future__ import annotations

import warnings

from repro.engine import PlanningEngine
from repro.serving.scenario import ScenarioConfig, run_scenario
from repro.serving.workload import ClientSpec
from repro.utils.rng import DEFAULT_SEED

__all__ = ["run", "render", "LOADS", "PRESETS_MBPS", "SUSTAINABLE_P95_S"]

#: Per-client Poisson rates (req/s) swept on the x-axis.
LOADS = (0.5, 1.0, 2.0)

#: Constant uplink rates per preset (§6.1's wondershaper settings).
PRESETS_MBPS = {"3G": 1.1, "4G": 5.85, "Wi-Fi": 18.88}

#: p95 latency bound (s) under which a drop-free cell counts sustainable.
SUSTAINABLE_P95_S = 2.0

SCHEMES = ("JPS", "LO", "CO")


def run(
    model: str = "alexnet",
    clients: int = 3,
    horizon: float = 30.0,
    loads: tuple[float, ...] = LOADS,
    presets: dict[str, float] | None = None,
    seed: int = DEFAULT_SEED,
    planner: PlanningEngine | None = None,
) -> dict:
    """Sweep the grid; returns a JSON-safe document."""
    presets = presets or PRESETS_MBPS
    planner = planner or PlanningEngine()
    cells: list[dict] = []
    for preset, rate_mbps in presets.items():
        for load in loads:
            config = ScenarioConfig(
                clients=tuple(
                    ClientSpec(name=f"client{i}", model=model, rate=load)
                    for i in range(clients)
                ),
                bandwidth_steps=((0.0, rate_mbps),),
                horizon=horizon,
                schemes=SCHEMES,
                seed=seed,
            )
            with warnings.catch_warnings():
                # the sweep is locked to the legacy per-scheme report shape
                warnings.simplefilter("ignore", DeprecationWarning)
                report = run_scenario(config, planner=planner)
            cell: dict = {
                "preset": preset,
                "mbps": rate_mbps,
                "load_per_client": load,
                "offered_rps": report["offered_load_rps"],
                "schemes": {},
            }
            for scheme, data in report["schemes"].items():
                latency = data["histograms"]["latency"]
                counters = data["counters"]
                dropped = counters.get("dropped", 0)
                p95 = latency["p95"]
                cell["schemes"][scheme] = {
                    "throughput_rps": data["throughput_rps"],
                    "p95_latency_s": p95,
                    "drop_rate": dropped / max(counters.get("arrived", 1), 1),
                    "sustainable": dropped == 0 and p95 <= SUSTAINABLE_P95_S,
                }
            cells.append(cell)
    return {
        "model": model,
        "clients": clients,
        "horizon": horizon,
        "sustainable_p95_s": SUSTAINABLE_P95_S,
        "cells": cells,
        "engine_cache": planner.stats_snapshot()["totals"],
    }


def render(document: dict) -> str:
    """ASCII table: one row per (preset, load), one column group per scheme."""
    lines = [
        f"fig_serving — {document['model']}, {document['clients']} clients, "
        f"horizon {document['horizon']:g}s "
        f"(sustainable: no drops and p95 <= {document['sustainable_p95_s']:g}s)",
        f"{'preset':<7s} {'load':>6s} "
        + " ".join(f"{s + ' thr/p95':>18s}" for s in SCHEMES),
    ]
    for cell in document["cells"]:
        row = f"{cell['preset']:<7s} {cell['offered_rps']:>5.1f}/s"
        for scheme in SCHEMES:
            data = cell["schemes"][scheme]
            mark = "*" if data["sustainable"] else " "
            row += (
                f" {data['throughput_rps']:>7.2f} {data['p95_latency_s']:>8.2f}s{mark}"
            )
        lines.append(row)
    totals = document["engine_cache"]
    lines.append(
        f"engine cache: {totals['hits']} hits / {totals['misses']} misses "
        f"(hit rate {totals['hit_rate']:.2f})"
    )
    return "\n".join(lines)
