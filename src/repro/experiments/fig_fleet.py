"""fig_fleet: server-count × offered-load sweep of the federated fleet.

The ROADMAP's capacity question, asked systematically: *how many
servers does a given client swarm need before deadlines hold?* For
every (servers, per-client rate) cell the **identical** seeded arrival
stream (placement and server count never perturb workload generation)
runs through :func:`repro.fleet.run_system`, and we record served /
within-deadline counts, the fleet deadline-hit rate, and the invariant
audit. The single-server column is exactly the old gateway — per-server
dispatch is unchanged code — so the sweep doubles as a scaling study
against the PR 4 capacity baseline.

All cells share one :class:`~repro.engine.PlanningEngine`; with
homogeneous servers every gateway prices from the same warm structure
cache, so fleet size scales the event count, not the planning cost.
"""

from __future__ import annotations

from repro.engine import PlanningEngine
from repro.fleet import default_fleet, run_system
from repro.utils.rng import DEFAULT_SEED

__all__ = ["run", "render", "SERVER_COUNTS", "LOADS"]

#: Fleet sizes swept on the y-axis.
SERVER_COUNTS = (1, 2, 4)

#: Per-client Poisson rates (req/s) swept on the x-axis.
LOADS = (1.0, 2.0, 3.0)


def run(
    model: str = "alexnet",
    clients: int = 16,
    horizon: float = 8.0,
    deadline: float = 1.0,
    mbps: float = 8.0,
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    loads: tuple[float, ...] = LOADS,
    placement: str = "least_loaded",
    seed: int = DEFAULT_SEED,
    planner: PlanningEngine | None = None,
) -> dict:
    """Sweep the grid; returns a JSON-safe document."""
    planner = planner or PlanningEngine()
    cells: list[dict] = []
    for load in loads:
        for servers in server_counts:
            config = default_fleet(
                servers=servers,
                clients=clients,
                rate=load,
                horizon=horizon,
                model=model,
                mbps=mbps,
                deadline=deadline,
                seed=seed,
                placement=placement,
            )
            report = run_system(config, planner=planner)
            cells.append(
                {
                    "servers": servers,
                    "load_per_client": load,
                    "offered_rps": report.offered_load_rps,
                    "arrivals": report.arrivals,
                    "served": report.served,
                    "within_deadline": report.within_deadline,
                    "deadline_rate": report.within_deadline / max(report.arrivals, 1),
                    "latency_p99": report.p99_latency,
                    "sustained_rps": report.sustained_rps,
                    "migrations": len(report.fleet["placement"]["migrations"]),
                    "violations": len(report.violations)
                    + len(report.clock_violations),
                }
            )
    return {
        "model": model,
        "clients": clients,
        "horizon": horizon,
        "deadline": deadline,
        "mbps": mbps,
        "placement": placement,
        "cells": cells,
        "engine_cache": planner.stats_snapshot()["totals"],
    }


def render(document: dict) -> str:
    """ASCII table: one row per load, one column per fleet size."""
    server_counts = sorted({cell["servers"] for cell in document["cells"]})
    lines = [
        f"fig_fleet — {document['model']}, {document['clients']} clients, "
        f"horizon {document['horizon']:g}s, deadline {document['deadline']:g}s, "
        f"{document['placement']} placement "
        f"(cells: within-deadline/arrivals @ p99)",
        f"{'load':>8s} " + " ".join(f"{f'{n} srv':>22s}" for n in server_counts),
    ]
    by_key = {
        (cell["load_per_client"], cell["servers"]): cell
        for cell in document["cells"]
    }
    loads = sorted({cell["load_per_client"] for cell in document["cells"]})
    violations = 0
    for load in loads:
        row = f"{load:>6.1f}/s"
        for servers in server_counts:
            cell = by_key[(load, servers)]
            violations += cell["violations"]
            row += (
                f" {cell['within_deadline']:>6d}/{cell['arrivals']:<5d}"
                f"{cell['deadline_rate']:>4.0%}"
                f"@{cell['latency_p99']:>5.2f}s"
            )
        lines.append(row)
    totals = document["engine_cache"]
    lines.append(
        f"invariant violations: {violations}; engine cache: "
        f"{totals['hits']} hits / {totals['misses']} misses "
        f"(hit rate {totals['hit_rate']:.2f})"
    )
    return "\n".join(lines)
