"""Fig. 13 — inference latency versus uplink bandwidth (1–80 Mbps).

For AlexNet and MobileNet-v2, sweep the uplink rate and record every
scheme's average latency. The shapes to reproduce: LO is flat; CO falls
as 1/bandwidth; PO and JPS interpolate; JPS has a *benefit range* —
bandwidths where it strictly beats both LO and CO — that covers 3G
through Wi-Fi, wider for AlexNet than MobileNet-v2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_series
from repro.experiments.runner import SCHEMES, ExperimentEnv

__all__ = ["Fig13Curve", "DEFAULT_BANDWIDTHS", "run", "render", "benefit_range"]

DEFAULT_BANDWIDTHS = [1, 2, 4, 6, 8, 10, 15, 20, 30, 40, 50, 60, 70, 80]
DEFAULT_MODELS = ["alexnet", "mobilenet-v2"]


@dataclass(frozen=True)
class Fig13Curve:
    model: str
    bandwidths_mbps: tuple[float, ...]
    latency_s: dict[str, tuple[float, ...]]  # scheme -> avg latency series


def run(
    env: ExperimentEnv | None = None,
    models: list[str] | None = None,
    bandwidths_mbps: list[float] | None = None,
    n: int = 100,
    jobs: int | None = None,
) -> list[Fig13Curve]:
    from repro.experiments.parallel import GridCell, plan_grid

    env = env or ExperimentEnv()
    bws = bandwidths_mbps or DEFAULT_BANDWIDTHS
    chosen = models or DEFAULT_MODELS
    work = [
        GridCell(model=model, bandwidth=float(bw), n=n)
        for model in chosen
        for bw in bws
    ]
    results = plan_grid(work, env=env, jobs=jobs)
    curves: list[Fig13Curve] = []
    for index, model in enumerate(chosen):
        per_model = results[index * len(bws): (index + 1) * len(bws)]
        series = {
            s: tuple(grid[s].average_completion for grid in per_model)
            for s in SCHEMES
        }
        curves.append(
            Fig13Curve(
                model=model,
                bandwidths_mbps=tuple(float(b) for b in bws),
                latency_s=series,
            )
        )
    return curves


def benefit_range(curve: Fig13Curve, margin: float = 1e-9) -> tuple[float, float] | None:
    """Bandwidth interval where JPS strictly beats both LO and CO.

    Returns the (lowest, highest) swept bandwidth with a strict win, or
    None if JPS never wins — the paper's "benefit range" discussion.
    """
    jps = np.array(curve.latency_s["JPS"])
    lo = np.array(curve.latency_s["LO"])
    co = np.array(curve.latency_s["CO"])
    wins = (jps < lo - margin) & (jps < co - margin)
    if not wins.any():
        return None
    bws = np.array(curve.bandwidths_mbps)
    return float(bws[wins].min()), float(bws[wins].max())


def render(curves: list[Fig13Curve]) -> str:
    from repro.experiments.ascii_plot import line_plot

    blocks = []
    for curve in curves:
        table = format_series(
            x_label="Mbps",
            xs=[f"{b:g}" for b in curve.bandwidths_mbps],
            series={s: [v * 1e3 for v in curve.latency_s[s]] for s in curve.latency_s},
            title=f"Fig. 13 — {curve.model}: avg latency (ms) vs uplink bandwidth",
        )
        plot = line_plot(
            curve.bandwidths_mbps,
            {s: [v * 1e3 for v in curve.latency_s[s]] for s in curve.latency_s},
            log_y=True,
            y_label="ms",
            title=f"{curve.model} (log-y, as in the paper's Fig. 13)",
        )
        rng = benefit_range(curve)
        note = (
            f"JPS benefit range: {rng[0]:g}-{rng[1]:g} Mbps"
            if rng
            else "JPS never strictly beats both LO and CO"
        )
        blocks.append(table + "\n\n" + plot + "\n" + note)
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run()))
