"""Process-pool fan-out for per-(model, bandwidth) planning cells.

The figure harnesses and the campaign runner all reduce to the same
work item: plan every scheme for one (model, bandwidth, n) cell. Cells
are independent — each builds from the deterministic device constants —
so they parallelize across processes with no shared state beyond the
:class:`~repro.experiments.runner.ExperimentEnv` construction arguments.

Each worker process holds one long-lived environment (installed by the
pool initializer), so its model/frontier caches amortize across every
cell that lands on it, mirroring what the serial path gets from a
single environment. Results return in input order, which keeps campaign
documents bit-identical between serial and parallel runs
(``tests/test_parallel.py`` locks this).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from math import ceil

from repro.core.plans import Schedule
from repro.experiments.runner import SCHEMES, ExperimentEnv
from repro.net.bandwidth import BandwidthPreset
from repro.profiling.device import DeviceModel

__all__ = ["GridCell", "plan_grid", "evaluate_cells", "resolve_jobs"]

#: Per-process environment installed by the pool initializer.
_WORKER_ENV: ExperimentEnv | None = None


@dataclass(frozen=True)
class GridCell:
    """One unit of campaign work: all schemes of one (model, bandwidth)."""

    model: str
    bandwidth: BandwidthPreset | float
    n: int
    schemes: tuple[str, ...] = tuple(SCHEMES)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0/1 mean serial."""
    if jobs is None or jobs <= 1:
        return 1
    return int(jobs)


def _init_worker(mobile: DeviceModel, cloud: DeviceModel, seed: int) -> None:
    global _WORKER_ENV
    _WORKER_ENV = ExperimentEnv(mobile=mobile, cloud=cloud, seed=seed)


def _eval_cells(cells: list[GridCell]) -> list[dict[str, Schedule]]:
    global _WORKER_ENV
    if _WORKER_ENV is None:  # spawn start-method without initializer
        _WORKER_ENV = ExperimentEnv()
    return evaluate_cells(cells, _WORKER_ENV)


def evaluate_cells(
    cells: list[GridCell], env: ExperimentEnv
) -> list[dict[str, Schedule]]:
    """Evaluate cells through the engine's batched bandwidth sweep.

    The shared kernel of both the serial path and every pool worker:
    cells group by (model, n, schemes) so each group's bandwidth vector
    prices one memoized kernel via
    :meth:`~repro.experiments.runner.ExperimentEnv.run_scheme_batch`,
    then results scatter back in input order. Output is bit-identical to
    per-cell ``run_scheme`` calls (``tests/test_vectorized_parity.py``),
    so serial, parallel, and pre-batch campaign documents all diff
    clean against each other.
    """
    results: list[dict[str, Schedule] | None] = [None] * len(cells)
    groups: dict[tuple, list[int]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault((cell.model, cell.n, cell.schemes), []).append(index)
    for (model, n, schemes), indices in groups.items():
        bandwidths = [cells[i].bandwidth for i in indices]
        columns = {
            scheme: env.run_scheme_batch(model, bandwidths, n, scheme)
            for scheme in schemes
        }
        for offset, index in enumerate(indices):
            results[index] = {scheme: columns[scheme][offset] for scheme in schemes}
    return results  # type: ignore[return-value]


def _model_chunks(cells: list[GridCell], workers: int) -> list[list[int]]:
    """Partition cell indices into worker batches, grouped by model.

    The expensive per-model structure (GoogLeNet's frontier enumeration)
    is rebuilt once per worker process that touches the model, so cells
    of one model should land on as few workers as possible while still
    spreading a long single-model sweep across the pool. Each model gets
    a chunk count proportional to its share of the cells, clamped to
    [1, workers].
    """
    by_model: dict[str, list[int]] = {}
    for index, cell in enumerate(cells):
        by_model.setdefault(cell.model, []).append(index)
    chunks: list[list[int]] = []
    for indices in by_model.values():
        count = round(len(indices) * workers / len(cells))
        count = max(1, min(workers, count))
        size = ceil(len(indices) / count)
        chunks.extend(indices[i: i + size] for i in range(0, len(indices), size))
    return chunks


def plan_grid(
    cells: list[GridCell],
    env: ExperimentEnv | None = None,
    jobs: int | None = None,
) -> list[dict[str, Schedule]]:
    """Plan every cell; returns ``{scheme: Schedule}`` per cell, in order.

    ``jobs <= 1`` runs serially on ``env`` (building one if needed);
    otherwise a :class:`~concurrent.futures.ProcessPoolExecutor` with
    ``jobs`` workers evaluates model-grouped batches of cells. Workers
    rebuild the environment from ``env``'s devices and seed, so custom
    device models flow through; results are reassembled in input order,
    making parallel output independent of completion order.
    """
    env = env or ExperimentEnv()
    workers = resolve_jobs(jobs)
    if workers == 1 or len(cells) <= 1:
        return _serial_grid(cells, env)
    chunks = _model_chunks(cells, workers)
    results: list[dict[str, Schedule] | None] = [None] * len(cells)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=_init_worker,
        initargs=(env.mobile, env.cloud, env.seed),
    ) as pool:
        futures = [
            pool.submit(_eval_cells, [cells[i] for i in chunk]) for chunk in chunks
        ]
        for chunk, future in zip(chunks, futures):
            for index, result in zip(chunk, future.result()):
                results[index] = result
    return results  # type: ignore[return-value]


def _serial_grid(
    cells: list[GridCell], env: ExperimentEnv
) -> list[dict[str, Schedule]]:
    return evaluate_cells(cells, env)
