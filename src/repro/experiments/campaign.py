"""Campaign runner: all experiments, one JSON artifact, regression diffs.

A *campaign* executes every reproduction harness and serializes the
numeric results (no rendering) to JSON. Two campaigns can then be
diffed — the regression net a maintained reproduction repo needs: after
touching a cost model or an algorithm, `compare_campaigns` reports
every experiment whose numbers moved beyond tolerance.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro import __version__
from repro.experiments import fig4, fig11, fig12, fig13, fig14, table1
from repro.experiments.runner import ExperimentEnv
from repro.utils.validation import require_non_negative

__all__ = ["run_campaign", "save_campaign", "load_campaign", "compare_campaigns"]


def run_campaign(
    env: ExperimentEnv | None = None, quick: bool = False, jobs: int | None = None
) -> dict[str, Any]:
    """Execute every experiment; returns a JSON-serializable document.

    ``quick=True`` shrinks job counts and sweep grids for CI-speed runs;
    the *structure* of the document is identical either way, so quick
    and full campaigns diff against each other structurally (values will
    of course differ — compare like with like).

    ``jobs`` fans the per-(model, bandwidth) planning cells of the
    fig12/fig13/table1 grids over a process pool
    (:mod:`repro.experiments.parallel`); results are bit-identical to a
    serial run, so parallel and serial campaigns diff clean against
    each other.
    """
    env = env or ExperimentEnv()
    n = 20 if quick else 100
    fig11_counts = [2, 4] if quick else [2, 4, 8, 12]
    fig13_bws = [1, 10, 40] if quick else None

    document: dict[str, Any] = {
        "version": __version__,
        "quick": quick,
        "n_jobs": n,
    }
    # one phase span per figure/table; inside each phase env.tracer
    # records a span per (model, bandwidth, scheme) cell on the per-cell
    # path and one experiment/batch span per (model, scheme) vector on
    # the batched grid path
    with env.tracer.span("campaign/fig4", lane=("campaign", "phases")):
        document["fig4"] = [asdict(row) for row in fig4.run(env)]
    with env.tracer.span("campaign/fig11", lane=("campaign", "phases")):
        document["fig11"] = [
            asdict(row) for row in fig11.run(env, job_counts=fig11_counts)
        ]
    with env.tracer.span("campaign/fig12", lane=("campaign", "phases")):
        document["fig12"] = [asdict(cell) for cell in fig12.run(env, n=n, jobs=jobs)]
    with env.tracer.span("campaign/table1", lane=("campaign", "phases")):
        document["table1"] = [asdict(row) for row in table1.run(env, n=n, jobs=jobs)]
    with env.tracer.span("campaign/fig13", lane=("campaign", "phases")):
        document["fig13"] = [
            {
                "model": curve.model,
                "bandwidths_mbps": list(curve.bandwidths_mbps),
                "latency_s": {k: list(v) for k, v in curve.latency_s.items()},
            }
            for curve in fig13.run(env, bandwidths_mbps=fig13_bws, n=n, jobs=jobs)
        ]
    with env.tracer.span("campaign/fig14", lane=("campaign", "phases")):
        document["fig14"] = [
            {
                "model": curve.model,
                "ratios": list(curve.ratios),
                "makespan_s": {k: list(v) for k, v in curve.makespan_s.items()},
                "optimal_ratio": dict(curve.optimal_ratio),
            }
            for curve in fig14.run(env, n=n)
        ]
    return document


def save_campaign(document: dict[str, Any], path: str | Path) -> Path:
    """Write a campaign document as pretty-printed JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


def load_campaign(path: str | Path) -> dict[str, Any]:
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no campaign file at {source}")
    return json.loads(source.read_text())


def _walk(prefix: str, value: Any, out: dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            _walk(f"{prefix}.{key}", value[key], out)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _walk(f"{prefix}[{index}]", item, out)


def compare_campaigns(
    old: dict[str, Any], new: dict[str, Any], rel_tolerance: float = 0.05
) -> list[str]:
    """Human-readable regressions between two campaign documents.

    Flags numeric leaves that moved more than ``rel_tolerance``
    (relative, with a small absolute floor) and any structural
    mismatch (missing/new leaves). An empty list means "no regression".
    """
    require_non_negative(rel_tolerance, "rel_tolerance")
    flat_old: dict[str, float] = {}
    flat_new: dict[str, float] = {}
    _walk("", old, flat_old)
    _walk("", new, flat_new)

    problems: list[str] = []
    for key in sorted(set(flat_old) - set(flat_new)):
        problems.append(f"missing in new: {key}")
    for key in sorted(set(flat_new) - set(flat_old)):
        problems.append(f"new leaf: {key}")
    for key in sorted(set(flat_old) & set(flat_new)):
        a, b = flat_old[key], flat_new[key]
        scale = max(abs(a), abs(b), 1e-9)
        if abs(a - b) / scale > rel_tolerance and abs(a - b) > 1e-6:
            problems.append(f"moved: {key}: {a:g} -> {b:g}")
    return problems
