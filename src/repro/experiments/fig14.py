"""Fig. 14 — sensitivity to the computation-/communication-heavy job mix.

Around the crossing layer l*, force ``n`` jobs into a two-type partition
with a prescribed ratio between computation-heavy jobs (cut at l*) and
communication-heavy jobs (cut at l*-1), and measure the makespan as the
ratio sweeps. The paper shows (a) the optimal ratio is not 1, and
(b) it shifts with bandwidth (9/10/11 Mbps): larger per-job surplus on
the communication side pushes the optimum toward more computation-heavy
jobs.

The ratio convention follows the figure: x = (# computation-heavy) /
(# communication-heavy); ResNet is swept over x in 2..9, GoogLeNet over
x in 0.2..1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import binary_search_cut
from repro.core.plans import JobPlan
from repro.core.scheduling import schedule_jobs
from repro.experiments.report import format_series
from repro.experiments.runner import ExperimentEnv
from repro.profiling.latency import CostTable
from repro.utils.validation import require_positive

__all__ = [
    "Fig14Curve",
    "run",
    "render",
    "forced_ratio_makespan",
    "analytic_optimal_ratio",
    "select_bandwidths",
]

DEFAULT_BANDWIDTHS = [9.0, 10.0, 11.0]
RESNET_RATIOS = [2, 3, 4, 5, 6, 7, 8, 9]
GOOGLENET_RATIOS = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


@dataclass(frozen=True)
class Fig14Curve:
    model: str
    ratios: tuple[float, ...]
    makespan_s: dict[str, tuple[float, ...]]  # "9Mbps" -> series
    optimal_ratio: dict[str, float]


def forced_ratio_makespan(table: CostTable, ratio: float, n: int) -> float:
    """Makespan of an n-job set with comp:comm count ratio forced to ``ratio``.

    Computation-heavy jobs cut at l*, communication-heavy at l*-1; the
    ratio fixes the counts (rounded), Johnson's rule orders them.
    """
    require_positive(ratio, "ratio")
    require_positive(n, "n")
    l_star = binary_search_cut(table)
    if l_star == 0:
        raise ValueError(
            f"{table.model_name}: crossing at position 0 leaves no "
            "communication-heavy cut to mix"
        )
    n_comp = round(n * ratio / (1.0 + ratio))
    n_comp = min(max(n_comp, 1), n - 1)  # keep both types present
    n_comm = n - n_comp
    plans = [
        JobPlan(
            job_id=i,
            model=table.model_name,
            cut_position=l_star - 1 if i < n_comm else l_star,
            compute_time=table.stage_lengths(l_star - 1 if i < n_comm else l_star)[0],
            comm_time=table.stage_lengths(l_star - 1 if i < n_comm else l_star)[1],
        )
        for i in range(n)
    ]
    return schedule_jobs(plans).makespan


def analytic_optimal_ratio(table: CostTable) -> float | None:
    """The steady-state optimal comp/comm ratio at the crossing layer.

    Balancing the pipeline — total computation equals total
    communication — gives ``n_comp / n_comm = (g(l*-1) - f(l*-1)) /
    (f(l*) - g(l*))``. Returns None when the crossing degenerates (no
    communication-heavy layer or an exact tie).
    """
    l_star = binary_search_cut(table)
    if l_star == 0:
        return None
    surplus_comm = float(table.g[l_star - 1] - table.f[l_star - 1])
    surplus_comp = float(table.f[l_star] - table.g[l_star])
    if surplus_comp <= 0 or surplus_comm <= 0:
        return None
    return surplus_comm / surplus_comp


def select_bandwidths(
    env: ExperimentEnv,
    model: str,
    ratios: list[float],
    candidates_mbps: list[float] | None = None,
    count: int = 3,
) -> list[float]:
    """Pick ``count`` bandwidths whose optimal ratio falls inside the sweep.

    The paper plots 9/10/11 Mbps because, on *its* cost tables, the
    interior optimum lands inside the swept ratio window; with different
    device constants the interesting bandwidths move. This scans a
    candidate grid and keeps the rates whose analytic optimum is within
    [min(ratios), max(ratios)], falling back to the paper's 9/10/11 when
    fewer than ``count`` qualify.
    """
    grid = candidates_mbps or [round(x * 0.5, 1) for x in range(2, 81)]
    lo, hi = min(ratios), max(ratios)
    chosen: list[float] = []
    for bw in grid:
        ratio = analytic_optimal_ratio(env.cost_table(model, float(bw)))
        if ratio is not None and lo <= ratio <= hi:
            chosen.append(float(bw))
    if len(chosen) < count:
        return DEFAULT_BANDWIDTHS
    picks = [chosen[0], chosen[len(chosen) // 2], chosen[-1]]
    return sorted(set(picks))[:count] if len(set(picks)) >= count else chosen[:count]


def run(
    env: ExperimentEnv | None = None,
    bandwidths_mbps: list[float] | None = None,
    n: int = 100,
) -> list[Fig14Curve]:
    env = env or ExperimentEnv()
    curves: list[Fig14Curve] = []
    for model, ratios in (("resnet18", RESNET_RATIOS), ("googlenet", GOOGLENET_RATIOS)):
        bws = bandwidths_mbps or select_bandwidths(env, model, list(map(float, ratios)))
        series: dict[str, tuple[float, ...]] = {}
        optima: dict[str, float] = {}
        for bw in bws:
            table = env.cost_table(model, float(bw))
            values = tuple(forced_ratio_makespan(table, r, n) for r in ratios)
            label = f"{bw:g}Mbps"
            series[label] = values
            optima[label] = float(ratios[values.index(min(values))])
        curves.append(
            Fig14Curve(
                model=model,
                ratios=tuple(float(r) for r in ratios),
                makespan_s=series,
                optimal_ratio=optima,
            )
        )
    return curves


def render(curves: list[Fig14Curve]) -> str:
    from repro.experiments.ascii_plot import line_plot

    blocks = []
    for curve in curves:
        table = format_series(
            x_label="ratio",
            xs=[f"{r:g}" for r in curve.ratios],
            series={k: [v for v in vs] for k, vs in curve.makespan_s.items()},
            title=f"Fig. 14 — {curve.model}: makespan (s) vs comp/comm job ratio",
            float_format="{:.3f}",
        )
        plot = line_plot(
            curve.ratios,
            {k: list(v) for k, v in curve.makespan_s.items()},
            y_label="s",
            height=12,
            title=f"{curve.model} (interior optimum shifts with bandwidth)",
        )
        optima = ", ".join(f"{k}: ratio={v:g}" for k, v in curve.optimal_ratio.items())
        blocks.append(table + "\n\n" + plot + f"\noptimal ratios -> {optima}")
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run()))
