"""Fig. 12(a–c) — average inference latency of LO/CO/PO/JPS, and
Fig. 12(d) — the JPS scheduler's own decision overhead.

100 repeated jobs per model, three network presets (3G, 4G, Wi-Fi).
CO at 3G is off the chart in the paper (>4,000 ms to upload the raw
input); we report it anyway and the renderer marks it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENT_MODELS, ExperimentEnv
from repro.net.bandwidth import FOUR_G, PRESETS, THREE_G, WIFI, BandwidthPreset
from repro.runtime.scheduler_runtime import OnDeviceScheduler

__all__ = ["Fig12Cell", "run", "render", "run_overhead", "render_overhead"]

DEFAULT_N = 100


@dataclass(frozen=True)
class Fig12Cell:
    preset: str
    model: str
    scheme: str
    avg_latency_s: float    # makespan / n — the paper's per-job metric


def run(
    env: ExperimentEnv | None = None,
    models: list[str] | None = None,
    presets: list[BandwidthPreset] | None = None,
    n: int = DEFAULT_N,
    jobs: int | None = None,
) -> list[Fig12Cell]:
    from repro.experiments.parallel import GridCell, plan_grid

    env = env or ExperimentEnv()
    work = [
        GridCell(model=model, bandwidth=preset, n=n)
        for preset in presets or [THREE_G, FOUR_G, WIFI]
        for model in models or EXPERIMENT_MODELS
    ]
    cells: list[Fig12Cell] = []
    for item, schedules in zip(work, plan_grid(work, env=env, jobs=jobs)):
        for scheme, schedule in schedules.items():
            cells.append(
                Fig12Cell(
                    preset=item.bandwidth.name,
                    model=item.model,
                    scheme=scheme,
                    avg_latency_s=schedule.average_completion,
                )
            )
    return cells


def render(cells: list[Fig12Cell]) -> str:
    blocks: list[str] = []
    presets = list(dict.fromkeys(c.preset for c in cells))
    models = list(dict.fromkeys(c.model for c in cells))
    schemes = list(dict.fromkeys(c.scheme for c in cells))
    value = {(c.preset, c.model, c.scheme): c.avg_latency_s for c in cells}
    for preset in presets:
        rows = []
        for model in models:
            rows.append(
                [model]
                + [value[(preset, model, s)] * 1e3 for s in schemes]
            )
        mbps = PRESETS[preset].uplink_bps / 1e6 if preset in PRESETS else float("nan")
        blocks.append(
            format_table(
                headers=["model"] + [f"{s} (ms)" for s in schemes],
                rows=rows,
                title=f"Fig. 12 — {preset} ({mbps:.2f} Mbps), avg latency over {DEFAULT_N} jobs",
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Fig. 12(d): scheduler overhead
# ----------------------------------------------------------------------

def run_overhead(
    env: ExperimentEnv | None = None,
    models: list[str] | None = None,
    n: int = DEFAULT_N,
    repeats: int = 5,
) -> dict[str, float]:
    """Median JPS planning latency per model (seconds).

    Uses the deployed scheduler path — lookup table + communication
    regression — so the measured overhead includes estimation, the
    binary search, the split, and Johnson's rule, exactly the
    components §6.3 credits for the negligible overhead.
    """
    env = env or ExperimentEnv()
    chosen = models or EXPERIMENT_MODELS
    line_models = [m for m in chosen if env.treats_as_line(m)]
    scheduler = OnDeviceScheduler(mobile=env.mobile, cloud=env.cloud)
    networks = [env.network(m) for m in line_models]
    scheduler.calibrate(networks, env.channel(WIFI), seed=env.seed)

    overheads: dict[str, float] = {}
    for model in chosen:
        samples = []
        for _ in range(repeats):
            if model in line_models:
                result = scheduler.plan(
                    env.network(model), n, bandwidth_bps=env.channel(WIFI).uplink_bps
                )
                samples.append(result.overhead_s)
            else:
                # general DAGs plan on the cached Pareto table
                from time import perf_counter

                from repro.core.joint import jps_line

                table = env.cost_table(model, WIFI)
                start = perf_counter()
                jps_line(table, n)
                samples.append(perf_counter() - start)
        samples.sort()
        overheads[model] = samples[len(samples) // 2]
    return overheads


def render_overhead(overheads: dict[str, float]) -> str:
    rows = [(model, value * 1e3) for model, value in overheads.items()]
    return format_table(
        headers=["model", "JPS overhead (ms)"],
        rows=rows,
        title="Fig. 12(d) — scheduler decision overhead",
        float_format="{:.3f}",
    )


if __name__ == "__main__":
    print(render(run()))
    print()
    print(render_overhead(run_overhead()))
