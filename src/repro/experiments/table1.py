"""Table 1 — latency reduction of PO and JPS relative to local-only (%).

The paper's headline comparison: for each (model, bandwidth) cell, how
much of LO's latency does each offloading scheme remove. Expected
shape: zeros for PO wherever offloading cannot beat local execution
(3G for everything but the smallest tensors), JPS >= PO everywhere,
both schemes converging at Wi-Fi where the single-cut pipeline is
already communication-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table, reduction_vs
from repro.experiments.runner import EXPERIMENT_MODELS, ExperimentEnv
from repro.net.bandwidth import FOUR_G, THREE_G, WIFI, BandwidthPreset

__all__ = ["Table1Row", "run", "render"]


@dataclass(frozen=True)
class Table1Row:
    model: str
    reductions: dict[str, dict[str, float]]  # {preset: {scheme: percent}}


def run(
    env: ExperimentEnv | None = None,
    models: list[str] | None = None,
    presets: list[BandwidthPreset] | None = None,
    n: int = 100,
    jobs: int | None = None,
) -> list[Table1Row]:
    from repro.experiments.parallel import GridCell, plan_grid

    env = env or ExperimentEnv()
    chosen_presets = presets or [THREE_G, FOUR_G, WIFI]
    chosen_models = models or EXPERIMENT_MODELS
    work = [
        GridCell(model=model, bandwidth=preset, n=n)
        for model in chosen_models
        for preset in chosen_presets
    ]
    results = plan_grid(work, env=env, jobs=jobs)
    rows: list[Table1Row] = []
    for index, model in enumerate(chosen_models):
        per_preset: dict[str, dict[str, float]] = {}
        for offset, preset in enumerate(chosen_presets):
            grid = results[index * len(chosen_presets) + offset]
            lo = grid["LO"].makespan
            per_preset[preset.name] = {
                "PO": reduction_vs(lo, grid["PO"].makespan),
                "JPS": reduction_vs(lo, grid["JPS"].makespan),
            }
        rows.append(Table1Row(model=model, reductions=per_preset))
    return rows


def render(rows: list[Table1Row]) -> str:
    presets = list(rows[0].reductions) if rows else []
    headers = ["model"] + [f"{p} {s}" for p in presets for s in ("PO", "JPS")]
    body = []
    for row in rows:
        body.append(
            [row.model]
            + [row.reductions[p][s] for p in presets for s in ("PO", "JPS")]
        )
    return format_table(
        headers=headers,
        rows=body,
        title="Table 1 — latency reduction vs LO (%)",
        float_format="{:.2f}",
    )


if __name__ == "__main__":
    print(render(run()))
