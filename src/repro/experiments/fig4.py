"""Fig. 4 — per-layer time consumption of AlexNet.

(a) cloud computation time is negligible next to mobile computation and
communication; (b) mobile computation accumulates while the
communication requirement decays as the cut moves deeper.

The paper's 8 x-axis "layers" are conv/pool/activation *blocks*; our
virtual-block clustering recovers the same granularity automatically,
so the rows below are per clustered block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentEnv
from repro.net.bandwidth import WIFI, BandwidthPreset

__all__ = ["Fig4Row", "run", "render"]


@dataclass(frozen=True)
class Fig4Row:
    """One clustered block of AlexNet."""

    index: int
    block: str
    mobile_ms: float        # time to compute this block on the mobile device
    comm_ms: float          # time to upload this block's output
    cloud_ms: float         # time to compute this block on the cloud


def run(
    env: ExperimentEnv | None = None,
    model: str = "alexnet",
    bandwidth: BandwidthPreset = WIFI,
) -> list[Fig4Row]:
    env = env or ExperimentEnv()
    table = env.cost_table(model, bandwidth)
    if table.graph is None:
        raise ValueError("Fig. 4 requires a line-clusterable model")
    rows: list[Fig4Row] = []
    previous_f = previous_cloud = 0.0
    for index, position in enumerate(table.positions):
        if index == 0:
            continue  # skip the Input pseudo-layer
        cloud = float(table.cloud[index]) - previous_cloud
        rows.append(
            Fig4Row(
                index=index,
                block=position,
                mobile_ms=(float(table.f[index]) - previous_f) * 1e3,
                comm_ms=float(table.g[index]) * 1e3,
                cloud_ms=cloud * 1e3,
            )
        )
        previous_f = float(table.f[index])
        previous_cloud = float(table.cloud[index])
    return rows


def render(rows: list[Fig4Row]) -> str:
    body = [(r.index, r.block, r.mobile_ms, r.comm_ms, r.cloud_ms) for r in rows]
    table = format_table(
        headers=["layer", "block", "mobile comp (ms)", "comm (ms)", "cloud comp (ms)"],
        rows=body,
        title="Fig. 4 — AlexNet per-layer time consumption",
        float_format="{:.2f}",
    )
    max_cloud = max(r.cloud_ms for r in rows)
    min_other = min(min(r.mobile_ms for r in rows[1:]), rows[0].comm_ms)
    footer = (
        f"\nmax cloud time {max_cloud:.3f} ms vs min mobile/comm {min_other:.2f} ms "
        f"-> cloud computation is negligible (Fig. 4a)"
    )
    return table + footer


if __name__ == "__main__":
    print(render(run()))
