"""ASCII line plots so benchmark artifacts resemble the paper's figures.

`pytest-benchmark` artifacts are plain text; these renderers draw the
Fig.-13/Fig.-14 curves as terminal plots (one glyph per series, optional
log-y like the paper's Fig. 13) in addition to the numeric tables.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_plot", "sparkline"]

_GLYPHS = "ox+*#@%&"
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line trend glyphs (``repro fleet --watch`` footer rows)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in values
    )


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def line_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render curves as an ASCII scatter-line plot.

    All series must be positive when ``log_y`` is set. X positions are
    mapped by value (not index), so unevenly spaced sweeps render
    faithfully.
    """
    if not xs or not series:
        raise ValueError("need at least one x value and one series")
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(f"series {name!r} length {len(values)} != {len(xs)}")
        if log_y and any(v <= 0 for v in values):
            raise ValueError(f"series {name!r} has non-positive values under log_y")

    flat = [v for values in series.values() for v in values]
    y_lo, y_hi = min(flat), max(flat)
    x_lo, x_hi = min(xs), max(xs)
    grid = [[" "] * width for _ in range(height)]

    for glyph, (name, values) in zip(_GLYPHS, series.items()):
        for x, y in zip(xs, values):
            col = round(_scale(x, x_lo, x_hi, False) * (width - 1))
            row = round((1 - _scale(y, y_lo, y_hi, log_y)) * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}|")
    lines.append(f"{' ' * margin}+{'-' * width}+")
    lines.append(f"{' ' * margin} {x_lo:g}{'':>{max(width - 12, 1)}}{x_hi:g}")
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, series.keys())
    )
    lines.append(f"{' ' * margin} {legend}" + ("  (log y)" if log_y else ""))
    return "\n".join(lines)
