"""fig_cloud: batch-size × arrival-rate sweep of the shared batching cloud.

The ISSUE 7 question, asked systematically: *how much does
hold-and-batch buy once N gateways contend for one slow cloud GPU?*
Every cell runs the contended-cloud scenario
(:func:`repro.fleet.contended_cloud_scenario`) on the **identical**
seeded arrival stream, varying only the per-client Poisson rate and the
GPU's ``max_batch``. The ``max_batch=1`` column runs the ``serve_now``
policy — exactly the unbatched dispatch, the capacity baseline — so
each row reads as "what batching adds at this load": within-deadline
counts climb and p99 falls as the per-batch launch overhead amortizes.

All cells share one :class:`~repro.engine.PlanningEngine`; the cloud
slowdown is invisible to the planner by design (the contention the cost
model cannot see), so planning cost stays one warm cache hit per cell.
"""

from __future__ import annotations

from repro.engine import PlanningEngine
from repro.fleet import contended_cloud_scenario, run_system
from repro.utils.rng import DEFAULT_SEED

__all__ = ["run", "render", "BATCH_SIZES", "LOADS"]

#: GPU max-batch knob swept on the x-axis (1 = the serve-now baseline).
BATCH_SIZES = (1, 2, 4, 8)

#: Per-client Poisson rates (req/s) swept on the y-axis.
LOADS = (2.0, 3.0, 4.0)


def run(
    servers: int = 4,
    clients: int = 16,
    gpus: int = 1,
    horizon: float = 6.0,
    deadline: float = 1.0,
    max_wait: float = 0.25,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    loads: tuple[float, ...] = LOADS,
    seed: int = DEFAULT_SEED,
    planner: PlanningEngine | None = None,
) -> dict:
    """Sweep the grid; returns a JSON-safe document."""
    planner = planner or PlanningEngine()
    cells: list[dict] = []
    for load in loads:
        for max_batch in batch_sizes:
            config = contended_cloud_scenario(
                servers=servers,
                clients=clients,
                gpus=gpus,
                max_batch=max_batch,
                max_wait=max_wait,
                policy="serve_now" if max_batch == 1 else "batch",
                rate=load,
                horizon=horizon,
                deadline=deadline,
                seed=seed,
            )
            report = run_system(config, planner=planner)
            gpu_stats = report.fleet["cloud"]["servers"]
            batches = sum(gpu["batches"] for gpu in gpu_stats)
            items = sum(gpu["batched_requests"] for gpu in gpu_stats)
            cells.append(
                {
                    "max_batch": max_batch,
                    "load_per_client": load,
                    "arrivals": report.arrivals,
                    "served": report.served,
                    "within_deadline": report.within_deadline,
                    "deadline_rate": report.within_deadline
                    / max(report.arrivals, 1),
                    "p99_latency": report.p99_latency,
                    "sustained_rps": report.sustained_rps,
                    "mean_batch_size": items / batches if batches else 0.0,
                    "violations": len(report.violations)
                    + len(report.clock_violations),
                }
            )
    return {
        "servers": servers,
        "clients": clients,
        "gpus": gpus,
        "horizon": horizon,
        "deadline": deadline,
        "max_wait": max_wait,
        "cells": cells,
        "engine_cache": planner.stats_snapshot()["totals"],
    }


def render(document: dict) -> str:
    """ASCII table: one row per load, one column per max-batch."""
    batch_sizes = sorted({cell["max_batch"] for cell in document["cells"]})
    lines = [
        f"fig_cloud — {document['servers']} servers sharing "
        f"{document['gpus']} GPU(s), {document['clients']} clients, "
        f"horizon {document['horizon']:g}s, deadline "
        f"{document['deadline']:g}s, max-wait {document['max_wait']:g}s "
        f"(cells: within-deadline/arrivals @ p99; b=1 is serve-now)",
        f"{'load':>8s} " + " ".join(f"{f'b={b}':>18s}" for b in batch_sizes),
    ]
    by_key = {
        (cell["load_per_client"], cell["max_batch"]): cell
        for cell in document["cells"]
    }
    loads = sorted({cell["load_per_client"] for cell in document["cells"]})
    violations = 0
    for load in loads:
        row = f"{load:>6.1f}/s"
        for max_batch in batch_sizes:
            cell = by_key[(load, max_batch)]
            violations += cell["violations"]
            row += (
                f" {cell['within_deadline']:>5d}/{cell['arrivals']:<4d}"
                f"@{cell['p99_latency']:>5.2f}s"
            )
        lines.append(row)
    totals = document["engine_cache"]
    lines.append(
        f"invariant violations: {violations}; engine cache: "
        f"{totals['hits']} hits / {totals['misses']} misses "
        f"(hit rate {totals['hit_rate']:.2f})"
    )
    return "\n".join(lines)
