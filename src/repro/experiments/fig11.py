"""Fig. 11 — JPS versus brute-force optimal search.

AlexNet with measured costs, and the synthetic AlexNet′ whose
communication times are resampled from the fitted convex curve
(:func:`repro.profiling.latency.smooth_cost_table`). On AlexNet′ the
Theorem 5.3 regularity condition essentially holds, so JPS should track
the optimum; on raw AlexNet small gaps appear where adjacent-layer time
differences are drastic — both effects match the paper's discussion.

Brute force enumerates cut-position *multisets* (jobs are identical) —
``C(n+k-1, k-1)`` candidates, each scheduled optimally by Johnson's
rule — so modest job counts stay exact without the ``O(k^n)`` blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import brute_force
from repro.core.joint import jps_line
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentEnv
from repro.profiling.latency import CostTable, smooth_cost_table

__all__ = ["Fig11Row", "DEFAULT_JOB_COUNTS", "run", "render"]

DEFAULT_JOB_COUNTS = [2, 4, 8, 12]


@dataclass(frozen=True)
class Fig11Row:
    model: str
    n: int
    jps_s: float
    bf_s: float
    gap_percent: float
    bf_search_space: int


def _rows_for(table: CostTable, label: str, job_counts: list[int]) -> list[Fig11Row]:
    rows = []
    for n in job_counts:
        j = jps_line(table, n)
        bf = brute_force(table, n)
        rows.append(
            Fig11Row(
                model=label,
                n=n,
                jps_s=j.makespan,
                bf_s=bf.makespan,
                gap_percent=(j.makespan - bf.makespan) / bf.makespan * 100.0,
                bf_search_space=int(bf.metadata["search_space"]),
            )
        )
    return rows


def run(
    env: ExperimentEnv | None = None,
    bandwidth_mbps: float = 10.0,
    job_counts: list[int] | None = None,
) -> list[Fig11Row]:
    env = env or ExperimentEnv()
    counts = job_counts or DEFAULT_JOB_COUNTS
    table = env.cost_table("alexnet", bandwidth_mbps)
    prime = smooth_cost_table(table)
    return _rows_for(table, "AlexNet", counts) + _rows_for(prime, "AlexNet'", counts)


def render(rows: list[Fig11Row]) -> str:
    body = [
        (r.model, r.n, r.jps_s * 1e3, r.bf_s * 1e3, r.gap_percent, r.bf_search_space)
        for r in rows
    ]
    return format_table(
        headers=["model", "n", "JPS (ms)", "BF (ms)", "gap (%)", "BF space"],
        rows=body,
        title="Fig. 11 — JPS vs brute-force optimum",
        float_format="{:.2f}",
    )


if __name__ == "__main__":
    print(render(run()))
