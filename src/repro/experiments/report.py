"""Paper-style table and series formatting for the benchmark harness."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "reduction_vs"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.1f}",
) -> str:
    """Fixed-width text table (floats formatted, everything else str())."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    float_format: str = "{:.1f}",
) -> str:
    """A figure as a table: one x column plus one column per curve."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title, float_format=float_format)


def reduction_vs(baseline: float, value: float) -> float:
    """Latency reduction percentage relative to ``baseline`` (Table 1).

    Clamped at 0: a scheme that loses to the baseline reduces nothing
    (the paper reports 0 for those cells, e.g. PO on ResNet at 3G).
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be > 0, got {baseline}")
    return max(0.0, (baseline - value) / baseline * 100.0)
