"""Prediction-noise sensitivity: planning on estimates of varying quality.

The deployed scheduler never sees ground truth — it plans on a lookup
table and a regression fit from noisy measurements (§6.1). This
experiment sweeps the measurement noise level σ and reports how much
makespan the resulting plans lose against the ground-truth plan when
*executed* under true costs. The paper's implicit claim — a simple
lookup/regression estimator suffices — holds if the degradation stays
small at realistic noise levels (~5 %).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.joint import jps_line
from repro.core.scheduling import flow_shop_makespan, schedule_jobs
from repro.experiments.runner import ExperimentEnv
from repro.net.bandwidth import BandwidthPreset, FOUR_G
from repro.profiling.latency import line_cost_table
from repro.profiling.lookup import build_lookup_table
from repro.utils.rng import make_rng

__all__ = ["NoiseCell", "run", "render"]

DEFAULT_SIGMAS = [0.0, 0.02, 0.05, 0.10, 0.20, 0.40]


@dataclass(frozen=True)
class NoiseCell:
    model: str
    sigma: float
    trials: int
    mean_regret_percent: float   # executed makespan vs ground-truth plan
    worst_regret_percent: float


def _executed_under_truth(noisy_schedule, truth_table) -> float:
    """Re-price a noisy plan's cuts at ground truth and execute it."""
    executed = [
        replace(
            plan,
            compute_time=truth_table.stage_lengths(plan.cut_position)[0],
            comm_time=truth_table.stage_lengths(plan.cut_position)[1],
        )
        for plan in noisy_schedule.jobs
    ]
    # the device would re-run Johnson on its (noisy) beliefs; the *cut
    # choice* is the decision that matters, so re-order optimally under
    # truth to isolate partition regret from ordering regret
    return schedule_jobs(executed).makespan


def run(
    env: ExperimentEnv | None = None,
    models: list[str] | None = None,
    sigmas: list[float] | None = None,
    preset: BandwidthPreset = FOUR_G,
    n: int = 50,
    trials: int = 5,
) -> list[NoiseCell]:
    env = env or ExperimentEnv()
    chosen_models = models or ["alexnet", "mobilenet-v2"]
    chosen_sigmas = sigmas or DEFAULT_SIGMAS
    rng = make_rng(env.seed)
    cells: list[NoiseCell] = []
    channel = env.channel(preset)

    for model in chosen_models:
        network = env.network(model)
        if not env.treats_as_line(model):
            continue
        truth = line_cost_table(network, env.mobile, env.cloud, channel)
        baseline = jps_line(truth, n).makespan
        for sigma in chosen_sigmas:
            regrets = []
            for trial in range(trials):
                seed = int(rng.integers(0, 2**31))
                lookup = build_lookup_table(
                    [network], env.mobile, seed=seed, noise=sigma, repeats=3
                )
                noisy = line_cost_table(
                    network, env.mobile, env.cloud, channel,
                    predictor=lookup.predictor_for(network.name),
                )
                plan = jps_line(noisy, n)
                executed = _executed_under_truth(plan, truth)
                regrets.append((executed - baseline) / baseline * 100.0)
            cells.append(
                NoiseCell(
                    model=model,
                    sigma=sigma,
                    trials=trials,
                    mean_regret_percent=float(np.mean(regrets)),
                    worst_regret_percent=float(np.max(regrets)),
                )
            )
    return cells


def render(cells: list[NoiseCell]) -> str:
    from repro.experiments.report import format_table

    rows = [
        (c.model, f"{c.sigma:.0%}", c.trials, c.mean_regret_percent,
         c.worst_regret_percent)
        for c in cells
    ]
    return format_table(
        headers=["model", "noise σ", "trials", "mean regret (%)", "worst regret (%)"],
        rows=rows,
        title="Prediction-noise sensitivity — executed makespan vs ground-truth plan",
        float_format="{:.2f}",
    )
