"""Workload generators: job sets beyond the homogeneous n-at-time-0 case.

The paper's experiments use ``n`` identical jobs released together; the
examples and extension benches also need forced mixes (Fig. 14),
heterogeneous multi-model sets, and bursty arrival patterns. All
generators return plain :class:`JobPlan` lists so any scheduler in
:mod:`repro.core` can consume them.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import binary_search_cut
from repro.core.plans import JobPlan
from repro.profiling.latency import CostTable
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive

__all__ = [
    "uniform_jobs",
    "two_type_jobs",
    "ratio_mix",
    "heterogeneous_mix",
    "bursty_job_counts",
]


def _plan(table: CostTable, job_id: int, position: int) -> JobPlan:
    f, g = table.stage_lengths(position)
    return JobPlan(
        job_id=job_id,
        model=table.model_name,
        cut_position=position,
        compute_time=f,
        comm_time=g,
        cloud_time=table.cloud_rest(position),
        cut_label=table.positions[position],
        mobile_nodes=(
            table.mobile_nodes_at(position) if table.graph is not None else None
        ),
    )


def uniform_jobs(table: CostTable, position: int, n: int) -> list[JobPlan]:
    """``n`` identical jobs all cut at ``position``."""
    require_positive(n, "n")
    if not 0 <= position < table.k:
        raise IndexError(f"position must be in [0, {table.k})")
    return [_plan(table, i, position) for i in range(n)]


def two_type_jobs(
    table: CostTable, position_a: int, position_b: int, n_a: int, n_b: int
) -> list[JobPlan]:
    """``n_a`` jobs at ``position_a`` followed by ``n_b`` at ``position_b``."""
    if n_a < 0 or n_b < 0 or n_a + n_b == 0:
        raise ValueError("need non-negative counts with at least one job")
    plans = [_plan(table, i, position_a) for i in range(n_a)]
    plans += [_plan(table, n_a + i, position_b) for i in range(n_b)]
    return plans


def ratio_mix(table: CostTable, ratio: float, n: int) -> list[JobPlan]:
    """Fig.-14-style mix around the crossing layer.

    ``ratio`` = (# computation-heavy at l*) / (# communication-heavy at
    l*-1); both types kept non-empty.
    """
    require_positive(ratio, "ratio")
    require_positive(n, "n")
    l_star = binary_search_cut(table)
    if l_star == 0:
        raise ValueError(f"{table.model_name}: no communication-heavy layer to mix")
    n_comp = min(max(round(n * ratio / (1 + ratio)), 1), n - 1)
    return two_type_jobs(table, l_star - 1, l_star, n - n_comp, n_comp)


def heterogeneous_mix(groups: list[tuple[CostTable, int, int]]) -> list[JobPlan]:
    """Pool jobs from several models: (table, cut position, count) each."""
    if not groups:
        raise ValueError("need at least one group")
    plans: list[JobPlan] = []
    base = 0
    for table, position, count in groups:
        require_positive(count, "count")
        for index in range(count):
            plans.append(_plan(table, base + index, position))
        base += count
    return plans


def bursty_job_counts(
    bursts: int,
    mean_jobs: float,
    seed: int | np.random.Generator | None = None,
    minimum: int = 1,
) -> list[int]:
    """Poisson-distributed per-burst job counts (multi-camera frame bursts).

    Deterministic under a fixed seed; every burst has at least
    ``minimum`` jobs so downstream schedulers never see an empty set.
    """
    require_positive(bursts, "bursts")
    require_positive(mean_jobs, "mean_jobs")
    rng = make_rng(seed)
    return [max(int(v), minimum) for v in rng.poisson(mean_jobs, size=bursts)]
