"""Shared experiment environment: devices, channels, cached cost tables.

Every figure/table harness runs on the same :class:`ExperimentEnv` so
the schemes are compared under identical cost models. The environment
caches the bandwidth-independent structure of each model — the
linearized graph (or the Pareto cut set for general DAGs, whose
dominance relation is bandwidth-invariant because upload time is
monotone in payload bytes) — and instantiates per-bandwidth cost tables
cheaply, which keeps the Fig. 13 sweep over 80 bandwidths fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import cloud_only, local_only, partition_only
from repro.core.joint import jps_line
from repro.core.plans import Schedule
from repro.engine import PlanningEngine
from repro.dag.cuts import Cut, enumerate_frontier_cuts, prune_dominated
from repro.dag.transform import collapse_clusterable_blocks
from repro.net.bandwidth import BandwidthPreset, TrafficShaper
from repro.net.channel import Channel
from repro.nn.network import Network
from repro.nn.zoo import get_model
from repro.obs.tracer import NullTracer, Tracer
from repro.profiling.device import DeviceModel, gtx1080_server, raspberry_pi_4
from repro.profiling.latency import CostTable, cut_costs, line_cost_table
from repro.utils.units import mbps

__all__ = ["ExperimentEnv", "SCHEMES", "EXPERIMENT_MODELS"]

#: The four models of the paper's evaluation (§6.1), in figure order.
EXPERIMENT_MODELS = ["alexnet", "googlenet", "mobilenet-v2", "resnet18"]

#: Scheme labels in the paper's legend order.
SCHEMES = ["LO", "CO", "PO", "JPS"]


@dataclass
class _FrontierStructure:
    """Bandwidth-independent Pareto cut data for a general DAG."""

    cuts: list[Cut]
    f: np.ndarray
    transfer_bytes: np.ndarray
    cloud_of_mobile: np.ndarray
    full_cut_index: int


@dataclass
class ExperimentEnv:
    """Deterministic experiment context with model/table caches."""

    mobile: DeviceModel = field(default_factory=raspberry_pi_4)
    cloud: DeviceModel = field(default_factory=gtx1080_server)
    seed: int = 0
    tracer: Tracer | NullTracer = field(default_factory=NullTracer)

    def __post_init__(self) -> None:
        self._networks: dict[str, Network] = {}
        self._is_line: dict[str, bool] = {}
        self._frontier: dict[str, _FrontierStructure] = {}
        self._engine: PlanningEngine | None = None

    @property
    def engine(self) -> PlanningEngine:
        """A lazily-built planning engine on this env's device pair.

        Backs the batched sweep path (:meth:`run_scheme_batch`); its
        tables are bit-identical to :meth:`cost_table`, so batched and
        per-cell results interchange freely.
        """
        if self._engine is None:
            self._engine = PlanningEngine(
                mobile=self.mobile, cloud=self.cloud, tracer=self.tracer
            )
        return self._engine

    # ------------------------------------------------------------------
    def network(self, name: str) -> Network:
        if name not in self._networks:
            self._networks[name] = get_model(name)
        return self._networks[name]

    def channel(self, bandwidth: BandwidthPreset | float) -> Channel:
        """A channel at a preset or a raw uplink rate in Mbps."""
        if isinstance(bandwidth, BandwidthPreset):
            return Channel(shaper=TrafficShaper.from_preset(bandwidth))
        return Channel(
            shaper=TrafficShaper(uplink_bps=mbps(bandwidth), downlink_bps=mbps(2 * bandwidth))
        )

    def uplink_bps_of(self, bandwidth: BandwidthPreset | float) -> float:
        """The raw uplink rate :meth:`channel` would price with."""
        if isinstance(bandwidth, BandwidthPreset):
            return bandwidth.uplink_bps
        return mbps(bandwidth)

    def treats_as_line(self, name: str) -> bool:
        """True if virtual-block clustering linearizes the model (§3.2)."""
        if name not in self._is_line:
            clustered = collapse_clusterable_blocks(self.network(name).graph)
            self._is_line[name] = clustered.is_line()
        return self._is_line[name]

    # ------------------------------------------------------------------
    def _frontier_structure(self, name: str) -> _FrontierStructure:
        if name not in self._frontier:
            network = self.network(name)
            probe = self.channel(10.0)  # bandwidth only affects g, not dominance
            cuts = enumerate_frontier_cuts(network.graph)
            costs = cut_costs(network, cuts, self.mobile, self.cloud, probe)
            compute_of = {m: c[0] for m, c in costs.items()}
            surviving = prune_dominated(cuts, compute_of)
            surviving.sort(key=lambda c: compute_of[c.mobile])
            rests = np.array([costs[c.mobile][2] for c in surviving])
            self._frontier[name] = _FrontierStructure(
                cuts=surviving,
                f=np.array([costs[c.mobile][0] for c in surviving]),
                transfer_bytes=np.array([c.transfer_bytes for c in surviving]),
                cloud_of_mobile=np.maximum.accumulate(rests.max() - rests),
                full_cut_index=int(
                    np.argmax([len(c.mobile) for c in surviving])
                ),
            )
        return self._frontier[name]

    def cost_table(self, name: str, bandwidth: BandwidthPreset | float) -> CostTable:
        """The model's cost table at the given bandwidth.

        Line-clusterable models get the clustered line table; general
        DAGs (GoogLeNet) get the Pareto-frontier table, which every
        scheme (LO, CO, PO, JPS) consumes identically — PO on the
        frontier is the DAG generalization of the Neurosurgeon cut.
        """
        channel = self.channel(bandwidth)
        if self.treats_as_line(name):
            return line_cost_table(
                self.network(name), self.mobile, self.cloud, channel
            )
        structure = self._frontier_structure(name)
        g = np.array(
            [
                channel.uplink_time(b) if b > 0 else 0.0
                for b in structure.transfer_bytes
            ]
        )
        return CostTable(
            model_name=f"{name}/frontier",
            positions=tuple(c.label for c in structure.cuts),
            f=structure.f.copy(),
            g=g,
            cloud=structure.cloud_of_mobile.copy(),
            graph=None,
        )

    # ------------------------------------------------------------------
    def run_scheme(
        self, name: str, bandwidth: BandwidthPreset | float, n: int, scheme: str
    ) -> Schedule:
        """One (model, bandwidth, scheme) cell."""
        with self.tracer.span(
            "experiment/cell",
            lane=("experiments", scheme),
            model=name,
            bandwidth=str(bandwidth),
            n=n,
            scheme=scheme,
        ):
            return self._run_scheme(name, bandwidth, n, scheme)

    def _run_scheme(
        self, name: str, bandwidth: BandwidthPreset | float, n: int, scheme: str
    ) -> Schedule:
        table = self.cost_table(name, bandwidth)
        if scheme == "LO":
            return local_only(table, n)
        if scheme == "CO":
            return cloud_only(table, n)
        if scheme == "PO":
            return partition_only(table, n)
        if scheme == "JPS":
            return jps_line(table, n)
        if scheme == "JPS-ratio":
            return jps_line(table, n, split="ratio")
        raise ValueError(f"unknown scheme {scheme!r}")

    def run_scheme_batch(
        self,
        name: str,
        bandwidths: list[BandwidthPreset | float],
        n: int,
        scheme: str,
    ) -> list[Schedule]:
        """One scheme across a whole bandwidth vector, vectorized.

        Routes through :meth:`PlanningEngine.plan_batch`, so the whole
        vector prices one cached bandwidth-independent kernel and each
        rate pays only the ``searchsorted`` crossing + matrix split.
        Bit-identical to calling :meth:`run_scheme` per bandwidth
        (``wrap_frontier=False`` keeps the harnesses' historical plain
        ``"JPS"`` schedules on frontier tables).
        """
        rates = [self.uplink_bps_of(b) for b in bandwidths]
        with self.tracer.span(
            "experiment/batch",
            lane=("experiments", scheme),
            model=name,
            n=n,
            scheme=scheme,
            cells=len(rates),
        ):
            split = "ratio" if scheme == "JPS-ratio" else "exact"
            chosen = "JPS" if scheme == "JPS-ratio" else scheme
            return self.engine.plan_batch(
                name, n, rates, scheme=chosen, split=split, wrap_frontier=False
            )

    def scheme_grid(
        self,
        models: list[str],
        bandwidth: BandwidthPreset | float,
        n: int,
        schemes: list[str] | None = None,
    ) -> dict[str, dict[str, Schedule]]:
        """{model: {scheme: Schedule}} for one bandwidth."""
        chosen = schemes or SCHEMES
        return {
            model: {scheme: self.run_scheme(model, bandwidth, n, scheme) for scheme in chosen}
            for model in models
        }
