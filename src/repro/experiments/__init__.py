"""Experiment harness: one module per table/figure of the paper's §6."""

from repro.experiments import (
    ascii_plot,
    campaign,
    fig4,
    fig11,
    fig12,
    fig13,
    fig14,
    fig_cloud,
    fig_fleet,
    fig_serving,
    noise,
    table1,
    workloads,
)
from repro.experiments.runner import EXPERIMENT_MODELS, SCHEMES, ExperimentEnv

__all__ = [
    "ascii_plot",
    "campaign",
    "EXPERIMENT_MODELS",
    "ExperimentEnv",
    "SCHEMES",
    "fig4",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig_cloud",
    "fig_fleet",
    "fig_serving",
    "noise",
    "table1",
    "workloads",
]
