"""Brute-force differential oracle for the true DAG partitioner.

Mirrors :mod:`repro.faults.oracle` (the PR-5 line oracle) for general
DAGs: enumerate **all** ``2^m`` node assignments with bitmasks, keep the
valid cuts (downward-closed, sources on the device), price each with its
own per-tail loops, and score every job assignment × execution order
with the critical-path identity

    ``C_max = max_j ( sum_{i<=j} f_i + sum_{i>=j} g_i )``

— an algebraic form of the two-stage flow-shop makespan that shares no
code with the simulator recurrence or the partitioner, so agreement is
evidence, not tautology. Instances from :func:`random_dag` use dyadic
node times, integer byte volumes, and power-of-two channel rates, making
every float sum exact and oracle-vs-partitioner comparison bit-exact.

The job count is clamped so the menu (multisets of Pareto cuts × their
permutations) stays under ``max_evaluations``; the clamped count is
reported and :func:`check_dag_instance` runs the partitioner at the same
count, keeping the comparison apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement, permutations
from math import comb, factorial
from typing import Callable, Mapping

import numpy as np

from repro.dag.graph import Dag
from repro.dag.partition import (
    DEFAULT_MAX_ASSIGNMENTS,
    _validate_plan_cuts,
    duplication_schedule,
    partition_dag,
)
from repro.utils.validation import require_positive

__all__ = [
    "TOLERANCE",
    "DagInstance",
    "DagOracleResult",
    "DagInstanceCheck",
    "random_dag",
    "dag_exhaustive_optimal",
    "check_dag_instance",
]

#: Makespan agreement tolerance; dyadic-grid instances land exactly on 0.
TOLERANCE = 1e-9

#: Node count past which 2^m enumeration is refused outright.
MAX_ORACLE_NODES = 16


def random_dag(rng: np.random.Generator, num_nodes: int, name: str = "oracle-dag") -> Dag:
    """A random single-source/single-sink DAG with integer byte volumes.

    Nodes ``v00..v{m-1}`` are created in topological order; every node
    after the source draws 1–3 predecessors among earlier nodes, and any
    dangling non-final node is wired into the sink so the graph admits
    the Fig.-9 path conversion. Volumes are integers in ``[1, 1024]`` —
    on the dyadic parameter grid every downstream float sum is exact.
    """
    require_positive(num_nodes - 1, "num_nodes - 1")
    dag = Dag(name=name)
    names = [f"v{i:02d}" for i in range(num_nodes)]
    for node in names:
        dag.add_node(node)
    for i in range(1, num_nodes):
        fan_in = int(rng.integers(1, min(i, 3) + 1))
        for j in sorted(rng.choice(i, size=fan_in, replace=False).tolist()):
            dag.add_edge(names[j], names[i], volume=float(rng.integers(1, 1025)))
    for i in range(1, num_nodes - 1):
        if dag.out_degree(names[i]) == 0:
            dag.add_edge(names[i], names[-1], volume=float(rng.integers(1, 1025)))
    return dag


@dataclass(frozen=True)
class DagInstance:
    """A self-contained oracle instance on the dyadic parameter grid.

    ``node_time`` maps node id to mobile seconds (multiples of 1/1024,
    the source pinned to 0 like the line tables' input pseudo-layer) and
    ``seconds_per_byte`` is a power of two, so makespans compare with
    ``==`` across the oracle, the partitioner, and the corpus JSON.
    """

    dag: Dag
    node_time: Mapping[str, float]
    seconds_per_byte: float
    n: int

    def node_cost(self, node_id: str) -> float:
        return self.node_time[node_id]

    def upload_time(self, num_bytes: float) -> float:
        return num_bytes * self.seconds_per_byte


@dataclass(frozen=True)
class DagOracleResult:
    """Exhaustive optimum: makespan, witness assignment, search size."""

    makespan: float
    assignment: tuple[frozenset[str], ...]
    n_used: int
    evaluations: int
    num_closed_sets: int
    num_pareto: int


def _closed_masks(dag: Dag) -> tuple[list[str], list[int]]:
    """All downward-closed node sets containing every source, as bitmasks."""
    order = dag.topological_order()
    index = {v: i for i, v in enumerate(order)}
    pred_mask = [0] * len(order)
    for v in order:
        for p in dag.predecessors(v):
            pred_mask[index[v]] |= 1 << index[p]
    source_mask = 0
    for v in dag.sources():
        source_mask |= 1 << index[v]
    masks = []
    for mask in range(1 << len(order)):
        if mask & source_mask != source_mask:
            continue
        remaining = mask
        valid = True
        while remaining:
            low = remaining & -remaining
            if pred_mask[low.bit_length() - 1] & ~mask:
                valid = False
                break
            remaining ^= low
        if valid:
            masks.append(mask)
    return order, masks


def dag_exhaustive_optimal(
    dag: Dag,
    node_time: Mapping[str, float],
    upload_time: Callable[[float], float],
    n: int,
    max_evaluations: int = 5_000_000,
) -> DagOracleResult:
    """Ground-truth optimum over all cuts × assignments × orders.

    Enumerates every valid bitmask cut with its own per-tail pricing
    loops (shared tensors counted once per crossing tail), prunes
    (f, g)-dominated cuts — safe because the makespan identity is
    monotone in both stage lengths — and scores every multiset of
    surviving cuts under every distinct execution order with the
    critical-path identity. ``n`` is clamped down until the menu fits
    ``max_evaluations``; the result records the count actually used.
    """
    require_positive(n, "n")
    if len(dag) > MAX_ORACLE_NODES:
        raise ValueError(
            f"oracle enumerates 2^m assignments; {len(dag)} nodes > {MAX_ORACLE_NODES}"
        )
    order, masks = _closed_masks(dag)
    index = {v: i for i, v in enumerate(order)}
    times = [float(node_time[v]) for v in order]
    successors = [
        [(index[s], dag.volume(v, s)) for s in dag.successors(v)] for v in order
    ]

    priced: list[tuple[float, float, int]] = []
    for mask in masks:
        f = 0.0
        transfer = 0.0
        for i, v in enumerate(order):
            if not mask >> i & 1:
                continue
            f += times[i]
            crossing = [vol for j, vol in successors[i] if not mask >> j & 1]
            if crossing:
                transfer += max(crossing)
        g = upload_time(transfer) if transfer > 0 else 0.0
        priced.append((f, g, mask))

    priced.sort(key=lambda t: (t[0], t[1], t[2]))
    pareto: list[tuple[float, float, int]] = []
    best_g = float("inf")
    for f, g, mask in priced:
        if g < best_g:
            pareto.append((f, g, mask))
            best_g = g

    n_used = n
    while n_used > 1 and comb(len(pareto) + n_used - 1, n_used) * factorial(
        n_used
    ) > max_evaluations:
        n_used -= 1

    best = float("inf")
    best_order: tuple[tuple[float, float, int], ...] = ()
    evaluations = 0
    for combo in combinations_with_replacement(pareto, n_used):
        orders = sorted(set(permutations(combo)))
        evaluations += len(orders)
        if evaluations > max_evaluations:
            raise ValueError(
                f"exhaustive DAG search exceeded {max_evaluations} evaluations"
            )
        rows = np.array(orders)
        spans = (
            np.cumsum(rows[:, :, 0], axis=1)
            + np.cumsum(rows[:, ::-1, 1], axis=1)[:, ::-1]
        ).max(axis=1)
        winner = int(spans.argmin())
        if spans[winner] < best:
            best = float(spans[winner])
            best_order = orders[winner]

    assignment = tuple(
        frozenset(v for i, v in enumerate(order) if int(mask) >> i & 1)
        for _, _, mask in best_order
    )
    return DagOracleResult(
        makespan=best,
        assignment=assignment,
        n_used=n_used,
        evaluations=evaluations,
        num_closed_sets=len(masks),
        num_pareto=len(pareto),
    )


@dataclass(frozen=True)
class DagInstanceCheck:
    """One differential comparison: partitioner vs oracle vs duplication."""

    nodes: int
    edges: int
    n: int
    exact: bool
    partition_makespan: float
    duplication_makespan: float
    oracle_makespan: float | None
    mismatches: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def improvement(self) -> float:
        """How much the true partitioner beats the Fig.-9 baseline."""
        return self.duplication_makespan - self.partition_makespan


def check_dag_instance(
    instance: DagInstance,
    exact_limit: int = 10,
    max_evaluations: int = 5_000_000,
) -> DagInstanceCheck:
    """Run the three-way differential on one instance.

    On instances with ``<= exact_limit`` nodes the partitioner (exact
    closure enumeration + exact scheduling menu) must match the
    brute-force oracle bit-for-bit; on every instance it must price no
    worse than the Fig.-9 duplication baseline, and each emitted plan's
    cut must be executable (downward-closed, sources mobile).
    """
    dag = instance.dag
    exact = len(dag) <= exact_limit
    oracle = None
    n_used = instance.n
    if exact:
        oracle = dag_exhaustive_optimal(
            dag,
            instance.node_time,
            instance.upload_time,
            instance.n,
            max_evaluations=max_evaluations,
        )
        n_used = oracle.n_used
    partitioned = partition_dag(
        dag,
        instance.node_cost,
        instance.upload_time,
        n_used,
        schedule="exact" if exact else "auto",
        max_assignments=max_evaluations if exact else DEFAULT_MAX_ASSIGNMENTS,
    )
    baseline = duplication_schedule(dag, instance.node_cost, instance.upload_time, n_used)

    mismatches = list(_validate_plan_cuts(dag, partitioned))
    if oracle is not None and abs(partitioned.makespan - oracle.makespan) > TOLERANCE:
        mismatches.append(
            f"partitioner {partitioned.makespan!r} != oracle {oracle.makespan!r}"
        )
    if partitioned.makespan > baseline.makespan + TOLERANCE:
        mismatches.append(
            f"partitioner {partitioned.makespan!r} prices worse than "
            f"duplication {baseline.makespan!r}"
        )
    return DagInstanceCheck(
        nodes=len(dag),
        edges=dag.num_edges(),
        n=n_used,
        exact=exact,
        partition_makespan=partitioned.makespan,
        duplication_makespan=baseline.makespan,
        oracle_makespan=None if oracle is None else oracle.makespan,
        mismatches=tuple(mismatches),
    )
