"""Topology queries on DNN DAGs: paths, separators, series-parallel blocks.

Three queries drive the partition machinery:

* **path enumeration** — Alg. 3 of the paper converts a general DAG into
  independent source→sink paths (Fig. 9); each path is then partitioned
  like a line-structure DNN.
* **separators** — nodes every source→sink path passes through. Cutting
  *after* a separator is the only way to cut a general DAG with a single
  layer index, and separators delimit the parallel blocks used by the
  exact frontier-cut enumerator (:mod:`repro.dag.cuts`).
* **parallel blocks** — the sub-DAGs between consecutive separators.
  Inside a block, source→sink paths are independent branches (e.g. the
  four branches of a GoogLeNet Inception module).

Path counts are computed with exact integer dynamic programming (Python
bigints), so separator detection is correct even for graphs whose path
count overflows ``float64`` (full GoogLeNet has ~4^9 global paths).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.dag.graph import Dag

__all__ = [
    "PathExplosionError",
    "ParallelBlock",
    "count_paths",
    "enumerate_paths",
    "separators",
    "parallel_blocks",
]


class PathExplosionError(RuntimeError):
    """Raised when path enumeration would exceed the caller's cap."""


def _single_endpoints(dag: Dag) -> tuple[str, str]:
    sources = dag.sources()
    sinks = dag.sinks()
    if len(sources) != 1 or len(sinks) != 1:
        raise ValueError(
            f"{dag.name!r} must have exactly one source and one sink "
            f"(got {len(sources)} sources, {len(sinks)} sinks); "
            "DNN computation graphs have a single input and output layer"
        )
    return sources[0], sinks[0]


def count_paths(dag: Dag) -> int:
    """Exact number of source→sink paths (single-source/sink DAGs)."""
    source, sink = _single_endpoints(dag)
    counts: dict[str, int] = {source: 1}
    for v in dag.topological_order():
        c = counts.get(v, 0)
        if c == 0 and v != source:
            continue  # unreachable from the source
        for w in dag.successors(v):
            counts[w] = counts.get(w, 0) + c
    return counts.get(sink, 0)


def enumerate_paths(dag: Dag, max_paths: int | None = None) -> list[list[str]]:
    """All source→sink paths, each as a list of node ids.

    Raises :class:`PathExplosionError` when the exact path count exceeds
    ``max_paths`` — checked *before* enumeration so callers never pay for
    a doomed traversal.
    """
    total = count_paths(dag)
    if max_paths is not None and total > max_paths:
        raise PathExplosionError(
            f"{dag.name!r} has {total} source→sink paths, exceeding cap {max_paths}"
        )
    source, sink = _single_endpoints(dag)
    paths: list[list[str]] = []
    stack: list[str] = [source]

    def _walk(v: str) -> None:
        if v == sink:
            paths.append(list(stack))
            return
        for w in dag.successors(v):
            stack.append(w)
            _walk(w)
            stack.pop()

    _walk(source)
    return paths


def iter_paths(dag: Dag) -> Iterator[list[str]]:
    """Lazily yield source→sink paths (no cap; caller controls consumption)."""
    source, sink = _single_endpoints(dag)
    stack: list[str] = [source]

    def _walk(v: str) -> Iterator[list[str]]:
        if v == sink:
            yield list(stack)
            return
        for w in dag.successors(v):
            stack.append(w)
            yield from _walk(w)
            stack.pop()

    yield from _walk(source)


def separators(dag: Dag) -> list[str]:
    """Nodes through which *every* source→sink path passes, in topo order.

    A node ``v`` is a separator iff ``paths(source→v) * paths(v→sink)``
    equals the total path count. The source and sink are always
    separators. For a line-structure DAG every node is a separator.
    """
    source, sink = _single_endpoints(dag)
    order = dag.topological_order()

    fwd: dict[str, int] = {source: 1}
    for v in order:
        c = fwd.get(v, 0)
        for w in dag.successors(v):
            fwd[w] = fwd.get(w, 0) + c

    bwd: dict[str, int] = {sink: 1}
    for v in reversed(order):
        c = bwd.get(v, 0)
        for u in dag.predecessors(v):
            bwd[u] = bwd.get(u, 0) + c

    total = fwd.get(sink, 0)
    if total == 0:
        raise ValueError(f"{dag.name!r}: sink unreachable from source")
    return [v for v in order if fwd.get(v, 0) * bwd.get(v, 0) == total]


@dataclass(frozen=True)
class ParallelBlock:
    """The sub-DAG strictly between two consecutive separators.

    ``branches`` are the entry→exit paths with the endpoints stripped;
    each branch is a chain of interior node ids. A block with a single
    empty branch is just the edge ``entry -> exit``.
    """

    entry: str
    exit: str
    branches: tuple[tuple[str, ...], ...]

    @property
    def is_trivial(self) -> bool:
        """True when the block is a single direct edge (no interior nodes)."""
        return all(len(b) == 0 for b in self.branches)

    def interior_nodes(self) -> set[str]:
        return {v for branch in self.branches for v in branch}


def parallel_blocks(dag: Dag, max_paths_per_block: int = 4096) -> list[ParallelBlock]:
    """Decompose a single-source/sink DAG into blocks between separators.

    The concatenation ``sep_0, block_0, sep_1, block_1, ..., sep_m`` covers
    every node exactly once (separators as the joints). For graphs that are
    series-parallel — every model in :mod:`repro.nn.zoo` is — the branches
    within each block are vertex-disjoint chains, which
    :func:`repro.dag.cuts.enumerate_frontier_cuts` relies on.

    ``max_paths_per_block`` bounds per-block path enumeration; blocks in
    real DNNs have a handful of branches (4 for Inception, 2 for residual
    blocks), so the default is generous.
    """
    seps = separators(dag)
    blocks: list[ParallelBlock] = []
    for entry, exit_ in zip(seps, seps[1:]):
        branches: list[tuple[str, ...]] = []
        # Walk every path from entry to exit_ without crossing another
        # separator (there is none strictly between consecutive separators).
        stack: list[str] = []

        def _walk(v: str) -> None:
            if v == exit_:
                branches.append(tuple(stack[:-1]))  # exclude the exit separator
                return
            if len(branches) > max_paths_per_block:
                raise PathExplosionError(
                    f"block {entry!r}->{exit_!r} exceeds {max_paths_per_block} branches"
                )
            for w in dag.successors(v):
                stack.append(w)
                _walk(w)
                stack.pop()

        for w in dag.successors(entry):
            stack.append(w)
            _walk(w)
            stack.pop()
        blocks.append(ParallelBlock(entry=entry, exit=exit_, branches=tuple(branches)))
    return blocks


def is_series_parallel(dag: Dag, max_paths_per_block: int = 4096) -> bool:
    """True if every parallel block's branches are vertex-disjoint chains.

    This is the structural precondition for the exact frontier-cut
    enumerator. Residual blocks, Inception modules, and MobileNet
    bottlenecks all satisfy it; an arbitrary DAG need not.
    """
    try:
        blocks = parallel_blocks(dag, max_paths_per_block=max_paths_per_block)
    except (PathExplosionError, ValueError):
        return False
    for block in blocks:
        seen: set[str] = set()
        for branch in block.branches:
            for v in branch:
                if v in seen:
                    return False
                seen.add(v)
            # each branch must be a chain inside the block
            for a, b in zip(branch, branch[1:]):
                if not dag.has_edge(a, b):
                    return False
        if seen != block.interior_nodes():
            return False
    return True
