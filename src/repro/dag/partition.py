"""True DAG partitioning: price the real cut, not the Fig.-9 duplication.

The paper's Alg. 3 forces a general DAG into independent paths by
duplicating every shared node (Fig. 9), which over-ships shared tensors
(a tensor feeding two branches is uploaded once per path that crosses
the cut) and over-counts duplicated work. This module partitions the
*original* DAG instead: each node is assigned to mobile or cloud, a
valid assignment is a downward-closed node set containing every source
(the input tensor originates on the device), and the upload stage is
priced by :func:`repro.dag.cuts.cut_transfer_bytes` — each crossing
tensor shipped **once**.

Candidate generation has two regimes:

* **exact closure enumeration** — BFS over the lattice of downward-closed
  sets (single-node extensions). Complete whenever the lattice fits in
  ``max_states``; with the exact scheduling menu this makes the
  partitioner provably optimal under the two-stage pipeline model
  (locked against the brute-force oracle in ``repro.dag.oracle``).
* **contiguous-split DP + critical-path refinement** — when the lattice
  is too large, seed with every prefix of the topological order (the
  contiguous-split DP of *Efficient Algorithms for Device Placement of
  DNN Graph Operators*: exact on graphs where an optimal cut is a
  topo-prefix, e.g. single-entry/single-exit chains of blocks) and
  locally expand the Pareto frontier, exploring nodes on the
  compute-weighted critical path first (*It's the Critical Path!*).

Scheduling reuses the two-stage flow-shop machinery: either an exact
menu search (every multiset of Pareto cuts, Johnson-ordered — optimal
for a fixed cut set) or the line-table two-cut split plus a best-uniform
floor. The Fig.-9 baseline is kept as :func:`duplication_schedule` for
differential comparison; :func:`partition_dag` seeds its (repaired)
mobile set into the candidate pool, so the true partitioner never
prices worse than the duplication transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from math import comb
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.partition import binary_search_cut, split_exact
from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import johnson_order_scalar
from repro.dag.cuts import Cut, cut_transfer_bytes, is_downward_closed, make_cut, prune_dominated
from repro.dag.graph import Dag
from repro.dag.metrics import critical_path
from repro.dag.topology import PathExplosionError
from repro.dag.transform import to_independent_paths
from repro.profiling.latency import CostTable
from repro.utils.validation import require_positive

__all__ = [
    "NodeCost",
    "UploadModel",
    "topo_prefix_sets",
    "enumerate_closed_sets",
    "refine_closed_sets",
    "dag_pareto_cuts",
    "DagCutTable",
    "dag_cut_table",
    "unique_cut_labels",
    "dag_schedule_from_table",
    "partition_dag",
    "duplication_mobile_set",
    "duplication_schedule",
]

#: Per-node mobile compute time (seconds).
NodeCost = Callable[[str], float]
#: Upload time (seconds) of a payload in bytes. Must be non-decreasing.
UploadModel = Callable[[float], float]

#: Closed-set enumeration budget: 4096 states cover every DAG with
#: <= 12 nodes exhaustively (2^12 sets) and most sparser larger ones.
DEFAULT_MAX_STATES = 4096

#: Exact-menu scheduling budget: multisets of Pareto cuts evaluated.
DEFAULT_MAX_ASSIGNMENTS = 100_000

#: Strict-improvement threshold shared with the split optimizers.
_IMPROVEMENT = 1e-15


# ----------------------------------------------------------------------
# candidate closed sets
# ----------------------------------------------------------------------
def topo_prefix_sets(dag: Dag) -> list[frozenset[str]]:
    """Every prefix of the topological order that contains all sources.

    Prefixes of a topological order are downward-closed by construction,
    and Kahn's queue lists every source before any derived node, so the
    valid prefixes are exactly lengths ``#sources .. |V|``. This is the
    candidate set of the contiguous-split DP: optimal whenever some
    optimal cut is order-contiguous (always true for lines; for general
    DAGs it is the seed the refinement pass improves on).
    """
    order = dag.topological_order()
    first = len(dag.sources())
    return [frozenset(order[:length]) for length in range(first, len(order) + 1)]


def enumerate_closed_sets(
    dag: Dag, max_states: int = DEFAULT_MAX_STATES
) -> tuple[list[frozenset[str]], bool]:
    """BFS over the lattice of downward-closed sets containing all sources.

    Each state expands by adding one *eligible* node (all predecessors
    already inside), so every downward-closed superset of the source set
    is reachable. Returns ``(sets, exhaustive)``: when the lattice fits
    in ``max_states`` the enumeration is complete and ``exhaustive`` is
    True; otherwise the truncated set list is only a sample and the
    caller should fall back to :func:`refine_closed_sets`.
    """
    require_positive(max_states, "max_states")
    position = {v: i for i, v in enumerate(dag.topological_order())}
    base = frozenset(dag.sources())
    seen: dict[frozenset[str], None] = {base: None}
    queue: list[frozenset[str]] = [base]
    cursor = 0
    while cursor < len(queue):
        current = queue[cursor]
        cursor += 1
        eligible = sorted(
            (
                v
                for v in dag.node_ids
                if v not in current
                and all(p in current for p in dag.predecessors(v))
            ),
            key=position.__getitem__,
        )
        for v in eligible:
            grown = current | {v}
            if grown in seen:
                continue
            if len(seen) >= max_states:
                return list(seen), False
            seen[grown] = None
            queue.append(grown)
    return list(seen), True


def _repair_closed(dag: Dag, nodes: Iterable[str]) -> frozenset[str]:
    """Largest downward-closed subset of ``nodes`` (plus all sources).

    A node survives only if every ancestor is also present — the same
    repair :func:`repro.core.general.alg3_consistent_plans` applies to
    Alg. 3's union-of-path-prefixes to make it physically executable.
    """
    pool = set(nodes) | set(dag.sources())
    return frozenset(v for v in pool if dag.ancestors(v) <= pool)


def refine_closed_sets(
    dag: Dag,
    node_time: NodeCost,
    seeds: Iterable[frozenset[str]],
    max_states: int = DEFAULT_MAX_STATES,
) -> list[frozenset[str]]:
    """Critical-path-guided local search over downward-closed sets.

    Starting from ``seeds`` (topo prefixes, the repaired duplication
    set, ...), repeatedly expand every (compute, transfer-bytes)
    Pareto-optimal set by one-node additions and removals until no new
    Pareto set appears or ``max_states`` distinct sets were examined.
    Nodes on the compute-weighted critical path are tried first: moving
    the cut along the heaviest chain is what shifts the compute/upload
    trade-off fastest, so those neighbors survive the budget cut.
    """
    require_positive(max_states, "max_states")
    position = {v: i for i, v in enumerate(dag.topological_order())}
    on_critical = set(critical_path(dag, node_time)[0])
    sources = set(dag.sources())

    def neighbor_rank(v: str) -> tuple[int, int]:
        return (0 if v in on_critical else 1, position[v])

    costs: dict[frozenset[str], tuple[float, float]] = {}

    def cost(mobile: frozenset[str]) -> tuple[float, float]:
        if mobile not in costs:
            costs[mobile] = (
                sum(node_time(v) for v in mobile),
                cut_transfer_bytes(dag, mobile),
            )
        return costs[mobile]

    for seed in seeds:
        if len(costs) >= max_states:
            break
        cost(seed)

    while True:
        ranked = sorted(costs, key=lambda m: (*costs[m], sorted(m)))
        pareto: list[frozenset[str]] = []
        best_bytes = float("inf")
        for mobile in ranked:
            if costs[mobile][1] < best_bytes:
                pareto.append(mobile)
                best_bytes = costs[mobile][1]
        grew = False
        for mobile in pareto:
            additions = sorted(
                (
                    v
                    for v in dag.node_ids
                    if v not in mobile
                    and all(p in mobile for p in dag.predecessors(v))
                ),
                key=neighbor_rank,
            )
            removals = sorted(
                (
                    v
                    for v in mobile
                    if v not in sources
                    and not any(s in mobile for s in dag.successors(v))
                ),
                key=neighbor_rank,
            )
            for v in additions:
                candidate = mobile | {v}
                if candidate not in costs:
                    if len(costs) >= max_states:
                        return list(costs)
                    cost(candidate)
                    grew = True
            for v in removals:
                candidate = mobile - {v}
                if candidate not in costs:
                    if len(costs) >= max_states:
                        return list(costs)
                    cost(candidate)
                    grew = True
        if not grew:
            return list(costs)


def dag_pareto_cuts(
    dag: Dag,
    node_time: NodeCost,
    max_states: int = DEFAULT_MAX_STATES,
    extra_sets: Sequence[Iterable[str]] = (),
) -> tuple[list[Cut], dict]:
    """Pareto-optimal cuts of a general DAG under true (shared-once) pricing.

    Enumerates downward-closed candidate sets (exact closure BFS when it
    fits in ``max_states``, topo-prefix DP + critical-path refinement
    otherwise), prices each with per-tail deduplicated transfer bytes,
    and prunes dominance on (compute time, transfer bytes) — both
    bandwidth-independent, so one enumeration serves every channel.
    ``extra_sets`` are repaired to their largest downward-closed subset
    and added to the pool (used to seed the Fig.-9 baseline's cut, which
    guarantees the result never prices worse than the duplication
    transform). Returns the cuts sorted by increasing compute time plus
    an info dict (``mode``, ``states``).
    """
    repaired = [_repair_closed(dag, s) for s in extra_sets]
    candidates, exhaustive = enumerate_closed_sets(dag, max_states)
    if exhaustive:
        mode = "exact-closure"
        pool = dict.fromkeys(candidates)
        pool.update(dict.fromkeys(repaired))
    else:
        mode = "refined"
        seeds = topo_prefix_sets(dag) + repaired
        pool = dict.fromkeys(refine_closed_sets(dag, node_time, seeds, max_states))
    compute_of = {
        mobile: sum(node_time(v) for v in mobile) for mobile in pool
    }
    cuts = [make_cut(dag, mobile) for mobile in pool]
    surviving = prune_dominated(cuts, compute_of)
    surviving.sort(key=lambda c: compute_of[c.mobile])
    return surviving, {"mode": mode, "states": len(pool)}


# ----------------------------------------------------------------------
# cost tables over DAG cuts
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class DagCutTable:
    """A line-shaped cost table synthesized from true DAG cuts.

    The same shape as :class:`repro.core.joint.FrontierTable` — position
    ``i`` of ``table`` is backed by ``cuts[i]`` — so the binary search,
    two-type split, and the engine's pricing kernels consume DAG plans
    unchanged. ``mode`` records how the cut space was generated
    (``"exact-closure"`` or ``"refined"``), ``states`` how many closed
    sets were examined.
    """

    table: CostTable
    cuts: tuple[Cut, ...]
    mode: str
    states: int

    def cut_at(self, position: int) -> Cut:
        return self.cuts[position]


def unique_cut_labels(cuts: Sequence[Cut]) -> tuple[str, ...]:
    """Cut labels, disambiguated (two closed sets can share a frontier)."""
    seen: dict[str, int] = {}
    labels: list[str] = []
    for cut in cuts:
        count = seen.get(cut.label, 0)
        seen[cut.label] = count + 1
        labels.append(cut.label if count == 0 else f"{cut.label}#{count + 1}")
    return tuple(labels)


def dag_cut_table(
    dag: Dag,
    node_time: NodeCost,
    upload_time: UploadModel,
    cloud_time: NodeCost | None = None,
    max_states: int = DEFAULT_MAX_STATES,
    extra_sets: Sequence[Iterable[str]] = (),
    name: str | None = None,
) -> DagCutTable:
    """Price the Pareto cut space of a DAG into a :class:`CostTable`.

    ``f`` is the summed mobile time of each cut's node set, ``g`` the
    upload time of its deduplicated crossing bytes (exactly 0 when
    nothing crosses — the fully-local cut), ``cloud`` the usual
    running-max rendition of the remaining cloud work (identically 0
    when ``cloud_time`` is None, matching the 2-stage model).
    """
    cuts, info = dag_pareto_cuts(
        dag, node_time, max_states=max_states, extra_sets=extra_sets
    )
    f = np.array([sum(node_time(v) for v in c.mobile) for c in cuts])
    g = np.array(
        [upload_time(c.transfer_bytes) if c.transfer_bytes > 0 else 0.0 for c in cuts]
    )
    if cloud_time is None:
        cloud = np.zeros(len(cuts))
    else:
        total = sum(cloud_time(v) for v in dag.node_ids)
        rests = np.array(
            [total - sum(cloud_time(v) for v in c.mobile) for c in cuts]
        )
        cloud = np.maximum.accumulate(rests.max() - rests)
    table = CostTable(
        model_name=f"{name or dag.name}/dag",
        positions=unique_cut_labels(cuts),
        f=f,
        g=g,
        cloud=cloud,
        graph=None,
    )
    return DagCutTable(table=table, cuts=tuple(cuts), mode=info["mode"], states=info["states"])


# ----------------------------------------------------------------------
# scheduling over a DAG cut table
# ----------------------------------------------------------------------
def _johnson_makespan(stages: list[tuple[float, float]]) -> tuple[float, list[int]]:
    """Johnson-optimal makespan of a fixed job set (scalar recurrence)."""
    order = johnson_order_scalar(stages)
    c1 = c2 = 0.0
    for i in order:
        f, g = stages[i]
        c1 += f
        c2 = max(c2, c1) + g
    return c2, order


def _exact_menu(
    table: CostTable, n: int
) -> tuple[float, tuple[int, ...]]:
    """Optimal cut assignment over every multiset of table positions.

    Johnson's rule is makespan-optimal for any fixed 2-stage job set, so
    sweeping all ``C(k+n-1, n)`` multisets of Pareto positions with a
    Johnson evaluation each *is* the exact optimum over assignments —
    the same search space as the brute-force oracle, minus the redundant
    permutations. Returns the best makespan and the chosen positions in
    execution (Johnson) order.
    """
    stage_of = [table.stage_lengths(p) for p in range(table.k)]
    best = float("inf")
    best_positions: tuple[int, ...] = ()
    for combo in combinations_with_replacement(range(table.k), n):
        stages = [stage_of[p] for p in combo]
        makespan, order = _johnson_makespan(stages)
        if makespan < best - _IMPROVEMENT:
            best = makespan
            best_positions = tuple(combo[i] for i in order)
    return best, best_positions


def _uniform_floor(table: CostTable, n: int) -> tuple[float, int]:
    """Best single-position assignment: all ``n`` jobs on one cut.

    For identical jobs the flow-shop makespan has the closed form
    ``f + g + (n-1) * max(f, g)``. Sweeping every position is the floor
    that completes the duplication-dominance argument: the seeded
    baseline cut (or its Pareto dominator) is always a candidate here.
    """
    best = float("inf")
    best_position = 0
    for p in range(table.k):
        f, g = table.stage_lengths(p)
        makespan = f + g + (n - 1) * max(f, g)
        if makespan < best - _IMPROVEMENT:
            best = makespan
            best_position = p
    return best, best_position


def _plans_at_positions(
    table: CostTable, positions: Sequence[int], model: str, cuts: tuple[Cut, ...]
) -> tuple[JobPlan, ...]:
    return tuple(
        JobPlan(
            job_id=i,
            model=model,
            cut_position=p,
            compute_time=table.stage_lengths(p)[0],
            comm_time=table.stage_lengths(p)[1],
            cloud_time=table.cloud_rest(p),
            cut_label=table.positions[p],
            mobile_nodes=cuts[p].mobile,
        )
        for i, p in enumerate(positions)
    )


def dag_schedule_from_table(
    table: CostTable,
    cuts: tuple[Cut, ...],
    n: int,
    schedule: str = "auto",
    max_assignments: int = DEFAULT_MAX_ASSIGNMENTS,
    model: str | None = None,
    extra_metadata: dict | None = None,
) -> Schedule:
    """Schedule ``n`` jobs on a priced DAG cut table (method ``JPS-dag``).

    ``schedule``: ``"exact"`` runs the exact multiset menu (optimal,
    budgeted by ``max_assignments``), ``"two-cut"`` the Theorem-5.3
    split on the line-shaped table taken to the minimum with the
    best-uniform floor, ``"auto"`` picks exact whenever the menu fits
    the budget. Both engine planning paths and :func:`partition_dag`
    route through here, so plan/batch output stays consistent.
    """
    require_positive(n, "n")
    if schedule not in ("auto", "exact", "two-cut"):
        raise ValueError(
            f"unknown schedule mode {schedule!r} (use 'auto', 'exact' or 'two-cut')"
        )
    menu_size = comb(table.k + n - 1, n)
    if schedule == "exact" and menu_size > max_assignments:
        raise ValueError(
            f"exact menu needs {menu_size} assignments > budget {max_assignments}; "
            "use schedule='auto' or raise max_assignments"
        )
    display = model or table.model_name
    chosen = schedule
    if chosen == "auto":
        chosen = "exact" if menu_size <= max_assignments else "two-cut"

    if chosen == "exact":
        makespan, positions = _exact_menu(table, n)
    else:
        l_star = binary_search_cut(table)
        split = split_exact(table, l_star, n)
        split_positions = [
            split.position_a if i < split.n_a else split.position_b
            for i in range(n)
        ]
        stages = [table.stage_lengths(p) for p in split_positions]
        makespan, order = _johnson_makespan(stages)
        positions = tuple(split_positions[i] for i in order)
        uniform_makespan, uniform_position = _uniform_floor(table, n)
        if uniform_makespan < makespan - _IMPROVEMENT:
            makespan = uniform_makespan
            positions = (uniform_position,) * n

    jobs = _plans_at_positions(table, positions, display, cuts)
    return Schedule(
        jobs=jobs,
        makespan=makespan,
        method="JPS-dag",
        metadata={
            "structure": "dag",
            "schedule": chosen,
            "num_pareto_cuts": table.k,
            "s1_size": sum(p.is_communication_heavy for p in jobs),
            "s2_size": sum(not p.is_communication_heavy for p in jobs),
            **(extra_metadata or {}),
        },
    )


def partition_dag(
    dag: Dag,
    node_time: NodeCost,
    upload_time: UploadModel,
    n: int,
    cloud_time: NodeCost | None = None,
    schedule: str = "auto",
    max_states: int = DEFAULT_MAX_STATES,
    max_assignments: int = DEFAULT_MAX_ASSIGNMENTS,
    name: str | None = None,
) -> Schedule:
    """True-DAG JPS: partition ``n`` jobs of a general DAG, price the real cut.

    The entry point the oracle harness locks down. The candidate pool is
    seeded with the (repaired) Fig.-9 duplication cut whenever the path
    conversion is feasible, so the returned makespan is never worse than
    :func:`duplication_schedule` on the same instance — the dominance the
    differential tests assert on 100% of random DAGs.
    """
    require_positive(n, "n")
    extra_sets: list[frozenset[str]] = []
    try:
        extra_sets.append(duplication_mobile_set(dag, node_time, upload_time))
    except (ValueError, PathExplosionError):
        # multi-source/sink graphs or exploding path sets have no Fig.-9
        # conversion to dominate; the true partitioner still applies
        pass
    dct = dag_cut_table(
        dag,
        node_time,
        upload_time,
        cloud_time=cloud_time,
        max_states=max_states,
        extra_sets=extra_sets,
        name=name,
    )
    return dag_schedule_from_table(
        dct.table,
        dct.cuts,
        n,
        schedule=schedule,
        max_assignments=max_assignments,
        model=name or dag.name,
        extra_metadata={"cut_mode": dct.mode, "closed_states": dct.states},
    )


# ----------------------------------------------------------------------
# the Fig.-9 duplication baseline
# ----------------------------------------------------------------------
def _path_prefix_length(
    path: tuple[str, ...],
    node_time: NodeCost,
    upload_time: UploadModel,
    volumes: list[float],
) -> int:
    """Alg. 2 on one path: length of the mobile prefix it picks.

    Per-path tables are not g-monotone inside branches, so positions are
    first restricted to strict running minima of the upload volume (the
    §3.2 clustering argument applied to the path, as in
    :func:`repro.core.general.clustered_view`), then the leftmost kept
    position with ``f >= g`` wins.
    """
    f = 0.0
    cumulative: list[float] = []
    for v in path:
        f += node_time(v)
        cumulative.append(f)
    g = [upload_time(vol) if vol > 0 else 0.0 for vol in volumes]
    keep: list[int] = []
    best = float("inf")
    for i, value in enumerate(g):
        if value < best:
            keep.append(i)
            best = value
    if keep[-1] != len(path) - 1:
        keep.append(len(path) - 1)
    for i in keep:
        if cumulative[i] >= g[i]:
            return i + 1
    return len(path)


def duplication_mobile_set(
    dag: Dag,
    node_time: NodeCost,
    upload_time: UploadModel,
    max_paths: int = 4096,
) -> frozenset[str]:
    """The Fig.-9 pipeline's global cut, repaired to a valid DAG cut.

    Converts to independent paths, runs Alg. 2 on each, unions the
    per-path mobile prefixes, and keeps the largest downward-closed
    subset — the executable cut behind the paper's per-path decisions.
    Raises :class:`~repro.dag.topology.PathExplosionError` when the path
    set explodes and ``ValueError`` on multi-source/sink graphs,
    mirroring the conversion itself.
    """
    converted = to_independent_paths(dag, max_paths=max_paths)
    union: set[str] = set()
    for path in converted.paths:
        volumes = [dag.volume(a, b) for a, b in zip(path, path[1:])] + [0.0]
        union.update(path[: _path_prefix_length(path, node_time, upload_time, volumes)])
    return _repair_closed(dag, union)


def _duplicated_upload(
    dag: Dag,
    paths: tuple[tuple[str, ...], ...],
    upload_time: UploadModel,
    mobile: frozenset[str],
) -> tuple[float, float]:
    """(upload seconds, shipped bytes) of a cut under per-path duplication.

    The cut projected onto a path is always a prefix (downward closure),
    and each path ships its own copy of the leaving tensor — the Fig.-9
    accounting. Every crossing edge is the leaving edge of at least one
    path, so this never undercounts the true per-tail-deduplicated
    pricing: the duplication baseline is pessimistic by construction.
    """
    seconds = 0.0
    shipped = 0.0
    for path in paths:
        depth = 0
        for v in path:
            if v not in mobile:
                break
            depth += 1
        if 0 < depth < len(path):
            volume = dag.volume(path[depth - 1], path[depth])
            shipped += volume
            seconds += upload_time(volume) if volume > 0 else 0.0
    return seconds, shipped


def duplication_schedule(
    dag: Dag,
    node_time: NodeCost,
    upload_time: UploadModel,
    n: int,
    name: str | None = None,
    max_paths: int = 4096,
) -> Schedule:
    """The Fig.-9 duplication-transform plan cost (method ``JPS-paths-dup``).

    ``n`` identical jobs at the per-path Alg.-2 cut, with the upload
    stage priced per duplicated path — shared crossing tensors shipped
    once *per path*, exactly the over-shipping the true partitioner
    eliminates. Mobile compute is deduplicated (each shared layer runs
    once), which only makes the baseline harder to beat. Metadata
    carries both accountings so the gap is measurable:
    ``duplicated_upload_bytes`` vs ``true_upload_bytes``.
    """
    require_positive(n, "n")
    converted = to_independent_paths(dag, max_paths=max_paths)
    mobile = duplication_mobile_set(dag, node_time, upload_time, max_paths=max_paths)
    f = sum(node_time(v) for v in mobile)
    g, shipped = _duplicated_upload(dag, converted.paths, upload_time, mobile)
    true_bytes = cut_transfer_bytes(dag, mobile)
    display = name or dag.name
    label = f"dup:{len(mobile)}/{len(dag)}"
    jobs = tuple(
        JobPlan(
            job_id=i,
            model=display,
            cut_position=-1,
            compute_time=f,
            comm_time=g,
            cut_label=label,
            mobile_nodes=mobile,
            group="paths-dup",
        )
        for i in range(n)
    )
    makespan = f + g + (n - 1) * max(f, g)
    return Schedule(
        jobs=jobs,
        makespan=makespan,
        method="JPS-paths-dup",
        metadata={
            "structure": "paths-dup",
            "num_paths": converted.num_paths,
            "duplicated_upload_bytes": shipped,
            "true_upload_bytes": true_bytes,
            "over_shipped_bytes": shipped - true_bytes,
        },
    )


def _validate_plan_cuts(dag: Dag, schedule: Schedule) -> list[str]:
    """Sanity hooks for the property tests: every plan's cut is executable."""
    problems: list[str] = []
    sources = set(dag.sources())
    for job in schedule.jobs:
        mobile = job.mobile_nodes or frozenset()
        if not sources <= mobile:
            problems.append(f"job {job.job_id}: cut drops a source node")
        if not is_downward_closed(dag, mobile):
            problems.append(f"job {job.job_id}: cut has a cloud->mobile back-edge")
    return problems
