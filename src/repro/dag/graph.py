"""Directed acyclic graph used to model DNN computation graphs (§3.1).

Each node represents a *layer* (partition granularity is layer-wise, not
neuron-wise) and carries an arbitrary payload — in practice an
:mod:`repro.nn.layers` instance. Each edge carries the *communication
volume* in bytes: the size of the tensor produced by the tail layer and
consumed by the head layer. Cutting an edge means that tensor must be
offloaded to the cloud.

The implementation is a small adjacency-list structure rather than a
``networkx`` graph: scheduling code iterates node neighborhoods inside
tight loops, and keeping the representation minimal (plain dicts and
lists with deterministic insertion order) makes both performance and
reproducibility easy to reason about. ``networkx`` is still used in the
test-suite as an independent oracle for graph invariants.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Dag", "Edge", "CycleError"]


class CycleError(ValueError):
    """Raised when an operation requires acyclicity and the graph has a cycle."""


@dataclass(frozen=True)
class Edge:
    """A directed edge ``tail -> head`` carrying ``volume`` bytes."""

    tail: str
    head: str
    volume: float = 0.0

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise ValueError(f"edge volume must be >= 0, got {self.volume!r}")


@dataclass
class Dag:
    """A DAG with string node ids, node payloads, and byte-weighted edges.

    Nodes and edges iterate in insertion order, which keeps every
    downstream algorithm (topological sort, path enumeration, schedule
    tie-breaking) deterministic for a given construction sequence.
    """

    name: str = "dag"
    _payloads: dict[str, Any] = field(default_factory=dict, repr=False)
    _succ: dict[str, list[str]] = field(default_factory=dict, repr=False)
    _pred: dict[str, list[str]] = field(default_factory=dict, repr=False)
    _volumes: dict[tuple[str, str], float] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, payload: Any = None) -> str:
        """Add a node; returns the id so builders can chain calls."""
        if not isinstance(node_id, str) or not node_id:
            raise TypeError(f"node id must be a non-empty string, got {node_id!r}")
        if node_id in self._payloads:
            raise ValueError(f"duplicate node id {node_id!r}")
        self._payloads[node_id] = payload
        self._succ[node_id] = []
        self._pred[node_id] = []
        return node_id

    def add_edge(self, tail: str, head: str, volume: float = 0.0) -> None:
        """Add edge ``tail -> head`` with ``volume`` bytes of traffic."""
        for endpoint in (tail, head):
            if endpoint not in self._payloads:
                raise KeyError(f"unknown node {endpoint!r}")
        if tail == head:
            raise CycleError(f"self-loop on {tail!r}")
        if (tail, head) in self._volumes:
            raise ValueError(f"duplicate edge {tail!r} -> {head!r}")
        if volume < 0:
            raise ValueError(f"edge volume must be >= 0, got {volume!r}")
        self._succ[tail].append(head)
        self._pred[head].append(tail)
        self._volumes[(tail, head)] = float(volume)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> list[str]:
        """Node ids in insertion order."""
        return list(self._payloads)

    def __len__(self) -> int:
        return len(self._payloads)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._payloads

    def payload(self, node_id: str) -> Any:
        """Return the payload attached to ``node_id``."""
        try:
            return self._payloads[node_id]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def set_payload(self, node_id: str, payload: Any) -> None:
        """Replace the payload attached to an existing node."""
        if node_id not in self._payloads:
            raise KeyError(f"unknown node {node_id!r}")
        self._payloads[node_id] = payload

    def successors(self, node_id: str) -> list[str]:
        """Direct successors of ``node_id`` in edge-insertion order."""
        try:
            return list(self._succ[node_id])
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def predecessors(self, node_id: str) -> list[str]:
        """Direct predecessors of ``node_id`` in edge-insertion order."""
        try:
            return list(self._pred[node_id])
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def out_degree(self, node_id: str) -> int:
        return len(self._succ[node_id])

    def in_degree(self, node_id: str) -> int:
        return len(self._pred[node_id])

    def edges(self) -> Iterator[Edge]:
        """Iterate all edges in insertion order."""
        for (tail, head), volume in self._volumes.items():
            yield Edge(tail, head, volume)

    def num_edges(self) -> int:
        return len(self._volumes)

    def has_edge(self, tail: str, head: str) -> bool:
        return (tail, head) in self._volumes

    def volume(self, tail: str, head: str) -> float:
        """Bytes transferred along edge ``tail -> head``."""
        try:
            return self._volumes[(tail, head)]
        except KeyError:
            raise KeyError(f"no edge {tail!r} -> {head!r}") from None

    def sources(self) -> list[str]:
        """Nodes with no predecessors (DNN inputs)."""
        return [v for v in self._payloads if not self._pred[v]]

    def sinks(self) -> list[str]:
        """Nodes with no successors (DNN outputs)."""
        return [v for v in self._payloads if not self._succ[v]]

    # ------------------------------------------------------------------
    # core algorithms
    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn's algorithm; deterministic (insertion-order tie-break).

        Raises :class:`CycleError` if the graph contains a cycle, so any
        caller holding a topological order may assume acyclicity.
        """
        in_deg = {v: len(self._pred[v]) for v in self._payloads}
        ready = [v for v in self._payloads if in_deg[v] == 0]
        order: list[str] = []
        cursor = 0
        while cursor < len(ready):
            v = ready[cursor]
            cursor += 1
            order.append(v)
            for w in self._succ[v]:
                in_deg[w] -= 1
                if in_deg[w] == 0:
                    ready.append(w)
        if len(order) != len(self._payloads):
            stuck = sorted(v for v, d in in_deg.items() if d > 0)
            raise CycleError(f"graph contains a cycle through {stuck[:5]}")
        return order

    def ancestors(self, node_id: str) -> set[str]:
        """All strict ancestors of ``node_id`` (nodes with a path to it)."""
        if node_id not in self._payloads:
            raise KeyError(f"unknown node {node_id!r}")
        seen: set[str] = set()
        stack = list(self._pred[node_id])
        while stack:
            v = stack.pop()
            if v not in seen:
                seen.add(v)
                stack.extend(self._pred[v])
        return seen

    def descendants(self, node_id: str) -> set[str]:
        """All strict descendants of ``node_id``."""
        if node_id not in self._payloads:
            raise KeyError(f"unknown node {node_id!r}")
        seen: set[str] = set()
        stack = list(self._succ[node_id])
        while stack:
            v = stack.pop()
            if v not in seen:
                seen.add(v)
                stack.extend(self._succ[v])
        return seen

    def is_line(self) -> bool:
        """True if the DAG is a simple chain (every degree <= 1)."""
        if not self._payloads:
            return False
        return all(
            len(self._succ[v]) <= 1 and len(self._pred[v]) <= 1 for v in self._payloads
        ) and len(self._volumes) == len(self._payloads) - 1

    def line_order(self) -> list[str]:
        """Node order of a line-structure DAG; raises if not a line."""
        if not self.is_line():
            raise ValueError(f"{self.name!r} is not a line-structure DAG")
        return self.topological_order()

    def cut_volume(self, mobile_nodes: Iterable[str]) -> float:
        """Total bytes crossing from ``mobile_nodes`` to the rest.

        ``mobile_nodes`` must be closed under predecessors (a *downward
        closed* set) for the value to correspond to a valid partition;
        this method does not enforce closure — see
        :func:`repro.dag.cuts.is_downward_closed`.
        """
        mobile = set(mobile_nodes)
        unknown = mobile - set(self._payloads)
        if unknown:
            raise KeyError(f"unknown nodes in cut: {sorted(unknown)[:5]}")
        return sum(
            volume
            for (tail, head), volume in self._volumes.items()
            if tail in mobile and head not in mobile
        )

    def copy(self, name: str | None = None) -> "Dag":
        """Structural copy sharing payload objects."""
        clone = Dag(name=name or self.name)
        for node_id, payload in self._payloads.items():
            clone.add_node(node_id, payload)
        for (tail, head), volume in self._volumes.items():
            clone.add_edge(tail, head, volume)
        return clone

    def validate(self) -> None:
        """Check structural invariants; raises on violation.

        * acyclic (via :meth:`topological_order`)
        * at least one source and one sink
        * adjacency lists and volume map are mutually consistent
        """
        self.topological_order()
        if not self.sources():
            raise ValueError(f"{self.name!r} has no source node")
        if not self.sinks():
            raise ValueError(f"{self.name!r} has no sink node")
        for (tail, head) in self._volumes:
            if head not in self._succ[tail] or tail not in self._pred[head]:
                raise ValueError(f"inconsistent adjacency for edge {tail!r}->{head!r}")
        edge_count = sum(len(s) for s in self._succ.values())
        if edge_count != len(self._volumes):
            raise ValueError("adjacency lists and volume map disagree on edge count")
