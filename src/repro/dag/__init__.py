"""DAG substrate: computation graphs, topology queries, cuts, transforms.

The true-DAG partitioner (:mod:`repro.dag.partition`) and its
brute-force differential oracle (:mod:`repro.dag.oracle`) are exported
lazily (PEP 562): they import pricing machinery from
``repro.core``/``repro.profiling``, which itself imports the DAG
substrate, so eager re-export here would close an import cycle.
"""

from repro.dag.cuts import (
    Cut,
    cut_transfer_bytes,
    enumerate_frontier_cuts,
    is_downward_closed,
    make_cut,
    prune_dominated,
)
from repro.dag.graph import CycleError, Dag, Edge
from repro.dag.metrics import (
    DuplicationMetrics,
    GraphMetrics,
    critical_path,
    duplication_metrics,
    graph_metrics,
    to_dot,
)
from repro.dag.topology import (
    ParallelBlock,
    PathExplosionError,
    count_paths,
    enumerate_paths,
    is_series_parallel,
    parallel_blocks,
    separators,
)
from repro.dag.transform import (
    IndependentPaths,
    VirtualBlock,
    cluster_line_cut_points,
    collapse_clusterable_blocks,
    expand_members,
    linearize,
    should_cluster_block,
    to_independent_paths,
)

#: Lazily re-exported names -> owning submodule (see module docstring).
_LAZY_EXPORTS = {
    "DagCutTable": "repro.dag.partition",
    "dag_cut_table": "repro.dag.partition",
    "dag_pareto_cuts": "repro.dag.partition",
    "dag_schedule_from_table": "repro.dag.partition",
    "duplication_mobile_set": "repro.dag.partition",
    "duplication_schedule": "repro.dag.partition",
    "enumerate_closed_sets": "repro.dag.partition",
    "partition_dag": "repro.dag.partition",
    "refine_closed_sets": "repro.dag.partition",
    "topo_prefix_sets": "repro.dag.partition",
    "DagInstance": "repro.dag.oracle",
    "DagInstanceCheck": "repro.dag.oracle",
    "DagOracleResult": "repro.dag.oracle",
    "check_dag_instance": "repro.dag.oracle",
    "dag_exhaustive_optimal": "repro.dag.oracle",
    "random_dag": "repro.dag.oracle",
}

__all__ = [
    "Cut",
    "CycleError",
    "Dag",
    "DuplicationMetrics",
    "Edge",
    "GraphMetrics",
    "IndependentPaths",
    "ParallelBlock",
    "PathExplosionError",
    "VirtualBlock",
    "cluster_line_cut_points",
    "collapse_clusterable_blocks",
    "count_paths",
    "critical_path",
    "cut_transfer_bytes",
    "duplication_metrics",
    "enumerate_frontier_cuts",
    "enumerate_paths",
    "expand_members",
    "graph_metrics",
    "is_downward_closed",
    "is_series_parallel",
    "linearize",
    "make_cut",
    "parallel_blocks",
    "prune_dominated",
    "separators",
    "should_cluster_block",
    "to_dot",
    "to_independent_paths",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        return getattr(importlib.import_module(_LAZY_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
