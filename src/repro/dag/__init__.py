"""DAG substrate: computation graphs, topology queries, cuts, transforms."""

from repro.dag.cuts import (
    Cut,
    cut_transfer_bytes,
    enumerate_frontier_cuts,
    is_downward_closed,
    make_cut,
    prune_dominated,
)
from repro.dag.graph import CycleError, Dag, Edge
from repro.dag.metrics import GraphMetrics, critical_path, graph_metrics, to_dot
from repro.dag.topology import (
    ParallelBlock,
    PathExplosionError,
    count_paths,
    enumerate_paths,
    is_series_parallel,
    parallel_blocks,
    separators,
)
from repro.dag.transform import (
    IndependentPaths,
    VirtualBlock,
    cluster_line_cut_points,
    collapse_clusterable_blocks,
    expand_members,
    linearize,
    should_cluster_block,
    to_independent_paths,
)

__all__ = [
    "Cut",
    "CycleError",
    "Dag",
    "Edge",
    "GraphMetrics",
    "IndependentPaths",
    "ParallelBlock",
    "PathExplosionError",
    "VirtualBlock",
    "cluster_line_cut_points",
    "collapse_clusterable_blocks",
    "count_paths",
    "critical_path",
    "cut_transfer_bytes",
    "enumerate_frontier_cuts",
    "enumerate_paths",
    "expand_members",
    "graph_metrics",
    "is_downward_closed",
    "is_series_parallel",
    "linearize",
    "make_cut",
    "parallel_blocks",
    "prune_dominated",
    "separators",
    "should_cluster_block",
    "to_dot",
    "to_independent_paths",
]
