"""Cut semantics and exact frontier-cut enumeration.

A *cut* of a DNN DAG is a downward-closed node set ``M`` (closed under
predecessors): layers in ``M`` run on the mobile device, the rest on the
cloud. The tensors that must be uploaded are the outputs of the nodes in
``M`` that feed at least one node outside ``M``.

Two details matter and are easy to get wrong:

* **A tensor is uploaded once, not once per edge.** A residual block's
  entry output feeds both the bypass edge and the branch, but cutting
  after the entry transfers that tensor a single time. Transfer volume is
  therefore summed over distinct *tail nodes* of the cut, not over cut
  edges.
* **Only downward-closed sets are valid.** Otherwise a mobile layer would
  need an input computed on the cloud, which the three-stage execution
  model (mobile compute → upload → cloud compute) cannot express.

For series-parallel DAGs — all models in :mod:`repro.nn.zoo` —
:func:`enumerate_frontier_cuts` enumerates the *complete* cut space:
every downward-closed set is "after separator ``s``" or "inside one
parallel block with a chosen position per branch". This exact enumerator
is the oracle against which the paper's per-path heuristic (Alg. 3) is
evaluated.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from itertools import product

from repro.dag.graph import Dag
from repro.dag.topology import ParallelBlock, parallel_blocks

__all__ = [
    "Cut",
    "is_downward_closed",
    "cut_edge_tails",
    "cut_transfer_bytes",
    "enumerate_frontier_cuts",
    "prune_dominated",
]


@dataclass(frozen=True)
class Cut:
    """A partition of the DAG: ``mobile`` runs locally, the rest offloads.

    ``frontier`` are the distinct tail nodes whose output tensors cross
    the cut; ``transfer_bytes`` is the total upload volume (each tail
    counted once). ``label`` is a human-readable description used in
    traces and reports.
    """

    mobile: frozenset[str]
    frontier: tuple[str, ...]
    transfer_bytes: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.transfer_bytes < 0:
            raise ValueError(f"transfer_bytes must be >= 0, got {self.transfer_bytes!r}")


def is_downward_closed(dag: Dag, mobile: Iterable[str]) -> bool:
    """True if ``mobile`` is closed under predecessors in ``dag``."""
    mobile_set = set(mobile)
    return all(
        pred in mobile_set for v in mobile_set for pred in dag.predecessors(v)
    )


def cut_edge_tails(dag: Dag, mobile: Iterable[str]) -> list[str]:
    """Distinct tail nodes of edges crossing out of ``mobile`` (topo order).

    These are the layers whose output tensors must be serialized and
    uploaded. Order follows the DAG's deterministic topological order so
    that cut labels and trace output are stable.
    """
    mobile_set = set(mobile)
    tails = {
        tail
        for tail in mobile_set
        if any(head not in mobile_set for head in dag.successors(tail))
    }
    return [v for v in dag.topological_order() if v in tails]


def cut_transfer_bytes(dag: Dag, mobile: Iterable[str]) -> float:
    """Bytes uploaded for the cut ``mobile``; each tail tensor counted once.

    For a tail with several crossing edges the per-edge volumes describe
    the same tensor, so the maximum (they are equal for well-formed
    layer graphs) is charged a single time.
    """
    mobile_set = set(mobile)
    total = 0.0
    for tail in cut_edge_tails(dag, mobile_set):
        volumes = [
            dag.volume(tail, head)
            for head in dag.successors(tail)
            if head not in mobile_set
        ]
        total += max(volumes)
    return total


def make_cut(dag: Dag, mobile: Iterable[str], label: str = "") -> Cut:
    """Build a validated :class:`Cut` from a downward-closed node set."""
    mobile_set = frozenset(mobile)
    if not is_downward_closed(dag, mobile_set):
        raise ValueError(f"cut {label or sorted(mobile_set)[:4]} is not downward-closed")
    frontier = tuple(cut_edge_tails(dag, mobile_set))
    return Cut(
        mobile=mobile_set,
        frontier=frontier,
        transfer_bytes=cut_transfer_bytes(dag, mobile_set),
        label=label or ("empty" if not mobile_set else f"after:{'+'.join(frontier)}"),
    )


def _closure_up_to(dag: Dag, node: str) -> frozenset[str]:
    """``node`` and all its ancestors — the mobile set of "cut after node"."""
    return frozenset(dag.ancestors(node) | {node})


def _block_cut_sets(
    dag: Dag, block: ParallelBlock, base: frozenset[str]
) -> list[frozenset[str]]:
    """All cuts threading through ``block``: one position per branch.

    Position ``p`` on a branch keeps its first ``p`` interior nodes on the
    mobile side. The all-zero combination duplicates "cut after entry"
    and is skipped (the caller already emitted it).
    """
    sets: list[frozenset[str]] = []
    ranges = [range(len(branch) + 1) for branch in block.branches]
    for combo in product(*ranges):
        if all(p == 0 for p in combo):
            continue
        mobile = set(base)
        for branch, position in zip(block.branches, combo):
            mobile.update(branch[:position])
        sets.append(frozenset(mobile))
    return sets


def enumerate_frontier_cuts(
    dag: Dag, max_cuts: int = 100_000, include_empty: bool = False
) -> list[Cut]:
    """Every downward-closed cut of a series-parallel DAG.

    The enumeration walks separators in topological order, emitting the
    "after separator" cut for each, plus every per-branch-position
    combination inside each parallel block. Duplicate mobile sets are
    coalesced. Raises :class:`ValueError` once ``max_cuts`` distinct cuts
    have been produced — a guard against graphs that are not actually
    series-parallel.

    The cloud-only scheme is the cut *after the Input node* (zero
    compute, raw-input upload), which the separator walk already emits.
    ``include_empty`` additionally adds the literal empty set; it is
    non-physical for DNN jobs (the input tensor originates on the
    mobile device and its upload cannot be skipped) and exists only for
    structural tests.
    """
    seen: dict[frozenset[str], str] = {}

    def _record(mobile: frozenset[str], label: str) -> None:
        if mobile not in seen:
            if len(seen) >= max_cuts:
                raise ValueError(
                    f"{dag.name!r}: more than {max_cuts} frontier cuts; "
                    "graph is too branchy for exact enumeration"
                )
            seen[mobile] = label

    if include_empty:
        _record(frozenset(), "cloud-only")

    blocks = parallel_blocks(dag)
    for block in blocks:
        base = _closure_up_to(dag, block.entry)
        _record(base, f"after:{block.entry}")
        if not block.is_trivial:
            for mobile in _block_cut_sets(dag, block, base):
                _record(mobile, f"inside:{block.entry}->{block.exit}")
    # the final separator is the sink: cut after it = local-only
    order = dag.topological_order()
    _record(frozenset(order), f"after:{order[-1]}")

    return [make_cut(dag, mobile, label) for mobile, label in seen.items()]


def prune_dominated(
    cuts: Iterable[Cut], compute_cost: dict[frozenset[str], float]
) -> list[Cut]:
    """Drop cuts dominated in (compute time, transfer bytes).

    Cut ``A`` dominates ``B`` when ``f(A) <= f(B)`` and ``g(A) <= g(B)``
    with at least one strict inequality. The survivors form the Pareto
    frontier, which is all any makespan-minimizing scheme can ever pick
    from. ``compute_cost`` maps each cut's mobile set to its mobile
    computation time ``f``.
    """
    items = sorted(
        cuts, key=lambda c: (compute_cost[c.mobile], c.transfer_bytes, sorted(c.mobile))
    )
    survivors: list[Cut] = []
    best_bytes = float("inf")
    for cut in items:
        if cut.transfer_bytes < best_bytes:
            survivors.append(cut)
            best_bytes = cut.transfer_bytes
        # equal f ties: the sort already placed the smaller-g first, and a
        # later cut with equal f and equal g is a duplicate in cost space.
    return survivors
