"""Graph transformations from §3.2 and §5.3 of the paper.

* **Virtual-block clustering** (§3.2): layers after which the offloading
  volume does not shrink are merged with their successors, so the
  communication function ``g`` of the clustered line DAG is strictly
  decreasing — the monotonicity every theorem in §5 relies on. This is
  how the paper turns MobileNet-v2 (bottleneck residual modules, Fig. 10)
  and ResNet into line-structure DAGs.
* **Fig.-9 node-duplication conversion**: a general DAG becomes a set of
  *independent paths* by duplicating every node with in/out degree > 1.
  Alg. 3 then partitions each path like a line-structure DNN, and the
  modified scheduler counts duplicated layers only once at execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.dag.cuts import cut_transfer_bytes
from repro.dag.graph import Dag
from repro.dag.topology import (
    ParallelBlock,
    PathExplosionError,
    count_paths,
    enumerate_paths,
    parallel_blocks,
)

__all__ = [
    "VirtualBlock",
    "cluster_line_cut_points",
    "should_cluster_block",
    "collapse_clusterable_blocks",
    "linearize",
    "IndependentPaths",
    "to_independent_paths",
]


@dataclass(frozen=True)
class VirtualBlock:
    """Payload of a clustered node: the original members in topo order."""

    members: tuple[str, ...]
    payloads: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a virtual block must contain at least one member")
        if len(self.members) != len(self.payloads):
            raise ValueError("members and payloads length mismatch")


def expand_members(dag: Dag, node_id: str) -> tuple[str, ...]:
    """Original node ids behind ``node_id`` (itself, unless a VirtualBlock)."""
    payload = dag.payload(node_id)
    if isinstance(payload, VirtualBlock):
        return payload.members
    return (node_id,)


def cluster_line_cut_points(volumes: list[float]) -> list[int]:
    """Indices after which cutting a line DAG can be optimal.

    ``volumes[i]`` is the upload volume when cutting after layer ``i``
    (0-based). A position survives iff its volume is a strict running
    minimum: cutting later *and* uploading at least as much is dominated
    (more mobile compute, no communication savings — exactly the paper's
    virtual-block argument). The final position always survives: it is
    the unique cut with the full network on the mobile side.
    """
    if not volumes:
        return []
    keep: list[int] = []
    best = float("inf")
    for i, volume in enumerate(volumes):
        if volume < 0:
            raise ValueError(f"volumes must be >= 0, got {volume!r} at index {i}")
        if volume < best:
            keep.append(i)
            best = volume
    last = len(volumes) - 1
    if not keep or keep[-1] != last:
        keep.append(last)
    return keep


def _cluster_line(dag: Dag) -> Dag:
    """Merge line-DAG layers so edge volumes are strictly decreasing."""
    order = dag.line_order()
    volumes = [
        dag.volume(a, b) for a, b in zip(order, order[1:])
    ] + [0.0]  # cutting after the last layer uploads (negligible) results
    keep = cluster_line_cut_points(volumes)

    clustered = Dag(name=f"{dag.name}/clustered")
    start = 0
    block_ids: list[str] = []
    for boundary in keep:
        members: list[str] = []
        payloads: list[Any] = []
        for m in order[start : boundary + 1]:
            payload = dag.payload(m)
            if isinstance(payload, VirtualBlock):  # flatten nested blocks
                members.extend(payload.members)
                payloads.extend(payload.payloads)
            else:
                members.append(m)
                payloads.append(payload)
        block_id = members[-1] if len(members) == 1 else f"block:{members[0]}..{members[-1]}"
        clustered.add_node(
            block_id, VirtualBlock(members=tuple(members), payloads=tuple(payloads))
        )
        block_ids.append(block_id)
        start = boundary + 1
    for (a, b), boundary in zip(zip(block_ids, block_ids[1:]), keep):
        clustered.add_edge(a, b, volumes[boundary])
    return clustered


def should_cluster_block(dag: Dag, block: ParallelBlock) -> bool:
    """True if every cut inside ``block`` is dominated by the entry cut.

    Any interior cut computes strictly more than "cut after entry" on the
    mobile device, so it is dominated as soon as it also uploads at least
    as many bytes. We therefore cluster iff the *minimum* interior
    transfer volume is >= the entry cut's volume. This reproduces the
    paper's case analysis: MobileNet-v2 bottleneck modules (whose bypass
    edge forces every interior cut to re-upload the entry tensor) are
    clustered; deep GoogLeNet Inception modules (whose 1x1 reductions
    shrink branch tensors below the entry volume) are not.
    """
    if block.is_trivial:
        return False
    base = dag.ancestors(block.entry) | {block.entry}
    entry_bytes = cut_transfer_bytes(dag, base)

    from repro.dag.cuts import _block_cut_sets  # local: avoid import cycle at module load

    interior = _block_cut_sets(dag, block, frozenset(base))
    # exclude the all-full combination: it is "cut before exit", which has
    # *less* mobile compute than any cut containing exit and is a genuine
    # alternative, but it is still interior to the block for our purpose.
    min_bytes = min(cut_transfer_bytes(dag, mobile) for mobile in interior)
    return min_bytes >= entry_bytes


def collapse_clusterable_blocks(dag: Dag) -> Dag:
    """Rebuild ``dag`` with every clusterable parallel block as one node.

    Non-clusterable blocks (e.g. deep Inception modules) are kept intact,
    so the result may still be a general DAG. Apply :func:`linearize` to
    force a line structure regardless.
    """
    return _collapse(dag, predicate=should_cluster_block, name_suffix="clustered")


def linearize(dag: Dag) -> Dag:
    """Collapse *every* non-trivial parallel block, yielding a line DAG.

    Used by the baselines that can only handle line structures, and as
    the paper's treatment of ResNet/MobileNet. Information is lost when a
    block that should not be clustered is collapsed — that is precisely
    the gap Alg. 3 and the frontier enumerator recover.
    """
    collapsed = _collapse(dag, predicate=lambda _d, b: not b.is_trivial, name_suffix="line")
    line = _cluster_line(_flatten_blocks(collapsed))
    return line


def _collapse(dag: Dag, predicate, name_suffix: str) -> Dag:
    blocks = parallel_blocks(dag)
    result = Dag(name=f"{dag.name}/{name_suffix}")
    order = dag.topological_order()

    # Decide, per block, whether it collapses; build the new node list.
    collapsing = [b for b in blocks if not b.is_trivial and predicate(dag, b)]
    absorbed: dict[str, ParallelBlock] = {}
    for b in collapsing:
        for v in b.interior_nodes() | {b.exit}:
            absorbed[v] = b

    new_id_of: dict[str, str] = {}
    for v in order:
        if v in absorbed:
            block = absorbed[v]
            if v != block.exit:
                continue  # interior nodes appear inside the exit's virtual block
            members = tuple(
                m for m in order if m in block.interior_nodes() or m == block.exit
            )
            payloads = tuple(dag.payload(m) for m in members)
            node_id = f"block:{block.entry}->{block.exit}"
            result.add_node(node_id, VirtualBlock(members=members, payloads=payloads))
            new_id_of[v] = node_id
            for m in members:
                new_id_of[m] = node_id
        else:
            result.add_node(v, dag.payload(v))
            new_id_of[v] = v

    added: set[tuple[str, str]] = set()
    for edge in dag.edges():
        a, b = new_id_of[edge.tail], new_id_of[edge.head]
        if a == b or (a, b) in added:
            continue
        added.add((a, b))
        result.add_edge(a, b, edge.volume)
    return result


def _flatten_blocks(dag: Dag) -> Dag:
    """Re-expose a collapsed chain as a plain line DAG (payloads preserved)."""
    if dag.is_line():
        return dag
    # After collapsing every non-trivial block the graph must be a line;
    # anything else means the input was not series-parallel.
    raise ValueError(
        f"{dag.name!r} did not linearize; the graph is not series-parallel"
    )


@dataclass(frozen=True)
class IndependentPaths:
    """Result of the Fig.-9 conversion.

    ``paths`` hold *original* node ids (duplicates share ids across
    paths, which is what lets the scheduler count each layer once), and
    ``duplicated`` is the converted DAG whose nodes are
    ``(path_index, original_id)`` pairs — kept mostly for inspection and
    for validating the conversion against the paper's figure.
    """

    source_name: str
    paths: tuple[tuple[str, ...], ...]
    duplicated: Dag

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def multiplicity(self, node_id: str) -> int:
        """How many paths contain ``node_id`` (its duplication count)."""
        return sum(node_id in path for path in self.paths)


def to_independent_paths(dag: Dag, max_paths: int = 4096) -> IndependentPaths:
    """Fig.-9 conversion: duplicate shared nodes until paths are disjoint.

    Duplicating every out-degree>1 / in-degree>1 node in topological
    order, as the paper describes, terminates with one connected
    component per source→sink path of the original DAG; we construct that
    fixed point directly from the path set. Raises
    :class:`PathExplosionError` when the path count exceeds ``max_paths``
    (full GoogLeNet: use block-local decomposition instead, see
    :mod:`repro.core.general`).
    """
    total = count_paths(dag)
    if total > max_paths:
        raise PathExplosionError(
            f"{dag.name!r} expands to {total} independent paths (cap {max_paths})"
        )
    paths = enumerate_paths(dag, max_paths=max_paths)
    duplicated = Dag(name=f"{dag.name}/paths")
    for index, path in enumerate(paths):
        for node in path:
            duplicated.add_node(f"p{index}:{node}", dag.payload(node))
        for tail, head in zip(path, path[1:]):
            duplicated.add_edge(
                f"p{index}:{tail}", f"p{index}:{head}", dag.volume(tail, head)
            )
    return IndependentPaths(
        source_name=dag.name,
        paths=tuple(tuple(p) for p in paths),
        duplicated=duplicated,
    )
