"""Graph metrics and DOT export for DNN computation DAGs.

Inspection utilities used by the CLI, the examples, and tests:
structural metrics (depth, width, branching), cost-weighted critical
paths, and Graphviz DOT output for eyeballing partition decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.dag.graph import Dag

__all__ = ["GraphMetrics", "graph_metrics", "critical_path", "to_dot"]


@dataclass(frozen=True)
class GraphMetrics:
    """Structural summary of one DAG."""

    nodes: int
    edges: int
    depth: int               # longest path, in nodes
    max_width: int           # widest antichain by level
    branch_nodes: int        # out-degree > 1
    merge_nodes: int         # in-degree > 1
    total_edge_bytes: float


def graph_metrics(dag: Dag) -> GraphMetrics:
    """Compute structural metrics in one topological pass."""
    order = dag.topological_order()
    level: dict[str, int] = {}
    for v in order:
        preds = dag.predecessors(v)
        level[v] = 1 + max((level[p] for p in preds), default=0)
    width: dict[int, int] = {}
    for v in order:
        width[level[v]] = width.get(level[v], 0) + 1
    return GraphMetrics(
        nodes=len(dag),
        edges=dag.num_edges(),
        depth=max(level.values(), default=0),
        max_width=max(width.values(), default=0),
        branch_nodes=sum(dag.out_degree(v) > 1 for v in order),
        merge_nodes=sum(dag.in_degree(v) > 1 for v in order),
        total_edge_bytes=sum(e.volume for e in dag.edges()),
    )


def critical_path(dag: Dag, cost: Callable[[str], float]) -> tuple[list[str], float]:
    """Longest source→sink path under per-node costs.

    For a serial device the critical path *is* the whole node set; this
    is the intrinsic lower bound for a hypothetical fully parallel
    device, useful for reasoning about how much intra-job parallelism a
    DAG even offers.
    """
    order = dag.topological_order()
    best: dict[str, float] = {}
    parent: dict[str, str | None] = {}
    for v in order:
        preds = dag.predecessors(v)
        if preds:
            prev = max(preds, key=lambda p: best[p])
            best[v] = best[prev] + cost(v)
            parent[v] = prev
        else:
            best[v] = cost(v)
            parent[v] = None
    end = max(best, key=lambda v: best[v])
    path = []
    cursor: str | None = end
    while cursor is not None:
        path.append(cursor)
        cursor = parent[cursor]
    return path[::-1], best[end]


def to_dot(
    dag: Dag,
    mobile_nodes: Iterable[str] | None = None,
    name: str | None = None,
) -> str:
    """Graphviz DOT text; optional highlighting of a cut's mobile side.

    Mobile-side nodes render filled; the crossing edges are bold and
    labelled with their payload size — a quick visual check of where a
    partition landed.
    """
    mobile = set(mobile_nodes or ())
    unknown = mobile - set(dag.node_ids)
    if unknown:
        raise KeyError(f"unknown nodes in highlight set: {sorted(unknown)[:5]}")
    lines = [f'digraph "{name or dag.name}" {{', "  rankdir=TB;",
             "  node [shape=box, fontsize=10];"]
    for v in dag.topological_order():
        attrs = ' style=filled fillcolor="#cfe8ff"' if v in mobile else ""
        lines.append(f'  "{v}"[label="{v}"{attrs}];')
    for edge in dag.edges():
        crossing = edge.tail in mobile and edge.head not in mobile
        if crossing:
            lines.append(
                f'  "{edge.tail}" -> "{edge.head}"'
                f' [penwidth=2.5, color="#d43d3d", label="{edge.volume / 1e3:.0f} KB"];'
            )
        else:
            lines.append(f'  "{edge.tail}" -> "{edge.head}";')
    lines.append("}")
    return "\n".join(lines)
