"""Graph metrics and DOT export for DNN computation DAGs.

Inspection utilities used by the CLI, the examples, and tests:
structural metrics (depth, width, branching), cost-weighted critical
paths, and Graphviz DOT output for eyeballing partition decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.dag.graph import Dag

__all__ = [
    "GraphMetrics",
    "graph_metrics",
    "DuplicationMetrics",
    "duplication_metrics",
    "critical_path",
    "to_dot",
]


@dataclass(frozen=True)
class GraphMetrics:
    """Structural summary of one DAG."""

    nodes: int
    edges: int
    depth: int               # longest path, in nodes
    max_width: int           # widest antichain by level
    branch_nodes: int        # out-degree > 1
    merge_nodes: int         # in-degree > 1
    total_edge_bytes: float


def graph_metrics(dag: Dag) -> GraphMetrics:
    """Compute structural metrics in one topological pass."""
    order = dag.topological_order()
    level: dict[str, int] = {}
    for v in order:
        preds = dag.predecessors(v)
        level[v] = 1 + max((level[p] for p in preds), default=0)
    width: dict[int, int] = {}
    for v in order:
        width[level[v]] = width.get(level[v], 0) + 1
    return GraphMetrics(
        nodes=len(dag),
        edges=dag.num_edges(),
        depth=max(level.values(), default=0),
        max_width=max(width.values(), default=0),
        branch_nodes=sum(dag.out_degree(v) > 1 for v in order),
        merge_nodes=sum(dag.in_degree(v) > 1 for v in order),
        total_edge_bytes=sum(e.volume for e in dag.edges()),
    )


@dataclass(frozen=True)
class DuplicationMetrics:
    """What the Fig.-9 path duplication over-counts on one DAG.

    ``shipped_bytes`` is the edge traffic after duplication — every path
    carries its own copy of each shared tensor — against the
    ``original_bytes`` actually flowing in the DAG. The gap
    (``duplicated_bytes``, ratio ``duplication_factor``) is exactly the
    upload-side over-pricing the true partitioner in
    :mod:`repro.dag.partition` eliminates; ``node_work_factor`` is the
    same ratio for compute (each shared layer nominally re-run once per
    path through it).
    """

    num_paths: int
    original_bytes: float
    shipped_bytes: float
    duplicated_bytes: float
    duplication_factor: float
    duplicated_nodes: int       # nodes appearing on more than one path
    node_work_factor: float     # path-copies of nodes / original nodes


def duplication_metrics(dag: Dag, max_paths: int = 4096) -> DuplicationMetrics:
    """Measure the Fig.-9 over-shipping on ``dag``.

    Requires a single-source/single-sink DAG (same contract as
    :func:`repro.dag.transform.to_independent_paths`, which raises
    otherwise). A line graph reports factor 1.0 on both axes.
    """
    from repro.dag.transform import to_independent_paths

    converted = to_independent_paths(dag, max_paths=max_paths)
    original = sum(e.volume for e in dag.edges())
    shipped = sum(
        dag.volume(a, b)
        for path in converted.paths
        for a, b in zip(path, path[1:])
    )
    copies: dict[str, int] = {}
    for path in converted.paths:
        for v in path:
            copies[v] = copies.get(v, 0) + 1
    total_copies = sum(copies.values())
    return DuplicationMetrics(
        num_paths=converted.num_paths,
        original_bytes=original,
        shipped_bytes=shipped,
        duplicated_bytes=shipped - original,
        duplication_factor=shipped / original if original > 0 else 1.0,
        duplicated_nodes=sum(count > 1 for count in copies.values()),
        node_work_factor=total_copies / len(dag) if len(dag) else 1.0,
    )


def critical_path(dag: Dag, cost: Callable[[str], float]) -> tuple[list[str], float]:
    """Longest source→sink path under per-node costs.

    For a serial device the critical path *is* the whole node set; this
    is the intrinsic lower bound for a hypothetical fully parallel
    device, useful for reasoning about how much intra-job parallelism a
    DAG even offers.
    """
    order = dag.topological_order()
    best: dict[str, float] = {}
    parent: dict[str, str | None] = {}
    for v in order:
        preds = dag.predecessors(v)
        if preds:
            prev = max(preds, key=lambda p: best[p])
            best[v] = best[prev] + cost(v)
            parent[v] = prev
        else:
            best[v] = cost(v)
            parent[v] = None
    end = max(best, key=lambda v: best[v])
    path = []
    cursor: str | None = end
    while cursor is not None:
        path.append(cursor)
        cursor = parent[cursor]
    return path[::-1], best[end]


def to_dot(
    dag: Dag,
    mobile_nodes: Iterable[str] | None = None,
    name: str | None = None,
) -> str:
    """Graphviz DOT text; optional highlighting of a cut's mobile side.

    Mobile-side nodes render filled; the crossing edges are bold and
    labelled with their payload size — a quick visual check of where a
    partition landed.
    """
    mobile = set(mobile_nodes or ())
    unknown = mobile - set(dag.node_ids)
    if unknown:
        raise KeyError(f"unknown nodes in highlight set: {sorted(unknown)[:5]}")
    lines = [f'digraph "{name or dag.name}" {{', "  rankdir=TB;",
             "  node [shape=box, fontsize=10];"]
    for v in dag.topological_order():
        attrs = ' style=filled fillcolor="#cfe8ff"' if v in mobile else ""
        lines.append(f'  "{v}"[label="{v}"{attrs}];')
    for edge in dag.edges():
        crossing = edge.tail in mobile and edge.head not in mobile
        if crossing:
            lines.append(
                f'  "{edge.tail}" -> "{edge.head}"'
                f' [penwidth=2.5, color="#d43d3d", label="{edge.volume / 1e3:.0f} KB"];'
            )
        else:
            lines.append(f'  "{edge.tail}" -> "{edge.head}";')
    lines.append("}")
    return "\n".join(lines)
