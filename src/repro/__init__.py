"""repro — Joint Optimization of DNN Partition and Scheduling for Mobile
Cloud Computing (Duan & Wu, ICPP 2021): a full reimplementation.

Quick tour
----------
The stable facade is :mod:`repro.api` (also re-exported here):

>>> from repro.api import plan, compare, list_models
>>> "alexnet" in list_models()
True
>>> schedule = plan("alexnet", n=100, bandwidth=10.0)   # Mbps uplink
>>> side_by_side = compare("alexnet", n=100, bandwidth=10.0)
>>> schedule.makespan <= side_by_side["LO"].makespan
True

``plan()`` routes through a shared :class:`~repro.engine.PlanningEngine`
that memoizes the expensive structure work (graph linearization,
frontier-cut enumeration) behind content-addressed keys, so sweeping
bandwidths or job counts over one model costs only the binary search
and the Johnson sort per call.

Packages: ``repro.api`` (stable facade), ``repro.engine`` (memoized
planning engine), ``repro.dag`` (computation graphs, cuts, and the
true-DAG partitioner with its brute-force oracle — see ``docs/dag.md``),
``repro.nn`` (layers + model zoo), ``repro.profiling`` (device cost
models and estimators), ``repro.net`` (bandwidth/channel models),
``repro.core`` (the paper's algorithms), ``repro.sim`` (discrete-event
pipeline), ``repro.runtime`` (system prototype), ``repro.experiments``
(per-figure harnesses + parallel campaign runner), ``repro.extensions``
(beyond-the-paper features), ``repro.serving`` (multi-client offload
gateway with adaptive re-planning and metrics), ``repro.fleet``
(multi-server fleet behind the unified ``SystemConfig``/``run_system``
scenario API — see ``docs/serving.md``), ``repro.cloud`` (shared
batching GPU model and hold-and-batch dispatch — see
``docs/serving.md``), ``repro.obs`` (unified
tracing & telemetry: spans, Chrome-trace export, Prometheus
exposition — see ``docs/observability.md``), ``repro.faults`` (seeded
fault injection, gateway resilience policies, and the differential
oracle — see ``docs/robustness.md``).
"""

__version__ = "1.3.0"

#: Facade names re-exported lazily from :mod:`repro.api` (PEP 562), so
#: ``import repro`` stays light and experiment modules that import
#: ``repro.__version__`` during facade construction see no cycle.
_API_EXPORTS = frozenset(
    {
        "plan",
        "compare",
        "list_models",
        "default_engine",
        "as_channel",
        "PlanningEngine",
        "CacheStats",
        "Schedule",
        "JobPlan",
        "Structure",
        "SplitMode",
        "Channel",
        "BandwidthPreset",
        "TrafficShaper",
        "THREE_G",
        "FOUR_G",
        "WIFI",
        "MODELS",
        "get_model",
        # true DAG partitioning + its differential oracle (repro.dag)
        "jps_dag",
        "partition_dag",
        "DagCutTable",
        "dag_cut_table",
        "dag_pareto_cuts",
        "dag_schedule_from_table",
        "duplication_schedule",
        "DuplicationMetrics",
        "duplication_metrics",
        "DagInstance",
        "check_dag_instance",
        "dag_exhaustive_optimal",
        "random_dag",
        # online scheduling + serving gateway
        "OnlineJpsScheduler",
        "ReleasedJob",
        "clairvoyant_makespan",
        "offline_lower_bound",
        "Gateway",
        "AdaptiveChannelEstimator",
        "MetricsRegistry",
        "ClientSpec",
        "Request",
        "ScenarioConfig",
        "default_scenario",
        "run_scenario",
        "BandwidthTimeline",
        # fleet serving behind the unified scenario API (repro.fleet)
        "SystemConfig",
        "SystemReport",
        "WorkloadConfig",
        "ServerSpec",
        "PlacementConfig",
        "AdmissionConfig",
        "ChannelConfig",
        "FaultsConfig",
        "ObservabilityConfig",
        "FleetGateway",
        "run_system",
        "ENGINE_CORES",
        "default_fleet",
        "capacity_scenario",
        "fleet_accounting_violations",
        "steady_fleet_scenario",
        "blackout_fleet_scenario",
        "with_slo_telemetry",
        "slo_acceptance_scenario",
        "SCENARIO_SLO",
        "SLO_SCENARIOS",
        # cloud-side batching (repro.cloud)
        "CloudGpuModel",
        "BatchingServer",
        "CloudConfig",
        "BATCHING_POLICIES",
        "GPU_ASSIGNMENTS",
        "LeastQueuedRouter",
        "contended_cloud_scenario",
        # fault injection + resilience (repro.faults)
        "FaultPlan",
        "FaultInjector",
        "ResiliencePolicy",
        "Blackout",
        "RateSpike",
        "TransferCorruption",
        "ClientOutage",
        "CostMisestimation",
        "default_fault_scenario",
        "run_fault_scenario",
        "accounting_violations",
        "MonotoneClockMonitor",
        "check_instance",
        "exhaustive_optimal",
        # observability (repro.obs)
        "Tracer",
        "NullTracer",
        "Span",
        "InstantEvent",
        "well_formed",
        "chrome_trace_events",
        "write_chrome_trace",
        "validate_chrome_events",
        "to_prometheus",
        "exposition_from_snapshot",
        "parse_prometheus",
        "pipeline_spans",
        "write_pipeline_trace",
        # windowed telemetry + SLO alerting (repro.obs)
        "TimeSeries",
        "TelemetryHub",
        "SloConfig",
        "SloBoard",
        "default_slos",
        "render_timeline",
        "watch_table",
    }
)

__all__ = ["__version__", *sorted(_API_EXPORTS)]


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
