"""repro — Joint Optimization of DNN Partition and Scheduling for Mobile
Cloud Computing (Duan & Wu, ICPP 2021): a full reimplementation.

Quick tour
----------
>>> from repro.nn import zoo
>>> from repro.profiling import line_cost_table, raspberry_pi_4, gtx1080_server
>>> from repro.net import Channel, FOUR_G
>>> from repro.core import jps, local_only
>>> net = zoo.alexnet()
>>> mob, srv, ch = raspberry_pi_4(), gtx1080_server(), Channel.from_preset(FOUR_G)
>>> schedule = jps(net, mob, srv, ch, n=100)
>>> schedule.makespan < local_only(line_cost_table(net, mob, srv, ch), 100).makespan
True

Packages: ``repro.dag`` (computation graphs and cuts), ``repro.nn``
(layers + model zoo), ``repro.profiling`` (device cost models and
estimators), ``repro.net`` (bandwidth/channel models), ``repro.core``
(the paper's algorithms), ``repro.sim`` (discrete-event pipeline),
``repro.runtime`` (system prototype), ``repro.experiments`` (per-figure
harnesses), ``repro.extensions`` (beyond-the-paper features).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
