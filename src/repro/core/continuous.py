"""Continuous relaxation of the partition problem (paper §5.1, Thm. 5.2).

Relaxing cut positions to the reals with ``f`` increasing-convex and
``g`` decreasing-convex makes P2 a convex program with strong duality
(Lemma 5.1). Its KKT stationarity condition collapses, as the LogSumExp
smoothing parameter α → ∞, to ``sum_i (f(x_i) - g(x_i)) = 0`` — and the
symmetric point ``x_i = x*`` with ``f(x*) = g(x*)`` satisfies it, so
cutting *every* job at the crossing point is optimal.

This module provides the concrete function models used throughout the
paper's discussion (linear ``f``, shifted-exponential ``g``), a fitter
from discrete cost tables, the crossing-point solver, and numerical
KKT/LSE utilities that the test-suite uses to verify the theorem's
ingredients rather than trusting them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.profiling.latency import CostTable
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "LinearComputeModel",
    "ExponentialCommModel",
    "ContinuousProblem",
    "fit_continuous",
    "crossing_point",
    "lse_max",
    "average_makespan",
    "kkt_stationarity_residual",
]


@dataclass(frozen=True)
class LinearComputeModel:
    """``f(x) = slope * x`` — computation grows linearly with depth (§3.2)."""

    slope: float

    def __post_init__(self) -> None:
        require_positive(self.slope, "slope")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        return self.slope * np.asarray(x, dtype=float)

    def derivative(self, x: np.ndarray | float) -> np.ndarray | float:
        return np.full_like(np.asarray(x, dtype=float), self.slope)


@dataclass(frozen=True)
class ExponentialCommModel:
    """``g(x) = scale * exp(-decay * x) + floor`` — volume halves per block."""

    scale: float
    decay: float
    floor: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.scale, "scale")
        require_positive(self.decay, "decay")
        require_non_negative(self.floor, "floor")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        return self.scale * np.exp(-self.decay * np.asarray(x, dtype=float)) + self.floor

    def derivative(self, x: np.ndarray | float) -> np.ndarray | float:
        return -self.decay * self.scale * np.exp(-self.decay * np.asarray(x, dtype=float))


@dataclass(frozen=True)
class ContinuousProblem:
    """The relaxed problem P2 for one DNN model."""

    f: LinearComputeModel
    g: ExponentialCommModel
    depth: float  # the continuous analogue of k (domain is (0, depth])

    def __post_init__(self) -> None:
        require_positive(self.depth, "depth")


def fit_continuous(table: CostTable) -> ContinuousProblem:
    """Fit (linear f, exponential g) to a discrete cost table.

    ``f`` is fit through the origin (position 0 computes nothing);
    ``g`` is fit on the interior positions in log space (the final
    position's exact zero is a boundary artifact of local-only jobs).
    """
    idx = np.arange(table.k, dtype=float)
    slope = float(np.sum(idx * table.f) / np.sum(idx * idx)) if table.k > 1 else 1.0
    slope = max(slope, 1e-12)

    interior_g = table.g[:-1] if table.g[-1] == 0 and table.k > 1 else table.g
    floor = 0.0
    positive = np.maximum(interior_g, 1e-12)
    decay, log_scale = np.polyfit(idx[: len(interior_g)], np.log(positive), deg=1)
    decay = max(-float(decay), 1e-9)
    return ContinuousProblem(
        f=LinearComputeModel(slope=slope),
        g=ExponentialCommModel(scale=float(np.exp(log_scale)), decay=decay, floor=floor),
        depth=float(table.k - 1) if table.k > 1 else 1.0,
    )


def crossing_point(problem: ContinuousProblem) -> float:
    """Solve ``f(x*) = g(x*)`` on (0, depth] — Theorem 5.2's optimum.

    ``f - g`` is strictly increasing, so at most one root exists. When
    ``f`` already dominates everywhere the optimum clamps to 0+ (offload
    immediately); when ``g`` dominates everywhere it clamps to ``depth``
    (fully local) — matching the discrete boundary cuts.
    """
    lo, hi = 0.0, problem.depth

    def gap(x: float) -> float:
        return float(problem.f(x) - problem.g(x))

    if gap(lo) >= 0:
        return lo
    if gap(hi) <= 0:
        return hi
    return float(optimize.brentq(gap, lo, hi, xtol=1e-12))


def lse_max(values: np.ndarray, alpha: float) -> float:
    """LogSumExp smooth maximum ``(1/α) ln Σ exp(α v_i)`` (Thm. 5.2 proof).

    Converges to ``max(values)`` from above as α → ∞; the proof drives
    α → ∞ to recover the exact makespan objective.
    """
    require_positive(alpha, "alpha")
    v = np.asarray(values, dtype=float)
    shift = v.max()
    return float(shift + np.log(np.exp(alpha * (v - shift)).sum()) / alpha)


def average_makespan(problem: ContinuousProblem, xs: np.ndarray) -> float:
    """The relaxed objective ``max( mean f(x_i), mean g(x_i) )``."""
    xs = np.asarray(xs, dtype=float)
    if np.any(xs < 0) or np.any(xs > problem.depth):
        raise ValueError(f"cut points must lie in [0, {problem.depth}]")
    return float(max(problem.f(xs).mean(), problem.g(xs).mean()))


def kkt_stationarity_residual(
    problem: ContinuousProblem, xs: np.ndarray, alpha: float = 200.0
) -> float:
    """Max |∂/∂x_i| of the α-smoothed objective at ``xs``, normalized.

    At the symmetric point ``x_i = x*`` the per-coordinate gradient of
    the LSE-smoothed objective vanishes as α grows (Eq. 1 of the paper);
    this returns the largest normalized gradient component so tests can
    assert it is ~0 at x* and clearly non-zero elsewhere.
    """
    xs = np.asarray(xs, dtype=float)
    n = len(xs)
    mean_f = problem.f(xs).mean()
    mean_g = problem.g(xs).mean()
    # softmax weights of the two smoothed-max branches
    shift = max(mean_f, mean_g)
    wf = np.exp(alpha * (mean_f - shift))
    wg = np.exp(alpha * (mean_g - shift))
    total = wf + wg
    grad = (wf * problem.f.derivative(xs) + wg * problem.g.derivative(xs)) / (total * n)
    scale = max(abs(float(problem.f.derivative(0.0))), 1e-12) / n
    return float(np.abs(grad).max() / scale)
