"""Plan data types shared by the partitioners, schedulers, and simulator.

A :class:`JobPlan` is one inference job with a chosen partition: the
scalars the flow-shop machinery needs (compute/communication/cloud stage
lengths) plus enough provenance (cut position, mobile node set) for the
simulator and the runtime prototype to execute it for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.utils.validation import require_non_negative

__all__ = ["JobPlan", "Schedule", "json_safe"]


def json_safe(value: Any) -> Any:
    """Coerce numpy scalars and other exotica to plain JSON types.

    The common denominator of every wire format in the repo: schedule
    JSON, campaign documents, and the serving metrics report all pass
    their payloads through this before ``json.dumps``.
    """
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [json_safe(v) for v in value]
        return sorted(items) if isinstance(value, (set, frozenset)) else items
    return str(value)


@dataclass(frozen=True)
class JobPlan:
    """One job's partition and the resulting stage lengths."""

    job_id: int
    model: str
    cut_position: int                      # index into the CostTable, -1 if N/A
    compute_time: float                    # f(P): mobile computation stage
    comm_time: float                       # g(P): upload stage
    cloud_time: float = 0.0                # remaining cloud computation
    cut_label: str = ""
    mobile_nodes: frozenset[str] | None = None  # for general-structure cuts
    group: str = ""                        # free-form tag (e.g. Alg.3 path id)

    def __post_init__(self) -> None:
        require_non_negative(self.compute_time, "compute_time")
        require_non_negative(self.comm_time, "comm_time")
        require_non_negative(self.cloud_time, "cloud_time")

    @property
    def is_communication_heavy(self) -> bool:
        """Membership test for Johnson's set S1 (f < g)."""
        return self.compute_time < self.comm_time

    @property
    def stages(self) -> tuple[float, float]:
        return (self.compute_time, self.comm_time)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable encoding; inverse of :meth:`from_dict`.

        ``mobile_nodes`` frozensets encode as sorted lists so the output
        is deterministic and diff-friendly.
        """
        return {
            "job_id": json_safe(self.job_id),
            "model": self.model,
            "cut_position": json_safe(self.cut_position),
            "compute_time": json_safe(self.compute_time),
            "comm_time": json_safe(self.comm_time),
            "cloud_time": json_safe(self.cloud_time),
            "cut_label": self.cut_label,
            "mobile_nodes": (
                None if self.mobile_nodes is None else sorted(self.mobile_nodes)
            ),
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobPlan":
        """Rebuild a plan from :meth:`to_dict` output (e.g. parsed JSON)."""
        nodes = data.get("mobile_nodes")
        return cls(
            job_id=int(data["job_id"]),
            model=str(data["model"]),
            cut_position=int(data["cut_position"]),
            compute_time=float(data["compute_time"]),
            comm_time=float(data["comm_time"]),
            cloud_time=float(data.get("cloud_time", 0.0)),
            cut_label=str(data.get("cut_label", "")),
            mobile_nodes=None if nodes is None else frozenset(nodes),
            group=str(data.get("group", "")),
        )


@dataclass(frozen=True)
class Schedule:
    """An ordered set of planned jobs plus the achieved makespan."""

    jobs: tuple[JobPlan, ...]              # execution order on the mobile device
    makespan: float
    method: str
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_non_negative(self.makespan, "makespan")

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def average_completion(self) -> float:
        """Makespan per job — the paper's reported metric for 100-job runs."""
        if not self.jobs:
            return 0.0
        return self.makespan / len(self.jobs)

    def cut_histogram(self) -> dict[int, int]:
        """How many jobs use each cut position (diagnoses the two-type split)."""
        counts: dict[int, int] = {}
        for job in self.jobs:
            counts[job.cut_position] = counts.get(job.cut_position, 0) + 1
        return dict(sorted(counts.items()))

    def label_histogram(self) -> dict[str, int]:
        """How many jobs use each cut *label*.

        DAG schedules index positions into a per-table Pareto cut list,
        so raw positions are not comparable across tables; the labels
        (frontier node sets) are the stable human-readable key.
        """
        counts: dict[str, int] = {}
        for job in self.jobs:
            counts[job.cut_label] = counts.get(job.cut_label, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable encoding; inverse of :meth:`from_dict`.

        This is *the* schedule wire format: the CLI's ``--json`` output
        and the runtime's schedule serialization
        (:func:`repro.runtime.serialization.serialize_schedule`) both
        emit it. Metadata values are coerced to JSON-safe types (numpy
        scalars unwrap; unknown objects stringify).
        """
        return {
            "jobs": [job.to_dict() for job in self.jobs],
            "makespan": json_safe(self.makespan),
            "method": self.method,
            "metadata": json_safe(dict(self.metadata)),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Schedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        return cls(
            jobs=tuple(JobPlan.from_dict(job) for job in data["jobs"]),
            makespan=float(data["makespan"]),
            method=str(data["method"]),
            metadata=dict(data.get("metadata", {})),
        )
