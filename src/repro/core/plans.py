"""Plan data types shared by the partitioners, schedulers, and simulator.

A :class:`JobPlan` is one inference job with a chosen partition: the
scalars the flow-shop machinery needs (compute/communication/cloud stage
lengths) plus enough provenance (cut position, mobile node set) for the
simulator and the runtime prototype to execute it for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.utils.validation import require_non_negative

__all__ = ["JobPlan", "Schedule"]


@dataclass(frozen=True)
class JobPlan:
    """One job's partition and the resulting stage lengths."""

    job_id: int
    model: str
    cut_position: int                      # index into the CostTable, -1 if N/A
    compute_time: float                    # f(P): mobile computation stage
    comm_time: float                       # g(P): upload stage
    cloud_time: float = 0.0                # remaining cloud computation
    cut_label: str = ""
    mobile_nodes: frozenset[str] | None = None  # for general-structure cuts
    group: str = ""                        # free-form tag (e.g. Alg.3 path id)

    def __post_init__(self) -> None:
        require_non_negative(self.compute_time, "compute_time")
        require_non_negative(self.comm_time, "comm_time")
        require_non_negative(self.cloud_time, "cloud_time")

    @property
    def is_communication_heavy(self) -> bool:
        """Membership test for Johnson's set S1 (f < g)."""
        return self.compute_time < self.comm_time

    @property
    def stages(self) -> tuple[float, float]:
        return (self.compute_time, self.comm_time)


@dataclass(frozen=True)
class Schedule:
    """An ordered set of planned jobs plus the achieved makespan."""

    jobs: tuple[JobPlan, ...]              # execution order on the mobile device
    makespan: float
    method: str
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_non_negative(self.makespan, "makespan")

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def average_completion(self) -> float:
        """Makespan per job — the paper's reported metric for 100-job runs."""
        if not self.jobs:
            return 0.0
        return self.makespan / len(self.jobs)

    def cut_histogram(self) -> dict[int, int]:
        """How many jobs use each cut position (diagnoses the two-type split)."""
        counts: dict[int, int] = {}
        for job in self.jobs:
            counts[job.cut_position] = counts.get(job.cut_position, 0) + 1
        return dict(sorted(counts.items()))
