"""The paper's contribution: joint DNN partition and scheduling."""

from repro.core.analysis import (
    best_single_cut_rate,
    fractional_lower_bound,
    speedup_report,
    utilization_report,
)
from repro.core.baselines import (
    brute_force,
    brute_force_search_space,
    cloud_only,
    local_only,
    partition_only,
    single_job_optimal_cut,
)
from repro.core.continuous import (
    ContinuousProblem,
    ExponentialCommModel,
    LinearComputeModel,
    average_makespan,
    crossing_point,
    fit_continuous,
    kkt_stationarity_residual,
    lse_max,
)
from repro.core.general import (
    alg3_consistent_plans,
    alg3_partition,
    alg3_schedule,
    representative_paths,
)
from repro.core.joint import FrontierTable, frontier_table, jps, jps_frontier, jps_line
from repro.core.partition import (
    TwoTypeSplit,
    binary_search_cut,
    linear_scan_cut,
    partition_ratio,
    plans_for_split,
    split_best_pair,
    split_by_paper_ratio,
    split_exact,
)
from repro.core.plans import JobPlan, Schedule
from repro.core.search import local_search
from repro.core.scheduling import (
    best_order_brute_force,
    flow_shop_completion_times,
    flow_shop_makespan,
    johnson_order,
    proposition_4_1_makespan,
    schedule_jobs,
)

__all__ = [
    "ContinuousProblem",
    "ExponentialCommModel",
    "FrontierTable",
    "JobPlan",
    "LinearComputeModel",
    "Schedule",
    "TwoTypeSplit",
    "alg3_consistent_plans",
    "alg3_partition",
    "alg3_schedule",
    "average_makespan",
    "best_single_cut_rate",
    "best_order_brute_force",
    "binary_search_cut",
    "brute_force",
    "brute_force_search_space",
    "cloud_only",
    "crossing_point",
    "fit_continuous",
    "flow_shop_completion_times",
    "flow_shop_makespan",
    "fractional_lower_bound",
    "frontier_table",
    "johnson_order",
    "jps",
    "jps_frontier",
    "jps_line",
    "kkt_stationarity_residual",
    "linear_scan_cut",
    "local_only",
    "local_search",
    "lse_max",
    "partition_only",
    "partition_ratio",
    "plans_for_split",
    "proposition_4_1_makespan",
    "representative_paths",
    "schedule_jobs",
    "single_job_optimal_cut",
    "speedup_report",
    "split_best_pair",
    "split_by_paper_ratio",
    "split_exact",
    "utilization_report",
]
