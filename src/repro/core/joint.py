"""JPS — the paper's joint partition-and-scheduling scheme.

For line-structure (or linearizable) DNNs this is Alg. 2 + Theorem 5.3:
binary-search the crossing layer, split the n jobs across the two
adjacent candidate cuts, Johnson-schedule the result.

For general-structure DNNs two modes exist:

* ``frontier`` — exact enumeration of the series-parallel cut space,
  Pareto-pruned; the survivors, ordered by increasing ``f``, behave
  exactly like a line-structure cost table (``g`` strictly decreasing),
  so the *same* binary search and two-type split apply. This is the
  strongest scheme in the repo and an upper baseline for Alg. 3.
* ``paths`` — the paper's Alg. 3 heuristic (:mod:`repro.core.general`).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, replace
from time import perf_counter

import numpy as np

from repro.core.partition import (
    TwoTypeSplit,
    binary_search_cut,
    plans_for_split,
    searchsorted_cut,
    split_best_pair,
    split_by_paper_ratio,
    split_exact,
    split_exact_vectorized,
)
from repro.core.plans import Schedule
from repro.core.scheduling import schedule_jobs
from repro.dag.cuts import Cut, enumerate_frontier_cuts, prune_dominated
from repro.net.channel import Channel
from repro.nn.network import Network
from repro.profiling.device import DeviceModel
from repro.profiling.latency import (
    CostTable,
    LayerPredictor,
    cut_costs,
    line_cost_table,
    node_mobile_time,
)

__all__ = [
    "Structure",
    "SplitMode",
    "jps_line",
    "jps_line_fast",
    "FrontierTable",
    "frontier_table",
    "jps_frontier",
    "jps_dag",
    "jps",
]

if hasattr(enum, "StrEnum"):  # Python >= 3.11
    _StrEnum = enum.StrEnum
else:  # pragma: no cover - 3.10 fallback, identical semantics

    class _StrEnum(str, enum.Enum):
        def __str__(self) -> str:
            return str(self.value)


class _CoercibleEnum(_StrEnum):
    """StrEnum that coerces raw strings with a helpful ``ValueError``."""

    @classmethod
    def coerce(cls, value: "str | _CoercibleEnum") -> "_CoercibleEnum":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            label = re.sub(r"(?<!^)(?=[A-Z])", " ", cls.__name__).lower()
            valid = ", ".join(repr(m.value) for m in cls)
            raise ValueError(f"unknown {label} {value!r} (use {valid})") from None

    @classmethod
    def values(cls) -> list[str]:
        """The raw string values, for argparse ``choices=``."""
        return [m.value for m in cls]


class Structure(_CoercibleEnum):
    """How :func:`jps` treats the network's graph structure."""

    AUTO = "auto"
    LINE = "line"
    FRONTIER = "frontier"
    DAG = "dag"
    PATHS = "paths"


class SplitMode(_CoercibleEnum):
    """Two-type job allocation rule over the crossing layers (l*-1, l*)."""

    RATIO = "ratio"
    EXACT = "exact"
    PAIR = "pair"


def jps_line(table: CostTable, n: int, split: str | SplitMode = "exact") -> Schedule:
    """JPS on a line-structure cost table.

    ``split`` selects the two-type allocation over (l*-1, l*):
    ``"ratio"`` is the paper's floor-ratio rule (Alg. 2 line 9) —
    faithful but degenerate when the true ratio is below 1 (the floor
    collapses to a single cut layer); ``"exact"`` sweeps the integer
    split for the best makespan over the same two layers and is the
    default. The ablation bench quantifies the gap.
    """
    started = perf_counter()
    mode = SplitMode.coerce(split)
    l_star = binary_search_cut(table)
    if mode is SplitMode.RATIO:
        chosen: TwoTypeSplit = split_by_paper_ratio(table, l_star, n)
    elif mode is SplitMode.EXACT:
        chosen = split_exact(table, l_star, n)
    else:
        # beyond the paper: the best two-type mix over all position pairs,
        # needed when adjacent-layer time differences are drastic (VGG-16)
        chosen = split_best_pair(table, n)
    return _line_schedule(table, mode, l_star, chosen, started)


def jps_line_fast(
    table: CostTable, n: int, split: str | SplitMode = "exact"
) -> Schedule:
    """:func:`jps_line` through the vectorized kernels.

    The crossing comes from :func:`searchsorted_cut` and the ``exact``
    split from the :func:`~repro.core.partition.split_exact_vectorized`
    matrix kernel — output-identical to :func:`jps_line` (the parity
    property tests lock this) at a fraction of the per-call cost, which
    is what lets ``PlanningEngine.plan_batch`` sweep a whole bandwidth
    vector. ``ratio``/``pair`` modes have no batched kernel and reuse
    the scalar split functions.
    """
    started = perf_counter()
    mode = SplitMode.coerce(split)
    l_star = searchsorted_cut(table)
    if mode is SplitMode.RATIO:
        chosen: TwoTypeSplit = split_by_paper_ratio(table, l_star, n)
    elif mode is SplitMode.EXACT:
        chosen = split_exact_vectorized(table, l_star, n)
    else:
        chosen = split_best_pair(table, n)
    return _line_schedule(table, mode, l_star, chosen, started)


def _line_schedule(
    table: CostTable,
    mode: SplitMode,
    l_star: int,
    chosen: TwoTypeSplit,
    started: float,
) -> Schedule:
    schedule = schedule_jobs(plans_for_split(table, chosen), method="JPS")
    overhead = perf_counter() - started
    return Schedule(
        jobs=schedule.jobs,
        makespan=schedule.makespan,
        method="JPS",
        metadata={
            "l_star": l_star,
            "split": mode.value,
            "n_a": chosen.n_a,
            "n_b": chosen.n_b,
            "cut_a": table.positions[chosen.position_a],
            "cut_b": table.positions[chosen.position_b],
            "scheduler_overhead_s": overhead,
        },
    )


@dataclass(frozen=True, eq=False)
class FrontierTable:
    """A line-shaped cost table synthesized from Pareto-optimal DAG cuts.

    ``cuts[i]`` is the actual cut behind table position ``i``, so a
    schedule built on the table can be executed on the real graph.
    """

    table: CostTable
    cuts: tuple[Cut, ...]

    def cut_at(self, position: int) -> Cut:
        return self.cuts[position]


def frontier_table(
    network: Network,
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    predictor: LayerPredictor | None = None,
    max_cuts: int = 100_000,
) -> FrontierTable:
    """Exact cut space of a series-parallel DAG as a line cost table."""
    cuts = enumerate_frontier_cuts(network.graph, max_cuts=max_cuts)
    costs = cut_costs(network, cuts, mobile, cloud, channel, predictor)
    compute_of = {mobile_set: fgc[0] for mobile_set, fgc in costs.items()}
    surviving = prune_dominated(cuts, compute_of)
    surviving.sort(key=lambda c: compute_of[c.mobile])

    f = np.array([costs[c.mobile][0] for c in surviving])
    g = np.array([costs[c.mobile][1] for c in surviving])
    # Cloud time of the mobile part is not exactly monotone across Pareto
    # cuts; the running max keeps CostTable's invariant while shifting the
    # (negligible) cloud estimate by < one layer's cloud time.
    rests = np.array([costs[c.mobile][2] for c in surviving])
    cloud_of_mobile = np.maximum.accumulate(rests.max() - rests)
    table = CostTable(
        model_name=f"{network.name}/frontier",
        positions=tuple(c.label for c in surviving),
        f=f,
        g=g,
        cloud=cloud_of_mobile,
        graph=None,
    )
    return FrontierTable(table=table, cuts=tuple(surviving))


def jps_frontier(
    network: Network,
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    n: int,
    split: str | SplitMode = "exact",
    predictor: LayerPredictor | None = None,
) -> Schedule:
    """Exact-cut-space JPS for general (series-parallel) DNNs."""
    frontier = frontier_table(network, mobile, cloud, channel, predictor)
    schedule = jps_line(frontier.table, n, split=split)
    jobs = tuple(
        replace(
            plan,
            model=network.name,  # the table's "/frontier" suffix is internal
            mobile_nodes=frontier.cut_at(plan.cut_position).mobile,
        )
        for plan in schedule.jobs
    )
    return Schedule(
        jobs=jobs,
        makespan=schedule.makespan,
        method="JPS-frontier",
        metadata={**schedule.metadata, "num_pareto_cuts": len(frontier.cuts)},
    )


def jps_dag(
    network: Network,
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    n: int,
    predictor: LayerPredictor | None = None,
    schedule: str = "auto",
    max_states: int = 4096,
) -> Schedule:
    """True-DAG JPS on a profiled network (method ``JPS-dag``).

    Derives per-node device times and the channel's upload curve, then
    delegates to :func:`repro.dag.partition.partition_dag`: downward-
    closed cuts priced with shared tensors shipped once, candidate space
    from exact closure enumeration (or topo-prefix DP + critical-path
    refinement past ``max_states``), seeded with the Fig.-9 duplication
    cut so it never prices worse than the path transform. Works on *any*
    DAG — including non-series-parallel graphs the frontier enumeration
    cannot handle. See ``docs/dag.md``.
    """
    from repro.dag.partition import partition_dag

    graph = network.graph
    mobile_time = {
        v: node_mobile_time(graph.payload(v), mobile, predictor) for v in graph.node_ids
    }
    cloud_time = {v: node_mobile_time(graph.payload(v), cloud) for v in graph.node_ids}
    return partition_dag(
        graph,
        mobile_time.__getitem__,
        channel.uplink_time,
        n,
        cloud_time=cloud_time.__getitem__,
        schedule=schedule,
        max_states=max_states,
        name=network.name,
    )


def jps(
    network: Network,
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    n: int,
    structure: str | Structure = "auto",
    split: str | SplitMode = "exact",
    predictor: LayerPredictor | None = None,
) -> Schedule:
    """Entry point: dispatch on network structure.

    ``structure``: ``"line"`` forces linearization (virtual-block
    clustering), ``"frontier"`` uses the exact series-parallel cut
    space, ``"dag"`` the true-DAG partitioner (any graph shape, shared
    tensors priced once — see ``docs/dag.md``), ``"paths"`` runs the
    paper's Alg. 3, and ``"auto"`` picks ``line`` for networks that
    cluster into lines (AlexNet, MobileNet-v2, ResNet-18), ``frontier``
    for other series-parallel graphs (GoogLeNet), and ``dag`` for
    non-series-parallel graphs the frontier enumeration cannot cover.
    Raw strings are accepted and coerced to :class:`Structure` /
    :class:`SplitMode`.
    """
    chosen = Structure.coerce(structure)
    if chosen is Structure.AUTO:
        from repro.dag.topology import is_series_parallel
        from repro.dag.transform import collapse_clusterable_blocks

        clustered = collapse_clusterable_blocks(network.graph)
        if clustered.is_line():
            chosen = Structure.LINE
        elif is_series_parallel(network.graph):
            chosen = Structure.FRONTIER
        else:
            chosen = Structure.DAG
    if chosen is Structure.LINE:
        table = line_cost_table(network, mobile, cloud, channel, predictor)
        return jps_line(table, n, split=split)
    if chosen is Structure.FRONTIER:
        return jps_frontier(network, mobile, cloud, channel, n, split, predictor)
    if chosen is Structure.DAG:
        return jps_dag(network, mobile, cloud, channel, n, predictor)
    from repro.core.general import alg3_schedule

    return alg3_schedule(network, mobile, cloud, channel, n, predictor=predictor)
