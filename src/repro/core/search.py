"""Local search over cut multisets — an optimality probe for large n.

Brute force is exact but caps out around n ≈ 15; the LP bound is cheap
but fractional. This local search fills the gap: starting from a JPS
solution, repeatedly try single-job cut moves (shift one job's cut to
any other position, re-run Johnson's rule, keep improvements) with a
few random restarts. It is *not* part of the JPS scheme — it exists to
measure how much makespan JPS leaves on the table at n = 100, where the
paper's Fig. 11 comparison cannot reach.
"""

from __future__ import annotations

import numpy as np

from repro.core.joint import jps_line
from repro.core.plans import Schedule
from repro.core.scheduling import flow_shop_makespan, johnson_order
from repro.profiling.latency import CostTable
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive

__all__ = ["local_search"]


def _evaluate(table: CostTable, counts: np.ndarray) -> float:
    """Johnson makespan of a cut multiset given as per-position counts."""
    stages = []
    for position, count in enumerate(counts):
        if count:
            stages.extend([table.stage_lengths(position)] * int(count))
    order = johnson_order(stages)
    return flow_shop_makespan([stages[i] for i in order])


def _counts_to_schedule(table: CostTable, counts: np.ndarray, makespan: float) -> Schedule:
    from repro.core.plans import JobPlan
    from repro.core.scheduling import schedule_jobs

    plans: list[JobPlan] = []
    job_id = 0
    for position, count in enumerate(counts):
        f, g = table.stage_lengths(position)
        for _ in range(int(count)):
            plans.append(
                JobPlan(
                    job_id=job_id,
                    model=table.model_name,
                    cut_position=position,
                    compute_time=f,
                    comm_time=g,
                    cloud_time=table.cloud_rest(position),
                    cut_label=table.positions[position],
                )
            )
            job_id += 1
    schedule = schedule_jobs(plans, method="local-search")
    return Schedule(
        jobs=schedule.jobs,
        makespan=schedule.makespan,
        method="local-search",
        metadata={"counts": counts.tolist()},
    )


def local_search(
    table: CostTable,
    n: int,
    restarts: int = 3,
    max_rounds: int = 50,
    seed: int | np.random.Generator | None = 0,
) -> Schedule:
    """Best-improvement local search over cut multisets.

    Neighborhood: move one job from position ``a`` to position ``b``
    (all a, b pairs with a job at ``a``). Starts from the JPS solution
    plus ``restarts`` random multisets; deterministic under a fixed
    seed. O(rounds · k² · n) Johnson evaluations.
    """
    require_positive(n, "n")
    rng = make_rng(seed)
    k = table.k

    starts: list[np.ndarray] = []
    jps_counts = np.zeros(k, dtype=int)
    for position, count in jps_line(table, n).cut_histogram().items():
        jps_counts[position] = count
    starts.append(jps_counts)
    # the end-effect-refined JPS is a distinct, often better basin
    from repro.extensions.refine import refine_end_jobs

    refined_counts = np.zeros(k, dtype=int)
    refined = refine_end_jobs(table, jps_line(table, n))
    for position, count in refined.cut_histogram().items():
        refined_counts[position] = count
    starts.append(refined_counts)
    for _ in range(restarts):
        random_counts = np.bincount(rng.integers(0, k, size=n), minlength=k)
        starts.append(random_counts.astype(int))

    best_counts: np.ndarray | None = None
    best_value = float("inf")
    for counts in starts:
        counts = counts.copy()
        value = _evaluate(table, counts)
        for _ in range(max_rounds):
            improved = False
            for a in range(k):
                if counts[a] == 0:
                    continue
                for b in range(k):
                    if a == b:
                        continue
                    counts[a] -= 1
                    counts[b] += 1
                    candidate = _evaluate(table, counts)
                    if candidate < value - 1e-15:
                        value = candidate
                        improved = True
                    else:
                        counts[a] += 1
                        counts[b] -= 1
            if not improved:
                break
        if value < best_value:
            best_value = value
            best_counts = counts
    assert best_counts is not None
    return _counts_to_schedule(table, best_counts, best_value)
