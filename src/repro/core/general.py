"""General-structure DNN partition and scheduling — the paper's Alg. 3.

Pipeline:

1. Convert the DAG into independent source→sink paths (Fig. 9 node
   duplication; :func:`repro.dag.transform.to_independent_paths`).
2. Partition each path individually with Alg. 2 on its own cost table.
3. Schedule all (job, path) units with the *modified* Johnson's rule:
   the order is computed from nominal per-path stage lengths (duplicated
   layers counted in full), but at execution time a layer shared by
   several paths of the same job runs only once — the first path that
   reaches it pays for it.

GoogLeNet's faithful conversion explodes (4^9 global paths), so above
``max_paths`` we fall back to *representative paths*: one default
branch per parallel block plus one variant path per alternative branch
(Σ instead of Π growth, every layer still covered). The substitution is
recorded in the schedule metadata and in DESIGN.md.

``alg3_consistent_plans`` additionally repairs each job's union of path
prefixes into a downward-closed set, yielding a physically executable
global cut — used to quantify how much the paper's per-path accounting
diverges from an executable plan (ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import binary_search_cut
from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import johnson_order
from repro.dag.cuts import make_cut
from repro.dag.graph import Dag
from repro.dag.topology import PathExplosionError, parallel_blocks, separators
from repro.dag.transform import to_independent_paths
from repro.net.channel import Channel
from repro.nn.network import Network
from repro.profiling.device import DeviceModel
from repro.profiling.latency import (
    CostTable,
    LayerPredictor,
    node_mobile_time,
    path_cost_table,
)
from repro.utils.validation import require_positive

__all__ = [
    "PathPlan",
    "clustered_view",
    "representative_paths",
    "alg3_partition",
    "alg3_schedule",
    "alg3_schedule_from_plans",
    "alg3_consistent_plans",
]


@dataclass(frozen=True)
class PathPlan:
    """Alg. 2's decision for one independent path."""

    path_index: int
    path: tuple[str, ...]
    cut_index: int                 # index into `path` (cut after this node)
    mobile_prefix: tuple[str, ...]
    nominal_compute: float         # f with duplicated layers counted in full
    comm_time: float               # upload of the cut tensor


def clustered_view(table: CostTable) -> tuple[CostTable, list[int]]:
    """Restrict a path table to positions where g is a strict running min.

    Inside an Inception branch the tensor volume can rise and fall, so a
    raw path table violates the monotone-g precondition of the binary
    search. Dominated positions (bigger upload *and* more computation
    than an earlier one) are dropped — the §3.2 virtual-block argument
    applied to the path. Returns the view and the kept original indices.
    """
    keep: list[int] = []
    best = float("inf")
    for index in range(table.k):
        if table.g[index] < best:
            keep.append(index)
            best = float(table.g[index])
    if keep[-1] != table.k - 1:
        keep.append(table.k - 1)
    view = CostTable(
        model_name=f"{table.model_name}/view",
        positions=tuple(table.positions[i] for i in keep),
        f=table.f[keep],
        g=table.g[keep],
        cloud=table.cloud[keep],
        graph=None,
    )
    return view, keep


def representative_paths(dag: Dag) -> tuple[tuple[str, ...], ...]:
    """Σ-growth path cover for DAGs whose full path set explodes.

    A *default* route picks the first branch of every parallel block;
    each alternative branch contributes one variant path that follows
    the default route elsewhere. Every node appears in at least one
    path, and every branch-local cut position of every block remains
    reachable by Alg. 2 on some path.
    """
    seps = separators(dag)
    blocks = parallel_blocks(dag)
    default_route: dict[str, tuple[str, ...]] = {
        b.entry: b.branches[0] for b in blocks
    }

    def build(overrides: dict[str, tuple[str, ...]]) -> tuple[str, ...]:
        route: list[str] = []
        for sep, block in zip(seps, blocks):
            route.append(sep)
            branch = overrides.get(block.entry, default_route[block.entry])
            route.extend(branch)
        route.append(seps[-1])
        return tuple(route)

    paths = [build({})]
    for block in blocks:
        for branch in block.branches[1:]:
            paths.append(build({block.entry: branch}))
    # drop duplicates while preserving order (blocks with one branch add none)
    seen: set[tuple[str, ...]] = set()
    unique = []
    for p in paths:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return tuple(unique)


def alg3_partition(
    network: Network,
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    predictor: LayerPredictor | None = None,
    max_paths: int = 2048,
) -> tuple[list[PathPlan], dict]:
    """Steps 1–5 of Alg. 3: convert to paths, cut each with Alg. 2."""
    graph = network.graph
    info: dict = {"conversion": "faithful"}
    try:
        converted = to_independent_paths(graph, max_paths=max_paths)
        paths = converted.paths
    except PathExplosionError:
        paths = representative_paths(graph)
        info = {"conversion": "representative", "reason": f"> {max_paths} paths"}
    info["num_paths"] = len(paths)

    plans: list[PathPlan] = []
    for index, path in enumerate(paths):
        table = path_cost_table(network, path, mobile, cloud, channel, predictor)
        view, kept = clustered_view(table)
        l_star_view = binary_search_cut(view)
        # Alg. 2 returns the pair (l*-1, l*); for the single cut per path we
        # keep the side with the smaller |f - g| imbalance.
        candidates = [l_star_view]
        if l_star_view > 0:
            candidates.append(l_star_view - 1)
        chosen_view = min(
            candidates, key=lambda i: abs(float(view.f[i]) - float(view.g[i]))
        )
        cut_index = kept[chosen_view]
        plans.append(
            PathPlan(
                path_index=index,
                path=path,
                cut_index=cut_index,
                mobile_prefix=path[: cut_index + 1],
                nominal_compute=float(table.f[cut_index]),
                comm_time=float(table.g[cut_index]),
            )
        )
    return plans, info


def alg3_schedule(
    network: Network,
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    n: int,
    predictor: LayerPredictor | None = None,
    max_paths: int = 2048,
) -> Schedule:
    """Alg. 3 end to end for ``n`` identical jobs.

    Johnson's rule orders the n×P (job, path) units by their *nominal*
    stage lengths; execution then charges each original layer once per
    job (the "duplicated nodes are only counted once" modification),
    replaying the flow-shop recurrence with the deduplicated stage
    lengths to obtain the real makespan.
    """
    require_positive(n, "n")
    path_plans, info = alg3_partition(
        network, mobile, cloud, channel, predictor, max_paths
    )
    return alg3_schedule_from_plans(network, mobile, path_plans, info, n, predictor)


def alg3_schedule_from_plans(
    network: Network,
    mobile: DeviceModel,
    path_plans: list[PathPlan],
    info: dict,
    n: int,
    predictor: LayerPredictor | None = None,
) -> Schedule:
    """Alg. 3 steps 6+ on precomputed path cuts.

    Split out of :func:`alg3_schedule` so the planning engine can cache
    the expensive partition phase (path conversion + per-path Alg. 2)
    and replay only the Johnson ordering + deduplicated flow-shop
    recurrence per job count.
    """
    require_positive(n, "n")
    graph = network.graph
    layer_time = {
        v: node_mobile_time(graph.payload(v), mobile, predictor) for v in graph.node_ids
    }

    units: list[tuple[int, PathPlan]] = [
        (job, plan) for job in range(n) for plan in path_plans
    ]
    nominal_stages = [(p.nominal_compute, p.comm_time) for _, p in units]
    order = johnson_order(nominal_stages)

    executed: dict[int, set[str]] = {job: set() for job in range(n)}
    jobs: list[JobPlan] = []
    for rank in order:
        job, plan = units[rank]
        fresh = [v for v in plan.mobile_prefix if v not in executed[job]]
        executed[job].update(plan.mobile_prefix)
        compute = sum(layer_time[v] for v in fresh)
        jobs.append(
            JobPlan(
                job_id=job,
                model=network.name,
                cut_position=plan.cut_index,
                compute_time=compute,
                comm_time=plan.comm_time,
                cut_label=f"path{plan.path_index}:{plan.path[plan.cut_index]}",
                group=f"path{plan.path_index}",
            )
        )

    # replay the 2-stage recurrence with deduplicated compute stages
    c1 = c2 = 0.0
    for job in jobs:
        c1 += job.compute_time
        c2 = max(c2, c1) + job.comm_time
    return Schedule(
        jobs=tuple(jobs),
        makespan=c2,
        method="JPS-paths",
        # `jobs` holds n x P (job, path) units, so Schedule.average_completion
        # divides by the unit count; divide makespan by metadata["n"] for the
        # per-inference-job average.
        metadata={**info, "units": len(units), "n": n},
    )


def alg3_consistent_plans(
    network: Network,
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    predictor: LayerPredictor | None = None,
    max_paths: int = 2048,
) -> JobPlan:
    """A physically executable global cut derived from Alg. 3's path cuts.

    Takes the union of the per-path mobile prefixes and keeps its
    largest downward-closed subset (a node survives only if *all* its
    predecessors survive), then prices the resulting real cut. Returns
    the per-job plan; scheduling n copies is the caller's one-liner.
    """
    path_plans, _ = alg3_partition(network, mobile, cloud, channel, predictor, max_paths)
    graph = network.graph
    union: set[str] = set()
    for plan in path_plans:
        union.update(plan.mobile_prefix)

    kept: set[str] = set()
    for v in graph.topological_order():
        if v in union and all(p in kept for p in graph.predecessors(v)):
            kept.add(v)

    cut = make_cut(graph, kept, label="alg3-consistent")
    compute = sum(
        node_mobile_time(graph.payload(v), mobile, predictor) for v in kept
    )
    comm = channel.uplink_time(cut.transfer_bytes) if len(kept) != len(graph) else 0.0
    return JobPlan(
        job_id=0,
        model=network.name,
        cut_position=-1,
        compute_time=compute,
        comm_time=comm,
        cut_label=cut.label,
        mobile_nodes=cut.mobile,
    )
