"""DNN job scheduling (paper §4): Johnson's rule and makespan formulas.

Once every job's partition is fixed, executing the jobs is a 2-machine
flow shop — machine 1 is the mobile CPU (stage length ``f``), machine 2
the uplink (stage length ``g``); the negligible cloud stage is dropped,
exactly as in the paper (the 3-stage variant lives in
:mod:`repro.extensions.flowshop3`). Johnson's rule (Alg. 1) minimizes
the makespan:

1. split jobs into the communication-heavy set ``S1 = {f < g}`` and the
   computation-heavy set ``S2 = {f >= g}``;
2. sort ``S1`` by ascending ``f`` and ``S2`` by descending ``g``;
3. run ``S1`` then ``S2``.

Everything here is exact and deterministic; the brute-force permutation
search is kept as the optimality oracle for the test-suite.

The public kernels are **vectorized**: :func:`johnson_order` is one
stable ``np.lexsort`` over a signed key and
:func:`flow_shop_completion_times` is the cumsum /
``maximum.accumulate`` closed form of the recurrence — no Python loop
over jobs. The original scalar loops survive as
:func:`johnson_order_scalar` / :func:`flow_shop_completion_times_scalar`
and serve as the parity oracles (``tests/test_vectorized_parity.py``).
``benchmarks/bench_kernels.py`` tracks the speedup.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Sequence

import numpy as np

from repro.core.plans import JobPlan, Schedule

__all__ = [
    "johnson_order",
    "johnson_order_indices",
    "johnson_order_scalar",
    "flow_shop_makespan",
    "flow_shop_completion_times",
    "flow_shop_completion_arrays",
    "flow_shop_completion_times_scalar",
    "proposition_4_1_makespan",
    "schedule_jobs",
    "best_order_brute_force",
]

Stage = tuple[float, float]


def _stage_arrays(stages: Sequence[Stage]) -> tuple[np.ndarray, np.ndarray]:
    """Split a stage sequence (or an (n, 2) array) into f and g vectors."""
    arr = np.asarray(stages, dtype=float)
    if arr.size == 0:
        empty = np.empty(0, dtype=float)
        return empty, empty
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"stages must be (f, g) pairs, got shape {arr.shape}")
    return arr[:, 0], arr[:, 1]


def johnson_order_indices(f: np.ndarray, g: np.ndarray) -> np.ndarray:
    """Array-native Johnson's rule: the optimal order as an index vector.

    One stable lexsort over ``(group, signed key)`` where the
    communication-heavy set S1 (``f < g``, group 0, key ``f``) precedes
    the computation-heavy set S2 (``f >= g``, group 1, key ``-g``).
    Stability gives the deterministic original-index tiebreak, so the
    result is bit-identical to :func:`johnson_order_scalar`.
    """
    group = f >= g
    signed = np.where(group, -g, f)
    return np.lexsort((signed, group))


def johnson_order(stages: Sequence[Stage]) -> list[int]:
    """Alg. 1: the optimal job order for a 2-stage flow shop.

    Returns indices into ``stages``. Ties break deterministically on the
    original index, so equal-cost schedules are reproducible.
    """
    f, g = _stage_arrays(stages)
    if f.size == 0:
        return []
    return johnson_order_indices(f, g).tolist()


def johnson_order_scalar(stages: Sequence[Stage]) -> list[int]:
    """Pure-Python Johnson's rule (the parity oracle for the lexsort)."""
    s1 = [i for i, (f, g) in enumerate(stages) if f < g]
    s2 = [i for i, (f, g) in enumerate(stages) if f >= g]
    s1.sort(key=lambda i: (stages[i][0], i))               # ascending f
    s2.sort(key=lambda i: (-stages[i][1], i))              # descending g
    return s1 + s2


def flow_shop_completion_arrays(
    f: np.ndarray, g: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Array-native completion times ``(C1, C2)`` for jobs in the given order.

    The recurrence ``C2[j] = max(C2[j-1], C1[j]) + g[j]`` unrolls to the
    closed form ``C2[j] = Gcum[j] + max_{k<=j}(C1[k] - Gcum[k-1])`` with
    ``Gcum[-1] = 0`` — a cumsum and one ``maximum.accumulate``, no Python
    loop. The closed form is algebraically identical to the recurrence;
    in floating point it differs only by summation reassociation (exactly
    equal whenever the sums are exactly representable, e.g. on the dyadic
    grids the property tests draw from).
    """
    if f.size == 0:
        empty = np.empty(0, dtype=float)
        return empty, empty
    bad = np.where((f < 0) | (g < 0))[0]
    if bad.size:
        i = int(bad[0])
        raise ValueError(
            f"stage lengths must be >= 0, got ({float(f[i])}, {float(g[i])})"
        )
    c1 = np.cumsum(f)
    gcum = np.cumsum(g)
    shifted = np.empty_like(gcum)
    shifted[0] = 0.0
    shifted[1:] = gcum[:-1]
    c2 = gcum + np.maximum.accumulate(c1 - shifted)
    return c1, c2


def flow_shop_completion_times(stages: Sequence[Stage]) -> list[tuple[float, float]]:
    """Per-job (stage-1 finish, stage-2 finish) for jobs run in the given order.

    The standard permutation flow-shop recurrence::

        C1[j] = C1[j-1] + f[j]
        C2[j] = max(C2[j-1], C1[j]) + g[j]

    Stage 2 of a job cannot start before its own stage 1 completes and
    before the link is free — the pipeline constraint of §3.1. Computed
    via :func:`flow_shop_completion_arrays`; an empty sequence yields an
    empty list and a single job trivially ``[(f, f + g)]``.
    """
    f, g = _stage_arrays(stages)
    if f.size == 0:
        return []
    c1, c2 = flow_shop_completion_arrays(f, g)
    return list(zip(c1.tolist(), c2.tolist()))


def flow_shop_completion_times_scalar(
    stages: Sequence[Stage],
) -> list[tuple[float, float]]:
    """The original scalar recurrence (the parity oracle for the closed form)."""
    completions: list[tuple[float, float]] = []
    c1 = c2 = 0.0
    for f, g in stages:
        if f < 0 or g < 0:
            raise ValueError(f"stage lengths must be >= 0, got ({f}, {g})")
        c1 += f
        c2 = max(c2, c1) + g
        completions.append((c1, c2))
    return completions


def flow_shop_makespan(stages: Sequence[Stage]) -> float:
    """Makespan of jobs executed in the given order."""
    f, g = _stage_arrays(stages)
    if f.size == 0:
        return 0.0
    return float(flow_shop_completion_arrays(f, g)[1][-1])


def proposition_4_1_makespan(stages: Sequence[Stage]) -> float:
    """Prop. 4.1: closed-form makespan of a Johnson-ordered job sequence.

    ``f(x1) + max(sum_{i>=2} f(xi), sum_{i<=n-1} g(xi)) + g(xn)``.

    Scope (a reproduction finding, verified property-based in the test
    suite): the formula equals the exact recurrence for the *two-type*
    job sets of Theorem 5.3 (one communication-heavy and one
    computation-heavy cut), where idle time accumulates on at most one
    resource as the proposition argues. For arbitrary Johnson-ordered
    sequences it is only a **lower bound** — the exact makespan is
    ``max_j (sum_{i<=j} f_i + sum_{i>=j} g_i)`` over *all* j, and the
    formula keeps just the j = 1 and j = n terms. Counterexample with
    three distinct stage pairs: ``[(0.1, 0.2), (1, 1.1), (0.9, 0.05)]``
    (formula 2.05, true makespan 2.25). Use
    :func:`flow_shop_makespan` when exactness matters.
    """
    if not len(stages):
        return 0.0
    if len(stages) == 1:
        # degenerate pipeline: one job's stages simply run back to back
        f, g = stages[0]
        return float(f + g)
    fs = np.array([s[0] for s in stages])
    gs = np.array([s[1] for s in stages])
    return float(fs[0] + max(fs[1:].sum(), gs[:-1].sum()) + gs[-1])


def schedule_jobs(plans: Iterable[JobPlan], method: str = "johnson") -> Schedule:
    """Order ``plans`` with Johnson's rule and compute the exact makespan."""
    plan_list = list(plans)
    stages = [plan.stages for plan in plan_list]
    order = johnson_order(stages)
    ordered = tuple(plan_list[i] for i in order)
    makespan = flow_shop_makespan([p.stages for p in ordered])
    return Schedule(
        jobs=ordered,
        makespan=makespan,
        method=method,
        metadata={
            "s1_size": sum(p.is_communication_heavy for p in ordered),
            "s2_size": sum(not p.is_communication_heavy for p in ordered),
        },
    )


def best_order_brute_force(stages: Sequence[Stage], max_jobs: int = 9) -> float:
    """Minimum makespan over every permutation (test oracle only)."""
    if len(stages) > max_jobs:
        raise ValueError(
            f"brute-force order search is factorial; {len(stages)} jobs > cap {max_jobs}"
        )
    if not stages:
        return 0.0
    return min(flow_shop_makespan(list(p)) for p in permutations(stages))
