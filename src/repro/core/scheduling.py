"""DNN job scheduling (paper §4): Johnson's rule and makespan formulas.

Once every job's partition is fixed, executing the jobs is a 2-machine
flow shop — machine 1 is the mobile CPU (stage length ``f``), machine 2
the uplink (stage length ``g``); the negligible cloud stage is dropped,
exactly as in the paper (the 3-stage variant lives in
:mod:`repro.extensions.flowshop3`). Johnson's rule (Alg. 1) minimizes
the makespan:

1. split jobs into the communication-heavy set ``S1 = {f < g}`` and the
   computation-heavy set ``S2 = {f >= g}``;
2. sort ``S1`` by ascending ``f`` and ``S2`` by descending ``g``;
3. run ``S1`` then ``S2``.

Everything here is exact and deterministic; the brute-force permutation
search is kept as the optimality oracle for the test-suite.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Sequence

import numpy as np

from repro.core.plans import JobPlan, Schedule

__all__ = [
    "johnson_order",
    "flow_shop_makespan",
    "flow_shop_completion_times",
    "proposition_4_1_makespan",
    "schedule_jobs",
    "best_order_brute_force",
]

Stage = tuple[float, float]


def johnson_order(stages: Sequence[Stage]) -> list[int]:
    """Alg. 1: the optimal job order for a 2-stage flow shop.

    Returns indices into ``stages``. Ties break deterministically on the
    original index, so equal-cost schedules are reproducible.
    """
    s1 = [i for i, (f, g) in enumerate(stages) if f < g]
    s2 = [i for i, (f, g) in enumerate(stages) if f >= g]
    s1.sort(key=lambda i: (stages[i][0], i))               # ascending f
    s2.sort(key=lambda i: (-stages[i][1], i))              # descending g
    return s1 + s2


def flow_shop_completion_times(stages: Sequence[Stage]) -> list[tuple[float, float]]:
    """Per-job (stage-1 finish, stage-2 finish) for jobs run in the given order.

    The standard permutation flow-shop recurrence::

        C1[j] = C1[j-1] + f[j]
        C2[j] = max(C2[j-1], C1[j]) + g[j]

    Stage 2 of a job cannot start before its own stage 1 completes and
    before the link is free — the pipeline constraint of §3.1.
    """
    completions: list[tuple[float, float]] = []
    c1 = c2 = 0.0
    for f, g in stages:
        if f < 0 or g < 0:
            raise ValueError(f"stage lengths must be >= 0, got ({f}, {g})")
        c1 += f
        c2 = max(c2, c1) + g
        completions.append((c1, c2))
    return completions


def flow_shop_makespan(stages: Sequence[Stage]) -> float:
    """Makespan of jobs executed in the given order."""
    if not stages:
        return 0.0
    return flow_shop_completion_times(stages)[-1][1]


def proposition_4_1_makespan(stages: Sequence[Stage]) -> float:
    """Prop. 4.1: closed-form makespan of a Johnson-ordered job sequence.

    ``f(x1) + max(sum_{i>=2} f(xi), sum_{i<=n-1} g(xi)) + g(xn)``.

    Scope (a reproduction finding, verified property-based in the test
    suite): the formula equals the exact recurrence for the *two-type*
    job sets of Theorem 5.3 (one communication-heavy and one
    computation-heavy cut), where idle time accumulates on at most one
    resource as the proposition argues. For arbitrary Johnson-ordered
    sequences it is only a **lower bound** — the exact makespan is
    ``max_j (sum_{i<=j} f_i + sum_{i>=j} g_i)`` over *all* j, and the
    formula keeps just the j = 1 and j = n terms. Counterexample with
    three distinct stage pairs: ``[(0.1, 0.2), (1, 1.1), (0.9, 0.05)]``
    (formula 2.05, true makespan 2.25). Use
    :func:`flow_shop_makespan` when exactness matters.
    """
    if not stages:
        return 0.0
    fs = np.array([s[0] for s in stages])
    gs = np.array([s[1] for s in stages])
    return float(fs[0] + max(fs[1:].sum(), gs[:-1].sum()) + gs[-1])


def schedule_jobs(plans: Iterable[JobPlan], method: str = "johnson") -> Schedule:
    """Order ``plans`` with Johnson's rule and compute the exact makespan."""
    plan_list = list(plans)
    stages = [plan.stages for plan in plan_list]
    order = johnson_order(stages)
    ordered = tuple(plan_list[i] for i in order)
    makespan = flow_shop_makespan([p.stages for p in ordered])
    return Schedule(
        jobs=ordered,
        makespan=makespan,
        method=method,
        metadata={
            "s1_size": sum(p.is_communication_heavy for p in ordered),
            "s2_size": sum(not p.is_communication_heavy for p in ordered),
        },
    )


def best_order_brute_force(stages: Sequence[Stage], max_jobs: int = 9) -> float:
    """Minimum makespan over every permutation (test oracle only)."""
    if len(stages) > max_jobs:
        raise ValueError(
            f"brute-force order search is factorial; {len(stages)} jobs > cap {max_jobs}"
        )
    if not stages:
        return 0.0
    return min(flow_shop_makespan(list(p)) for p in permutations(stages))
