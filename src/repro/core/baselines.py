"""Comparison schemes from §6.2: LO, CO, PO, and brute force.

* **LO (local-only)** — every job runs entirely on the mobile device.
* **CO (cloud-only)** — every job uploads the raw input; the uplink is
  the only pipeline stage that matters.
* **PO (partition-only)** — the state-of-the-art single-DNN partition
  (Neurosurgeon / DADS style): one homogeneous cut minimizing a single
  job's end-to-end latency ``f + g (+ cloud rest)``, ignoring the
  multi-job pipeline.
* **BF (brute force)** — exhaustive search over cut-position multisets
  (job identity does not matter) with Johnson's rule scheduling each
  candidate; the optimum the paper compares against in Fig. 11.
"""

from __future__ import annotations

import math
from itertools import combinations_with_replacement
from typing import Sequence

import numpy as np

from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import flow_shop_makespan, johnson_order, schedule_jobs
from repro.profiling.latency import CostTable
from repro.utils.validation import require_positive

__all__ = [
    "local_only",
    "cloud_only",
    "partition_only",
    "single_job_optimal_cut",
    "brute_force",
    "brute_force_search_space",
]


def _uniform_plans(table: CostTable, position: int, n: int) -> list[JobPlan]:
    f, g = table.stage_lengths(position)
    mobile = table.mobile_nodes_at(position) if table.graph is not None else None
    return [
        JobPlan(
            job_id=i,
            model=table.model_name,
            cut_position=position,
            compute_time=f,
            comm_time=g,
            cloud_time=table.cloud_rest(position),
            cut_label=table.positions[position],
            mobile_nodes=mobile,
        )
        for i in range(n)
    ]


def local_only(table: CostTable, n: int) -> Schedule:
    """LO: cut after the last layer; no network usage at all."""
    require_positive(n, "n")
    plans = _uniform_plans(table, table.k - 1, n)
    schedule = schedule_jobs(plans, method="LO")
    return Schedule(
        jobs=schedule.jobs,
        makespan=schedule.makespan,
        method="LO",
        metadata={"cut": table.positions[-1]},
    )


def cloud_only(table: CostTable, n: int) -> Schedule:
    """CO: cut after the input; upload everything."""
    require_positive(n, "n")
    plans = _uniform_plans(table, 0, n)
    schedule = schedule_jobs(plans, method="CO")
    return Schedule(
        jobs=schedule.jobs,
        makespan=schedule.makespan,
        method="CO",
        metadata={"cut": table.positions[0]},
    )


def single_job_optimal_cut(table: CostTable, include_cloud: bool = True) -> int:
    """The Neurosurgeon cut: minimize one job's latency f + g (+ cloud)."""
    totals = table.f + table.g
    if include_cloud:
        totals = totals + np.array([table.cloud_rest(i) for i in range(table.k)])
    return int(np.argmin(totals))


def partition_only(table: CostTable, n: int, include_cloud: bool = True) -> Schedule:
    """PO: the single-job optimal cut applied homogeneously to all jobs."""
    require_positive(n, "n")
    position = single_job_optimal_cut(table, include_cloud=include_cloud)
    plans = _uniform_plans(table, position, n)
    schedule = schedule_jobs(plans, method="PO")
    return Schedule(
        jobs=schedule.jobs,
        makespan=schedule.makespan,
        method="PO",
        metadata={"cut": table.positions[position], "cut_position": position},
    )


def brute_force_search_space(n: int, num_positions: int) -> int:
    """Size of the BF search space: multisets of size n over the positions."""
    return math.comb(n + num_positions - 1, num_positions - 1)


def brute_force(
    table: CostTable,
    n: int,
    positions: Sequence[int] | None = None,
    max_candidates: int = 2_000_000,
) -> Schedule:
    """BF: optimal partition multiset + Johnson scheduling.

    Because jobs are identical, only the multiset of cut positions
    matters, which reduces the paper's ``O(c^n)`` enumeration to
    ``C(n + c - 1, c - 1)`` candidates. ``positions`` restricts the cut
    candidates (the usual way to keep large-n searches tractable; pass
    ``None`` to search every position).
    """
    require_positive(n, "n")
    candidates = list(range(table.k)) if positions is None else sorted(set(positions))
    if not candidates:
        raise ValueError("no candidate positions to search")
    space = brute_force_search_space(n, len(candidates))
    if space > max_candidates:
        raise ValueError(
            f"brute force would evaluate {space} multisets "
            f"(n={n}, positions={len(candidates)}) > cap {max_candidates}; "
            "restrict `positions` or lower n"
        )

    stage_of = {p: table.stage_lengths(p) for p in candidates}
    best_combo: tuple[int, ...] | None = None
    best_makespan = float("inf")
    for combo in combinations_with_replacement(candidates, n):
        stages = [stage_of[p] for p in combo]
        order = johnson_order(stages)
        makespan = flow_shop_makespan([stages[i] for i in order])
        if makespan < best_makespan - 1e-15:
            best_makespan = makespan
            best_combo = combo
    assert best_combo is not None

    plans = [
        JobPlan(
            job_id=i,
            model=table.model_name,
            cut_position=p,
            compute_time=stage_of[p][0],
            comm_time=stage_of[p][1],
            cloud_time=table.cloud_rest(p),
            cut_label=table.positions[p],
        )
        for i, p in enumerate(best_combo)
    ]
    schedule = schedule_jobs(plans, method="BF")
    return Schedule(
        jobs=schedule.jobs,
        makespan=schedule.makespan,
        method="BF",
        metadata={"search_space": space, "cut_multiset": best_combo},
    )
