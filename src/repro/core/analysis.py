"""Schedule analysis: lower bounds, utilization, speedup reports.

The centerpiece is :func:`fractional_lower_bound`: allow each job to
pick a *fractional mixture* of cut positions and drop the pipeline end
effects — the makespan can never beat ``n * min_λ max(Σλf, Σλg)`` over
probability vectors λ. That tiny LP (solved with ``scipy.linprog``)
lower-bounds every scheme in this repository, so tests can sandwich JPS
between it and the baselines instead of only comparing schemes to each
other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy import optimize

from repro.core.plans import Schedule
from repro.profiling.latency import CostTable
from repro.utils.validation import require_positive

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> sim import cycle
    from repro.sim.pipeline import PipelineResult

__all__ = [
    "fractional_lower_bound",
    "best_single_cut_rate",
    "UtilizationReport",
    "utilization_report",
    "speedup_report",
]


def fractional_lower_bound(table: CostTable, n: int) -> float:
    """LP lower bound on the makespan of any partition + schedule.

    minimize t  s.t.  t >= Σ λ_i f_i,  t >= Σ λ_i g_i,  Σ λ_i = 1, λ >= 0,
    scaled by n. Steady-state only: the first job's computation and the
    last job's communication (which every real pipeline also pays) are
    not charged, so the bound is strict but usually tight within one
    job's worth of time.
    """
    require_positive(n, "n")
    k = table.k
    # variables: λ_0..λ_{k-1}, t
    c = np.zeros(k + 1)
    c[-1] = 1.0
    a_ub = np.zeros((2, k + 1))
    a_ub[0, :k] = table.f
    a_ub[0, -1] = -1.0
    a_ub[1, :k] = table.g
    a_ub[1, -1] = -1.0
    a_eq = np.zeros((1, k + 1))
    a_eq[0, :k] = 1.0
    result = optimize.linprog(
        c,
        A_ub=a_ub,
        b_ub=np.zeros(2),
        A_eq=a_eq,
        b_eq=np.ones(1),
        bounds=[(0, None)] * k + [(0, None)],
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP on this structure can't fail
        raise RuntimeError(f"lower-bound LP failed: {result.message}")
    return float(n * result.x[-1])


def best_single_cut_rate(table: CostTable) -> tuple[int, float]:
    """(position, per-job steady rate) of the best *homogeneous* cut.

    The pipeline rate of cutting every job at position x is
    ``max(f(x), g(x))``; minimizing it is what a partition-aware but
    mix-unaware scheme can achieve at best.
    """
    rates = np.maximum(table.f, table.g)
    position = int(np.argmin(rates))
    return position, float(rates[position])


@dataclass(frozen=True)
class UtilizationReport:
    """Resource usage of one executed schedule."""

    makespan: float
    mobile_utilization: float
    uplink_utilization: float
    cloud_utilization: float

    @property
    def bottleneck(self) -> str:
        pairs = [
            ("mobile", self.mobile_utilization),
            ("uplink", self.uplink_utilization),
            ("cloud", self.cloud_utilization),
        ]
        return max(pairs, key=lambda p: p[1])[0]


def utilization_report(result: "PipelineResult") -> UtilizationReport:
    """Summarize a simulation's resource utilization."""
    horizon = result.makespan
    if horizon <= 0:
        return UtilizationReport(0.0, 0.0, 0.0, 0.0)
    return UtilizationReport(
        makespan=horizon,
        mobile_utilization=result.mobile.utilization(horizon),
        uplink_utilization=result.uplink.utilization(horizon),
        cloud_utilization=result.cloud.utilization(horizon),
    )


def speedup_report(
    schedules: dict[str, Schedule], baseline: str = "LO"
) -> dict[str, float]:
    """Latency-reduction percentages of each scheme vs ``baseline``.

    The Table-1 computation as a reusable helper; losses clamp to 0 as
    in the paper's reporting.
    """
    if baseline not in schedules:
        raise KeyError(f"baseline {baseline!r} not among {sorted(schedules)}")
    base = schedules[baseline].makespan
    if base <= 0:
        raise ValueError("baseline makespan must be positive")
    return {
        name: max(0.0, (base - schedule.makespan) / base * 100.0)
        for name, schedule in schedules.items()
        if name != baseline
    }
