"""Line-structure DNN partition (paper §5.1–5.2).

Given a cost table with increasing ``f`` and non-increasing ``g``,
the discrete analogue of Theorem 5.2's crossing point is the *leftmost*
position ``l*`` with ``f(l*) >= g(l*)`` — found by Alg. 2's binary
search in ``O(log k)``. Theorem 5.3 then says it suffices to cut every
job at ``l* - 1`` or ``l*``; the count ratio between the two types is
the paper's line-9 formula::

    ratio = floor( (f(l*) - g(l*)) / (g(l*-1) - f(l*-1)) )

i.e. each job cut at ``l*`` leaves ``f - g`` seconds of un-overlapped
computation, which ``ratio`` communication-heavy jobs (surplus
``g - f`` each) can hide behind.

Beyond the paper's rule we expose an *exact* integer split optimizer
(same two candidate layers, best ``n1`` by direct makespan evaluation —
an O(n) sweep using Prop. 4.1) used in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plans import JobPlan
from repro.core.scheduling import flow_shop_makespan, johnson_order
from repro.profiling.latency import CostTable
from repro.utils.validation import require_positive

__all__ = [
    "binary_search_cut",
    "searchsorted_cut",
    "linear_scan_cut",
    "partition_ratio",
    "TwoTypeSplit",
    "split_by_paper_ratio",
    "split_exact",
    "split_exact_vectorized",
    "two_type_makespans",
    "plans_for_split",
    "split_best_pair",
]


def binary_search_cut(table: CostTable) -> int:
    """Alg. 2: leftmost position with ``f >= g`` via binary search.

    Requires ``g`` non-increasing (run virtual-block clustering first);
    ``f`` is non-decreasing by construction. The result always exists
    because the final position has ``g = 0``: a network that never
    crosses earlier is simply best run fully locally.
    """
    if not table.is_g_non_increasing():
        raise ValueError(
            f"{table.model_name}: g is not non-increasing; cluster virtual "
            "blocks before searching (binary search needs a single crossing)"
        )
    lo, hi = 0, table.k - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if table.f[mid] < table.g[mid]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def searchsorted_cut(table: CostTable) -> int:
    """Alg. 2's crossing as one ``np.searchsorted`` over ``h = f - g``.

    With ``f`` non-decreasing (a CostTable invariant) and ``g``
    non-increasing, ``h`` is non-decreasing and the leftmost position
    with ``f >= g`` is the leftmost with ``h >= 0``. Float subtraction
    is sign-exact (``sign(fl(f - g)) == sign(f - g)``), so the crossing
    index matches :func:`binary_search_cut` exactly; the last position
    has ``g = 0`` hence ``h >= 0``, so a crossing always exists.
    """
    if not table.is_g_non_increasing():
        raise ValueError(
            f"{table.model_name}: g is not non-increasing; cluster virtual "
            "blocks before searching (binary search needs a single crossing)"
        )
    return min(
        int(np.searchsorted(table.f - table.g, 0.0, side="left")), table.k - 1
    )


def linear_scan_cut(table: CostTable) -> int:
    """O(k) reference implementation of the same search (test oracle)."""
    for position in range(table.k):
        if table.f[position] >= table.g[position]:
            return position
    return table.k - 1


def partition_ratio(table: CostTable, l_star: int) -> int:
    """The paper's line-9 ratio: (l*-1)-cuts per one l*-cut.

    Defined for ``l_star >= 1`` with a strict crossing
    (``f(l*-1) < g(l*-1)``). A zero ratio means the computation surplus
    at ``l*`` is smaller than one job's communication surplus at
    ``l* - 1`` — the split optimizer still considers mixing, but the
    paper's floor rounds to "no communication-heavy jobs needed".
    """
    if l_star <= 0:
        raise ValueError("ratio is undefined when the crossing is at position 0")
    surplus_compute = float(table.f[l_star] - table.g[l_star])
    surplus_comm = float(table.g[l_star - 1] - table.f[l_star - 1])
    if surplus_comm <= 0:
        raise ValueError(
            f"position {l_star - 1} is not communication-heavy "
            f"(f={table.f[l_star - 1]}, g={table.g[l_star - 1]})"
        )
    return int(np.floor(surplus_compute / surplus_comm))


@dataclass(frozen=True)
class TwoTypeSplit:
    """A job-count split over the two candidate cut layers."""

    position_a: int       # l* - 1 (communication-heavy), or l* when n_a == 0
    position_b: int       # l* (computation-heavy)
    n_a: int
    n_b: int
    makespan: float

    def __post_init__(self) -> None:
        if self.n_a < 0 or self.n_b < 0:
            raise ValueError("job counts must be >= 0")

    @property
    def total_jobs(self) -> int:
        return self.n_a + self.n_b


def _split_makespan(table: CostTable, l_star: int, n_a: int, n_b: int) -> float:
    """Exact makespan of ``n_a`` jobs at l*-1 and ``n_b`` at l* (Johnson order)."""
    stages = [table.stage_lengths(l_star - 1)] * n_a + [table.stage_lengths(l_star)] * n_b
    order = johnson_order(stages)
    return flow_shop_makespan([stages[i] for i in order])


def split_by_paper_ratio(table: CostTable, l_star: int, n: int) -> TwoTypeSplit:
    """Distribute ``n`` jobs across (l*-1, l*) by the paper's ratio rule.

    With ratio ``rho = n_a : n_b`` per computation-heavy job, ``n`` jobs
    take ``n_a = round(n * rho / (rho + 1))``. A crossing at position 0
    (``f(0) >= g(0)``, e.g. extremely fast networks) or an exact tie
    ``f(l*) == g(l*)`` puts every job on a single layer, matching the
    Theorem 5.2 regime.
    """
    require_positive(n, "n")
    if l_star == 0 or np.isclose(table.f[l_star], table.g[l_star]):
        # exact crossing (Theorem 5.2 regime) or crossing at the first
        # position: a single cut layer serves every job
        makespan = flow_shop_makespan([table.stage_lengths(l_star)] * n)
        return TwoTypeSplit(
            position_a=l_star, position_b=l_star, n_a=0, n_b=n, makespan=makespan
        )
    rho = partition_ratio(table, l_star)
    n_a = int(round(n * rho / (rho + 1)))
    n_a = min(max(n_a, 0), n)
    n_b = n - n_a
    return TwoTypeSplit(
        position_a=l_star - 1,
        position_b=l_star,
        n_a=n_a,
        n_b=n_b,
        makespan=_split_makespan(table, l_star, n_a, n_b),
    )


def split_exact(table: CostTable, l_star: int, n: int) -> TwoTypeSplit:
    """Best integer split over the same two candidate layers.

    Sweeps ``n_a`` from 0 to n evaluating the exact Johnson makespan —
    O(n) evaluations, each O(n); still microseconds for the paper's
    n = 100. The ratio rule is a closed-form approximation of this.
    """
    require_positive(n, "n")
    if l_star == 0:
        makespan = flow_shop_makespan([table.stage_lengths(0)] * n)
        return TwoTypeSplit(0, 0, 0, n, makespan)
    best: TwoTypeSplit | None = None
    for n_a in range(n + 1):
        makespan = _split_makespan(table, l_star, n_a, n - n_a)
        if best is None or makespan < best.makespan - 1e-15:
            best = TwoTypeSplit(l_star - 1, l_star, n_a, n - n_a, makespan)
    assert best is not None
    return best


def two_type_makespans(
    stage_a: tuple[float, float], stage_b: tuple[float, float], n: int
) -> np.ndarray:
    """Johnson makespans of every candidate split, one matrix pass.

    Entry ``n_a`` is the exact makespan of ``n_a`` jobs at ``stage_a``
    followed by ``n - n_a`` at ``stage_b`` — the order Johnson's rule
    produces when ``stage_a`` is strictly communication-heavy
    (``f_a < g_a``) and ``stage_b`` computation-heavy (``f_b >= g_b``),
    as the (l*-1, l*) candidates of Theorem 5.3 always are. Each row of
    the (n+1, n) stage matrix goes through the same cumsum /
    ``maximum.accumulate`` closed form as
    :func:`~repro.core.scheduling.flow_shop_completion_arrays`, so every
    entry is bit-identical to evaluating that candidate on its own.
    """
    require_positive(n, "n")
    f_a, g_a = stage_a
    f_b, g_b = stage_b
    counts = np.arange(n + 1)[:, None]
    jobs = np.arange(n)[None, :]
    in_a = jobs < counts
    c1 = np.cumsum(np.where(in_a, f_a, f_b), axis=1)
    gcum = np.cumsum(np.where(in_a, g_a, g_b), axis=1)
    shifted = np.zeros_like(gcum)
    shifted[:, 1:] = gcum[:, :-1]
    c2 = gcum + np.maximum.accumulate(c1 - shifted, axis=1)
    return c2[:, -1]


#: Above this job count the (n+1, n) candidate matrix stops being a win
#: (memory grows quadratically); fall back to the scalar sweep.
_MATRIX_SPLIT_MAX_N = 4096


def split_exact_vectorized(table: CostTable, l_star: int, n: int) -> TwoTypeSplit:
    """:func:`split_exact` evaluated as one matrix kernel.

    Same two candidate layers, same ``> 1e-15`` keep-strictly-better
    sweep over ``n_a`` — only the n+1 makespan evaluations collapse into
    :func:`two_type_makespans`. Bit-identical to :func:`split_exact`
    (the property tests lock this), at O(n^2) cells instead of O(n^2)
    Python-loop flow-shop evaluations.
    """
    require_positive(n, "n")
    if l_star == 0:
        makespan = flow_shop_makespan([table.stage_lengths(0)] * n)
        return TwoTypeSplit(0, 0, 0, n, makespan)
    if n > _MATRIX_SPLIT_MAX_N:
        return split_exact(table, l_star, n)
    makespans = two_type_makespans(
        table.stage_lengths(l_star - 1), table.stage_lengths(l_star), n
    )
    best = 0
    for n_a in range(1, n + 1):
        if makespans[n_a] < makespans[best] - 1e-15:
            best = n_a
    return TwoTypeSplit(l_star - 1, l_star, best, n - best, float(makespans[best]))


def split_best_pair(table: CostTable, n: int) -> TwoTypeSplit:
    """Best two-type split over *all* position pairs (beyond the paper).

    Theorem 5.3 restricts the two cut types to the adjacent pair
    (l*-1, l*), which is only guaranteed sufficient when adjacent-layer
    time differences are not drastic. On coarse clustered tables (e.g.
    VGG-16, whose first block holds most of the computation) the optimal
    mixture pairs non-adjacent layers. Because the fractional LP bound
    has at most two non-zero weights, searching all O(k^2) pairs with an
    exact integer split recovers the best two-type solution outright.
    O(k^2 · n) Johnson evaluations — still milliseconds at the paper's
    scales.
    """
    require_positive(n, "n")
    best: TwoTypeSplit | None = None
    for b in range(table.k):
        stage_b = table.stage_lengths(b)
        # homogeneous candidate
        makespan = flow_shop_makespan([stage_b] * n)
        if best is None or makespan < best.makespan - 1e-15:
            best = TwoTypeSplit(b, b, 0, n, makespan)
        for a in range(b):
            stage_a = table.stage_lengths(a)
            for n_a in range(1, n):
                stages = [stage_a] * n_a + [stage_b] * (n - n_a)
                order = johnson_order(stages)
                makespan = flow_shop_makespan([stages[i] for i in order])
                if makespan < best.makespan - 1e-15:
                    best = TwoTypeSplit(a, b, n_a, n - n_a, makespan)
    assert best is not None
    return best


def plans_for_split(table: CostTable, split: TwoTypeSplit) -> list[JobPlan]:
    """Materialize JobPlans (communication-heavy jobs first, ids 0..n-1).

    When the table was built from a graph, each plan also carries the
    concrete mobile node set so the runtime prototype can execute it.
    """
    plans: list[JobPlan] = []
    mobile_sets: dict[int, frozenset[str] | None] = {}
    for index in range(split.total_jobs):
        position = split.position_a if index < split.n_a else split.position_b
        if position not in mobile_sets:
            mobile_sets[position] = (
                table.mobile_nodes_at(position) if table.graph is not None else None
            )
        f, g = table.stage_lengths(position)
        plans.append(
            JobPlan(
                job_id=index,
                model=table.model_name,
                cut_position=position,
                compute_time=f,
                comm_time=g,
                cloud_time=table.cloud_rest(position),
                cut_label=table.positions[position],
                mobile_nodes=mobile_sets[position],
            )
        )
    return plans
