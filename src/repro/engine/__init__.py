"""Planning engine: memoized cost caches behind a single ``plan()``.

The expensive planning intermediates — linearized line tables, the
Pareto frontier cut space, Alg. 3 path plans — are memoized behind
content-addressed keys (network fingerprint, device models, channel
parameters, predictor), with hit/miss statistics and an LRU bound.
See :mod:`repro.engine.engine` for the cache architecture and
``docs/engine.md`` for key/invalidation semantics.
"""

from repro.engine.cache import CacheStats, LRUCache
from repro.engine.engine import PlanningEngine, PricedModel
from repro.engine.keys import (
    channel_fingerprint,
    device_fingerprint,
    network_fingerprint,
    predictor_fingerprint,
    stable_digest,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "PlanningEngine",
    "PricedModel",
    "channel_fingerprint",
    "device_fingerprint",
    "network_fingerprint",
    "predictor_fingerprint",
    "stable_digest",
]
