"""The planning engine: memoized cost intermediates behind one ``plan()``.

Every JPS call decomposes into a *structure* phase (linearize the graph
or enumerate + Pareto-prune the frontier cut space; run Alg. 3's path
conversion) and a *search* phase (binary search + two-type split +
Johnson sort). The structure phase dominates wall time — GoogLeNet's
frontier enumeration visits thousands of cuts — yet its inputs change
rarely: the same (network, devices, predictor) tuple is replanned for
dozens of bandwidths and job counts in every experiment sweep.

:class:`PlanningEngine` memoizes three levels of intermediates behind
content-addressed keys (:mod:`repro.engine.keys`):

* **bandwidth-independent structure** — the linearized line order with
  cumulative ``f``/``cloud`` and edge volumes, or the Pareto cut set
  with per-cut compute/bytes/cloud-rest. Dominance is decided on
  (compute time, transfer bytes), both bandwidth-invariant, so one
  enumeration serves every channel.
* **per-channel cost tables** — the structure priced through a concrete
  channel's ``uplink_time``; an LRU bound keeps sweep-heavy workloads
  from growing without limit.
* **Alg. 3 path plans** — per-(channel) path cuts, replayed through the
  deduplicated flow-shop recurrence for any job count.

A warm ``plan()`` therefore costs only the O(log k) search and the
Johnson sort, which is what the paper's Fig. 12(d) claims the deployed
scheduler pays per decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from typing import Sequence

from repro.core.baselines import cloud_only, local_only, partition_only
from repro.core.joint import (
    FrontierTable,
    SplitMode,
    Structure,
    jps_line,
    jps_line_fast,
)
from repro.core.plans import Schedule
from repro.dag.cuts import Cut, enumerate_frontier_cuts, prune_dominated
from repro.dag.graph import Dag
from repro.dag.partition import (
    DagCutTable,
    dag_pareto_cuts,
    dag_schedule_from_table,
    unique_cut_labels,
)
from repro.dag.topology import is_series_parallel
from repro.dag.transform import collapse_clusterable_blocks, linearize
from repro.engine.cache import LRUCache
from repro.engine.keys import (
    channel_fingerprint,
    device_fingerprint,
    network_fingerprint,
    predictor_fingerprint,
)
from repro.net.bandwidth import TrafficShaper
from repro.net.channel import DEFAULT_HEADER_BYTES, DEFAULT_SETUP_LATENCY, Channel
from repro.nn.network import Network
from repro.nn.zoo import get_model
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer
from repro.profiling.device import DeviceModel, gtx1080_server, raspberry_pi_4
from repro.profiling.latency import (
    CostTable,
    LayerPredictor,
    cut_costs,
    node_mobile_time,
)
from repro.utils.units import BITS_PER_BYTE, mbps
from repro.utils.validation import require_positive

__all__ = ["PlanningEngine", "PricedModel"]

#: Baseline schemes the engine plans besides JPS.
BASELINES = {"LO": local_only, "CO": cloud_only, "PO": partition_only}


def _wrap_frontier_schedule(
    model_name: str,
    schedule: Schedule,
    cuts: tuple[Cut, ...],
    method: str = "JPS-frontier",
) -> Schedule:
    """Re-attach concrete graph cuts to a schedule built on a cut-backed table."""
    jobs = tuple(
        replace(
            plan,
            model=model_name,  # the table's "/frontier" suffix is internal
            mobile_nodes=cuts[plan.cut_position].mobile,
        )
        for plan in schedule.jobs
    )
    return Schedule(
        jobs=jobs,
        makespan=schedule.makespan,
        method=method,
        metadata={**schedule.metadata, "num_pareto_cuts": len(cuts)},
    )


@dataclass(frozen=True)
class _LineStructure:
    """Bandwidth-independent facts of a linearized model."""

    graph: Dag                      # the clustered line graph (for mobile sets)
    order: tuple[str, ...]
    f: np.ndarray                   # cumulative mobile compute
    cloud: np.ndarray               # cumulative cloud compute
    volumes: np.ndarray             # inter-position tensor bytes, 0 at the end


@dataclass(frozen=True)
class _FrontierStructure:
    """Bandwidth-independent Pareto cut data of a general DAG."""

    cuts: tuple[Cut, ...]
    f: np.ndarray
    transfer_bytes: np.ndarray
    rests: np.ndarray               # cloud time of the part after each cut
    full_cut_sizes: np.ndarray      # |mobile| per cut (full cut uploads nothing)
    num_nodes: int


@dataclass(frozen=True)
class _DagStructure:
    """Bandwidth-independent true-DAG Pareto cut data (shared-once pricing).

    Same columns as :class:`_FrontierStructure`, but the cut space comes
    from :func:`repro.dag.partition.dag_pareto_cuts` — downward-closed
    sets of the *original* graph, so it also covers
    non-series-parallel models the frontier enumeration rejects.
    ``mode``/``states`` record how the space was generated.
    """

    cuts: tuple[Cut, ...]
    labels: tuple[str, ...]         # disambiguated cut labels
    f: np.ndarray
    transfer_bytes: np.ndarray
    rests: np.ndarray
    full_cut_sizes: np.ndarray
    num_nodes: int
    mode: str
    states: int


@dataclass(frozen=True)
class _PricingKernel:
    """A model's cost table with the bandwidth factored out.

    ``uplink_time`` is affine in ``1/B`` for fixed framing:
    ``g = setup + wire_bits / B`` wherever something crosses the network
    and exactly 0 elsewhere. Precomputing ``wire_bits`` in the same
    operation order as :meth:`Channel.uplink_time` makes :meth:`g_at`
    bit-identical to pricing through a concrete channel, so one cached
    kernel (one content-addressed key per model) serves an entire
    bandwidth vector.
    """

    model_name: str
    positions: tuple[str, ...]
    f: np.ndarray
    cloud: np.ndarray
    payload_bytes: np.ndarray       # upload payload per position (0 = all-local)
    wire_bits: np.ndarray           # (payload + header) * overhead * 8, 0-masked
    setup_latency: float
    graph: Dag | None
    cuts: tuple[Cut, ...] | None    # frontier kernels carry the real cuts

    def g_at(self, uplink_bps: float) -> np.ndarray:
        """The ``g`` column at one uplink rate (bit-exact channel pricing)."""
        require_positive(uplink_bps, "uplink_bps")
        return np.where(
            self.wire_bits > 0, self.setup_latency + self.wire_bits / uplink_bps, 0.0
        )

    def table_at(self, uplink_bps: float) -> CostTable:
        return CostTable(
            model_name=self.model_name,
            positions=self.positions,
            f=self.f.copy(),
            g=self.g_at(uplink_bps),
            cloud=self.cloud.copy(),
            graph=self.graph,
        )


@dataclass(frozen=True)
class PricedModel:
    """A cost table priced at one uplink rate, plus execution metadata.

    ``payloads[i]`` is the upload payload (bytes) behind position ``i``
    and, for frontier models, ``cuts[i]`` the concrete graph cut — what
    the serving gateway needs to simulate transfers without re-deriving
    structure per replan.
    """

    table: CostTable
    payloads: tuple[float, ...]
    cuts: tuple[Cut, ...] | None


@dataclass
class PlanningEngine:
    """Memoized planner over one (mobile, cloud) device pair.

    ``plan(model, n, channel)`` accepts a zoo model name or a
    :class:`Network`, a :class:`Channel` (or any duck-typed channel
    exposing ``uplink_time``; see :func:`repro.engine.keys.channel_fingerprint`
    for how such channels key the caches), and produces the same
    :class:`Schedule` the uncached :func:`repro.core.joint.jps` path
    would — the caches are exact, not approximate.

    ``max_entries`` bounds each per-channel LRU; the bandwidth-
    independent structure caches are bounded by the same limit but in
    practice hold one entry per distinct model.

    ``tracer`` defaults to the no-op :class:`~repro.obs.tracer.NullTracer`,
    so uninstrumented callers pay only one call per ``plan()``. Pass a
    live :class:`~repro.obs.tracer.Tracer` to record one span per plan
    and one per structure/table build — cache hits show up as plan
    spans *without* a nested build span.
    """

    mobile: DeviceModel = field(default_factory=raspberry_pi_4)
    cloud: DeviceModel = field(default_factory=gtx1080_server)
    max_entries: int = 128
    tracer: Tracer | NullTracer = field(default_factory=NullTracer)

    def __post_init__(self) -> None:
        self._networks: dict[str, Network] = {}
        self._fingerprints: dict[int, str] = {}
        self._structures: dict[str, Structure] = {}
        self._device_key = (
            device_fingerprint(self.mobile),
            device_fingerprint(self.cloud),
        )
        self._lines: LRUCache[_LineStructure] = LRUCache(self.max_entries)
        self._frontiers: LRUCache[_FrontierStructure] = LRUCache(self.max_entries)
        self._tables: LRUCache[CostTable] = LRUCache(self.max_entries)
        self._frontier_tables: LRUCache[FrontierTable] = LRUCache(self.max_entries)
        self._alg3: LRUCache[tuple] = LRUCache(self.max_entries)
        self._pricing: LRUCache[_PricingKernel] = LRUCache(self.max_entries)
        self._dags: LRUCache[_DagStructure] = LRUCache(self.max_entries)
        self._dag_tables: LRUCache[DagCutTable] = LRUCache(self.max_entries)

    # ------------------------------------------------------------------
    # keys and resolution
    # ------------------------------------------------------------------
    def resolve(self, model: str | Network) -> Network:
        """A zoo name or an already-built network."""
        if isinstance(model, Network):
            return model
        if model not in self._networks:
            self._networks[model] = get_model(model)
        return self._networks[model]

    def _net_key(self, network: Network) -> str:
        # fingerprinting walks every node; cache it per network object
        marker = id(network)
        if marker not in self._fingerprints:
            self._fingerprints[marker] = network_fingerprint(network)
        return self._fingerprints[marker]

    def _base_key(
        self, network: Network, predictor: LayerPredictor | None, predictor_key
    ) -> tuple:
        return (
            self._net_key(network),
            self._device_key,
            predictor_fingerprint(predictor, predictor_key),
        )

    def structure_of(self, model: str | Network) -> Structure:
        """``auto`` resolution: LINE when clustering linearizes the graph,
        FRONTIER for other series-parallel graphs, DAG past that."""
        network = self.resolve(model)
        key = self._net_key(network)
        if key not in self._structures:
            clustered = collapse_clusterable_blocks(network.graph)
            if clustered.is_line():
                self._structures[key] = Structure.LINE
            elif is_series_parallel(network.graph):
                self._structures[key] = Structure.FRONTIER
            else:
                self._structures[key] = Structure.DAG
        return self._structures[key]

    def _traced(self, kind: str, model: str, build):
        """Wrap a cache build closure in an ``engine/build`` span.

        The span only appears on cache *misses* — a warm ``plan()``
        shows a plan span with no nested build, which is the cache
        working as intended.
        """

        def wrapped():
            with self.tracer.span(
                "engine/build", lane=("engine", "builds"), kind=kind, model=model
            ):
                return build()

        return wrapped

    # ------------------------------------------------------------------
    # memoized structure builders
    # ------------------------------------------------------------------
    def _line_structure(
        self, network: Network, predictor: LayerPredictor | None, predictor_key
    ) -> _LineStructure:
        key = ("line",) + self._base_key(network, predictor, predictor_key)

        def build() -> _LineStructure:
            graph = linearize(network.graph)
            order = graph.line_order()
            f_steps = [
                node_mobile_time(graph.payload(v), self.mobile, predictor)
                for v in order
            ]
            cloud_steps = [
                node_mobile_time(graph.payload(v), self.cloud) for v in order
            ]
            volumes = [graph.volume(a, b) for a, b in zip(order, order[1:])] + [0.0]
            return _LineStructure(
                graph=graph,
                order=tuple(order),
                f=np.cumsum(f_steps),
                cloud=np.cumsum(cloud_steps),
                volumes=np.asarray(volumes),
            )

        return self._lines.get_or_build(
            key, self._traced("line_structure", network.name, build)
        )

    def _frontier_structure(
        self, network: Network, predictor: LayerPredictor | None, predictor_key
    ) -> _FrontierStructure:
        key = ("frontier",) + self._base_key(network, predictor, predictor_key)

        def build() -> _FrontierStructure:
            # dominance compares (compute, transfer bytes) — both independent
            # of the channel — so one probe pricing serves every bandwidth
            probe = Channel(
                shaper=TrafficShaper(uplink_bps=mbps(10.0), downlink_bps=mbps(20.0))
            )
            cuts = enumerate_frontier_cuts(network.graph)
            costs = cut_costs(network, cuts, self.mobile, self.cloud, probe, predictor)
            compute_of = {m: c[0] for m, c in costs.items()}
            surviving = prune_dominated(cuts, compute_of)
            surviving.sort(key=lambda c: compute_of[c.mobile])
            return _FrontierStructure(
                cuts=tuple(surviving),
                f=np.array([costs[c.mobile][0] for c in surviving]),
                transfer_bytes=np.array([c.transfer_bytes for c in surviving]),
                rests=np.array([costs[c.mobile][2] for c in surviving]),
                full_cut_sizes=np.array([len(c.mobile) for c in surviving]),
                num_nodes=len(network.graph),
            )

        return self._frontiers.get_or_build(
            key, self._traced("frontier_structure", network.name, build)
        )

    def _dag_structure(
        self, network: Network, predictor: LayerPredictor | None, predictor_key
    ) -> _DagStructure:
        key = ("dag",) + self._base_key(network, predictor, predictor_key)

        def build() -> _DagStructure:
            graph = network.graph
            mobile_time = {
                v: node_mobile_time(graph.payload(v), self.mobile, predictor)
                for v in graph.node_ids
            }
            cloud_time = {
                v: node_mobile_time(graph.payload(v), self.cloud)
                for v in graph.node_ids
            }
            total_cloud = sum(cloud_time.values())
            cuts, info = dag_pareto_cuts(graph, mobile_time.__getitem__)
            return _DagStructure(
                cuts=tuple(cuts),
                labels=unique_cut_labels(cuts),
                f=np.array([sum(mobile_time[v] for v in c.mobile) for c in cuts]),
                transfer_bytes=np.array([c.transfer_bytes for c in cuts]),
                rests=np.array(
                    [
                        total_cloud - sum(cloud_time[v] for v in c.mobile)
                        for c in cuts
                    ]
                ),
                full_cut_sizes=np.array([len(c.mobile) for c in cuts]),
                num_nodes=len(graph),
                mode=info["mode"],
                states=info["states"],
            )

        return self._dags.get_or_build(
            key, self._traced("dag_structure", network.name, build)
        )

    # ------------------------------------------------------------------
    # per-channel tables
    # ------------------------------------------------------------------
    def line_table(
        self,
        model: str | Network,
        channel: Channel,
        predictor: LayerPredictor | None = None,
        predictor_key=None,
    ) -> CostTable:
        """The linearized (f, g, cloud) table, priced through ``channel``."""
        network = self.resolve(model)
        key = (
            ("table-line",)
            + self._base_key(network, predictor, predictor_key)
            + (channel_fingerprint(channel),)
        )

        def build() -> CostTable:
            structure = self._line_structure(network, predictor, predictor_key)
            g = np.asarray([channel.uplink_time(v) for v in structure.volumes])
            return CostTable(
                model_name=network.name,
                positions=structure.order,
                f=structure.f.copy(),
                g=g,
                cloud=structure.cloud.copy(),
                graph=structure.graph,
            )

        return self._tables.get_or_build(
            key, self._traced("line_table", network.name, build)
        )

    def frontier_table(
        self,
        model: str | Network,
        channel: Channel,
        predictor: LayerPredictor | None = None,
        predictor_key=None,
    ) -> FrontierTable:
        """The Pareto-frontier table, priced through ``channel``.

        Identical to :func:`repro.core.joint.frontier_table` output —
        same cuts in the same order, same (f, g, cloud) — but the cut
        enumeration and dominance pruning are paid once per
        (network, devices, predictor) rather than per call.
        """
        network = self.resolve(model)
        key = (
            ("table-frontier",)
            + self._base_key(network, predictor, predictor_key)
            + (channel_fingerprint(channel),)
        )

        def build() -> FrontierTable:
            structure = self._frontier_structure(network, predictor, predictor_key)
            g = np.array(
                [
                    channel.uplink_time(b) if b > 0 else 0.0
                    for b in structure.transfer_bytes
                ]
            )
            g[structure.full_cut_sizes == structure.num_nodes] = 0.0
            cloud_of_mobile = np.maximum.accumulate(
                structure.rests.max() - structure.rests
            )
            table = CostTable(
                model_name=f"{network.name}/frontier",
                positions=tuple(c.label for c in structure.cuts),
                f=structure.f.copy(),
                g=g,
                cloud=cloud_of_mobile,
                graph=None,
            )
            return FrontierTable(table=table, cuts=structure.cuts)

        return self._frontier_tables.get_or_build(
            key, self._traced("frontier_table", network.name, build)
        )

    def dag_table(
        self,
        model: str | Network,
        channel: Channel,
        predictor: LayerPredictor | None = None,
        predictor_key=None,
    ) -> DagCutTable:
        """The true-DAG Pareto cut table, priced through ``channel``.

        Same pricing as :func:`repro.dag.partition.dag_cut_table` over
        the memoized cut space: shared crossing tensors counted once per
        tail, full cut uploads nothing, cloud column in running-max
        form. See ``docs/dag.md``.
        """
        network = self.resolve(model)
        key = (
            ("table-dag",)
            + self._base_key(network, predictor, predictor_key)
            + (channel_fingerprint(channel),)
        )

        def build() -> DagCutTable:
            structure = self._dag_structure(network, predictor, predictor_key)
            g = np.array(
                [
                    channel.uplink_time(b) if b > 0 else 0.0
                    for b in structure.transfer_bytes
                ]
            )
            g[structure.full_cut_sizes == structure.num_nodes] = 0.0
            cloud_of_mobile = np.maximum.accumulate(
                structure.rests.max() - structure.rests
            )
            table = CostTable(
                model_name=f"{network.name}/dag",
                positions=structure.labels,
                f=structure.f.copy(),
                g=g,
                cloud=cloud_of_mobile,
                graph=None,
            )
            return DagCutTable(
                table=table,
                cuts=structure.cuts,
                mode=structure.mode,
                states=structure.states,
            )

        return self._dag_tables.get_or_build(
            key, self._traced("dag_table", network.name, build)
        )

    def cost_table(
        self,
        model: str | Network,
        channel: Channel,
        structure: str | Structure = Structure.AUTO,
        predictor: LayerPredictor | None = None,
        predictor_key=None,
    ) -> CostTable:
        """The model's planning table under ``structure`` resolution."""
        chosen = Structure.coerce(structure)
        if chosen is Structure.AUTO:
            chosen = self.structure_of(model)
        if chosen is Structure.LINE:
            return self.line_table(model, channel, predictor, predictor_key)
        if chosen is Structure.FRONTIER:
            return self.frontier_table(model, channel, predictor, predictor_key).table
        if chosen is Structure.DAG:
            return self.dag_table(model, channel, predictor, predictor_key).table
        raise ValueError("Alg. 3 plans per-path tables; use plan(structure='paths')")

    # ------------------------------------------------------------------
    # bandwidth-vectorized pricing
    # ------------------------------------------------------------------
    def _pricing_kernel(
        self,
        network: Network,
        chosen: Structure,
        setup_latency: float,
        header_bytes: float,
        protocol_overhead: float,
        predictor: LayerPredictor | None,
        predictor_key,
    ) -> _PricingKernel:
        key = (
            ("pricing", chosen.value)
            + self._base_key(network, predictor, predictor_key)
            + (setup_latency, header_bytes, protocol_overhead)
        )

        def build() -> _PricingKernel:
            if chosen is Structure.LINE:
                structure = self._line_structure(network, predictor, predictor_key)
                payloads = structure.volumes.astype(float)
                model_name = network.name
                positions: tuple[str, ...] = structure.order
                f, cloud = structure.f, structure.cloud
                graph, cuts = structure.graph, None
            elif chosen is Structure.DAG:
                dag = self._dag_structure(network, predictor, predictor_key)
                payloads = np.where(
                    dag.full_cut_sizes == dag.num_nodes,
                    0.0,
                    dag.transfer_bytes.astype(float),
                )
                model_name = f"{network.name}/dag"
                positions = dag.labels
                f = dag.f
                cloud = np.maximum.accumulate(dag.rests.max() - dag.rests)
                graph, cuts = None, dag.cuts
            else:
                frontier = self._frontier_structure(network, predictor, predictor_key)
                # the full cut keeps everything mobile: nothing crosses
                payloads = np.where(
                    frontier.full_cut_sizes == frontier.num_nodes,
                    0.0,
                    frontier.transfer_bytes.astype(float),
                )
                model_name = f"{network.name}/frontier"
                positions = tuple(c.label for c in frontier.cuts)
                f = frontier.f
                cloud = np.maximum.accumulate(frontier.rests.max() - frontier.rests)
                graph, cuts = None, frontier.cuts
            # same operation order as Channel.uplink_time, element by element
            wire_bits = np.where(
                payloads > 0,
                ((payloads + header_bytes) * protocol_overhead) * BITS_PER_BYTE,
                0.0,
            )
            return _PricingKernel(
                model_name=model_name,
                positions=positions,
                f=f,
                cloud=cloud,
                payload_bytes=payloads,
                wire_bits=wire_bits,
                setup_latency=setup_latency,
                graph=graph,
                cuts=cuts,
            )

        return self._pricing.get_or_build(
            key, self._traced("pricing_kernel", network.name, build)
        )

    def _resolve_structure(
        self, model: str | Network, structure: str | Structure
    ) -> Structure:
        chosen = Structure.coerce(structure)
        if chosen is Structure.AUTO:
            chosen = self.structure_of(model)
        return chosen

    def priced_table(
        self,
        model: str | Network,
        uplink_bps: float,
        structure: str | Structure = Structure.AUTO,
        predictor: LayerPredictor | None = None,
        predictor_key=None,
        setup_latency: float = DEFAULT_SETUP_LATENCY,
        header_bytes: float = DEFAULT_HEADER_BYTES,
        protocol_overhead: float = 1.05,
    ) -> PricedModel:
        """The model's cost table at one uplink rate, without a Channel.

        Bit-identical to :meth:`cost_table` with a channel carrying the
        same framing, but priced from the memoized bandwidth-independent
        kernel — the serving gateway replans through this, paying one
        cache lookup per (model, framing) instead of one table build per
        bandwidth estimate.
        """
        network = self.resolve(model)
        chosen = self._resolve_structure(network, structure)
        if chosen is Structure.PATHS:
            raise ValueError("Alg. 3 plans per-path tables; use plan(structure='paths')")
        kernel = self._pricing_kernel(
            network,
            chosen,
            setup_latency,
            header_bytes,
            protocol_overhead,
            predictor,
            predictor_key,
        )
        return PricedModel(
            table=kernel.table_at(uplink_bps),
            payloads=tuple(kernel.payload_bytes.tolist()),
            cuts=kernel.cuts,
        )

    def plan_batch(
        self,
        model: str | Network,
        n: int,
        uplink_bps: Sequence[float],
        scheme: str = "JPS",
        structure: str | Structure = Structure.AUTO,
        split: str | SplitMode = SplitMode.EXACT,
        predictor: LayerPredictor | None = None,
        predictor_key=None,
        setup_latency: float = DEFAULT_SETUP_LATENCY,
        header_bytes: float = DEFAULT_HEADER_BYTES,
        protocol_overhead: float = 1.05,
        wrap_frontier: bool = True,
    ) -> list[Schedule]:
        """Plan ``n`` jobs at every uplink rate of a bandwidth vector.

        Since ``g`` scales affinely in ``1/B`` for a fixed table, one
        memoized pricing kernel serves the whole vector; per rate the
        Alg. 2 crossing is one ``np.searchsorted`` over ``f - g`` and
        the exact two-type split one matrix kernel
        (:func:`~repro.core.joint.jps_line_fast`). Output is
        bit-identical to calling :meth:`plan` once per bandwidth with an
        equivalently framed channel — the sweep harnesses and the
        gateway go through here to amortize cache lookups to one
        content-addressed key per model.

        ``wrap_frontier=False`` returns the raw line-shaped schedules on
        frontier tables (method ``"JPS"``), matching what the experiment
        harnesses historically recorded; the default matches
        :meth:`plan`'s ``"JPS-frontier"`` wrapping with concrete cuts.
        """
        network = self.resolve(model)
        rates = [float(rate) for rate in uplink_bps]
        with self.tracer.span(
            "engine/plan_batch",
            lane=("engine", "plans"),
            model=network.name,
            n=n,
            scheme=scheme,
            cells=len(rates),
        ):
            return self._plan_batch(
                network,
                n,
                rates,
                scheme,
                structure,
                split,
                predictor,
                predictor_key,
                setup_latency,
                header_bytes,
                protocol_overhead,
                wrap_frontier,
            )

    def _plan_batch(
        self,
        network: Network,
        n: int,
        rates: list[float],
        scheme: str,
        structure: str | Structure,
        split: str | SplitMode,
        predictor: LayerPredictor | None,
        predictor_key,
        setup_latency: float,
        header_bytes: float,
        protocol_overhead: float,
        wrap_frontier: bool,
    ) -> list[Schedule]:
        chosen = self._resolve_structure(network, structure)
        if chosen is Structure.PATHS:
            # Alg. 3's path conversion is channel-coupled; no batched kernel
            return [
                self._plan(
                    network,
                    n,
                    Channel(
                        shaper=TrafficShaper(uplink_bps=rate, downlink_bps=2 * rate),
                        setup_latency=setup_latency,
                        header_bytes=int(header_bytes),
                        protocol_overhead=protocol_overhead,
                    ),
                    scheme,
                    chosen,
                    split,
                    predictor,
                    predictor_key,
                )
                for rate in rates
            ]
        if scheme not in BASELINES and scheme != "JPS":
            raise ValueError(
                f"unknown scheme {scheme!r} (use 'JPS', 'LO', 'CO' or 'PO')"
            )
        kernel = self._pricing_kernel(
            network,
            chosen,
            setup_latency,
            header_bytes,
            protocol_overhead,
            predictor,
            predictor_key,
        )
        schedules: list[Schedule] = []
        for rate in rates:
            table = kernel.table_at(rate)
            if scheme in BASELINES:
                schedules.append(BASELINES[scheme](table, n))
                continue
            if chosen is Structure.DAG:
                assert kernel.cuts is not None
                schedules.append(
                    dag_schedule_from_table(table, kernel.cuts, n, model=network.name)
                )
                continue
            schedule = jps_line_fast(table, n, split=split)
            if chosen is Structure.FRONTIER and wrap_frontier:
                assert kernel.cuts is not None
                schedule = _wrap_frontier_schedule(network.name, schedule, kernel.cuts)
            schedules.append(schedule)
        return schedules

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _alg3_plans(
        self,
        network: Network,
        channel: Channel,
        predictor: LayerPredictor | None,
        predictor_key,
    ) -> tuple:
        from repro.core.general import alg3_partition

        key = (
            ("alg3",)
            + self._base_key(network, predictor, predictor_key)
            + (channel_fingerprint(channel),)
        )
        return self._alg3.get_or_build(
            key,
            self._traced(
                "alg3_plans",
                network.name,
                lambda: alg3_partition(
                    network, self.mobile, self.cloud, channel, predictor
                ),
            ),
        )

    def plan(
        self,
        model: str | Network,
        n: int,
        channel: Channel,
        scheme: str = "JPS",
        structure: str | Structure = Structure.AUTO,
        split: str | SplitMode = SplitMode.EXACT,
        predictor: LayerPredictor | None = None,
        predictor_key=None,
    ) -> Schedule:
        """Plan ``n`` jobs of ``model`` over ``channel``.

        ``scheme`` is ``"JPS"`` or a baseline (``"LO"``, ``"CO"``,
        ``"PO"``). Baselines plan on the same memoized table, so a
        ``compare()`` sweep reuses one structure build across schemes.
        """
        network = self.resolve(model)
        with self.tracer.span(
            "engine/plan",
            lane=("engine", "plans"),
            model=network.name,
            n=n,
            scheme=scheme,
        ):
            return self._plan(
                network, n, channel, scheme, structure, split, predictor, predictor_key
            )

    def _plan(
        self,
        network: Network,
        n: int,
        channel: Channel,
        scheme: str,
        structure: str | Structure,
        split: str | SplitMode,
        predictor: LayerPredictor | None,
        predictor_key,
    ) -> Schedule:
        if scheme in BASELINES:
            table = self.cost_table(
                network, channel, Structure.AUTO, predictor, predictor_key
            )
            return BASELINES[scheme](table, n)
        if scheme != "JPS":
            raise ValueError(
                f"unknown scheme {scheme!r} (use 'JPS', 'LO', 'CO' or 'PO')"
            )

        chosen = Structure.coerce(structure)
        if chosen is Structure.AUTO:
            chosen = self.structure_of(network)
        if chosen is Structure.LINE:
            table = self.line_table(network, channel, predictor, predictor_key)
            return jps_line(table, n, split=split)
        if chosen is Structure.FRONTIER:
            frontier = self.frontier_table(network, channel, predictor, predictor_key)
            schedule = jps_line(frontier.table, n, split=split)
            return _wrap_frontier_schedule(network.name, schedule, frontier.cuts)
        if chosen is Structure.DAG:
            dct = self.dag_table(network, channel, predictor, predictor_key)
            return dag_schedule_from_table(dct.table, dct.cuts, n, model=network.name)
        from repro.core.general import alg3_schedule_from_plans

        path_plans, info = self._alg3_plans(network, channel, predictor, predictor_key)
        return alg3_schedule_from_plans(
            network, self.mobile, path_plans, info, n, predictor
        )

    def compare(
        self,
        model: str | Network,
        n: int,
        channel: Channel,
        schemes: list[str] | None = None,
    ) -> dict[str, Schedule]:
        """All schemes side by side on shared memoized tables."""
        chosen = schemes or ["LO", "CO", "PO", "JPS"]
        return {scheme: self.plan(model, n, channel, scheme=scheme) for scheme in chosen}

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, float]]:
        """Hit/miss/eviction counters and sizes of every cache layer."""
        caches = {
            "line_structure": self._lines,
            "frontier_structure": self._frontiers,
            "dag_structure": self._dags,
            "line_tables": self._tables,
            "frontier_tables": self._frontier_tables,
            "dag_tables": self._dag_tables,
            "alg3_plans": self._alg3,
            "pricing_kernels": self._pricing,
        }
        return {
            name: {**cache.stats.as_dict(), "entries": len(cache)}
            for name, cache in caches.items()
        }

    def stats_snapshot(self) -> dict:
        """Plain-dict cache statistics: per-layer counters plus totals.

        The stable observability surface — gateway metrics, benchmarks,
        and reports consume this instead of touching cache objects. The
        ``totals`` hit rate pools lookups across every layer.
        """
        layers = self.stats()
        totals = {
            key: sum(layer[key] for layer in layers.values())
            for key in ("hits", "misses", "evictions", "entries")
        }
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        return {"layers": layers, "totals": totals}

    def to_metrics(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Publish the cache statistics as gauges on ``registry``.

        Totals land on ``engine_cache_<stat>`` gauges and each layer on
        ``engine_cache_<stat>{layer="..."}``, so one Prometheus
        exposition shows planner cache health next to the serving
        counters. Gauges are *set*, not incremented — calling this
        again after more planning overwrites with fresh values.
        """
        snapshot = self.stats_snapshot()
        for stat, value in snapshot["totals"].items():
            registry.gauge(f"engine_cache_{stat}").set(value)
        for layer, stats in snapshot["layers"].items():
            for stat, value in stats.items():
                if stat == "hit_rate":
                    continue
                registry.gauge(f"engine_cache_{stat}", layer=layer).set(value)
        return registry

    def clear(self) -> None:
        """Drop all memoized state (statistics keep accumulating)."""
        for cache in (
            self._lines,
            self._frontiers,
            self._dags,
            self._tables,
            self._frontier_tables,
            self._dag_tables,
            self._alg3,
            self._pricing,
        ):
            cache.clear()
        self._structures.clear()
        self._fingerprints.clear()
        self._networks.clear()
