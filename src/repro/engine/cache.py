"""A small LRU cache with hit/miss accounting.

``functools.lru_cache`` would force the memoized values to live on
function identities and hide its statistics behind a C-level counter;
the engine wants per-cache, per-instance statistics it can report in
benchmarks and a ``get_or_build`` idiom that keeps the expensive
builders out of the cache module. Plain ``dict`` keeps LRU order via
its insertion ordering: a hit re-inserts the key, eviction pops the
oldest entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Hashable, TypeVar

from repro.utils.validation import require_positive

__all__ = ["CacheStats", "LRUCache"]

V = TypeVar("V")


@dataclass
class CacheStats:
    """Running counters of one cache's traffic."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache(Generic[V]):
    """Bounded mapping with least-recently-used eviction and stats."""

    def __init__(self, max_entries: int = 128):
        require_positive(max_entries, "max_entries")
        self.max_entries = int(max_entries)
        self.stats = CacheStats()
        self._data: dict[Hashable, V] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get_or_build(self, key: Hashable, build: Callable[[], V]) -> V:
        """Return the cached value for ``key``, building it on a miss."""
        if key in self._data:
            self.stats.hits += 1
            self._data[key] = self._data.pop(key)  # refresh recency
            return self._data[key]
        self.stats.misses += 1
        value = build()
        self._data[key] = value
        if len(self._data) > self.max_entries:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.stats.evictions += 1
        return value

    def peek(self, key: Hashable) -> V | None:
        """Read without touching recency or counters (tests, diagnostics)."""
        return self._data.get(key)

    def clear(self) -> None:
        """Drop every entry; statistics keep accumulating across clears."""
        self._data.clear()

    def keys(self) -> list[Any]:
        """Current keys, oldest first."""
        return list(self._data)
