"""Content-addressed cache keys for the planning engine.

A memoized intermediate (cost table, frontier structure, Alg. 3 path
plans) is only reusable when *everything* that went into it is
identical: the network's layers and edge volumes, both device models,
the channel parameters, and the predictor used in place of ground
truth. Each of those is reduced to a short hex digest; the engine keys
its caches on tuples of digests, so two networks that merely share a
name never alias, and a re-built but identical network hits.

Fingerprints hash *values*, not object identities, with one deliberate
exception: predictors are opaque callables, so callers that want warm
hits across calls must either pass the same callable object or supply
an explicit ``predictor_key`` describing it (the on-device scheduler
keys its lookup-table predictors by model name + table identity).
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.net.channel import Channel
from repro.nn.network import Network
from repro.profiling.device import DeviceModel
from repro.profiling.latency import LayerPredictor

__all__ = [
    "stable_digest",
    "network_fingerprint",
    "device_fingerprint",
    "channel_fingerprint",
    "predictor_fingerprint",
]


def stable_digest(*parts: Any) -> str:
    """A short sha256 digest of a canonical textual form of ``parts``."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode())
        hasher.update(b"\x1f")
    return hasher.hexdigest()[:16]


def network_fingerprint(network: Network) -> str:
    """Digest of the network's structure and per-layer cost facts.

    Covers node ids, layer kinds, FLOPs, parameter counts, output bytes
    and shapes, plus every edge with its volume — the complete input of
    the cost-table builders. Insertion order is part of the digest,
    matching the deterministic iteration the planners rely on.
    """
    node_facts = [
        (
            node.name,
            node.kind,
            node.flops,
            node.params,
            node.output_bytes,
            node.input_shapes,
            node.output_shape,
        )
        for node in network.nodes()
    ]
    edge_facts = [(e.tail, e.head, e.volume) for e in network.graph.edges()]
    return stable_digest(network.name, node_facts, edge_facts)


def device_fingerprint(device: DeviceModel) -> str:
    """Digest of every constant of the analytic device model."""
    return stable_digest(
        device.name,
        device.default_throughput,
        sorted(device.kind_throughput.items()),
        device.memory_bandwidth,
        device.layer_overhead,
    )


def channel_fingerprint(channel: Channel | Any) -> str:
    """Digest of the parameters that determine ``uplink_time``.

    Real :class:`~repro.net.channel.Channel` objects hash their rate and
    framing constants. Duck-typed channels (the on-device scheduler's
    regression-backed channel) may expose ``cache_token()`` returning a
    tuple of defining values; anything else falls back to object
    identity, which disables cross-object reuse but stays correct.
    """
    token = getattr(channel, "cache_token", None)
    if callable(token):
        return stable_digest("token", token())
    if isinstance(channel, Channel):
        return stable_digest(
            "channel",
            channel.uplink_bps,
            channel.downlink_bps,
            channel.setup_latency,
            channel.header_bytes,
            channel.protocol_overhead,
        )
    return stable_digest("identity", id(channel))


def predictor_fingerprint(
    predictor: LayerPredictor | None, predictor_key: Any = None
) -> str:
    """Digest of the per-layer time predictor.

    ``None`` (ground-truth device model) is a stable constant. An
    explicit ``predictor_key`` describes a predictor by value; without
    one, distinct callable objects are assumed to predict differently.
    """
    if predictor_key is not None:
        return stable_digest("key", predictor_key)
    if predictor is None:
        return "truth"
    return stable_digest("identity", id(predictor))
