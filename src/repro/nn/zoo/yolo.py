"""Tiny YOLOv2 (Redmon & Farhadi, 2016), VOC configuration.

Cited by the paper (§3.1) as a line-structure detector. Leaky ReLU is
modeled as :class:`repro.nn.layers.ReLU` — identical element count, and
the cost models only see per-element ops.
"""

from __future__ import annotations

from repro.nn.layers import BatchNorm2d, Conv2d, MaxPool2d, ReLU
from repro.nn.network import Network, NetworkBuilder

__all__ = ["tiny_yolov2"]


def _conv_bn_leaky(b: NetworkBuilder, channels: int, kernel: int = 3) -> None:
    b.add(Conv2d(channels, kernel=kernel, padding="same" if kernel > 1 else 0, bias=False))
    b.add(BatchNorm2d())
    b.add(ReLU())


def tiny_yolov2(name: str = "tiny-yolov2", num_anchors: int = 5, num_classes: int = 20) -> Network:
    """Tiny YOLOv2 for 3x416x416 inputs (VOC: 125 output channels)."""
    b = NetworkBuilder(name, input_shape=(3, 416, 416))
    for channels in (16, 32, 64, 128, 256):
        _conv_bn_leaky(b, channels)
        b.add(MaxPool2d(kernel=2, stride=2))
    _conv_bn_leaky(b, 512)
    # Darknet's 6th pool is kernel-2/stride-1 with asymmetric padding to keep
    # 13x13; with symmetric padding the equivalent shape-preserving pool is 3/1/1.
    b.add(MaxPool2d(kernel=3, stride=1, padding=1))
    _conv_bn_leaky(b, 1024)
    _conv_bn_leaky(b, 1024)
    b.add(Conv2d(num_anchors * (num_classes + 5), kernel=1))
    return b.build()
