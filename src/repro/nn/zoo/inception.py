"""Inception-v4 (Szegedy et al., 2017) — the paper's Fig. 3(a) network.

The most structurally demanding model in the zoo: a branching stem,
three Inception module families with asymmetric (1x7 / 7x1, 1x3 / 3x1)
factorized convolutions, two Reduction modules, and — in Inception-C —
*nested* branching (a branch that itself splits before the module's
Filter Concat, exactly as drawn in the paper's figure). Exercises the
rectangular-kernel layers and the frontier-cut enumerator on blocks
whose branches share prefixes.

Batch norm and auxiliary heads are omitted (inference graph); each conv
is followed by a ReLU as in the original.
"""

from __future__ import annotations

from repro.nn.layers import (
    AvgPool2d,
    Concat,
    Conv2d,
    Dropout,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.network import Network, NetworkBuilder

__all__ = ["inception_v4"]


def _conv(b: NetworkBuilder, entry: str, channels: int, kernel, stride=1,
          padding=0, tag: str = "") -> str:
    node = b.add(
        Conv2d(channels, kernel=kernel, stride=stride, padding=padding),
        name=f"{tag}.conv",
        inputs=entry,
    )
    return b.add(ReLU(), name=f"{tag}.relu", inputs=node)


def _stem(b: NetworkBuilder) -> str:
    cursor = _conv(b, "input", 32, 3, stride=2, tag="stem.1")       # 149x149
    cursor = _conv(b, cursor, 32, 3, tag="stem.2")                  # 147x147
    cursor = _conv(b, cursor, 64, 3, padding=1, tag="stem.3")       # 147x147

    pool = b.add(MaxPool2d(kernel=3, stride=2), name="stem.4a.pool", inputs=cursor)
    conv = _conv(b, cursor, 96, 3, stride=2, tag="stem.4b")
    cursor = b.add(Concat(), name="stem.concat1", inputs=(pool, conv))  # 160x73x73

    left = _conv(b, cursor, 64, 1, tag="stem.5a.1")
    left = _conv(b, left, 96, 3, tag="stem.5a.2")
    right = _conv(b, cursor, 64, 1, tag="stem.5b.1")
    right = _conv(b, right, 64, (7, 1), padding=(3, 0), tag="stem.5b.2")
    right = _conv(b, right, 64, (1, 7), padding=(0, 3), tag="stem.5b.3")
    right = _conv(b, right, 96, 3, tag="stem.5b.4")
    cursor = b.add(Concat(), name="stem.concat2", inputs=(left, right))  # 192x71x71

    conv = _conv(b, cursor, 192, 3, stride=2, tag="stem.6a")
    pool = b.add(MaxPool2d(kernel=3, stride=2), name="stem.6b.pool", inputs=cursor)
    return b.add(Concat(), name="stem.concat3", inputs=(conv, pool))  # 384x35x35


def _inception_a(b: NetworkBuilder, entry: str, tag: str) -> str:
    b1 = b.add(AvgPool2d(kernel=3, stride=1, padding=1), name=f"{tag}.b1.pool",
               inputs=entry)
    b1 = _conv(b, b1, 96, 1, tag=f"{tag}.b1")
    b2 = _conv(b, entry, 96, 1, tag=f"{tag}.b2")
    b3 = _conv(b, entry, 64, 1, tag=f"{tag}.b3.1")
    b3 = _conv(b, b3, 96, 3, padding=1, tag=f"{tag}.b3.2")
    b4 = _conv(b, entry, 64, 1, tag=f"{tag}.b4.1")
    b4 = _conv(b, b4, 96, 3, padding=1, tag=f"{tag}.b4.2")
    b4 = _conv(b, b4, 96, 3, padding=1, tag=f"{tag}.b4.3")
    return b.add(Concat(), name=f"{tag}.concat", inputs=(b1, b2, b3, b4))  # 384


def _reduction_a(b: NetworkBuilder, entry: str, tag: str = "redA") -> str:
    b1 = b.add(MaxPool2d(kernel=3, stride=2), name=f"{tag}.b1.pool", inputs=entry)
    b2 = _conv(b, entry, 384, 3, stride=2, tag=f"{tag}.b2")
    b3 = _conv(b, entry, 192, 1, tag=f"{tag}.b3.1")
    b3 = _conv(b, b3, 224, 3, padding=1, tag=f"{tag}.b3.2")
    b3 = _conv(b, b3, 256, 3, stride=2, tag=f"{tag}.b3.3")
    return b.add(Concat(), name=f"{tag}.concat", inputs=(b1, b2, b3))  # 1024x17x17


def _inception_b(b: NetworkBuilder, entry: str, tag: str) -> str:
    b1 = b.add(AvgPool2d(kernel=3, stride=1, padding=1), name=f"{tag}.b1.pool",
               inputs=entry)
    b1 = _conv(b, b1, 128, 1, tag=f"{tag}.b1")
    b2 = _conv(b, entry, 384, 1, tag=f"{tag}.b2")
    b3 = _conv(b, entry, 192, 1, tag=f"{tag}.b3.1")
    b3 = _conv(b, b3, 224, (1, 7), padding=(0, 3), tag=f"{tag}.b3.2")
    b3 = _conv(b, b3, 256, (7, 1), padding=(3, 0), tag=f"{tag}.b3.3")
    b4 = _conv(b, entry, 192, 1, tag=f"{tag}.b4.1")
    b4 = _conv(b, b4, 192, (1, 7), padding=(0, 3), tag=f"{tag}.b4.2")
    b4 = _conv(b, b4, 224, (7, 1), padding=(3, 0), tag=f"{tag}.b4.3")
    b4 = _conv(b, b4, 224, (1, 7), padding=(0, 3), tag=f"{tag}.b4.4")
    b4 = _conv(b, b4, 256, (7, 1), padding=(3, 0), tag=f"{tag}.b4.5")
    return b.add(Concat(), name=f"{tag}.concat", inputs=(b1, b2, b3, b4))  # 1024


def _reduction_b(b: NetworkBuilder, entry: str, tag: str = "redB") -> str:
    b1 = b.add(MaxPool2d(kernel=3, stride=2), name=f"{tag}.b1.pool", inputs=entry)
    b2 = _conv(b, entry, 192, 1, tag=f"{tag}.b2.1")
    b2 = _conv(b, b2, 192, 3, stride=2, tag=f"{tag}.b2.2")
    b3 = _conv(b, entry, 256, 1, tag=f"{tag}.b3.1")
    b3 = _conv(b, b3, 256, (1, 7), padding=(0, 3), tag=f"{tag}.b3.2")
    b3 = _conv(b, b3, 320, (7, 1), padding=(3, 0), tag=f"{tag}.b3.3")
    b3 = _conv(b, b3, 320, 3, stride=2, tag=f"{tag}.b3.4")
    return b.add(Concat(), name=f"{tag}.concat", inputs=(b1, b2, b3))  # 1536x8x8


def _inception_c(b: NetworkBuilder, entry: str, tag: str) -> str:
    b1 = b.add(AvgPool2d(kernel=3, stride=1, padding=1), name=f"{tag}.b1.pool",
               inputs=entry)
    b1 = _conv(b, b1, 256, 1, tag=f"{tag}.b1")
    b2 = _conv(b, entry, 256, 1, tag=f"{tag}.b2")
    # branch 3 splits after its 1x1 — the nested branching of Fig. 3(a)
    b3 = _conv(b, entry, 384, 1, tag=f"{tag}.b3.1")
    b3a = _conv(b, b3, 256, (1, 3), padding=(0, 1), tag=f"{tag}.b3.2a")
    b3b = _conv(b, b3, 256, (3, 1), padding=(1, 0), tag=f"{tag}.b3.2b")
    # branch 4: two stacked asymmetric convs, then a split
    b4 = _conv(b, entry, 384, 1, tag=f"{tag}.b4.1")
    b4 = _conv(b, b4, 448, (1, 3), padding=(0, 1), tag=f"{tag}.b4.2")
    b4 = _conv(b, b4, 512, (3, 1), padding=(1, 0), tag=f"{tag}.b4.3")
    b4a = _conv(b, b4, 256, (3, 1), padding=(1, 0), tag=f"{tag}.b4.4a")
    b4b = _conv(b, b4, 256, (1, 3), padding=(0, 1), tag=f"{tag}.b4.4b")
    return b.add(
        Concat(), name=f"{tag}.concat", inputs=(b1, b2, b3a, b3b, b4a, b4b)
    )  # 1536


def inception_v4(
    name: str = "inception-v4",
    num_classes: int = 1000,
    a_modules: int = 4,
    b_modules: int = 7,
    c_modules: int = 3,
) -> Network:
    """Inception-v4 for 3x299x299 inputs (module counts configurable so
    tests can build tractable reduced variants)."""
    for label, count in (("a", a_modules), ("b", b_modules), ("c", c_modules)):
        if count < 1:
            raise ValueError(f"{label}_modules must be >= 1, got {count}")
    b = NetworkBuilder(name, input_shape=(3, 299, 299))
    cursor = _stem(b)
    for index in range(a_modules):
        cursor = _inception_a(b, cursor, f"A{index}")
    cursor = _reduction_a(b, cursor)
    for index in range(b_modules):
        cursor = _inception_b(b, cursor, f"B{index}")
    cursor = _reduction_b(b, cursor)
    for index in range(c_modules):
        cursor = _inception_c(b, cursor, f"C{index}")
    b.add(GlobalAvgPool(), name="head.pool", inputs=cursor)
    b.add(Dropout(rate=0.2), name="head.dropout")
    b.add(Linear(num_classes), name="head.fc")
    b.add(Softmax(), name="head.softmax")
    return b.build()
