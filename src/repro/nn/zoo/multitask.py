"""A multi-task (tree-structure) network: shared backbone, two heads.

Related work ([3] in the paper) studies tree-structure DNNs — one
backbone feeding several task heads, the shape of perception stacks
that classify *and* detect per frame. The heads end at an
:class:`~repro.nn.layers.OutputCollector` (zero-cost, zero-volume
edges), so the single-sink machinery — separators, frontier cuts, JPS —
applies unchanged, and the cut space includes splitting the heads
across mobile and cloud (the backbone tensor is uploaded once even
though both heads consume it — distinct-tail counting).
"""

from __future__ import annotations

from repro.nn.layers import (
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    OutputCollector,
    ReLU,
    Softmax,
)
from repro.nn.network import Network, NetworkBuilder

__all__ = ["multitask_perception"]


def multitask_perception(
    name: str = "multitask-perception",
    num_classes: int = 100,
    num_anchors: int = 5,
) -> Network:
    """Backbone + classification head + detection head for 3x128x128 input."""
    b = NetworkBuilder(name, input_shape=(3, 128, 128))
    # shared backbone: four conv/pool stages
    cursor = "input"
    channels = 32
    for stage in range(4):
        cursor = b.add(
            Conv2d(channels, kernel=3, padding=1), name=f"bb{stage}.conv", inputs=cursor
        )
        cursor = b.add(ReLU(), name=f"bb{stage}.relu", inputs=cursor)
        cursor = b.add(
            MaxPool2d(kernel=2, stride=2), name=f"bb{stage}.pool", inputs=cursor
        )
        channels = min(channels * 2, 256)
    backbone = cursor  # 256 x 8 x 8

    # classification head
    cls = b.add(GlobalAvgPool(), name="cls.pool", inputs=backbone)
    cls = b.add(Linear(num_classes), name="cls.fc", inputs=cls)
    cls = b.add(Softmax(), name="cls.softmax", inputs=cls)

    # detection head (YOLO-style grid)
    det = b.add(Conv2d(256, kernel=3, padding=1), name="det.conv1", inputs=backbone)
    det = b.add(ReLU(), name="det.relu", inputs=det)
    det = b.add(
        Conv2d(num_anchors * (num_classes + 5), kernel=1), name="det.conv2", inputs=det
    )
    det = b.add(Flatten(), name="det.flatten", inputs=det)

    b.add(OutputCollector(), name="outputs", inputs=(cls, det))
    return b.build()
