"""GoogLeNet / Inception-v1 (Szegedy et al., 2015), inference graph.

The paper's representative *general-structure* DNN: Inception modules
must not be clustered because their 1x1 reduction convs shrink branch
tensors below the module's input volume, so interior cuts can be
optimal. Auxiliary classifiers are omitted — they exist only during
training and the paper schedules inference jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers import (
    Concat,
    Conv2d,
    Dropout,
    GlobalAvgPool,
    Linear,
    LRN,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.network import Network, NetworkBuilder

__all__ = ["googlenet", "inception_module", "INCEPTION_CONFIGS"]


@dataclass(frozen=True)
class InceptionConfig:
    """Channel counts of one Inception module (Table 1 of the GoogLeNet paper)."""

    c1: int        # 1x1 branch
    c3_reduce: int # 1x1 before 3x3
    c3: int        # 3x3 branch
    c5_reduce: int # 1x1 before 5x5
    c5: int        # 5x5 branch
    pool_proj: int # 1x1 after the pool branch


INCEPTION_CONFIGS: dict[str, InceptionConfig] = {
    "3a": InceptionConfig(64, 96, 128, 16, 32, 32),
    "3b": InceptionConfig(128, 128, 192, 32, 96, 64),
    "4a": InceptionConfig(192, 96, 208, 16, 48, 64),
    "4b": InceptionConfig(160, 112, 224, 24, 64, 64),
    "4c": InceptionConfig(128, 128, 256, 24, 64, 64),
    "4d": InceptionConfig(112, 144, 288, 32, 64, 64),
    "4e": InceptionConfig(256, 160, 320, 32, 128, 128),
    "5a": InceptionConfig(256, 160, 320, 32, 128, 128),
    "5b": InceptionConfig(384, 192, 384, 48, 128, 128),
}


def inception_module(b: NetworkBuilder, entry: str, cfg: InceptionConfig, tag: str) -> str:
    """Place one Inception module after ``entry``; returns the Concat node."""
    br1 = b.add(Conv2d(cfg.c1, kernel=1), name=f"{tag}.b1.conv", inputs=entry)
    br1 = b.add(ReLU(), name=f"{tag}.b1.relu", inputs=br1)

    br2 = b.add(Conv2d(cfg.c3_reduce, kernel=1), name=f"{tag}.b2.reduce", inputs=entry)
    br2 = b.add(ReLU(), name=f"{tag}.b2.relu1", inputs=br2)
    br2 = b.add(Conv2d(cfg.c3, kernel=3, padding=1), name=f"{tag}.b2.conv", inputs=br2)
    br2 = b.add(ReLU(), name=f"{tag}.b2.relu2", inputs=br2)

    br3 = b.add(Conv2d(cfg.c5_reduce, kernel=1), name=f"{tag}.b3.reduce", inputs=entry)
    br3 = b.add(ReLU(), name=f"{tag}.b3.relu1", inputs=br3)
    br3 = b.add(Conv2d(cfg.c5, kernel=5, padding=2), name=f"{tag}.b3.conv", inputs=br3)
    br3 = b.add(ReLU(), name=f"{tag}.b3.relu2", inputs=br3)

    br4 = b.add(MaxPool2d(kernel=3, stride=1, padding=1), name=f"{tag}.b4.pool", inputs=entry)
    br4 = b.add(Conv2d(cfg.pool_proj, kernel=1), name=f"{tag}.b4.proj", inputs=br4)
    br4 = b.add(ReLU(), name=f"{tag}.b4.relu", inputs=br4)

    return b.add(Concat(), name=f"{tag}.concat", inputs=(br1, br2, br3, br4))


def googlenet(name: str = "googlenet", num_classes: int = 1000) -> Network:
    """GoogLeNet for 3x224x224 inputs; a general (series-parallel) DAG."""
    b = NetworkBuilder(name, input_shape=(3, 224, 224))
    b.add(Conv2d(64, kernel=7, stride=2, padding=3), name="stem.conv1")
    b.add(ReLU(), name="stem.relu1")
    b.add(MaxPool2d(kernel=3, stride=2, padding=1), name="stem.pool1")
    b.add(LRN(), name="stem.lrn1")
    b.add(Conv2d(64, kernel=1), name="stem.conv2")
    b.add(ReLU(), name="stem.relu2")
    b.add(Conv2d(192, kernel=3, padding=1), name="stem.conv3")
    b.add(ReLU(), name="stem.relu3")
    b.add(LRN(), name="stem.lrn2")
    cursor = b.add(MaxPool2d(kernel=3, stride=2, padding=1), name="stem.pool2")

    cursor = inception_module(b, cursor, INCEPTION_CONFIGS["3a"], "3a")
    cursor = inception_module(b, cursor, INCEPTION_CONFIGS["3b"], "3b")
    cursor = b.add(MaxPool2d(kernel=3, stride=2, padding=1), name="pool3", inputs=cursor)
    for tag in ("4a", "4b", "4c", "4d", "4e"):
        cursor = inception_module(b, cursor, INCEPTION_CONFIGS[tag], tag)
    cursor = b.add(MaxPool2d(kernel=3, stride=2, padding=1), name="pool4", inputs=cursor)
    for tag in ("5a", "5b"):
        cursor = inception_module(b, cursor, INCEPTION_CONFIGS[tag], tag)

    b.add(GlobalAvgPool(), name="head.pool", inputs=cursor)
    b.add(Dropout(rate=0.4), name="head.dropout")
    b.add(Linear(num_classes), name="head.fc")
    b.add(Softmax(), name="head.softmax")
    return b.build()
