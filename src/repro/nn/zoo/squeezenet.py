"""SqueezeNet v1.1 (Iandola et al., 2016).

A third general-structure family for the partition machinery: *fire
modules* (a 1x1 squeeze conv feeding parallel 1x1 and 3x3 expand convs,
channel-concatenated). Unlike Inception modules, the squeeze layer
shrinks the tensor *before* the branches, so interior cuts right after
the squeeze are strong offloading points — a different cut-space shape
than either GoogLeNet or MobileNet.
"""

from __future__ import annotations

from repro.nn.layers import (
    Concat,
    Conv2d,
    Dropout,
    GlobalAvgPool,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.network import Network, NetworkBuilder

__all__ = ["squeezenet"]

#: (squeeze, expand1x1, expand3x3) per fire module, v1.1 configuration.
_FIRE_CONFIG = [
    (16, 64, 64),    # fire2
    (16, 64, 64),    # fire3
    (32, 128, 128),  # fire4
    (32, 128, 128),  # fire5
    (48, 192, 192),  # fire6
    (48, 192, 192),  # fire7
    (64, 256, 256),  # fire8
    (64, 256, 256),  # fire9
]

#: indices (into the fire list) after which v1.1 places a max-pool.
_POOL_AFTER = {1, 3}


def _fire(b: NetworkBuilder, entry: str, squeeze: int, e1: int, e3: int, tag: str) -> str:
    s = b.add(Conv2d(squeeze, kernel=1), name=f"{tag}.squeeze", inputs=entry)
    s = b.add(ReLU(), name=f"{tag}.squeeze.relu", inputs=s)
    left = b.add(Conv2d(e1, kernel=1), name=f"{tag}.e1", inputs=s)
    left = b.add(ReLU(), name=f"{tag}.e1.relu", inputs=left)
    right = b.add(Conv2d(e3, kernel=3, padding=1), name=f"{tag}.e3", inputs=s)
    right = b.add(ReLU(), name=f"{tag}.e3.relu", inputs=right)
    return b.add(Concat(), name=f"{tag}.concat", inputs=(left, right))


def squeezenet(name: str = "squeezenet", num_classes: int = 1000) -> Network:
    """SqueezeNet v1.1 for 3x224x224 inputs (~1.2 M parameters)."""
    b = NetworkBuilder(name, input_shape=(3, 224, 224))
    b.add(Conv2d(64, kernel=3, stride=2), name="stem.conv")
    b.add(ReLU(), name="stem.relu")
    cursor = b.add(MaxPool2d(kernel=3, stride=2), name="stem.pool")
    for index, (squeeze, e1, e3) in enumerate(_FIRE_CONFIG):
        cursor = _fire(b, cursor, squeeze, e1, e3, tag=f"fire{index + 2}")
        if index in _POOL_AFTER:
            cursor = b.add(
                MaxPool2d(kernel=3, stride=2), name=f"pool{index + 2}", inputs=cursor
            )
    b.add(Dropout(), name="head.dropout", inputs=cursor)
    b.add(Conv2d(num_classes, kernel=1), name="head.conv")
    b.add(ReLU(), name="head.relu")
    b.add(GlobalAvgPool(), name="head.pool")
    b.add(Softmax(), name="head.softmax")
    return b.build()
