"""ResNet-18 (He et al., 2016).

Basic blocks carry identity (or 1x1-conv downsample) shortcuts, so the
raw graph is general; every residual block satisfies the clustering
criterion (the bypass forces interior cuts to re-upload the entry
tensor), and the clustered network is the line structure the paper's
experiments partition.
"""

from __future__ import annotations

from repro.nn.layers import (
    Add,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.network import Network, NetworkBuilder

__all__ = ["resnet18"]

#: (out channels, first stride) for the four ResNet-18 stages (2 blocks each).
_RESNET18_STAGES = [(64, 1), (128, 2), (256, 2), (512, 2)]


def _basic_block(
    b: NetworkBuilder, entry: str, in_channels: int, channels: int, stride: int, tag: str
) -> str:
    main = b.add(
        Conv2d(channels, kernel=3, stride=stride, padding=1, bias=False),
        name=f"{tag}.conv1",
        inputs=entry,
    )
    main = b.add(BatchNorm2d(), name=f"{tag}.bn1", inputs=main)
    main = b.add(ReLU(), name=f"{tag}.relu1", inputs=main)
    main = b.add(Conv2d(channels, kernel=3, padding=1, bias=False), name=f"{tag}.conv2", inputs=main)
    main = b.add(BatchNorm2d(), name=f"{tag}.bn2", inputs=main)
    shortcut = entry
    if stride != 1 or in_channels != channels:
        shortcut = b.add(
            Conv2d(channels, kernel=1, stride=stride, bias=False),
            name=f"{tag}.down.conv",
            inputs=entry,
        )
        shortcut = b.add(BatchNorm2d(), name=f"{tag}.down.bn", inputs=shortcut)
    merged = b.add(Add(), name=f"{tag}.add", inputs=(main, shortcut))
    return b.add(ReLU(), name=f"{tag}.relu2", inputs=merged)


def resnet18(name: str = "resnet18", num_classes: int = 1000) -> Network:
    """ResNet-18 for 3x224x224 inputs."""
    b = NetworkBuilder(name, input_shape=(3, 224, 224))
    b.add(Conv2d(64, kernel=7, stride=2, padding=3, bias=False), name="stem.conv")
    b.add(BatchNorm2d(), name="stem.bn")
    b.add(ReLU(), name="stem.relu")
    cursor = b.add(MaxPool2d(kernel=3, stride=2, padding=1), name="stem.pool")
    channels = 64
    for stage, (out_channels, first_stride) in enumerate(_RESNET18_STAGES):
        for block in range(2):
            stride = first_stride if block == 0 else 1
            cursor = _basic_block(
                b, cursor, channels, out_channels, stride, tag=f"s{stage}.{block}"
            )
            channels = out_channels
    b.add(GlobalAvgPool(), name="head.pool", inputs=cursor)
    b.add(Linear(num_classes), name="head.fc")
    b.add(Softmax(), name="head.softmax")
    return b.build()
