"""MobileNet-v2 (Sandler et al., 2018).

The inverted-residual bottleneck (paper Fig. 10) is the reason this
network is *not* a line structure as built: blocks with stride 1 and
matching channel counts carry a bypass edge into an Add node. Because
the expanded 1x1/depthwise tensors inside a block are never smaller
than the block's input, §3.2's virtual-block clustering
(:func:`repro.dag.transform.collapse_clusterable_blocks`) collapses
every bottleneck, and the result is the line-structure DAG the paper
schedules.
"""

from __future__ import annotations

from repro.nn.layers import (
    Add,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool,
    Linear,
    ReLU,
    Softmax,
)
from repro.nn.network import Network, NetworkBuilder

__all__ = ["mobilenet_v2"]

#: (expansion t, out channels c, repeats n, first stride s) — Table 2 of the paper.
_MBV2_CONFIG = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _bottleneck(
    b: NetworkBuilder, entry: str, in_channels: int, t: int, c: int, stride: int, tag: str
) -> tuple[str, int]:
    """One inverted-residual block; returns (exit node, out channels)."""
    hidden = in_channels * t
    cursor = entry
    if t != 1:  # the first block skips the expansion conv
        cursor = b.add(Conv2d(hidden, kernel=1, bias=False), name=f"{tag}.expand", inputs=cursor)
        cursor = b.add(BatchNorm2d(), name=f"{tag}.expand.bn", inputs=cursor)
        cursor = b.add(ReLU(max_value=6.0), name=f"{tag}.expand.relu6", inputs=cursor)
    cursor = b.add(
        DepthwiseConv2d(kernel=3, stride=stride, padding="same", bias=False),
        name=f"{tag}.dwise",
        inputs=cursor,
    )
    cursor = b.add(BatchNorm2d(), name=f"{tag}.dwise.bn", inputs=cursor)
    cursor = b.add(ReLU(max_value=6.0), name=f"{tag}.dwise.relu6", inputs=cursor)
    cursor = b.add(Conv2d(c, kernel=1, bias=False), name=f"{tag}.project", inputs=cursor)
    cursor = b.add(BatchNorm2d(), name=f"{tag}.project.bn", inputs=cursor)
    if stride == 1 and in_channels == c:
        cursor = b.add(Add(), name=f"{tag}.add", inputs=(cursor, entry))
    return cursor, c


def mobilenet_v2(name: str = "mobilenet-v2", num_classes: int = 1000) -> Network:
    """MobileNet-v2 for 3x224x224 inputs (general DAG with bypass links)."""
    b = NetworkBuilder(name, input_shape=(3, 224, 224))
    b.add(Conv2d(32, kernel=3, stride=2, padding=1, bias=False), name="stem.conv")
    b.add(BatchNorm2d(), name="stem.bn")
    cursor = b.add(ReLU(max_value=6.0), name="stem.relu6")
    channels = 32
    for stage, (t, c, n, s) in enumerate(_MBV2_CONFIG):
        for repeat in range(n):
            stride = s if repeat == 0 else 1
            cursor, channels = _bottleneck(
                b, cursor, channels, t, c, stride, tag=f"b{stage}.{repeat}"
            )
    b.add(Conv2d(1280, kernel=1, bias=False), name="head.conv", inputs=cursor)
    b.add(BatchNorm2d(), name="head.bn")
    b.add(ReLU(max_value=6.0), name="head.relu6")
    b.add(GlobalAvgPool(), name="head.pool")
    b.add(Linear(num_classes), name="head.fc")
    b.add(Softmax(), name="head.softmax")
    return b.build()
