"""Network-in-Network (Lin et al., 2013), CIFAR-10 configuration.

Cited by the paper (§3.1) as a line-structure DNN. The mlpconv blocks
are ordinary 1x1 convolutions here, which is exactly how they execute.
"""

from __future__ import annotations

from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    GlobalAvgPool,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.network import Network, NetworkBuilder

__all__ = ["nin"]


def nin(name: str = "nin", num_classes: int = 10) -> Network:
    """NiN for 3x32x32 inputs (CIFAR-10)."""
    b = NetworkBuilder(name, input_shape=(3, 32, 32))
    b.sequence(
        [
            Conv2d(192, kernel=5, padding=2), ReLU(),
            Conv2d(160, kernel=1), ReLU(),
            Conv2d(96, kernel=1), ReLU(),
            MaxPool2d(kernel=3, stride=2, padding=1),
            Dropout(),
            Conv2d(192, kernel=5, padding=2), ReLU(),
            Conv2d(192, kernel=1), ReLU(),
            Conv2d(192, kernel=1), ReLU(),
            AvgPool2d(kernel=3, stride=2, padding=1),
            Dropout(),
            Conv2d(192, kernel=3, padding=1), ReLU(),
            Conv2d(192, kernel=1), ReLU(),
            Conv2d(num_classes, kernel=1), ReLU(),
            GlobalAvgPool(),
            Softmax(),
        ]
    )
    return b.build()
