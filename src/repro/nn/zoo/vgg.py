"""The VGG family (Simonyan & Zisserman, 2014) — the paper's canonical
example of widely used pure line-structure DNNs (§3.1)."""

from __future__ import annotations

from repro.nn.layers import Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU, Softmax
from repro.nn.network import Network, NetworkBuilder

__all__ = ["vgg11", "vgg13", "vgg16", "vgg19"]

#: (out_channels, convs_in_block) per stage for each configuration
#: (columns A, B, D, E of the VGG paper's Table 1).
_VGG_CONFIGS: dict[str, list[tuple[int, int]]] = {
    "vgg11": [(64, 1), (128, 1), (256, 2), (512, 2), (512, 2)],
    "vgg13": [(64, 2), (128, 2), (256, 2), (512, 2), (512, 2)],
    "vgg16": [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)],
    "vgg19": [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)],
}


def _vgg(config: str, name: str | None, num_classes: int) -> Network:
    b = NetworkBuilder(name or config, input_shape=(3, 224, 224))
    for channels, repeats in _VGG_CONFIGS[config]:
        for _ in range(repeats):
            b.add(Conv2d(channels, kernel=3, padding=1))
            b.add(ReLU())
        b.add(MaxPool2d(kernel=2, stride=2))
    b.sequence(
        [
            Flatten(),
            Linear(4096),
            ReLU(),
            Dropout(),
            Linear(4096),
            ReLU(),
            Dropout(),
            Linear(num_classes),
            Softmax(),
        ]
    )
    return b.build()


def vgg11(name: str = "vgg11", num_classes: int = 1000) -> Network:
    """VGG-11 (configuration A) for 3x224x224 inputs."""
    return _vgg("vgg11", name, num_classes)


def vgg13(name: str = "vgg13", num_classes: int = 1000) -> Network:
    """VGG-13 (configuration B) for 3x224x224 inputs."""
    return _vgg("vgg13", name, num_classes)


def vgg16(name: str = "vgg16", num_classes: int = 1000) -> Network:
    """VGG-16 (configuration D) for 3x224x224 inputs."""
    return _vgg("vgg16", name, num_classes)


def vgg19(name: str = "vgg19", num_classes: int = 1000) -> Network:
    """VGG-19 (configuration E) for 3x224x224 inputs."""
    return _vgg("vgg19", name, num_classes)
