"""AlexNet (Krizhevsky et al., 2012; torchvision layer configuration).

The paper's Fig. 4 profiles AlexNet "layers" that are really blocks of
conv + activation + pooling; the virtual-block clustering in
:mod:`repro.dag.transform` recovers exactly that grouping from this
layer-level graph (conv1's 64x55x55 output is *larger* than the input,
so cutting right after conv1 is dominated and the block extends to the
first pooling layer).
"""

from __future__ import annotations

from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    LRN,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.nn.network import Network, NetworkBuilder

__all__ = ["alexnet", "alexnet_prime"]


def alexnet(name: str = "alexnet", num_classes: int = 1000) -> Network:
    """AlexNet for 3x224x224 inputs; a pure line-structure DNN."""
    b = NetworkBuilder(name, input_shape=(3, 224, 224))
    b.sequence(
        [
            Conv2d(64, kernel=11, stride=4, padding=2),
            ReLU(),
            LRN(),
            MaxPool2d(kernel=3, stride=2),
            Conv2d(192, kernel=5, padding=2),
            ReLU(),
            LRN(),
            MaxPool2d(kernel=3, stride=2),
            Conv2d(384, kernel=3, padding=1),
            ReLU(),
            Conv2d(256, kernel=3, padding=1),
            ReLU(),
            Conv2d(256, kernel=3, padding=1),
            ReLU(),
            MaxPool2d(kernel=3, stride=2),
            Flatten(),
            Dropout(),
            Linear(4096),
            ReLU(),
            Dropout(),
            Linear(4096),
            ReLU(),
            Linear(num_classes),
            Softmax(),
        ]
    )
    return b.build()


def alexnet_prime(num_classes: int = 1000) -> Network:
    """The paper's synthetic AlexNet′ (Fig. 11).

    Structurally identical to AlexNet; the experiment harness replaces
    its measured communication times with samples from the fitted convex
    curve (``repro.profiling.latency.smooth_cost_table``), which makes
    the Theorem 5.3 adjacency condition hold exactly.
    """
    return alexnet(name="alexnet-prime", num_classes=num_classes)
