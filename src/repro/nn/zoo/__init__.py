"""Model zoo: layer-faithful reconstructions of the paper's DNNs.

``get_model(name)`` is the registry used by the experiment harness; the
four experiment models (AlexNet, GoogLeNet, MobileNet-v2, ResNet-18)
plus the paper's cited line-structure examples are all here.
"""

from __future__ import annotations

from typing import Callable

from repro.nn.network import Network
from repro.nn.zoo.alexnet import alexnet, alexnet_prime
from repro.nn.zoo.googlenet import INCEPTION_CONFIGS, googlenet, inception_module
from repro.nn.zoo.inception import inception_v4
from repro.nn.zoo.mobilenet import mobilenet_v2
from repro.nn.zoo.multitask import multitask_perception
from repro.nn.zoo.nin import nin
from repro.nn.zoo.resnet import resnet18
from repro.nn.zoo.squeezenet import squeezenet
from repro.nn.zoo.synthetic import (
    branchy_dnn,
    line_dnn,
    mini_inception,
    random_cost_profile,
    random_series_parallel_network,
)
from repro.nn.zoo.vgg import vgg11, vgg13, vgg16, vgg19
from repro.nn.zoo.yolo import tiny_yolov2

__all__ = [
    "MODELS",
    "get_model",
    "alexnet",
    "alexnet_prime",
    "branchy_dnn",
    "googlenet",
    "inception_module",
    "inception_v4",
    "INCEPTION_CONFIGS",
    "line_dnn",
    "mini_inception",
    "mobilenet_v2",
    "multitask_perception",
    "nin",
    "random_cost_profile",
    "random_series_parallel_network",
    "resnet18",
    "squeezenet",
    "tiny_yolov2",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
]

MODELS: dict[str, Callable[[], Network]] = {
    "alexnet": alexnet,
    "alexnet-prime": alexnet_prime,
    "vgg11": vgg11,
    "vgg13": vgg13,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "squeezenet": squeezenet,
    "nin": nin,
    "multitask-perception": multitask_perception,
    "tiny-yolov2": tiny_yolov2,
    "mobilenet-v2": mobilenet_v2,
    "resnet18": resnet18,
    "googlenet": googlenet,
    "inception-v4": inception_v4,
    "mini-inception": mini_inception,
    "branchy-dnn": branchy_dnn,
    "line-dnn": line_dnn,
}


def get_model(name: str) -> Network:
    """Instantiate a zoo model by registry name."""
    try:
        factory = MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODELS)}"
        ) from None
    return factory()
