"""Synthetic networks for tests, property-based checks, and small demos.

These are not real architectures: they exist to exercise the partition
and scheduling machinery on graphs whose structure (depth, volume decay,
branching) is directly controllable.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Add, Concat, Conv2d, Linear, Flatten, MaxPool2d, ReLU
from repro.nn.network import Network, NetworkBuilder
from repro.utils.rng import make_rng

__all__ = ["line_dnn", "branchy_dnn", "mini_inception"]


def line_dnn(
    depth: int = 8,
    base_channels: int = 16,
    input_size: int = 64,
    name: str = "line-dnn",
) -> Network:
    """A conv/pool chain whose tensor volume halves every stage.

    The resulting ``g`` is decreasing and roughly geometric and ``f`` is
    roughly linear — the exact regime §3.2 observes on real DNNs, which
    makes this the canonical fixture for Theorem 5.2/5.3 tests.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    b = NetworkBuilder(name, input_shape=(3, input_size, input_size))
    size = input_size
    channels = base_channels
    for stage in range(depth):
        b.add(Conv2d(channels, kernel=3, padding=1), name=f"conv{stage}")
        b.add(ReLU(), name=f"relu{stage}")
        if size >= 4:
            b.add(MaxPool2d(kernel=2, stride=2), name=f"pool{stage}")
            size //= 2
        channels = min(channels * 2, 256)
    b.add(Flatten(), name="flatten")
    b.add(Linear(10), name="fc")
    return b.build()


def branchy_dnn(name: str = "branchy-dnn") -> Network:
    """A small series-parallel DAG: residual block then a 3-way split.

    Mirrors the Fig. 9 example scale — few enough paths for exhaustive
    checks of the conversion and of exact-vs-heuristic partitioning.
    """
    b = NetworkBuilder(name, input_shape=(8, 32, 32))
    trunk = b.add(Conv2d(16, kernel=3, padding=1), name="trunk")
    # residual block
    main = b.add(Conv2d(16, kernel=3, padding=1), name="res.conv", inputs=trunk)
    merged = b.add(Add(), name="res.add", inputs=(main, trunk))
    # 3-way split
    br1 = b.add(Conv2d(8, kernel=1), name="split.b1", inputs=merged)
    br2 = b.add(Conv2d(8, kernel=3, padding=1), name="split.b2a", inputs=merged)
    br2 = b.add(Conv2d(8, kernel=3, padding=1), name="split.b2b", inputs=br2)
    br3 = b.add(MaxPool2d(kernel=3, stride=1, padding=1), name="split.b3", inputs=merged)
    br3 = b.add(Conv2d(8, kernel=1), name="split.b3proj", inputs=br3)
    joined = b.add(Concat(), name="split.concat", inputs=(br1, br2, br3))
    b.add(Conv2d(4, kernel=1), name="tail", inputs=joined)
    b.add(Flatten(), name="flatten")
    b.add(Linear(10), name="fc")
    return b.build()


def mini_inception(modules: int = 2, name: str = "mini-inception") -> Network:
    """A stem plus a few Inception modules — tractable path enumeration.

    With ``modules`` Inception blocks the Fig.-9 conversion yields
    ``4**modules`` independent paths, so exact comparisons between
    Alg. 3 and the frontier enumerator stay cheap up to ~5 modules.
    """
    from repro.nn.zoo.googlenet import InceptionConfig, inception_module

    if modules < 1:
        raise ValueError(f"modules must be >= 1, got {modules}")
    b = NetworkBuilder(name, input_shape=(3, 64, 64))
    b.add(Conv2d(64, kernel=5, stride=2, padding=2), name="stem.conv")
    b.add(ReLU(), name="stem.relu")
    cursor = b.add(MaxPool2d(kernel=3, stride=2, padding=1), name="stem.pool")
    cfg = InceptionConfig(32, 48, 64, 8, 16, 16)
    for index in range(modules):
        cursor = inception_module(b, cursor, cfg, f"m{index}")
    b.add(Flatten(), name="flatten", inputs=cursor)
    b.add(Linear(10), name="fc")
    return b.build()


def random_series_parallel_network(
    seed: int | np.random.Generator | None = None,
    blocks: int = 3,
    max_branches: int = 3,
    max_branch_depth: int = 2,
    name: str = "random-sp",
) -> Network:
    """A random series-parallel conv network for property-based tests.

    Alternates separator convs with parallel blocks of 1..max_branches
    branches (each a short conv chain, merged by channel Concat). Every
    graph this produces is a valid single-source/sink series-parallel
    DAG, so it can drive exhaustive cut-space oracles.
    """
    rng = make_rng(seed)
    b = NetworkBuilder(name, input_shape=(4, 16, 16))
    cursor = b.add(Conv2d(8, kernel=3, padding=1), name="stem")
    for block in range(blocks):
        n_branches = int(rng.integers(1, max_branches + 1))
        if n_branches == 1:
            cursor = b.add(
                Conv2d(8, kernel=3, padding=1), name=f"b{block}.solo", inputs=cursor
            )
            continue
        ends = []
        for branch in range(n_branches):
            node = cursor
            depth = int(rng.integers(1, max_branch_depth + 1))
            for layer in range(depth):
                channels = int(rng.integers(2, 9))
                node = b.add(
                    Conv2d(channels, kernel=1),
                    name=f"b{block}.br{branch}.c{layer}",
                    inputs=node,
                )
            ends.append(node)
        cursor = b.add(Concat(), name=f"b{block}.concat", inputs=tuple(ends))
    b.add(Flatten(), name="flatten", inputs=cursor)
    b.add(Linear(4), name="fc")
    return b.build()


def random_cost_profile(
    depth: int,
    seed: int | np.random.Generator | None = None,
    compute_scale: float = 0.01,
    comm_scale: float = 0.5,
    decay: float = 0.6,
) -> tuple[list[float], list[float]]:
    """Random per-layer (compute, upload-volume) profiles for property tests.

    Returns ``(layer_times, cut_volumes)`` with ``layer_times`` positive
    and ``cut_volumes`` a noisy geometric decay — arbitrary enough to
    stress algorithms, structured enough to resemble real DNNs.
    """
    rng = make_rng(seed)
    times = (compute_scale * (0.2 + rng.random(depth))).tolist()
    volumes = [
        float(comm_scale * decay**i * (0.5 + rng.random())) for i in range(depth)
    ]
    return times, volumes
