"""Analytic DNN layer models: output shapes, FLOP counts, parameters.

The partition/scheduling algorithms never run real inference — they only
need, per layer, (a) how much computation it costs on a device and
(b) how many bytes its output tensor occupies. Both derive from shape
arithmetic identical to the frameworks': a ``Conv2d`` here produces the
same output shape and multiply-accumulate count as ``torch.nn.Conv2d``.

Conventions
-----------
* Shapes are channel-first tuples without the batch dimension:
  ``(C, H, W)`` for feature maps, ``(N,)`` after flattening. Batch size
  is always 1 — the paper schedules single-image inference jobs.
* FLOPs count one multiply and one add as 2 FLOPs; a conv layer with
  ``M`` output elements and ``K`` multiply-accumulates per element costs
  ``2*M*K`` (+ ``M`` if biased).
* ``kind`` is a short stable string used by the device cost model and
  the latency regression as the layer-type feature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "Shape",
    "ShapeError",
    "Layer",
    "Input",
    "Conv2d",
    "DepthwiseConv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "Linear",
    "ReLU",
    "BatchNorm2d",
    "LRN",
    "Dropout",
    "Flatten",
    "Softmax",
    "Concat",
    "Add",
    "OutputCollector",
    "numel",
]

Shape = tuple[int, ...]


class ShapeError(ValueError):
    """Raised when a layer receives an incompatible input shape."""


def numel(shape: Shape) -> int:
    """Number of elements in a tensor of ``shape``."""
    return math.prod(shape)


def _require_chw(shape: Shape, layer: str) -> tuple[int, int, int]:
    if len(shape) != 3 or any(d <= 0 for d in shape):
        raise ShapeError(f"{layer} expects a (C, H, W) input, got {shape}")
    return shape  # type: ignore[return-value]


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"kernel {kernel}/stride {stride}/padding {padding} collapses size {size}"
        )
    return out


def _pair(value: int | tuple[int, int], name: str) -> tuple[int, int]:
    """Normalize a square-or-rectangular size spec to (height, width)."""
    if isinstance(value, int):
        return (value, value)
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and all(isinstance(v, int) for v in value)
    ):
        return value
    raise ShapeError(f"{name} must be an int or an (h, w) pair, got {value!r}")


@dataclass(frozen=True)
class Layer:
    """Base class: a pure shape/FLOP transformer.

    Subclasses override :meth:`output_shape`, :meth:`flops` and
    :meth:`param_count`. ``arity`` > 1 marks merge layers (Concat, Add)
    that take multiple input tensors.
    """

    @property
    def kind(self) -> str:
        """Layer-type tag used as the cost-model feature."""
        return type(self).__name__.lower()

    @property
    def arity(self) -> int:
        """How many input tensors the layer consumes (-1 = variadic)."""
        return 1

    def output_shape(self, *inputs: Shape) -> Shape:
        raise NotImplementedError

    def flops(self, *inputs: Shape) -> float:
        raise NotImplementedError

    def param_count(self, *inputs: Shape) -> int:
        """Learnable parameters (weights held on whichever device runs it)."""
        return 0

    def _one(self, inputs: Sequence[Shape]) -> Shape:
        if len(inputs) != 1:
            raise ShapeError(f"{self.kind} expects exactly 1 input, got {len(inputs)}")
        return inputs[0]


@dataclass(frozen=True)
class Input(Layer):
    """Pseudo-layer marking the network input (zero cost).

    Cutting *after* the Input node is the cloud-only scheme: nothing is
    computed locally and the raw input tensor is uploaded.
    """

    shape: Shape

    def __post_init__(self) -> None:
        if not self.shape or any(d <= 0 for d in self.shape):
            raise ShapeError(f"invalid input shape {self.shape}")

    @property
    def arity(self) -> int:
        return 0

    def output_shape(self, *inputs: Shape) -> Shape:
        if inputs:
            raise ShapeError("Input takes no upstream tensors")
        return self.shape

    def flops(self, *inputs: Shape) -> float:
        return 0.0


@dataclass(frozen=True)
class Conv2d(Layer):
    """Standard 2-D convolution.

    ``kernel`` may be an int (square) or an ``(kh, kw)`` pair — the
    asymmetric 1x7 / 7x1 factorized convolutions of Inception-v4 need
    rectangular kernels. ``padding`` may be an int, an ``(ph, pw)``
    pair, or ``"same"`` (stride-1 shape-preserving, odd kernels only).
    """

    out_channels: int
    kernel: int | tuple[int, int]
    stride: int = 1
    padding: int | tuple[int, int] | str = 0
    bias: bool = True

    def __post_init__(self) -> None:
        kh, kw = _pair(self.kernel, "kernel")
        if self.out_channels <= 0 or kh <= 0 or kw <= 0 or self.stride <= 0:
            raise ShapeError(f"invalid conv config {self}")
        if isinstance(self.padding, str):
            if self.padding != "same":
                raise ShapeError(
                    f"padding must be int/(h, w)/'same', got {self.padding!r}"
                )
        else:
            _pair(self.padding, "padding")

    def _kernel(self) -> tuple[int, int]:
        return _pair(self.kernel, "kernel")

    def _padding(self) -> tuple[int, int]:
        kh, kw = self._kernel()
        if self.padding == "same":
            if kh % 2 == 0 or kw % 2 == 0:
                raise ShapeError("'same' padding requires an odd kernel")
            return ((kh - 1) // 2, (kw - 1) // 2)
        return _pair(self.padding, "padding")  # type: ignore[arg-type]

    def output_shape(self, *inputs: Shape) -> Shape:
        c, h, w = _require_chw(self._one(inputs), "Conv2d")
        kh, kw = self._kernel()
        ph, pw = self._padding()
        return (
            self.out_channels,
            _conv_out(h, kh, self.stride, ph),
            _conv_out(w, kw, self.stride, pw),
        )

    def flops(self, *inputs: Shape) -> float:
        c_in, _, _ = _require_chw(self._one(inputs), "Conv2d")
        kh, kw = self._kernel()
        out = self.output_shape(*inputs)
        macs_per_element = c_in * kh * kw
        total = 2.0 * numel(out) * macs_per_element
        if self.bias:
            total += numel(out)
        return total

    def param_count(self, *inputs: Shape) -> int:
        c_in, _, _ = _require_chw(self._one(inputs), "Conv2d")
        kh, kw = self._kernel()
        weights = self.out_channels * c_in * kh * kw
        return weights + (self.out_channels if self.bias else 0)


@dataclass(frozen=True)
class DepthwiseConv2d(Layer):
    """Depthwise convolution (one filter per input channel, MobileNet)."""

    kernel: int
    stride: int = 1
    padding: int | str = "same"
    bias: bool = True

    def _padding(self) -> int:
        if self.padding == "same":
            if self.kernel % 2 == 0:
                raise ShapeError("'same' padding requires an odd kernel")
            return (self.kernel - 1) // 2
        return int(self.padding)

    def output_shape(self, *inputs: Shape) -> Shape:
        c, h, w = _require_chw(self._one(inputs), "DepthwiseConv2d")
        p = self._padding()
        return (
            c,
            _conv_out(h, self.kernel, self.stride, p),
            _conv_out(w, self.kernel, self.stride, p),
        )

    def flops(self, *inputs: Shape) -> float:
        out = self.output_shape(*inputs)
        total = 2.0 * numel(out) * self.kernel * self.kernel
        if self.bias:
            total += numel(out)
        return total

    def param_count(self, *inputs: Shape) -> int:
        c, _, _ = _require_chw(self._one(inputs), "DepthwiseConv2d")
        return c * self.kernel * self.kernel + (c if self.bias else 0)


@dataclass(frozen=True)
class _Pool2d(Layer):
    kernel: int
    stride: int | None = None
    padding: int = 0

    def _stride(self) -> int:
        return self.stride if self.stride is not None else self.kernel

    def output_shape(self, *inputs: Shape) -> Shape:
        c, h, w = _require_chw(self._one(inputs), self.kind)
        s = self._stride()
        return (
            c,
            _conv_out(h, self.kernel, s, self.padding),
            _conv_out(w, self.kernel, s, self.padding),
        )

    def flops(self, *inputs: Shape) -> float:
        # one comparison/add per window element per output element
        return float(numel(self.output_shape(*inputs)) * self.kernel * self.kernel)


@dataclass(frozen=True)
class MaxPool2d(_Pool2d):
    """Max pooling; shrinks spatial dims, the paper's volume-reducer."""


@dataclass(frozen=True)
class AvgPool2d(_Pool2d):
    """Average pooling."""


@dataclass(frozen=True)
class GlobalAvgPool(Layer):
    """Average over all spatial positions → ``(C,)`` vector."""

    def output_shape(self, *inputs: Shape) -> Shape:
        c, _, _ = _require_chw(self._one(inputs), "GlobalAvgPool")
        return (c,)

    def flops(self, *inputs: Shape) -> float:
        return float(numel(self._one(inputs)))


@dataclass(frozen=True)
class Linear(Layer):
    """Fully-connected layer on a flattened input."""

    out_features: int
    bias: bool = True

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ShapeError(f"out_features must be > 0, got {self.out_features}")

    def output_shape(self, *inputs: Shape) -> Shape:
        shape = self._one(inputs)
        if len(shape) != 1:
            raise ShapeError(f"Linear expects a flat (N,) input, got {shape}")
        return (self.out_features,)

    def flops(self, *inputs: Shape) -> float:
        (in_features,) = self._one(inputs)
        total = 2.0 * in_features * self.out_features
        if self.bias:
            total += self.out_features
        return total

    def param_count(self, *inputs: Shape) -> int:
        (in_features,) = self._one(inputs)
        return in_features * self.out_features + (self.out_features if self.bias else 0)


@dataclass(frozen=True)
class _Elementwise(Layer):
    """Shape-preserving unary layer costing ``ops_per_element`` per entry."""

    @property
    def ops_per_element(self) -> float:
        return 1.0

    def output_shape(self, *inputs: Shape) -> Shape:
        return self._one(inputs)

    def flops(self, *inputs: Shape) -> float:
        return self.ops_per_element * numel(self._one(inputs))


@dataclass(frozen=True)
class ReLU(_Elementwise):
    """Rectified linear activation (``max_value`` models ReLU6)."""

    max_value: float | None = None


@dataclass(frozen=True)
class BatchNorm2d(_Elementwise):
    """Inference-time batch norm: one scale and one shift per element."""

    @property
    def ops_per_element(self) -> float:
        return 2.0

    def param_count(self, *inputs: Shape) -> int:
        shape = self._one(inputs)
        c = shape[0]
        return 4 * c  # gamma, beta, running mean, running var


@dataclass(frozen=True)
class LRN(_Elementwise):
    """Local response normalization (AlexNet/GoogLeNet era)."""

    local_size: int = 5

    @property
    def ops_per_element(self) -> float:
        # square, windowed sum, scale, pow, divide ~= local_size + 4 ops
        return float(self.local_size + 4)


@dataclass(frozen=True)
class Dropout(_Elementwise):
    """No-op at inference time; kept so zoo graphs mirror the originals."""

    rate: float = 0.5

    @property
    def ops_per_element(self) -> float:
        return 0.0


@dataclass(frozen=True)
class Softmax(_Elementwise):
    """Softmax over the feature vector (exp + sum + divide)."""

    @property
    def ops_per_element(self) -> float:
        return 5.0


@dataclass(frozen=True)
class Flatten(Layer):
    """Reshape to a flat vector; free."""

    def output_shape(self, *inputs: Shape) -> Shape:
        return (numel(self._one(inputs)),)

    def flops(self, *inputs: Shape) -> float:
        return 0.0


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation of feature maps (Inception merge)."""

    @property
    def arity(self) -> int:
        return -1

    def output_shape(self, *inputs: Shape) -> Shape:
        if len(inputs) < 2:
            raise ShapeError(f"Concat expects >= 2 inputs, got {len(inputs)}")
        shapes = [_require_chw(s, "Concat") for s in inputs]
        spatial = {s[1:] for s in shapes}
        if len(spatial) != 1:
            raise ShapeError(f"Concat inputs disagree on spatial dims: {sorted(spatial)}")
        h, w = shapes[0][1], shapes[0][2]
        return (sum(s[0] for s in shapes), h, w)

    def flops(self, *inputs: Shape) -> float:
        return 0.0  # memory movement only; charged via the device's byte cost


@dataclass(frozen=True)
class Add(Layer):
    """Element-wise sum (residual merge)."""

    @property
    def arity(self) -> int:
        return -1

    def output_shape(self, *inputs: Shape) -> Shape:
        if len(inputs) < 2:
            raise ShapeError(f"Add expects >= 2 inputs, got {len(inputs)}")
        distinct = set(inputs)
        if len(distinct) != 1:
            raise ShapeError(f"Add inputs must share a shape, got {sorted(distinct)}")
        return inputs[0]

    def flops(self, *inputs: Shape) -> float:
        return float((len(inputs) - 1) * numel(inputs[0]))


@dataclass(frozen=True)
class OutputCollector(Layer):
    """Virtual sink joining multiple task heads (tree-structure DNNs).

    Multi-task networks (one backbone, several output heads) have
    several sinks; the topology machinery assumes one. This zero-cost
    collector re-joins the heads. Its *incoming edges must carry zero
    volume* when wired by :meth:`NetworkBuilder.collect_outputs` —
    results are consumed on whichever side produced them, so finishing a
    head locally never charges an upload.
    """

    @property
    def arity(self) -> int:
        return -1

    def output_shape(self, *inputs: Shape) -> Shape:
        if len(inputs) < 2:
            raise ShapeError(f"OutputCollector expects >= 2 heads, got {len(inputs)}")
        return (len(inputs),)  # one slot per collected result

    def flops(self, *inputs: Shape) -> float:
        return 0.0
