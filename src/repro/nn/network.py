"""Network builder: wire layers into a shape-checked computation DAG.

The builder propagates shapes as layers are added, so every structural
mistake (mismatched Concat branches, pooling a flattened tensor, ...)
fails at construction time with the offending layer named. The result is
a :class:`Network`: a :class:`repro.dag.Dag` whose node payloads are
:class:`LayerNode` records carrying everything the cost models need —
FLOPs, parameter counts, and output tensor bytes (which become the edge
volumes the partition algorithms cut).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dag.graph import Dag
from repro.nn.layers import Input, Layer, OutputCollector, Shape, ShapeError, numel
from repro.utils.units import FLOAT32_BYTES

__all__ = ["LayerNode", "Network", "NetworkBuilder"]


@dataclass(frozen=True)
class LayerNode:
    """A placed layer: the static facts cost models consume."""

    name: str
    layer: Layer
    input_shapes: tuple[Shape, ...]
    output_shape: Shape
    flops: float
    params: int
    output_bytes: float

    @property
    def kind(self) -> str:
        return self.layer.kind


@dataclass(frozen=True)
class Network:
    """An immutable, validated DNN computation graph."""

    name: str
    graph: Dag
    input_id: str
    output_id: str

    @property
    def input_shape(self) -> Shape:
        return self.node(self.input_id).output_shape

    @property
    def output_shape(self) -> Shape:
        return self.node(self.output_id).output_shape

    @property
    def input_bytes(self) -> float:
        """Upload size of the raw input (the cloud-only transfer)."""
        return self.node(self.input_id).output_bytes

    def node(self, node_id: str) -> LayerNode:
        payload = self.graph.payload(node_id)
        if not isinstance(payload, LayerNode):
            raise TypeError(f"node {node_id!r} does not carry a LayerNode")
        return payload

    def nodes(self) -> list[LayerNode]:
        """All layer nodes in topological order."""
        return [self.node(v) for v in self.graph.topological_order()]

    @property
    def num_layers(self) -> int:
        return len(self.graph)

    @property
    def total_flops(self) -> float:
        return sum(n.flops for n in self.nodes())

    @property
    def total_params(self) -> int:
        return sum(n.params for n in self.nodes())

    def is_line(self) -> bool:
        return self.graph.is_line()

    def summary(self) -> str:
        """Human-readable per-layer table (name, kind, shape, MFLOPs, KB)."""
        lines = [f"{self.name}: {self.num_layers} layers, "
                 f"{self.total_flops / 1e9:.3f} GFLOPs, {self.total_params / 1e6:.2f} M params"]
        for node in self.nodes():
            lines.append(
                f"  {node.name:<24s} {node.kind:<16s} out={node.output_shape!s:<18s} "
                f"{node.flops / 1e6:>10.2f} MFLOPs {node.output_bytes / 1e3:>10.1f} KB"
            )
        return "\n".join(lines)


class NetworkBuilder:
    """Incrementally build a :class:`Network`.

    >>> b = NetworkBuilder("toy", input_shape=(3, 32, 32))
    >>> b.add(Conv2d(8, kernel=3, padding="same"))
    'conv2d_1'
    >>> b.add(ReLU())
    'relu_2'
    >>> net = b.build()

    ``add`` defaults to consuming the previously added node, so a plain
    sequence of calls produces a line-structure network. Branches pass
    ``inputs=`` explicitly and re-join via a Concat/Add layer.
    """

    def __init__(self, name: str, input_shape: Shape, dtype_bytes: int = FLOAT32_BYTES):
        if dtype_bytes <= 0:
            raise ValueError(f"dtype_bytes must be > 0, got {dtype_bytes}")
        self._dag = Dag(name=name)
        self._dtype_bytes = dtype_bytes
        self._counter = 0
        self._last: str | None = None
        self._shapes: dict[str, Shape] = {}
        input_layer = Input(shape=tuple(input_shape))
        self._input_id = self._place("input", input_layer, inputs=())

    # ------------------------------------------------------------------
    def _fresh_name(self, layer: Layer) -> str:
        self._counter += 1
        return f"{layer.kind}_{self._counter}"

    def _place(self, name: str | None, layer: Layer, inputs: tuple[str, ...]) -> str:
        node_name = name or self._fresh_name(layer)
        input_shapes = tuple(self._shapes[i] for i in inputs)
        try:
            output_shape = layer.output_shape(*input_shapes)
            flops = layer.flops(*input_shapes)
            params = layer.param_count(*input_shapes)
        except ShapeError as exc:
            raise ShapeError(f"placing {node_name!r}: {exc}") from exc
        collector = isinstance(layer, OutputCollector)
        node = LayerNode(
            name=node_name,
            layer=layer,
            input_shapes=input_shapes,
            output_shape=output_shape,
            flops=flops,
            params=params,
            # a collector's "output" is the set of already-delivered results
            output_bytes=0.0 if collector else float(
                numel(output_shape) * self._dtype_bytes
            ),
        )
        self._dag.add_node(node_name, node)
        for upstream in inputs:
            upstream_node: LayerNode = self._dag.payload(upstream)
            # results are consumed where they were produced: edges into an
            # OutputCollector never cost an upload
            volume = 0.0 if collector else upstream_node.output_bytes
            self._dag.add_edge(upstream, node_name, volume)
        self._shapes[node_name] = output_shape
        self._last = node_name
        return node_name

    # ------------------------------------------------------------------
    def add(
        self,
        layer: Layer,
        name: str | None = None,
        inputs: Iterable[str] | str | None = None,
    ) -> str:
        """Place ``layer``; defaults to consuming the last placed node."""
        if isinstance(inputs, str):
            inputs = (inputs,)
        if inputs is None:
            if self._last is None:
                raise ValueError("no upstream node; pass inputs= explicitly")
            inputs = (self._last,)
        inputs = tuple(inputs)
        arity = layer.arity
        if arity == 0 and inputs:
            raise ShapeError(f"{layer.kind} takes no inputs")
        if arity == 1 and len(inputs) != 1:
            raise ShapeError(f"{layer.kind} takes exactly one input, got {len(inputs)}")
        if arity == -1 and len(inputs) < 2:
            raise ShapeError(f"{layer.kind} merges >= 2 inputs, got {len(inputs)}")
        return self._place(name, layer, inputs)

    def sequence(self, layers: Iterable[Layer], start: str | None = None) -> str:
        """Chain ``layers`` one after another; returns the final node name."""
        previous = start or self._last
        if previous is None:
            raise ValueError("no upstream node for sequence()")
        for layer in layers:
            previous = self.add(layer, inputs=previous)
        return previous

    @property
    def last(self) -> str:
        """Name of the most recently placed node."""
        if self._last is None:
            raise ValueError("builder is empty")
        return self._last

    def shape_of(self, node_name: str) -> Shape:
        return self._shapes[node_name]

    def build(self) -> Network:
        """Validate and freeze the network."""
        self._dag.validate()
        sinks = self._dag.sinks()
        if len(sinks) != 1:
            raise ValueError(
                f"{self._dag.name!r} must end in exactly one output layer, got {sinks}"
            )
        return Network(
            name=self._dag.name,
            graph=self._dag,
            input_id=self._input_id,
            output_id=sinks[0],
        )
