"""DNN substrate: analytic layers, network builder, model zoo."""

from repro.nn import layers, zoo
from repro.nn.network import LayerNode, Network, NetworkBuilder

__all__ = ["layers", "zoo", "LayerNode", "Network", "NetworkBuilder"]
