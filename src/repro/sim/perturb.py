"""Failure injection: executing a plan under conditions it wasn't planned for.

The scheduler plans with estimated costs; reality then misbehaves — the
link degrades mid-burst, a layer stalls, measurement noise was larger
than calibrated. This module perturbs *executed* stage lengths (never
the plan) so robustness can be measured:

* :func:`perturbed_schedule` — multiplicative faults on compute/comm
  stages (log-normal jitter plus a bandwidth scale factor).
* :func:`straggler_schedule` — one job's computation stage is inflated
  (a stalled kernel / thermal throttle).
* :func:`two_phase_makespan` — the uplink rate changes after a given
  number of jobs; compares an *oblivious* device (keeps the stale cuts)
  against an *adaptive* one (replans the remaining jobs on the new cost
  table, as the AR example's re-planning loop does).

Randomness follows the fault-injection stream convention
(:func:`repro.utils.rng.stream_rng`): compute and communication jitter
draw from independent named streams (``perturb/compute``,
``perturb/comm``), so enabling one kind of jitter never shifts the
other kind's draws — the same convention :mod:`repro.faults` uses for
corruption and misestimation decisions.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.joint import jps_line
from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import flow_shop_makespan, schedule_jobs
from repro.profiling.latency import CostTable
from repro.utils.rng import DEFAULT_SEED, spawn, stream_rng
from repro.utils.validation import require_in_range, require_non_negative, require_positive

__all__ = [
    "perturbed_schedule",
    "straggler_schedule",
    "executed_makespan",
    "two_phase_makespan",
]


def _perturb_streams(
    seed: int | np.random.Generator | None,
) -> tuple[np.random.Generator, np.random.Generator]:
    """(compute, comm) generators per the named-stream convention.

    Integer (or default) seeds map to the ``perturb/compute`` and
    ``perturb/comm`` streams; an existing generator is split into two
    independent children so threading one through an experiment still
    keeps the families decoupled.
    """
    if isinstance(seed, np.random.Generator):
        compute_rng, comm_rng = spawn(seed, 2)
        return compute_rng, comm_rng
    base = DEFAULT_SEED if seed is None else seed
    return stream_rng(base, "perturb/compute"), stream_rng(base, "perturb/comm")


def perturbed_schedule(
    schedule: Schedule,
    seed: int | np.random.Generator | None = None,
    compute_jitter: float = 0.0,
    comm_jitter: float = 0.0,
    bandwidth_scale: float = 1.0,
) -> Schedule:
    """A copy of ``schedule`` with perturbed *execution* stage lengths.

    ``*_jitter`` are log-normal sigmas (0 = exact); ``bandwidth_scale``
    multiplies every communication stage (0.5 = the link halved). The
    job order is preserved — the device already committed to it.

    Compute and comm jitter draw from independent named streams, so a
    run with only ``compute_jitter`` set executes the exact same compute
    perturbations as a run that also jitters communication.
    """
    require_non_negative(compute_jitter, "compute_jitter")
    require_non_negative(comm_jitter, "comm_jitter")
    require_positive(bandwidth_scale, "bandwidth_scale")
    if not schedule.jobs:
        # same guard as the scheduling kernels: an empty schedule
        # perturbs to an empty schedule (makespan 0), no draws consumed
        return Schedule(
            jobs=(),
            makespan=0.0,
            method=f"{schedule.method}/perturbed",
            metadata={**schedule.metadata, "bandwidth_scale": bandwidth_scale},
        )
    compute_rng, comm_rng = _perturb_streams(seed)
    jobs = []
    for plan in schedule.jobs:
        compute = plan.compute_time * (
            compute_rng.lognormal(0.0, compute_jitter) if compute_jitter else 1.0
        )
        comm = plan.comm_time / bandwidth_scale * (
            comm_rng.lognormal(0.0, comm_jitter) if comm_jitter else 1.0
        )
        jobs.append(replace(plan, compute_time=compute, comm_time=comm))
    return Schedule(
        jobs=tuple(jobs),
        makespan=flow_shop_makespan([j.stages for j in jobs]),
        method=f"{schedule.method}/perturbed",
        metadata={**schedule.metadata, "bandwidth_scale": bandwidth_scale},
    )


def straggler_schedule(
    schedule: Schedule, job_index: int, slowdown: float
) -> Schedule:
    """Inflate one job's computation stage by ``slowdown``x."""
    require_positive(slowdown, "slowdown")
    if not schedule.jobs:
        raise ValueError("cannot pick a straggler in an empty schedule")
    if not 0 <= job_index < len(schedule.jobs):
        raise IndexError(f"job_index {job_index} out of range")
    jobs = list(schedule.jobs)
    victim = jobs[job_index]
    jobs[job_index] = replace(victim, compute_time=victim.compute_time * slowdown)
    return Schedule(
        jobs=tuple(jobs),
        makespan=flow_shop_makespan([j.stages for j in jobs]),
        method=f"{schedule.method}/straggler",
        metadata={**schedule.metadata, "straggler": job_index, "slowdown": slowdown},
    )


def executed_makespan(schedule: Schedule) -> float:
    """Exact makespan of executing the schedule's jobs in their order."""
    return flow_shop_makespan([j.stages for j in schedule.jobs])


def _stages_under(table: CostTable, plan: JobPlan) -> tuple[float, float]:
    """Re-price a plan's cut position on a different cost table."""
    return table.stage_lengths(plan.cut_position)


def two_phase_makespan(
    table_before: CostTable,
    table_after: CostTable,
    n: int,
    switch_after: int,
) -> tuple[float, float]:
    """(oblivious, adaptive) makespans for a mid-burst bandwidth change.

    Plans ``n`` jobs on ``table_before``. The first ``switch_after``
    jobs execute as planned; then the link changes so the remaining jobs
    pay ``table_after`` prices. Oblivious: keep the stale cuts. Adaptive:
    replan the remaining jobs with JPS on the new table (keeping the
    committed prefix). Both makespans are exact flow-shop values.
    """
    require_positive(n, "n")
    require_in_range(switch_after, 0, n, "switch_after")
    if table_before.k != table_after.k:
        raise ValueError("cost tables must describe the same cut positions")

    planned = jps_line(table_before, n)
    prefix = list(planned.jobs[:switch_after])
    stale_suffix = [
        replace(plan, compute_time=_stages_under(table_after, plan)[0],
                comm_time=_stages_under(table_after, plan)[1])
        for plan in planned.jobs[switch_after:]
    ]
    oblivious = flow_shop_makespan(
        [p.stages for p in prefix] + [p.stages for p in stale_suffix]
    )

    remaining = n - switch_after
    if remaining == 0:
        return oblivious, oblivious
    replanned = jps_line(table_after, remaining)
    adaptive_suffix = schedule_jobs(replanned.jobs).jobs
    adaptive = flow_shop_makespan(
        [p.stages for p in prefix] + [p.stages for p in adaptive_suffix]
    )
    return oblivious, adaptive
