"""Minimal discrete-event simulation core.

A classic event-heap engine with exclusive FIFO resources — enough to
model the paper's execution environment (one mobile CPU, one uplink,
one cloud GPU) without pulling in an external simulation framework.

Design notes (following the HPC-Python guidance: simple first, measure
before optimizing):

* Events are ``(time, sequence, callback)`` tuples on a binary heap;
  the monotonically increasing sequence number makes simultaneous
  events fire in schedule order, so runs are fully deterministic.
* A :class:`Resource` serializes its users. ``acquire`` enqueues a
  continuation invoked when the resource frees up; a continuation
  returns the hold duration and optionally a completion callback.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Engine", "Resource", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduling inconsistencies (negative delays, time travel)."""


class Engine:
    """Event loop with a virtual clock."""

    def __init__(self, log_busy: bool = True) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        #: Default busy-interval retention for resources built through
        #: :meth:`resource` — long sweeps turn it off so million-event
        #: runs don't accumulate :class:`Busy` records.
        self.log_busy = log_busy
        #: Optional observer fired with the clock value before each event
        #: callback. The fault-injection invariant monitor
        #: (:class:`repro.faults.invariants.MonotoneClockMonitor`) hooks
        #: here to assert virtual time never runs backwards under any
        #: injected fault schedule; ``None`` costs nothing.
        self.on_advance: Callable[[float], None] | None = None

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback))
        self._sequence += 1

    def resource(self, name: str, log_busy: bool | None = None) -> "Resource":
        """A :class:`Resource` bound to this engine.

        The serving stack creates resources through this factory so
        either event core (this one or :class:`repro.sim.fast.FastEngine`)
        supplies its own resource type behind the same seam.
        """
        return Resource(
            self, name, log_busy=self.log_busy if log_busy is None else log_busy
        )

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; returns the final clock value.

        A deferred event (``time > until``) is peeked, never popped, so
        it keeps its original sequence number and still fires *before*
        same-timestamp events scheduled after the paused run.
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            time, _, callback = heapq.heappop(self._heap)
            if time < self.now - 1e-12:
                raise SimulationError(f"event at {time} is before now={self.now}")
            self.now = max(self.now, time)
            if self.on_advance is not None:
                self.on_advance(self.now)
            callback()
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._heap)


@dataclass
class Busy:
    """One recorded busy interval of a resource (for Gantt traces)."""

    start: float
    end: float
    label: str


@dataclass
class Resource:
    """An exclusive, FIFO resource (CPU core, network link, GPU).

    ``acquire(label, duration, on_done)`` queues a request; when the
    resource becomes free the request holds it for ``duration`` seconds
    and then fires ``on_done(start_time, end_time)``. ``duration`` may
    be a callable mapping the grant time to a length — that is how
    time-varying links (a transfer started later sees different rates)
    plug into the engine.
    """

    engine: Engine
    name: str
    busy_log: list[Busy] = field(default_factory=list)
    #: Retain per-grant :class:`Busy` records (Gantt traces, overlap
    #: audits). Opt out on long runs: ``total_busy_time`` stays exact
    #: either way via the running accumulator.
    log_busy: bool = True
    _queue: deque = field(default_factory=deque)
    _busy: bool = False
    _busy_time: float = 0.0

    def acquire(
        self,
        label: str,
        duration: float | Callable[[float], float],
        on_done: Callable[[float, float], None] | None = None,
    ) -> None:
        if not callable(duration) and duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        self._queue.append((label, duration, on_done))
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        label, duration, on_done = self._queue.popleft()
        self._busy = True
        start = self.engine.now
        if callable(duration):
            duration = duration(start)
            if duration < 0:
                raise SimulationError(
                    f"{self.name}: callable duration returned {duration}"
                )

        def _finish() -> None:
            end = self.engine.now
            self._busy_time += end - start
            if self.log_busy:
                self.busy_log.append(Busy(start=start, end=end, label=label))
            self._busy = False
            if on_done is not None:
                on_done(start, end)
            self._pump()

        self.engine.schedule(duration, _finish)

    @property
    def total_busy_time(self) -> float:
        """Total granted time so far — a running O(1) accumulator, so
        per-event telemetry polls don't re-sum the whole busy log."""
        return self._busy_time

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource was busy."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        return self.total_busy_time / horizon
