"""Trace utilities: validation against the analytic model, ASCII Gantt.

The simulator and the closed-form flow-shop recurrence are developed
independently; ``validate_against_recurrence`` cross-checks them, and
the test-suite runs it on every scheme so a bug in either side surfaces
as a disagreement.
"""

from __future__ import annotations

from repro.core.plans import Schedule
from repro.core.scheduling import flow_shop_completion_times
from repro.sim.pipeline import PipelineResult

__all__ = ["validate_against_recurrence", "render_gantt"]


def validate_against_recurrence(
    result: PipelineResult, schedule: Schedule, tolerance: float = 1e-9
) -> None:
    """Assert the DES timeline matches the 2-stage flow-shop recurrence.

    Only meaningful for ``include_cloud=False`` runs; raises
    :class:`AssertionError` with the first disagreeing job otherwise.
    """
    if result.metadata.get("include_cloud"):
        raise ValueError("recurrence validation applies to 2-stage simulations only")
    expected = flow_shop_completion_times([p.stages for p in schedule.jobs])
    for trace, plan, (c1, c2) in zip(result.traces, schedule.jobs, expected):
        sim_c1 = trace.compute.end if trace.compute else 0.0
        sim_c2 = trace.comm.end if trace.comm else sim_c1
        if abs(sim_c1 - c1) > tolerance:
            raise AssertionError(
                f"job {plan.job_id}: compute completion {sim_c1} != analytic {c1}"
            )
        if abs(sim_c2 - c2) > tolerance:
            raise AssertionError(
                f"job {plan.job_id}: pipeline completion {sim_c2} != analytic {c2}"
            )
    analytic_makespan = expected[-1][1] if expected else 0.0
    if abs(result.makespan - analytic_makespan) > tolerance:
        raise AssertionError(
            f"makespan {result.makespan} != analytic {analytic_makespan}"
        )


def render_gantt(result: PipelineResult, width: int = 72) -> str:
    """ASCII Gantt chart of the mobile / uplink / cloud busy intervals.

    One row per resource; ``#`` marks busy time. Intended for examples
    and debugging output, mirroring the paper's Fig. 1/Fig. 6 timelines.
    """
    if result.makespan <= 0:
        return "(empty timeline)"
    scale = width / result.makespan
    lines = []
    for resource in (result.mobile, result.uplink, result.cloud):
        row = [" "] * width
        for busy in resource.busy_log:
            lo = min(int(busy.start * scale), width - 1)
            hi = max(min(int(busy.end * scale), width), lo + 1)
            for i in range(lo, hi):
                row[i] = "#"
        lines.append(f"{resource.name:>10s} |{''.join(row)}|")
    lines.append(f"{'':>10s}  0{'':{width - 10}s}{result.makespan * 1e3:8.1f} ms")
    return "\n".join(lines)
